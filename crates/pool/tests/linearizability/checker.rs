//! A Wing & Gong–style linearizability checker for pool histories.
//!
//! The tests drive a multi-shard [`BuddyPool`] from several threads, record
//! each operation as an *invocation/response interval* on a shared logical
//! clock, and then ask this module whether the completed history has a
//! **legal sequential witness**: a total order of the operations that
//!
//! 1. respects real time — if operation `a` responded before operation `b`
//!    was invoked, `a` comes first — and
//! 2. produces exactly the recorded outcomes when replayed, one operation
//!    at a time, against the single-device oracle (a bare [`BuddyDevice`]
//!    with the shard's configuration).
//!
//! If every concurrent history the pool can produce has such a witness, the
//! pool is linearizable with respect to the sequential device semantics —
//! the formal version of the equivalence suite's "sharding and locking may
//! only distribute the semantics, never change them".
//!
//! Pure `std`: no vendored dependencies, no wall-clock time (intervals come
//! from an `AtomicU64` the test advances), fully deterministic for a given
//! history.
//!
//! Operations address allocations by a small *name* index rather than by
//! handle, because the concurrent run and the sequential replay mint
//! different [`AllocId`]s. A name is allocated **at most once per history**
//! (never recycled), so "the handle for name `n`" is unambiguous in every
//! replay order and a use-after-free deterministically reports
//! `BadAllocation` rather than resurrecting under a recycled name.

use buddy_core::AllocId;
use buddy_pool::{
    BuddyDevice, CodecKind, DeviceConfig, DeviceError, Entry, TargetRatio, ENTRY_BYTES,
};
use std::mem::discriminant;

/// One recorded call against the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Call {
    /// `alloc(name, entries, target)`.
    Alloc {
        name: usize,
        entries: u64,
        target: TargetRatio,
    },
    /// `free(name)`.
    Free { name: usize },
    /// `write_entry(name, index, fill)` — entries are single-byte fills so
    /// outcomes are compact and self-describing.
    Write { name: usize, index: u64, fill: u8 },
    /// `read_entry(name, index)`.
    Read { name: usize, index: u64 },
    /// `retarget(name, target)`.
    Retarget { name: usize, target: TargetRatio },
}

/// What a call observably produced. Errors are compared by *kind* only:
/// capacity errors carry `available` payloads that legitimately depend on
/// the replay order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Success with no interesting payload (alloc/free/write).
    Ok,
    /// A successful read and the entry it returned.
    Value(Entry),
    /// A successful retarget (old target, new target).
    Retargeted(TargetRatio, TargetRatio),
    /// Any error, by variant.
    Failed(ErrorKind),
}

/// [`DeviceError`] stripped to its variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorKind(std::mem::Discriminant<DeviceError>);

impl ErrorKind {
    /// The kind of `error`.
    pub fn of(error: &DeviceError) -> Self {
        Self(discriminant(error))
    }
}

/// One completed operation: a call, its outcome, and the half-open logical
/// time interval `[invoke, response]` it occupied.
#[derive(Debug, Clone, Copy)]
pub struct Operation {
    /// Logical timestamp taken immediately before the pool call.
    pub invoke: u64,
    /// Logical timestamp taken immediately after it returned.
    pub response: u64,
    /// The call.
    pub call: Call,
    /// What it returned.
    pub outcome: Outcome,
}

/// The sequential specification: a bare device plus the name → handle map.
///
/// [`BuddyDevice`] is not `Clone` (its storage is shared with lock-free
/// handles), so the oracle records every call it has applied and `clone`
/// replays them onto a fresh device — the model is deterministic, so the
/// replay reconstructs the exact state, and histories are small enough
/// that the extra work never matters.
#[derive(Debug)]
struct Oracle {
    config: DeviceConfig,
    codec: CodecKind,
    device: BuddyDevice,
    handles: Vec<Option<AllocId>>,
    applied: Vec<Call>,
}

impl Clone for Oracle {
    fn clone(&self) -> Self {
        let mut fresh = Oracle::new(self.config, self.codec, self.handles.len());
        for &call in &self.applied {
            fresh.apply(call);
        }
        fresh
    }
}

impl Oracle {
    fn new(config: DeviceConfig, codec: CodecKind, names: usize) -> Self {
        Self {
            config,
            codec,
            device: BuddyDevice::with_codec(config, codec),
            handles: vec![None; names],
            applied: Vec::new(),
        }
    }

    /// Applies one call to the sequential model and reports its outcome.
    /// A call on a never-allocated name behaves like a stale handle
    /// (`BadAllocation`), matching what the concurrent run observes once
    /// the allocation is freed.
    fn apply(&mut self, call: Call) -> Outcome {
        self.applied.push(call);
        let stale = Outcome::Failed(ErrorKind::of(&DeviceError::BadAllocation));
        match call {
            Call::Alloc {
                name,
                entries,
                target,
            } => match self.device.alloc(&format!("n{name}"), entries, target) {
                Ok(id) => {
                    self.handles[name] = Some(id);
                    Outcome::Ok
                }
                Err(e) => Outcome::Failed(ErrorKind::of(&e)),
            },
            Call::Free { name } => match self.handles[name].take() {
                Some(id) => match self.device.free(id) {
                    Ok(()) => Outcome::Ok,
                    Err(e) => Outcome::Failed(ErrorKind::of(&e)),
                },
                None => stale,
            },
            Call::Write { name, index, fill } => match self.handles[name] {
                Some(id) => match self.device.write_entry(id, index, &[fill; ENTRY_BYTES]) {
                    Ok(_) => Outcome::Ok,
                    Err(e) => Outcome::Failed(ErrorKind::of(&e)),
                },
                None => stale,
            },
            Call::Read { name, index } => match self.handles[name] {
                Some(id) => match self.device.read_entry(id, index) {
                    Ok(entry) => Outcome::Value(entry),
                    Err(e) => Outcome::Failed(ErrorKind::of(&e)),
                },
                None => stale,
            },
            Call::Retarget { name, target } => match self.handles[name] {
                Some(id) => match self.device.retarget(id, target) {
                    Ok(report) => Outcome::Retargeted(report.old_target, report.new_target),
                    Err(e) => Outcome::Failed(ErrorKind::of(&e)),
                },
                None => stale,
            },
        }
    }
}

/// Why a history was rejected.
#[derive(Debug)]
pub struct Counterexample {
    /// The longest legal prefix the search constructed before exhausting
    /// every real-time-consistent extension (operation indices into the
    /// history).
    pub longest_prefix: Vec<usize>,
}

/// Searches for a legal sequential witness of `history` against a fresh
/// single-device oracle. Returns the witness as history indices, or the
/// longest legal prefix found if no total order works.
///
/// Wing & Gong's algorithm: at each step every *minimal* operation (one
/// invoked before all other remaining operations' responses) is tried
/// against a clone of the model; mismatches prune that branch. Histories
/// here are small (tens of operations, ≤ thread-count concurrency), so the
/// exponential worst case never bites.
pub fn linearize(
    history: &[Operation],
    config: DeviceConfig,
    codec: CodecKind,
) -> Result<Vec<usize>, Counterexample> {
    let oracle = Oracle::new(config, codec, name_count(history));
    let mut taken = vec![false; history.len()];
    let mut witness = Vec::with_capacity(history.len());
    let mut best_prefix = Vec::new();
    if dfs(history, &oracle, &mut taken, &mut witness, &mut best_prefix) {
        Ok(witness)
    } else {
        Err(Counterexample {
            longest_prefix: best_prefix,
        })
    }
}

fn dfs(
    history: &[Operation],
    oracle: &Oracle,
    taken: &mut [bool],
    witness: &mut Vec<usize>,
    best_prefix: &mut Vec<usize>,
) -> bool {
    if witness.len() == history.len() {
        return true;
    }
    if witness.len() > best_prefix.len() {
        best_prefix.clear();
        best_prefix.extend_from_slice(witness);
    }
    // An operation is schedulable next only if no other remaining
    // operation finished before it began.
    let min_response = history
        .iter()
        .enumerate()
        .filter(|(i, _)| !taken[*i])
        .map(|(_, op)| op.response)
        .min()
        .unwrap_or(u64::MAX);
    for i in 0..history.len() {
        if taken[i] || history[i].invoke > min_response {
            continue;
        }
        let mut model = oracle.clone();
        if model.apply(history[i].call) != history[i].outcome {
            continue;
        }
        taken[i] = true;
        witness.push(i);
        if dfs(history, &model, taken, witness, best_prefix) {
            return true;
        }
        witness.pop();
        taken[i] = false;
    }
    false
}

/// Replays a witness order from scratch and asserts it is really legal —
/// total, real-time-consistent, and outcome-exact. The checker's own
/// self-check: the tests run every accepted witness through this so a DFS
/// bug cannot silently accept a bad history.
pub fn verify_witness(
    history: &[Operation],
    witness: &[usize],
    config: DeviceConfig,
    codec: CodecKind,
) {
    assert_eq!(
        witness.len(),
        history.len(),
        "witness must be a total order"
    );
    // Real-time order: if a responded before b was invoked, a must be
    // scheduled before b.
    for (pos, &later) in witness.iter().enumerate() {
        for &earlier in &witness[..pos] {
            assert!(
                history[later].response > history[earlier].invoke,
                "witness schedules operation {later} after {earlier}, but {later} \
                 responded (t={}) before {earlier} was invoked (t={})",
                history[later].response,
                history[earlier].invoke
            );
        }
    }
    let mut oracle = Oracle::new(config, codec, name_count(history));
    for &i in witness {
        assert_eq!(
            oracle.apply(history[i].call),
            history[i].outcome,
            "witness replay diverged at history index {i}"
        );
    }
}

/// One past the highest name an operation in `history` addresses.
fn name_count(history: &[Operation]) -> usize {
    1 + history
        .iter()
        .map(|op| match op.call {
            Call::Alloc { name, .. }
            | Call::Free { name }
            | Call::Write { name, .. }
            | Call::Read { name, .. }
            | Call::Retarget { name, .. } => name,
        })
        .max()
        .unwrap_or(0)
}
