//! Per-tenant telemetry ledger: runs a scripted mixed-tenant scenario
//! (steady traffic, a quota-breaching demoter, a cross-tenant intruder,
//! an ownership transfer) and prints the service's telemetry snapshot.
//! Writes `results/service_report.csv`.

fn main() -> std::io::Result<()> {
    let cfg = buddy_bench::RunConfig::from_args();
    buddy_bench::tenantfig::service_report(&cfg)
}
