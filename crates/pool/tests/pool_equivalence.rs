//! A one-shard [`BuddyPool`] must be observably identical to a bare
//! [`BuddyDevice`]: same bytes on every read, same error on every invalid
//! access, same traffic counters and occupancy after any operation
//! sequence. This is the pool's correctness anchor — sharding and locking
//! may only ever *distribute* the device semantics, never change them.

use buddy_pool::{
    AccessStats, BuddyDevice, BuddyPool, CodecKind, DeviceConfig, DeviceError, Entry, PoolAllocId,
    PoolConfig, TargetRatio, ENTRY_BYTES,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use workloads::{AccessProfile, TraceGenerator};

const SHARD_CONFIG: DeviceConfig = DeviceConfig {
    device_capacity: 1 << 20,
    carve_out_factor: 3,
};

fn pair(codec: CodecKind) -> (BuddyPool, BuddyDevice) {
    let pool = BuddyPool::new(PoolConfig {
        shards: 1,
        shard_config: SHARD_CONFIG,
        codec,
    });
    let device = BuddyDevice::with_codec(SHARD_CONFIG, codec);
    (pool, device)
}

/// Entries spanning the compressibility spectrum, like the core tests use.
fn entry_of_kind(kind: u8, seed: u64) -> Entry {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut entry = [0u8; ENTRY_BYTES];
    match kind % 4 {
        0 => {}
        1 => {
            let w: u32 = rng.gen();
            for c in entry.chunks_exact_mut(4) {
                c.copy_from_slice(&w.to_le_bytes());
            }
        }
        2 => {
            let base: u32 = rng.gen_range(1 << 28..1 << 29);
            for c in entry.chunks_exact_mut(4) {
                let v = base + rng.gen_range(0u32..1 << 10);
                c.copy_from_slice(&v.to_le_bytes());
            }
        }
        _ => rng.fill(&mut entry[..]),
    }
    entry
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random operation sequences — batched and single-entry reads and
    /// writes, in-range and out-of-range, mid-sequence allocations, plus
    /// interleaved re-target migrations — behave identically on a 1-shard
    /// pool and a bare device, under every codec and target ratio.
    #[test]
    fn one_shard_pool_matches_bare_device(
        (codec_idx, target_idx) in (0u8..4, 0u8..5),
        ops in proptest::collection::vec((0u8..6, any::<u64>(), 0usize..12, any::<u64>()), 1..24),
    ) {
        let codec = CodecKind::ALL[codec_idx as usize];
        let target = TargetRatio::DESCENDING[target_idx as usize];
        let (pool, mut device) = pair(codec);

        let mut handles = vec![(
            pool.alloc("base", 48, target).unwrap(),
            device.alloc("base", 48, target).unwrap(),
        )];
        let mut entry_counts = vec![48u64];

        for (op, pos, len, data_seed) in ops {
            let slot = (pos % handles.len() as u64) as usize;
            let (pool_id, dev_id) = handles[slot];
            let entries = entry_counts[slot];
            // Bias starts toward the boundary so zero-length batches at
            // `entries` and out-of-range starts both occur regularly.
            let start = pos % (entries + 4);
            match op {
                0 => {
                    let batch: Vec<Entry> = (0..len)
                        .map(|i| entry_of_kind((data_seed + i as u64) as u8, data_seed ^ i as u64))
                        .collect();
                    prop_assert_eq!(
                        pool.write_entries(pool_id, start, &batch),
                        device.write_entries(dev_id, start, &batch)
                    );
                }
                1 => {
                    let mut from_pool = vec![[0u8; ENTRY_BYTES]; len];
                    let mut from_dev = vec![[1u8; ENTRY_BYTES]; len];
                    let pr = pool.read_entries(pool_id, start, &mut from_pool);
                    let dr = device.read_entries(dev_id, start, &mut from_dev);
                    prop_assert_eq!(pr.clone(), dr);
                    if pr.is_ok() {
                        prop_assert_eq!(&from_pool, &from_dev, "read bytes must match");
                    }
                }
                2 => {
                    let entry = entry_of_kind(data_seed as u8, data_seed);
                    prop_assert_eq!(
                        pool.write_entry(pool_id, start, &entry),
                        device.write_entry(dev_id, start, &entry)
                    );
                }
                3 => {
                    prop_assert_eq!(
                        pool.read_entry(pool_id, start),
                        device.read_entry(dev_id, start)
                    );
                }
                4 => {
                    let n = 8 + pos % 24;
                    let name = format!("alloc{}", handles.len());
                    let pa = pool.alloc(&name, n, target);
                    let da = device.alloc(&name, n, target);
                    prop_assert_eq!(pa.is_ok(), da.is_ok());
                    if let (Ok(p), Ok(d)) = (pa, da) {
                        handles.push((p, d));
                        entry_counts.push(n);
                    }
                }
                _ => {
                    // Live migration, interleaved with the I/O above: the
                    // pool must route it to the same shard state the bare
                    // device holds, reporting the identical outcome.
                    let new_target = TargetRatio::DESCENDING[(data_seed % 5) as usize];
                    prop_assert_eq!(
                        pool.retarget(pool_id, new_target),
                        device.retarget(dev_id, new_target),
                        "retarget to {} diverged", new_target
                    );
                    prop_assert_eq!(
                        pool.state_window(pool_id),
                        device.state_window(dev_id)
                    );
                }
            }
        }

        prop_assert_eq!(pool.stats(), device.stats(), "traffic counters diverged");
        prop_assert_eq!(pool.device_used(), device.device_used());
        prop_assert_eq!(pool.buddy_used(), device.buddy_used());
        prop_assert_eq!(pool.logical_bytes(), device.logical_bytes());
        prop_assert_eq!(pool.effective_ratio(), device.effective_ratio());
    }
}

/// The same *workload trace* replayed through a 1-shard pool and a bare
/// device — access-for-access, including batched runs — yields identical
/// read-back bytes and identical stats.
#[test]
fn same_trace_through_pool_and_device() {
    for codec in CodecKind::ALL {
        let (pool, mut device) = pair(codec);
        const ENTRIES: u64 = 512;
        const BATCH: usize = 16;
        let pool_id = pool.alloc("trace", ENTRIES, TargetRatio::R2).unwrap();
        let dev_id = device.alloc("trace", ENTRIES, TargetRatio::R2).unwrap();

        let trace = TraceGenerator::per_client(AccessProfile::stencil(), ENTRIES, 0xB0DD7, 0);
        for (i, access) in trace.take(400).enumerate() {
            let start = access.entry.min(ENTRIES - BATCH as u64);
            if access.write {
                let batch: Vec<Entry> = (0..BATCH)
                    .map(|j| entry_of_kind((i + j) as u8, (i * 31 + j) as u64))
                    .collect();
                pool.write_entries(pool_id, start, &batch).unwrap();
                device.write_entries(dev_id, start, &batch).unwrap();
            } else {
                let mut from_pool = [[0u8; ENTRY_BYTES]; BATCH];
                let mut from_dev = [[0u8; ENTRY_BYTES]; BATCH];
                pool.read_entries(pool_id, start, &mut from_pool).unwrap();
                device.read_entries(dev_id, start, &mut from_dev).unwrap();
                assert_eq!(from_pool, from_dev, "{codec}: access {i}");
            }
        }

        assert_eq!(pool.stats(), device.stats(), "{codec}: stats diverged");
        let occupancy = pool.occupancy();
        assert_eq!(occupancy.len(), 1);
        assert_eq!(occupancy[0].stats, device.stats());
        assert_eq!(occupancy[0].effective_ratio, device.effective_ratio());

        // Final memory images agree entry for entry.
        for index in 0..ENTRIES {
            assert_eq!(
                pool.read_entry(pool_id, index).unwrap(),
                device.read_entry(dev_id, index).unwrap(),
                "{codec}: final image at {index}"
            );
        }
    }
}

/// Live migration under fire: client threads hammer batched reads and
/// writes while a dedicated thread re-targets the *same* allocations.
/// Every client read must return exactly what that client last wrote (no
/// torn reads — migration holds the shard lock for its whole critical
/// section), every migration the retargeter commits must be visible in the
/// merged stats (lossless merge), and the final images must survive
/// byte-for-byte.
#[test]
fn concurrent_retargets_never_tear_client_reads() {
    const CLIENTS: usize = 4;
    const ENTRIES: u64 = 256;
    const BATCH: usize = 16;
    const ROUNDS: u32 = 24;

    let pool = BuddyPool::new(PoolConfig {
        shards: 2,
        shard_config: SHARD_CONFIG,
        codec: CodecKind::Bpc,
    });
    let handles: Vec<PoolAllocId> = (0..CLIENTS)
        .map(|c| {
            pool.alloc(&format!("client{c}"), ENTRIES, TargetRatio::R2)
                .unwrap()
        })
        .collect();

    let committed_retargets = std::thread::scope(|scope| {
        for (c, &handle) in handles.iter().enumerate() {
            let pool = &pool;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let start = (round as u64 * BATCH as u64) % (ENTRIES - BATCH as u64);
                    let batch: Vec<Entry> = (0..BATCH)
                        .map(|i| {
                            entry_of_kind(
                                (c + i + round as usize) as u8,
                                (c as u64) << 32 | (round as u64) << 8 | i as u64,
                            )
                        })
                        .collect();
                    pool.write_entries(handle, start, &batch).unwrap();
                    let mut out = vec![[0u8; ENTRY_BYTES]; BATCH];
                    pool.read_entries(handle, start, &mut out).unwrap();
                    // The client owns this allocation: read-after-write
                    // must hold whatever migrations raced in between.
                    assert_eq!(out, batch, "client {c} round {round}: torn read");
                }
            });
        }
        // The retargeter walks every allocation through every target while
        // the clients run. Capacity is sized so no migration can fail.
        let retargeter = {
            let pool = &pool;
            let handles = handles.clone();
            scope.spawn(move || {
                let mut committed = 0u64;
                for round in 0..10usize {
                    for (i, &handle) in handles.iter().enumerate() {
                        let target = TargetRatio::DESCENDING[(round + i) % 5];
                        let report = pool.retarget(handle, target).unwrap();
                        if report.old_target != report.new_target {
                            committed += 1;
                        }
                    }
                }
                committed
            })
        };
        retargeter.join().expect("retargeter panicked")
    });

    // Stats merged losslessly across shards: every committed migration is
    // accounted exactly once, and the per-shard sum equals the drain.
    let merged = pool.drain();
    assert_eq!(merged.retargets, committed_retargets);
    assert!(merged.moved_sectors > 0);
    let by_hand = pool
        .occupancy()
        .iter()
        .fold(AccessStats::default(), |mut acc, o| {
            acc.merge(&o.stats);
            acc
        });
    assert_eq!(merged, by_hand);
    assert_eq!(
        merged.total_accesses(),
        (CLIENTS as u64) * (ROUNDS as u64) * (BATCH as u64) * 2,
        "migrations must not perturb entry-access accounting"
    );
}

/// The reader-storm harness behind the proptest below: `readers` threads
/// hammer `read_entries` with no lock while one mutator thread loops
/// full-image writes, retargets, and free+realloc cycles on the same
/// allocation. Every phase `k` writes the uniform image `[k; 128]` in one
/// batch (batches publish atomically), every retarget preserves bytes, and
/// every realloc starts zeroed — so *any* legal read is uniform: all
/// entries identical, every byte of every entry identical, and the value
/// is either 0 (a fresh allocation) or a phase fill that was actually
/// written. A read that blends two epochs — half the batch from before a
/// migration, half after, or an entry decoded from a stale metadata
/// nibble against migrated bytes — breaks uniformity and fails the run.
/// A read racing the free/realloc window may instead observe
/// `BadAllocation`; any other error is a failure.
fn reader_storm(shards: usize, readers: usize, seed: u64) {
    const ENTRIES: u64 = 128;
    const BATCH: usize = 32;
    const PHASES: u8 = 12;

    let pool = BuddyPool::new(PoolConfig {
        shards,
        shard_config: SHARD_CONFIG,
        codec: CodecKind::Bpc,
    });
    let current = std::sync::Mutex::new(pool.alloc("storm", ENTRIES, TargetRatio::R2).unwrap());
    let stop = std::sync::atomic::AtomicBool::new(false);

    let reader_failures: Vec<String> = std::thread::scope(|scope| {
        let checkers: Vec<_> = (0..readers)
            .map(|r| {
                let pool = &pool;
                let current = &current;
                let stop = &stop;
                scope.spawn(move || -> Result<(), String> {
                    let mut rng = SmallRng::seed_from_u64(seed ^ (r as u64) << 17);
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        let handle = *current.lock().unwrap();
                        let start = rng.gen_range(0..=ENTRIES - BATCH as u64);
                        let mut out = vec![[0xAAu8; ENTRY_BYTES]; BATCH];
                        match pool.read_entries(handle, start, &mut out) {
                            Ok(()) => {
                                let value = out[0][0];
                                if value > PHASES {
                                    return Err(format!(
                                        "reader {r}: byte {value} was never written"
                                    ));
                                }
                                for (i, entry) in out.iter().enumerate() {
                                    if entry != &[value; ENTRY_BYTES] {
                                        return Err(format!(
                                            "reader {r}: entry {i} of batch at {start} blends \
                                             epochs (batch leads with {value}, entry is {:?}…)",
                                            &entry[..4]
                                        ));
                                    }
                                }
                            }
                            // The handle died under a free+realloc cycle —
                            // the one legal non-success.
                            Err(DeviceError::BadAllocation) => {}
                            Err(other) => {
                                return Err(format!("reader {r}: unexpected error {other:?}"))
                            }
                        }
                    }
                    Ok(())
                })
            })
            .collect();

        // The mutator runs on this thread: full-image write, two byte-
        // preserving migrations, then a free+realloc cycle per phase.
        for phase in 1..=PHASES {
            let handle = *current.lock().unwrap();
            let image = vec![[phase; ENTRY_BYTES]; ENTRIES as usize];
            pool.write_entries(handle, 0, &image).unwrap();
            for target in [TargetRatio::R4, TargetRatio::R1_33] {
                pool.retarget(handle, target).unwrap();
            }
            pool.free(handle).unwrap();
            let fresh = pool
                .alloc(&format!("storm-{phase}"), ENTRIES, TargetRatio::R2)
                .unwrap();
            *current.lock().unwrap() = fresh;
        }
        stop.store(true, std::sync::atomic::Ordering::Release);

        checkers
            .into_iter()
            .filter_map(|c| c.join().expect("reader panicked").err())
            .collect()
    });

    assert!(
        reader_failures.is_empty(),
        "torn reads under the storm: {reader_failures:?}"
    );
    // The barrier drains lock-free readers too; afterwards the last
    // allocation must hold a complete, uniform image.
    let _ = pool.drain();
    let survivor = *current.lock().unwrap();
    let mut final_image = vec![[0u8; ENTRY_BYTES]; ENTRIES as usize];
    pool.read_entries(survivor, 0, &mut final_image).unwrap();
    assert!(final_image.iter().all(|e| e == &[0u8; ENTRY_BYTES]));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Reader storm: concurrent lock-free reads racing writes, retargets
    /// and free+realloc cycles must observe a complete pre-image, a
    /// complete post-image, or `BadAllocation` — never a blend of epochs.
    #[test]
    fn reader_storm_observes_whole_epochs_or_bad_allocation(
        shards in 1usize..3,
        readers in 2usize..5,
        seed in any::<u64>(),
    ) {
        reader_storm(shards, readers, seed);
    }
}

/// Merging per-shard stats is lossless: a multi-shard pool serving disjoint
/// clients reports exactly the sum of what the same clients would have done
/// to private devices.
#[test]
fn multi_shard_stats_merge_is_lossless() {
    let pool = BuddyPool::new(PoolConfig {
        shards: 4,
        shard_config: SHARD_CONFIG,
        codec: CodecKind::Bpc,
    });
    let mut reference = AccessStats::default();
    for c in 0..4u64 {
        let mut device = BuddyDevice::new(SHARD_CONFIG);
        let pool_id = pool.alloc(&format!("c{c}"), 128, TargetRatio::R2).unwrap();
        let dev_id = device
            .alloc(&format!("c{c}"), 128, TargetRatio::R2)
            .unwrap();
        for i in 0..64 {
            let entry = entry_of_kind((c + i) as u8, c * 1000 + i);
            pool.write_entry(pool_id, i, &entry).unwrap();
            device.write_entry(dev_id, i, &entry).unwrap();
            assert_eq!(
                pool.read_entry(pool_id, i).unwrap(),
                device.read_entry(dev_id, i).unwrap()
            );
        }
        reference.merge(&device.stats());
    }
    assert_eq!(pool.drain(), reference);
}
