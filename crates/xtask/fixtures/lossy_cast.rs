//! Known-bad corpus for the `lossy-cast` rule: narrowing `as` casts must be
//! flagged, widening and same-width casts must not.
#![forbid(unsafe_code)]

fn bad(n: usize, m: u64) -> (u32, u8, i16) {
    let a = n as u32; // expect(lossy-cast)
    let b = (m >> 3) as u8; // expect(lossy-cast)
    let c = m as i16; // expect(lossy-cast)
    (a, b, c)
}

fn fine(n: u32, m: u8, k: usize) -> (u64, usize, f64) {
    (u64::from(n), m as usize, k as f64)
}

fn required_replacement(n: usize) -> Result<u32, std::num::TryFromIntError> {
    u32::try_from(n)
}

fn waived(nibble_index: usize) -> u16 {
    // lint-allow(lossy-cast): nibble indices are bounded by 2 * entry_count < 2^16 here
    nibble_index as u16
}
