// expect-file(crate-hygiene)
// This fixture deliberately lacks both crate-level `//!` documentation and
// the `#![forbid(unsafe_code)]` attribute; the hygiene rule must flag it.

fn main() {}
