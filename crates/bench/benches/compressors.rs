//! Criterion micro-benchmarks for the compression algorithms: single-entry
//! compress/decompress throughput across data regimes.
//!
//! These measure the software model, not hardware latency — the paper's
//! 11-cycle pipeline figure comes from Kim et al.'s RTL; what matters here
//! is that the harness can characterize memory images quickly.

use bpc::{BaseDeltaImmediate, BitPlane, BlockCompressor, FrequentPattern, ZeroRle, ENTRY_BYTES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn entry_of(kind: &str) -> [u8; ENTRY_BYTES] {
    let mut e = [0u8; ENTRY_BYTES];
    match kind {
        "zero" => {}
        "ramp" => {
            for (i, c) in e.chunks_exact_mut(4).enumerate() {
                c.copy_from_slice(&(1000u32 + 7 * i as u32).to_le_bytes());
            }
        }
        "noisy" => {
            let mut s = 0x0123_4567_89AB_CDEFu64;
            for c in e.chunks_exact_mut(4) {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let v = 0x4000_0000u32 + ((s >> 40) as u32 & 0x3FF);
                c.copy_from_slice(&v.to_le_bytes());
            }
        }
        _ => {
            let mut s = 0x9E37_79B9u64;
            for b in e.iter_mut() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (s >> 33) as u8;
            }
        }
    }
    e
}

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(ENTRY_BYTES as u64));
    for kind in ["zero", "ramp", "noisy", "random"] {
        let entry = entry_of(kind);
        group.bench_with_input(BenchmarkId::new("bpc", kind), &entry, |b, e| {
            let codec = BitPlane::new();
            b.iter(|| codec.compress(e))
        });
        group.bench_with_input(BenchmarkId::new("bdi", kind), &entry, |b, e| {
            let codec = BaseDeltaImmediate::new();
            b.iter(|| codec.compress(e))
        });
        group.bench_with_input(BenchmarkId::new("fpc", kind), &entry, |b, e| {
            let codec = FrequentPattern::new();
            b.iter(|| codec.compress(e))
        });
        group.bench_with_input(BenchmarkId::new("zero-rle", kind), &entry, |b, e| {
            let codec = ZeroRle::new();
            b.iter(|| codec.compress(e))
        });
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes(ENTRY_BYTES as u64));
    for kind in ["ramp", "noisy", "random"] {
        let entry = entry_of(kind);
        let codec = BitPlane::new();
        let compressed = codec.compress(&entry);
        group.bench_with_input(BenchmarkId::new("bpc", kind), &compressed, |b, c| {
            b.iter(|| codec.decompress(c).expect("own output decodes"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_compress, bench_decompress
}
criterion_main!(benches);
