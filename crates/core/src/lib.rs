//! Buddy Compression — a functional and analytical model of the ISCA 2020
//! design by Choukse et al.
//!
//! Buddy Compression increases effective GPU memory capacity by compressing
//! each 128 B *memory-entry* with Bit-Plane Compression and splitting its
//! storage between device memory and a larger-but-slower *buddy memory*
//! reached over a high-bandwidth interconnect:
//!
//! * Each allocation is annotated with a [`TargetRatio`] (1×, 1.33×, 2×, 4×
//!   or the 16× zero-page mode), reserving `128/r` bytes of device memory
//!   per entry and the complement in the buddy carve-out.
//! * An entry that compresses within its device budget is served entirely
//!   from device memory; otherwise the overflow sectors sit at a *fixed*
//!   pre-reserved buddy offset — compressibility changes never move any
//!   other data (the design's key invariant, §3.3).
//! * 4 bits of metadata per entry ([`metadata::MetadataStore`]) record the
//!   compressed size; translation is a trivial base+offset through the
//!   [`metadata::Gbbr`].
//! * A profiling pass ([`profile`]) picks per-allocation targets subject to
//!   the **Buddy Threshold** — the maximum tolerated fraction of entries
//!   that overflow to buddy memory.
//! * Targets are not frozen at allocation time: [`BuddyDevice::retarget`]
//!   migrates a live allocation to a new ratio (byte-preserving,
//!   observation-equivalent), and the [`adapt`] module's online policy
//!   recommends such migrations from live metadata with hysteresis.
//!
//! The [`BuddyDevice`] here is a *functional* model with real compressed
//! storage (reads return exactly what was written); the companion `gpu-sim`
//! crate models the performance of the same design. The device is
//! codec-agnostic — BPC by default, any registered `bpc::CodecKind` via
//! [`BuddyDevice::with_codec`] — and offers batched
//! [`BuddyDevice::write_entries`] / [`BuddyDevice::read_entries`] paths
//! that reuse one compression buffer across a whole run of entries.
//!
//! # Example: profile, annotate, run
//!
//! ```
//! use buddy_core::{choose_targets, AllocationProfile, ProfileConfig};
//! use bpc::{SizeClass, SizeHistogram};
//!
//! // Profiling found this allocation compresses to one sector 80% of the
//! // time and is incompressible otherwise.
//! let mut histogram = SizeHistogram::new();
//! histogram.record_n(SizeClass::B32, 80);
//! histogram.record_n(SizeClass::B128, 20);
//! let profiles = vec![AllocationProfile {
//!     name: "activations".into(),
//!     entries: 1 << 20,
//!     histogram,
//! }];
//!
//! let outcome = choose_targets(&profiles, &ProfileConfig::default());
//! // 20% overflow is below the 30% Buddy Threshold: 4x is admissible.
//! assert_eq!(outcome.choices[0].target.to_string(), "4x");
//! assert!((outcome.device_compression_ratio() - 4.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
#[cfg(feature = "audit")]
pub mod audit;
pub mod device;
pub mod metadata;
pub mod profile;
pub mod region;
mod shared;
pub mod sync;
pub mod target;

pub use adapt::{AdaptConfig, RetargetPolicy, StateWindow};
pub use device::{
    AccessStats, AllocId, BuddyDevice, DeviceConfig, DeviceError, DeviceHandle, RetargetReport,
    StorageRanges,
};
pub use metadata::{EntryState, Gbbr, MetadataStore, ENTRIES_PER_METADATA_LINE};
pub use profile::{
    best_achievable, choose_naive, choose_targets, AllocationProfile, ProfileConfig,
    ProfileOutcome, TargetChoice,
};
pub use region::RegionAllocator;
pub use target::TargetRatio;
