//! `buddy-check`: a vendored mini-loom for the Buddy Compression
//! seqlock/epoch protocol.
//!
//! The crate has three layers:
//!
//! * `mem` (private) — a weak-memory model: per-location store histories and
//!   per-thread views, so insufficiently-ordered loads can observe stale
//!   values (the bug class `SeqCst`-assuming stress tests never hit).
//! * [`sched`] — a controlled scheduler that runs model threads one at a
//!   time and depth-first-explores every bounded interleaving and every
//!   observable stale value, printing failing schedules as replayable
//!   thread-by-thread traces.
//! * [`shim`] — drop-in `std::sync` replacements (`AtomicU64`,
//!   `AtomicU8`, `fence`, `Mutex`, `OnceLock`, `spawn`) that route
//!   through the scheduler inside [`sched::explore`] and degrade to plain
//!   `std` outside it. `core::sync` re-exports these when `buddy-core` is
//!   built with `--features model-sync`.
//!
//! [`models`] holds the protocol models distilled from `core::shared`
//! (seqlock read vs. batched write, free-tombstone vs. stale reader,
//! retarget republish vs. concurrent read, drain barrier vs. in-flight
//! op), each with seeded mutations that the integration suite requires
//! the checker to catch — the checker is itself checked.
//!
//! See DESIGN.md §13 for scope, limits, and how to read a counterexample.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mem;
pub mod models;
pub mod sched;
pub mod shim;

pub use sched::{explore, fail, Config, Outcome, Report, TraceStep};
