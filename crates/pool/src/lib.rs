//! A sharded, thread-safe pool of Buddy-Compression devices.
//!
//! The paper's performance story (§5) is about *aggregate* traffic: every SM
//! issues entry reads and writes concurrently, and the compressed data path
//! must serve many simultaneous access streams. This crate scales the
//! functional [`BuddyDevice`] out by sharding — a [`BuddyPool`] owns `N`
//! devices and routes every allocation (with all of its entries) to one
//! shard by hashing — and serves *entry I/O without taking any shard
//! lock*: every read and write resolves a handle against the shard's
//! epoch-published allocation snapshot.
//!
//! # Concurrency model: epoch-published snapshots, locks only for structure
//!
//! Each shard's state is split in two (see DESIGN.md §7):
//!
//! 1. **The published half** — compressed bytes, per-entry metadata
//!    nibbles, and a per-allocation seqlock-protected descriptor table
//!    (target, entry count, region bases, generation). [`read_entry`],
//!    [`read_entries`], [`read_entries_collect`], [`entry_state`] and
//!    [`state_window`] resolve against one consistent published epoch and
//!    never touch a shard mutex: a read racing a `free` or `retarget`
//!    observes the old epoch in full, the new epoch in full, or
//!    [`DeviceError::BadAllocation`] — never a blend. Entry writes also
//!    bypass the shard mutex, serializing only on the target allocation's
//!    write lock.
//! 2. **The mutable half** — region allocators, the name table, and slot
//!    bookkeeping — stays behind the shard's `Mutex<BuddyDevice>`. Only
//!    the structural operations ([`alloc`](BuddyPool::alloc),
//!    [`free`](BuddyPool::free), [`retarget`](BuddyPool::retarget)) and
//!    the occupancy/info accessors take it; each structural change
//!    publishes a new epoch before its storage can be reused.
//!
//! Contention on the structural path is bounded by sharding (allocations
//! hash across shards); the entry data path has no pool-level contention
//! at all — `shard_lock_wait` spans no longer fire on reads, and the
//! `read-path-lock` xtask lint pins the read path lock-free.
//!
//! A pool with **one shard is observably identical to a bare
//! [`BuddyDevice`]**: same bytes on every read, same traffic counters —
//! property-tested in `tests/pool_equivalence.rs`.
//!
//! [`read_entry`]: BuddyPool::read_entry
//! [`read_entries`]: BuddyPool::read_entries
//! [`read_entries_collect`]: BuddyPool::read_entries_collect
//! [`entry_state`]: BuddyPool::entry_state
//! [`state_window`]: BuddyPool::state_window
//!
//! # Example
//!
//! ```
//! use buddy_pool::{BuddyPool, PoolConfig, TargetRatio};
//!
//! let pool = BuddyPool::new(PoolConfig { shards: 2, ..PoolConfig::default() });
//! let alloc = pool.alloc("tensor", 1024, TargetRatio::R2)?;
//! let entry = [7u8; 128];
//! pool.write_entries(alloc, 0, &[entry, entry])?;
//! let mut out = [[0u8; 128]; 2];
//! pool.read_entries(alloc, 0, &mut out)?;
//! assert_eq!(out, [entry, entry]);
//! assert_eq!(pool.stats().total_accesses(), 4);
//! # Ok::<(), buddy_pool::DeviceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;

pub use bpc::{CodecKind, Entry, ENTRY_BYTES};
pub use buddy_core::{
    AccessStats, AdaptConfig, BuddyDevice, DeviceConfig, DeviceError, DeviceHandle, EntryState,
    RetargetPolicy, RetargetReport, StateWindow, TargetRatio,
};

use buddy_core::sync::{AtomicU64, Mutex, MutexGuard, Ordering};
use buddy_core::AllocId;
use buddy_obs::{trace, Counter, SpanKind};

/// Configuration of a [`BuddyPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of independent shards (each one full [`BuddyDevice`]).
    pub shards: usize,
    /// Configuration of every shard device. Total pool capacity is
    /// `shards × shard_config.device_capacity`.
    pub shard_config: DeviceConfig,
    /// Compression codec shared by all shards.
    pub codec: CodecKind,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            shard_config: DeviceConfig::default(),
            codec: CodecKind::Bpc,
        }
    }
}

/// Handle to one allocation in a [`BuddyPool`]: the shard it lives on plus
/// the per-shard allocation id. Every entry of an allocation lives on a
/// single shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolAllocId {
    shard: u32,
    inner: AllocId,
}

impl PoolAllocId {
    /// Index of the shard this allocation lives on.
    pub fn shard(&self) -> usize {
        self.shard as usize
    }
}

/// Point-in-time occupancy of one shard (see [`BuddyPool::occupancy`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardOccupancy {
    /// Shard index.
    pub shard: usize,
    /// Allocations resident on this shard.
    pub allocations: usize,
    /// Device bytes consumed by allocations.
    pub device_used: u64,
    /// Usable device bytes.
    pub device_capacity: u64,
    /// Buddy carve-out bytes reserved.
    pub buddy_used: u64,
    /// Uncompressed bytes represented by the shard's allocations.
    pub logical_bytes: u64,
    /// Effective device compression ratio (1.0 when empty).
    pub effective_ratio: f64,
    /// Free device bytes on this shard.
    pub device_free: u64,
    /// Largest contiguous free device region on this shard, in bytes.
    pub largest_free_region: u64,
    /// Device free-space fragmentation of this shard in `[0, 1]`:
    /// `1 − largest_free_region / device_free` (0.0 when nothing is free).
    pub fragmentation: f64,
    /// Traffic counters accumulated by this shard.
    pub stats: AccessStats,
}

/// A sharded, thread-safe pool of Buddy-Compression devices.
///
/// All access methods take `&self` and are safe to call from many threads
/// concurrently; see the crate docs for the locking model.
#[derive(Debug)]
pub struct BuddyPool {
    shards: Vec<Mutex<BuddyDevice>>,
    /// One lock-free [`DeviceHandle`] per shard, in shard order; the entry
    /// data path resolves against these and never locks `shards`.
    handles: Vec<DeviceHandle>,
    config: PoolConfig,
    /// Monotonic allocation sequence number, folded into the shard hash so
    /// repeated allocations under one name still spread across shards.
    // lint-allow(raw-atomic-metric): allocation sequence for shard routing, not a metric
    alloc_seq: AtomicU64,
    /// Shard locks acquired by [`alloc`](Self::alloc) (home attempt + ring
    /// probes). Pins the probe discipline: a non-capacity home error must
    /// not walk the ring.
    alloc_shard_probes: Counter,
}

// The whole point of the pool: it must be shareable across client threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BuddyPool>();
    assert_send_sync::<PoolAllocId>();
    assert_send_sync::<ShardOccupancy>();
};

impl BuddyPool {
    /// Creates a pool of `config.shards` identical devices.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero or exceeds `u32::MAX` (shard
    /// indices travel inside [`PoolAllocId`] as `u32`).
    pub fn new(config: PoolConfig) -> Self {
        assert!(config.shards > 0, "pool needs at least one shard");
        assert!(
            u32::try_from(config.shards).is_ok(),
            "shard count must fit a u32 handle index"
        );
        let mut shards = Vec::with_capacity(config.shards);
        let mut handles = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let device = BuddyDevice::with_codec(config.shard_config, config.codec);
            handles.push(device.handle());
            shards.push(Mutex::new(device));
        }
        Self {
            shards,
            handles,
            config,
            alloc_seq: AtomicU64::new(0), // lint-allow(raw-atomic-metric): shard-routing sequence, not a metric
            alloc_shard_probes: Counter::default(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The codec every shard compresses with.
    pub fn codec(&self) -> CodecKind {
        self.config.codec
    }

    /// The pool configuration.
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// Locks one shard. A poisoned lock is recovered: every device
    /// operation leaves the device structurally valid even if it panics
    /// mid-batch (plain `Vec` storage, no unsafe invariants), so the state
    /// behind a poison is still usable.
    fn shard(&self, index: usize) -> MutexGuard<'_, BuddyDevice> {
        // The span covers only the wait: it is dropped the moment the
        // guard exists, so `shard_lock_wait` measures contention, not the
        // critical section.
        let wait = trace::span_with_arg(SpanKind::ShardLockWait, index as u64);
        let guard = match self.shards[index].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        drop(wait);
        guard
    }

    /// Resolves a handle to its shard, rejecting handles from a differently
    /// sized pool. Structural operations only — the entry data path goes
    /// through [`handle_of`](Self::handle_of) and never locks a shard.
    fn guard_of(&self, id: PoolAllocId) -> Result<MutexGuard<'_, BuddyDevice>, DeviceError> {
        if id.shard() >= self.shards.len() {
            return Err(DeviceError::BadAllocation);
        }
        Ok(self.shard(id.shard()))
    }

    /// Resolves a handle to its shard's lock-free [`DeviceHandle`],
    /// rejecting handles from a differently sized pool.
    fn handle_of(&self, id: PoolAllocId) -> Result<&DeviceHandle, DeviceError> {
        self.handles
            .get(id.shard())
            .ok_or(DeviceError::BadAllocation)
    }

    /// Allocates `entries` 128 B memory-entries with the given target ratio
    /// on the shard the allocation hashes to.
    ///
    /// The home shard is `hash(name, sequence) % shards`; if it lacks
    /// *capacity* the remaining shards are probed in ring order, so the
    /// pool only reports out-of-memory when *no* shard can host the
    /// allocation (the error reported is the home shard's). Non-capacity
    /// errors — a [`DeviceError::RequestOverflow`], for instance — are the
    /// request's fault, not the shard's: they surface immediately without
    /// touching (or locking) any other shard. With one shard this
    /// degenerates to exactly [`BuddyDevice::alloc`].
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::EmptyAllocation`] for a zero-entry request
    /// (rejected up front, identically to [`BuddyDevice::alloc`] — no
    /// shard is probed), and [`DeviceError::OutOfDeviceMemory`] /
    /// [`DeviceError::OutOfBuddyMemory`] if every shard is exhausted.
    pub fn alloc(
        &self,
        name: &str,
        entries: u64,
        target: TargetRatio,
    ) -> Result<PoolAllocId, DeviceError> {
        if entries == 0 {
            return Err(DeviceError::EmptyAllocation);
        }
        let seq = self.alloc_seq.fetch_add(1, Ordering::Relaxed); // Relaxed: the sequence only feeds shard hashing with unique ids; no memory is published through it
        let home = (shard_hash(name, seq) % self.shards.len() as u64) as usize;
        // The home shard is probed first and is the one whose error the
        // pool reports when every shard is exhausted.
        self.alloc_shard_probes.incr();
        let home_error = match self.shard(home).alloc(name, entries, target) {
            Ok(inner) => {
                return Ok(PoolAllocId {
                    shard: home as u32, // lint-allow(lossy-cast): shard count is validated to fit u32 in BuddyPool::new
                    inner,
                });
            }
            Err(e) => e,
        };
        // Ring-probe only on capacity exhaustion: a malformed request
        // fails identically everywhere, and walking the ring for it would
        // take every shard lock for nothing.
        if home_error.is_capacity() {
            for probe in 1..self.shards.len() {
                let index = (home + probe) % self.shards.len();
                self.alloc_shard_probes.incr();
                if let Ok(inner) = self.shard(index).alloc(name, entries, target) {
                    return Ok(PoolAllocId {
                        shard: index as u32, // lint-allow(lossy-cast): shard count is validated to fit u32 in BuddyPool::new
                        inner,
                    });
                }
            }
        }
        Err(home_error)
    }

    /// Total shard locks acquired by [`alloc`](Self::alloc) so far (home
    /// attempts plus capacity ring probes). A successful or failed alloc on
    /// a healthy home shard costs exactly one.
    pub fn alloc_shard_probes(&self) -> u64 {
        self.alloc_shard_probes.get()
    }

    /// Releases an allocation ([`BuddyDevice::free`] semantics), returning
    /// its device/buddy/metadata reservations to the owning shard's free
    /// lists under that shard's lock. The handle — and every copy of it —
    /// is dead afterwards: ids are generational, so later allocations can
    /// reuse the space without a stale handle ever aliasing them.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadAllocation`] for foreign, stale or
    /// already-freed handles.
    pub fn free(&self, id: PoolAllocId) -> Result<(), DeviceError> {
        self.guard_of(id)?.free(id.inner)
    }

    /// Writes one entry ([`DeviceHandle::write_entry`] semantics): the
    /// write serializes on the target allocation's write lock only — no
    /// shard lock is taken, so writes to other allocations of the same
    /// shard and all reads proceed concurrently.
    ///
    /// # Errors
    ///
    /// As [`BuddyDevice::write_entry`].
    pub fn write_entry(
        &self,
        id: PoolAllocId,
        index: u64,
        entry: &Entry,
    ) -> Result<EntryState, DeviceError> {
        self.handle_of(id)?.write_entry(id.inner, index, entry)
    }

    /// Writes a contiguous run of entries ([`DeviceHandle::write_entries`]
    /// semantics; the whole batch executes under the allocation's write
    /// lock, so it is atomic with respect to other writers of the same
    /// allocation — no shard lock is taken).
    ///
    /// # Errors
    ///
    /// As [`BuddyDevice::write_entries`].
    pub fn write_entries(
        &self,
        id: PoolAllocId,
        start: u64,
        entries: &[Entry],
    ) -> Result<(), DeviceError> {
        self.handle_of(id)?.write_entries(id.inner, start, entries)
    }

    /// [`write_entries`](Self::write_entries), additionally returning the
    /// traffic this batch generated
    /// ([`DeviceHandle::write_entries_collect`] semantics). The delta is
    /// the batch's own traffic, computed from the batch itself rather than
    /// sampled from shared counters, so it is exact even under
    /// concurrency — the basis for per-tenant attribution in the service
    /// layer.
    ///
    /// # Errors
    ///
    /// As [`BuddyDevice::write_entries`].
    pub fn write_entries_collect(
        &self,
        id: PoolAllocId,
        start: u64,
        entries: &[Entry],
    ) -> Result<AccessStats, DeviceError> {
        self.handle_of(id)?
            .write_entries_collect(id.inner, start, entries)
    }

    /// Reads one entry against the shard's current published epoch
    /// ([`DeviceHandle::read_entry`] semantics) — lock-free: no shard
    /// mutex is taken and no `shard_lock_wait` span fires.
    ///
    /// # Errors
    ///
    /// As [`BuddyDevice::read_entry`].
    pub fn read_entry(&self, id: PoolAllocId, index: u64) -> Result<Entry, DeviceError> {
        self.handle_of(id)?.read_entry(id.inner, index)
    }

    /// Reads a contiguous run of entries against one consistent published
    /// epoch ([`DeviceHandle::read_entries`] semantics) — lock-free. A
    /// batch racing a structural operation observes the old or the new
    /// epoch in full, never a blend.
    ///
    /// # Errors
    ///
    /// As [`BuddyDevice::read_entries`].
    pub fn read_entries(
        &self,
        id: PoolAllocId,
        start: u64,
        out: &mut [Entry],
    ) -> Result<(), DeviceError> {
        self.handle_of(id)?.read_entries(id.inner, start, out)
    }

    /// [`read_entries`](Self::read_entries), additionally returning the
    /// traffic this batch generated
    /// ([`DeviceHandle::read_entries_collect`] semantics); see
    /// [`write_entries_collect`](Self::write_entries_collect).
    ///
    /// # Errors
    ///
    /// As [`BuddyDevice::read_entries`].
    pub fn read_entries_collect(
        &self,
        id: PoolAllocId,
        start: u64,
        out: &mut [Entry],
    ) -> Result<AccessStats, DeviceError> {
        self.handle_of(id)?
            .read_entries_collect(id.inner, start, out)
    }

    /// [`read_entries_collect`](Self::read_entries_collect) forced through
    /// the shard mutex — the pre-snapshot code path, kept as the
    /// measurement baseline for the `pool-throughput` harness's
    /// locked-vs-snapshot comparison. Not part of the data-path API;
    /// production readers use the lock-free methods above.
    ///
    /// # Errors
    ///
    /// As [`BuddyDevice::read_entries`].
    pub fn read_entries_collect_locked(
        &self,
        id: PoolAllocId,
        start: u64,
        out: &mut [Entry],
    ) -> Result<AccessStats, DeviceError> {
        self.guard_of(id)?
            .read_entries_collect(id.inner, start, out)
    }

    /// Per-entry state without touching traffic counters — lock-free
    /// ([`DeviceHandle::entry_state`] semantics).
    ///
    /// # Errors
    ///
    /// As [`BuddyDevice::entry_state`].
    pub fn entry_state(&self, id: PoolAllocId, index: u64) -> Result<EntryState, DeviceError> {
        self.handle_of(id)?.entry_state(id.inner, index)
    }

    /// Migrates an allocation to a new target ratio
    /// ([`BuddyDevice::retarget`] semantics). The whole migration executes
    /// under the owning shard's lock: clients of the same shard are
    /// serialized past it and can never observe a half-migrated
    /// allocation, while other shards keep serving (DESIGN.md §8).
    ///
    /// # Errors
    ///
    /// As [`BuddyDevice::retarget`]; on error the shard is unchanged.
    pub fn retarget(
        &self,
        id: PoolAllocId,
        new_target: TargetRatio,
    ) -> Result<RetargetReport, DeviceError> {
        self.guard_of(id)?.retarget(id.inner, new_target)
    }

    /// Summarizes an allocation's live metadata states for the adaptive
    /// re-targeting policy ([`DeviceHandle::state_window`] semantics; a
    /// traffic-free metadata scan against one consistent published epoch,
    /// no shard lock).
    ///
    /// # Errors
    ///
    /// As [`BuddyDevice::state_window`].
    pub fn state_window(&self, id: PoolAllocId) -> Result<StateWindow, DeviceError> {
        self.handle_of(id)?.state_window(id.inner)
    }

    /// Name, target ratio and entry count of an allocation (name is cloned
    /// out of the shard's critical section).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadAllocation`] for foreign handles.
    pub fn allocation_info(
        &self,
        id: PoolAllocId,
    ) -> Result<(String, TargetRatio, u64), DeviceError> {
        let guard = self.guard_of(id)?;
        let (name, target, entries) = guard.allocation_info(id.inner)?;
        Ok((name.to_owned(), target, entries))
    }

    /// Pool-wide traffic counters: the merge of every shard's
    /// [`BuddyDevice::stats`]. Shards are sampled one at a time, so counts
    /// from operations racing this call may or may not be included — totals
    /// are exact once writers are quiescent (or after [`drain`](Self::drain)).
    pub fn stats(&self) -> AccessStats {
        let mut merged = AccessStats::default();
        for index in 0..self.shards.len() {
            merged.merge(&self.shard(index).stats());
        }
        merged
    }

    /// Clears every shard's traffic counters.
    pub fn reset_stats(&self) {
        for index in 0..self.shards.len() {
            self.shard(index).reset_stats();
        }
    }

    /// Barrier: waits for every in-flight operation to complete and returns
    /// a *consistent* merged stats snapshot.
    ///
    /// All shard locks are acquired (in index order — the only multi-lock
    /// path in the crate, so no deadlock) and held simultaneously, which
    /// fences out structural operations; then each shard waits for the
    /// lock-free snapshot readers and entry writers that were in flight
    /// when the locks landed ([`BuddyDevice::quiesce_handles`]). Any
    /// operation that began before `drain` was called has therefore
    /// finished, and no structural operation can start until the snapshot
    /// is taken. (Entry I/O arriving *after* the barrier may race the
    /// snapshot — as with any stats read, totals are exact once clients
    /// are quiescent.)
    pub fn drain(&self) -> AccessStats {
        let guards: Vec<MutexGuard<'_, BuddyDevice>> =
            (0..self.shards.len()).map(|i| self.shard(i)).collect();
        for guard in &guards {
            guard.quiesce_handles();
        }
        let mut merged = AccessStats::default();
        for guard in &guards {
            merged.merge(&guard.stats());
        }
        merged
    }

    /// Point-in-time occupancy of every shard, in shard order.
    pub fn occupancy(&self) -> Vec<ShardOccupancy> {
        (0..self.shards.len())
            .map(|index| {
                let guard = self.shard(index);
                ShardOccupancy {
                    shard: index,
                    allocations: guard.allocation_count(),
                    device_used: guard.device_used(),
                    device_capacity: guard.config().device_capacity,
                    buddy_used: guard.buddy_used(),
                    logical_bytes: guard.logical_bytes(),
                    effective_ratio: guard.effective_ratio(),
                    device_free: guard.device_free(),
                    largest_free_region: guard.largest_free_region(),
                    fragmentation: guard.fragmentation(),
                    stats: guard.stats(),
                }
            })
            .collect()
    }

    /// Uncompressed bytes represented by all allocations, pool-wide.
    pub fn logical_bytes(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.shard(i).logical_bytes())
            .sum()
    }

    /// Device bytes consumed across all shards.
    pub fn device_used(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.shard(i).device_used())
            .sum()
    }

    /// Buddy carve-out bytes reserved across all shards.
    pub fn buddy_used(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.shard(i).buddy_used())
            .sum()
    }

    /// Free device bytes across all shards.
    pub fn device_free(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.shard(i).device_free())
            .sum()
    }

    /// Largest contiguous free device region on any shard, in bytes.
    ///
    /// This is the largest single allocation the pool could host without
    /// coalescing — allocations never span shards, so the pool-level figure
    /// is the per-shard maximum, not a sum.
    pub fn largest_free_region(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.shard(i).largest_free_region())
            .max()
            .unwrap_or(0)
    }

    /// Pool-wide device free-space fragmentation in `[0, 1]`:
    /// `1 − largest_free_region / device_free` (0.0 when nothing is free).
    ///
    /// Mirrors [`BuddyDevice::fragmentation`] but over the pool: free bytes
    /// sum across shards while the largest placeable region does not, so a
    /// pool whose free space is spread evenly over many shards reports
    /// *higher* fragmentation than any single shard — which is exactly the
    /// placement reality a large request faces.
    pub fn fragmentation(&self) -> f64 {
        let free = self.device_free();
        if free == 0 {
            return 0.0;
        }
        1.0 - self.largest_free_region() as f64 / free as f64
    }

    /// Pool-wide effective compression ratio (logical bytes / device bytes
    /// used; 1.0 for an empty pool, matching
    /// [`BuddyDevice::effective_ratio`]).
    pub fn effective_ratio(&self) -> f64 {
        let mut logical = 0u64;
        let mut used = 0u64;
        for index in 0..self.shards.len() {
            let guard = self.shard(index);
            logical += guard.logical_bytes();
            used += guard.device_used();
        }
        if used == 0 {
            1.0
        } else {
            logical as f64 / used as f64
        }
    }
}

/// Deterministic shard routing hash: FNV-1a over the allocation name,
/// folded with the pool-wide allocation sequence number.
fn shard_hash(name: &str, seq: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    for b in seq.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pool(shards: usize) -> BuddyPool {
        BuddyPool::new(PoolConfig {
            shards,
            shard_config: DeviceConfig {
                device_capacity: 1 << 20,
                carve_out_factor: 3,
            },
            codec: CodecKind::Bpc,
        })
    }

    fn entry_of_words(mut f: impl FnMut(usize) -> u32) -> Entry {
        let mut e = [0u8; ENTRY_BYTES];
        for (i, c) in e.chunks_exact_mut(4).enumerate() {
            c.copy_from_slice(&f(i).to_le_bytes());
        }
        e
    }

    #[test]
    fn round_trips_across_shards() {
        let pool = small_pool(4);
        let entries: Vec<Entry> = (0..32)
            .map(|i| entry_of_words(|j| i * 131 + j as u32))
            .collect();
        let mut handles = Vec::new();
        for i in 0..8 {
            handles.push(pool.alloc(&format!("a{i}"), 32, TargetRatio::R2).unwrap());
        }
        for &h in &handles {
            pool.write_entries(h, 0, &entries).unwrap();
        }
        for &h in &handles {
            let mut out = vec![[0u8; ENTRY_BYTES]; 32];
            pool.read_entries(h, 0, &mut out).unwrap();
            assert_eq!(out, entries);
        }
    }

    #[test]
    fn allocations_spread_across_shards() {
        let pool = small_pool(4);
        for i in 0..32 {
            pool.alloc(&format!("alloc-{i}"), 64, TargetRatio::R2)
                .unwrap();
        }
        let occupied = pool
            .occupancy()
            .iter()
            .filter(|o| o.allocations > 0)
            .count();
        assert!(
            occupied >= 3,
            "32 hashed allocations should land on ≥3 of 4 shards, got {occupied}"
        );
    }

    #[test]
    fn full_home_shard_falls_back_to_a_neighbor() {
        // Shards fit exactly one 64-entry R1 allocation (64 × 128 B).
        let pool = BuddyPool::new(PoolConfig {
            shards: 4,
            shard_config: DeviceConfig {
                device_capacity: 64 * 128,
                carve_out_factor: 3,
            },
            codec: CodecKind::Bpc,
        });
        // Four same-sized allocations must all succeed (one per shard,
        // wherever they hash), and the fifth must fail pool-wide.
        for i in 0..4 {
            pool.alloc(&format!("fill{i}"), 64, TargetRatio::R1)
                .unwrap();
        }
        for o in pool.occupancy() {
            assert_eq!(o.allocations, 1, "shard {} must host exactly one", o.shard);
        }
        let err = pool.alloc("overflow", 64, TargetRatio::R1).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfDeviceMemory { .. }));
    }

    #[test]
    fn merged_stats_match_per_shard_sum() {
        let pool = small_pool(2);
        let a = pool.alloc("a", 16, TargetRatio::R2).unwrap();
        let b = pool.alloc("b", 16, TargetRatio::R2).unwrap();
        let data = [entry_of_words(|j| 7 + j as u32); 8];
        pool.write_entries(a, 0, &data).unwrap();
        pool.write_entries(b, 0, &data).unwrap();
        let mut out = [[0u8; ENTRY_BYTES]; 8];
        pool.read_entries(a, 0, &mut out).unwrap();
        let merged = pool.stats();
        let by_hand = pool
            .occupancy()
            .iter()
            .fold(AccessStats::default(), |mut acc, o| {
                acc.merge(&o.stats);
                acc
            });
        assert_eq!(merged, by_hand);
        assert_eq!(merged.total_accesses(), 24);
        assert_eq!(pool.drain(), merged, "drain sees the same totals");
    }

    #[test]
    fn concurrent_clients_round_trip_their_own_data() {
        let pool = small_pool(4);
        let handles: Vec<PoolAllocId> = (0..4)
            .map(|c| {
                pool.alloc(&format!("client{c}"), 256, TargetRatio::R2)
                    .unwrap()
            })
            .collect();
        std::thread::scope(|scope| {
            for (c, &h) in handles.iter().enumerate() {
                let pool = &pool;
                scope.spawn(move || {
                    for round in 0..16u32 {
                        let batch: Vec<Entry> = (0..32)
                            .map(|i| entry_of_words(|j| c as u32 * 1000 + round + i + j as u32))
                            .collect();
                        pool.write_entries(h, (round as u64 * 16) % 224, &batch)
                            .unwrap();
                        let mut out = vec![[0u8; ENTRY_BYTES]; 32];
                        pool.read_entries(h, (round as u64 * 16) % 224, &mut out)
                            .unwrap();
                        // The client owns its allocation exclusively, so
                        // read-after-write must return its own bytes even
                        // under cross-client concurrency.
                        assert_eq!(out, batch, "client {c} round {round}");
                    }
                });
            }
        });
        let stats = pool.drain();
        assert_eq!(stats.total_accesses(), 4 * 16 * 32 * 2);
    }

    #[test]
    fn empty_pool_reports_neutral_aggregates() {
        let pool = small_pool(3);
        assert_eq!(pool.effective_ratio(), 1.0);
        assert_eq!(pool.logical_bytes(), 0);
        assert_eq!(pool.device_used(), 0);
        assert_eq!(pool.buddy_used(), 0);
        assert_eq!(pool.stats(), AccessStats::default());
        for o in pool.occupancy() {
            assert_eq!(o.allocations, 0);
            assert_eq!(o.effective_ratio, 1.0);
        }
    }

    #[test]
    fn foreign_handles_are_rejected() {
        let big = small_pool(4);
        let small = small_pool(1);
        let h = big.alloc("x", 16, TargetRatio::R2).unwrap();
        if h.shard() >= small.shard_count() {
            assert!(matches!(
                small.read_entry(h, 0),
                Err(DeviceError::BadAllocation)
            ));
        }
        // Out-of-range entry index reports through unchanged.
        assert!(matches!(
            big.read_entry(h, 16),
            Err(DeviceError::BadIndex { .. })
        ));
    }

    #[test]
    fn reset_stats_clears_every_shard() {
        let pool = small_pool(2);
        let a = pool.alloc("a", 8, TargetRatio::R2).unwrap();
        pool.write_entries(a, 0, &[[1u8; ENTRY_BYTES]; 8]).unwrap();
        assert!(pool.stats().total_accesses() > 0);
        pool.reset_stats();
        assert_eq!(pool.stats(), AccessStats::default());
    }

    #[test]
    fn retarget_round_trips_under_the_shard_lock() {
        let pool = small_pool(2);
        let a = pool.alloc("drift", 64, TargetRatio::R2).unwrap();
        let entries: Vec<Entry> = (0..64)
            .map(|i| entry_of_words(|j| 77 + i * 19 + j as u32))
            .collect();
        pool.write_entries(a, 0, &entries).unwrap();
        let report = pool.retarget(a, TargetRatio::R4).unwrap();
        assert_eq!(report.old_target, TargetRatio::R2);
        assert_eq!(report.new_target, TargetRatio::R4);
        let mut out = vec![[0u8; ENTRY_BYTES]; 64];
        pool.read_entries(a, 0, &mut out).unwrap();
        assert_eq!(out, entries, "migration must preserve bytes");
        assert_eq!(pool.stats().retargets, 1);
        assert!(pool.stats().moved_sectors > 0);
        let (_, target, _) = pool.allocation_info(a).unwrap();
        assert_eq!(target, TargetRatio::R4);
        // The window the policy would consume is served the same way.
        assert_eq!(pool.state_window(a).unwrap().total(), 64);
    }

    #[test]
    fn retarget_rejects_foreign_handles() {
        let big = small_pool(4);
        let small = small_pool(1);
        let h = big.alloc("x", 16, TargetRatio::R2).unwrap();
        if h.shard() >= small.shard_count() {
            assert_eq!(
                small.retarget(h, TargetRatio::R4),
                Err(DeviceError::BadAllocation)
            );
            assert_eq!(small.state_window(h), Err(DeviceError::BadAllocation));
        }
    }

    #[test]
    fn free_reclaims_shard_capacity_and_kills_the_handle() {
        // Shards fit exactly one 64-entry R1 allocation.
        let pool = BuddyPool::new(PoolConfig {
            shards: 2,
            shard_config: DeviceConfig {
                device_capacity: 64 * 128,
                carve_out_factor: 3,
            },
            codec: CodecKind::Bpc,
        });
        let ids: Vec<PoolAllocId> = (0..2)
            .map(|i| {
                pool.alloc(&format!("fill{i}"), 64, TargetRatio::R1)
                    .unwrap()
            })
            .collect();
        assert!(pool.alloc("extra", 64, TargetRatio::R1).is_err());
        pool.write_entry(ids[0], 0, &[9u8; ENTRY_BYTES]).unwrap();
        pool.free(ids[0]).unwrap();
        assert_eq!(pool.device_used(), 64 * 128, "one shard's worth released");
        // The stale handle is dead on every path, even after the slot is
        // reused by the replacement allocation.
        let replacement = pool.alloc("again", 64, TargetRatio::R1).unwrap();
        assert_eq!(pool.read_entry(ids[0], 0), Err(DeviceError::BadAllocation));
        assert_eq!(
            pool.retarget(ids[0], TargetRatio::R2),
            Err(DeviceError::BadAllocation)
        );
        assert_eq!(pool.free(ids[0]), Err(DeviceError::BadAllocation));
        // The recycled storage reads as zero, not the freed bytes.
        assert_eq!(pool.read_entry(replacement, 0).unwrap(), [0u8; ENTRY_BYTES]);
    }

    #[test]
    fn exhausted_pool_reports_the_home_shards_error() {
        // Two shards; the fill pattern leaves them with *different* free
        // space (one full, one with 32 entries spare), so the error a
        // failing alloc reports identifies which shard produced it. The
        // ring probe must try every shard and then surface the *home*
        // shard's error — over many names both shards' errors must appear,
        // proving the error is not pinned to shard 0 (or to the last shard
        // probed).
        let pool = BuddyPool::new(PoolConfig {
            shards: 2,
            shard_config: DeviceConfig {
                device_capacity: 64 * 128,
                carve_out_factor: 3,
            },
            codec: CodecKind::Bpc,
        });
        pool.alloc("first", 64, TargetRatio::R1).unwrap();
        pool.alloc("second", 32, TargetRatio::R1).unwrap();
        let spare: Vec<u64> = pool
            .occupancy()
            .iter()
            .map(|o| o.device_capacity - o.device_used)
            .collect();
        assert!(spare.contains(&0) && spare.contains(&(32 * 128)));

        let mut seen = std::collections::HashSet::new();
        for i in 0..16 {
            let err = pool
                .alloc(&format!("probe{i}"), 64, TargetRatio::R1)
                .unwrap_err();
            match err {
                DeviceError::OutOfDeviceMemory {
                    requested,
                    available,
                } => {
                    assert_eq!(requested, 64 * 128);
                    assert!(
                        available == 0 || available == 32 * 128,
                        "available {available} matches neither shard"
                    );
                    seen.insert(available);
                }
                other => panic!("expected OutOfDeviceMemory, got {other:?}"),
            }
        }
        assert_eq!(
            seen.len(),
            2,
            "both shards' errors must surface as the home shard rotates"
        );
        // Failed probes leak nothing.
        let total: usize = pool.occupancy().iter().map(|o| o.allocations).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn zero_entry_allocations_are_rejected_without_probing() {
        let pool = small_pool(3);
        assert_eq!(
            pool.alloc("empty", 0, TargetRatio::R2),
            Err(DeviceError::EmptyAllocation)
        );
        for o in pool.occupancy() {
            assert_eq!(o.allocations, 0, "no shard may host a zero-entry alloc");
        }
        assert_eq!(
            pool.alloc_shard_probes(),
            0,
            "a zero-entry request is rejected before any shard is locked"
        );
    }

    #[test]
    fn non_capacity_alloc_error_touches_exactly_one_shard() {
        let pool = small_pool(4);
        // entries × 128 B overflows u64, so the home shard answers
        // RequestOverflow — a property of the request, not of any shard.
        let err = pool
            .alloc("absurd", u64::MAX / 4, TargetRatio::R1)
            .unwrap_err();
        assert_eq!(err, DeviceError::RequestOverflow);
        assert!(!err.is_capacity());
        assert_eq!(
            pool.alloc_shard_probes(),
            1,
            "a non-capacity error must surface from the home shard alone, \
             not walk (and lock) the whole shard ring"
        );
        // A capacity failure, by contrast, probes every shard once.
        let exhausted = BuddyPool::new(PoolConfig {
            shards: 4,
            shard_config: DeviceConfig {
                device_capacity: 64 * 128,
                carve_out_factor: 3,
            },
            codec: CodecKind::Bpc,
        });
        assert!(exhausted
            .alloc("too-big", 128, TargetRatio::R1)
            .unwrap_err()
            .is_capacity());
        assert_eq!(
            exhausted.alloc_shard_probes(),
            4,
            "capacity exhaustion probes the full ring before reporting"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        BuddyPool::new(PoolConfig {
            shards: 0,
            ..PoolConfig::default()
        });
    }
}
