//! Allocation specifications: how a benchmark's `cudaMalloc` regions are
//! laid out, what data they hold, and how that data evolves over time.
//!
//! The paper observes (Figure 6) that compressibility is spatially
//! structured — HPC benchmarks have large homogeneous regions whose
//! boundaries coincide with `cudaMalloc` boundaries, FF_HPGMG shows stripes
//! caused by arrays of heterogeneous structs, and DL workloads are speckled
//! because frameworks reuse pooled memory. [`SpatialPattern`] reproduces
//! those three shapes. [`TemporalDrift`] reproduces the paper's two temporal
//! observations: 355.seismic starts mostly-zero and asymptotes to 2×
//! (§3.1), and DL entries churn individually while the aggregate ratio stays
//! flat (Figure 8).

use crate::entry_gen::{mix, unit_from_hash, EntryClass, MixtureProfile};
use bpc::Entry;

/// Spatial arrangement of mixture components within an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpatialPattern {
    /// Mixture components occupy contiguous block-sized runs (HPC style:
    /// large mostly-red or mostly-blue regions).
    Blocked {
        /// Run length in 128 B entries (a paper page of 8 KB is 64 entries).
        run_entries: u64,
    },
    /// Every entry draws independently from the mixture (DL style).
    Speckled,
    /// Components repeat in fixed-width stripes (FF_HPGMG struct-array
    /// style); weights define relative stripe widths within the period.
    Striped {
        /// Stripe period in entries.
        period: u64,
    },
}

/// How an allocation's data changes across the run (10 snapshot phases).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TemporalDrift {
    /// Data is written once and stays put.
    Stable,
    /// A fraction of entries is zero, interpolating linearly from
    /// `start_zero` at phase 0 to `end_zero` at phase 1 (355.seismic).
    ZeroFill {
        /// Zero fraction at the start of the run.
        start_zero: f64,
        /// Zero fraction at the end of the run.
        end_zero: f64,
    },
    /// Each snapshot re-randomizes a `rate` fraction of entries (DL memory
    /// pools). The per-entry class changes; the aggregate mixture does not.
    Churn {
        /// Fraction of entries re-drawn per snapshot phase.
        rate: f64,
    },
}

/// One `cudaMalloc`-style allocation inside a benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationSpec {
    /// Human-readable name (e.g. `"weights_conv"`).
    pub name: &'static str,
    /// Fraction of the benchmark footprint this allocation occupies.
    pub footprint_frac: f64,
    /// Data content as a mixture of entry classes.
    pub profile: MixtureProfile,
    /// Spatial arrangement of the mixture.
    pub pattern: SpatialPattern,
    /// Temporal evolution of the data.
    pub drift: TemporalDrift,
}

impl AllocationSpec {
    /// Convenience constructor for a stable, speckled allocation.
    pub fn speckled(name: &'static str, footprint_frac: f64, profile: MixtureProfile) -> Self {
        Self {
            name,
            footprint_frac,
            profile,
            pattern: SpatialPattern::Speckled,
            drift: TemporalDrift::Stable,
        }
    }

    /// Convenience constructor for a stable, blocked allocation with the
    /// paper's 8 KB-page-scale homogeneity (runs of 16 pages).
    pub fn blocked(name: &'static str, footprint_frac: f64, profile: MixtureProfile) -> Self {
        Self {
            name,
            footprint_frac,
            profile,
            pattern: SpatialPattern::Blocked { run_entries: 1024 },
            drift: TemporalDrift::Stable,
        }
    }

    /// Resolves which entry class governs `entry_index` at `phase ∈ [0, 1]`.
    ///
    /// This is the heart of snapshot generation: deterministic in
    /// `(seed, entry_index, phase bucket)`, so snapshots can be sampled
    /// without materializing the allocation.
    pub fn class_at(&self, seed: u64, entry_index: u64, phase: f64) -> EntryClass {
        // Temporal override: ZeroFill forces a phase-dependent zero set.
        if let TemporalDrift::ZeroFill {
            start_zero,
            end_zero,
        } = self.drift
        {
            let zero_frac = start_zero + (end_zero - start_zero) * phase.clamp(0.0, 1.0);
            // Use a stable per-entry draw so entries fill in (or zero out)
            // progressively rather than re-shuffling every phase.
            let u = unit_from_hash(mix(&[seed, entry_index, ZERO_TAG]));
            if u < zero_frac {
                return EntryClass::Zero;
            }
        }
        let spatial_u = match self.pattern {
            SpatialPattern::Speckled => unit_from_hash(mix(&[seed, entry_index])),
            SpatialPattern::Blocked { run_entries } => {
                let run = entry_index / run_entries.max(1);
                unit_from_hash(mix(&[seed, run]))
            }
            SpatialPattern::Striped { period } => {
                let p = period.max(1);
                (entry_index % p) as f64 / p as f64
            }
        };
        self.profile.pick(spatial_u)
    }

    /// Generates the bytes of `entry_index` at `phase`.
    ///
    /// Under [`TemporalDrift::Churn`], a `rate` fraction of entries derive
    /// their value seed from the snapshot bucket, so their content (and
    /// class, for speckled patterns) changes between snapshots.
    pub fn entry_at(&self, seed: u64, entry_index: u64, phase: f64) -> Entry {
        let bucket = (phase.clamp(0.0, 1.0) * 10.0).round() as u64;
        let churned = match self.drift {
            TemporalDrift::Churn { rate } => {
                unit_from_hash(mix(&[seed, entry_index, CHURN_TAG])) < rate
            }
            _ => false,
        };
        let class = if churned {
            // Churned entries re-draw their class each snapshot from the
            // same mixture (per-entry change, stable aggregate).
            let u = unit_from_hash(mix(&[seed, entry_index, bucket, 1]));
            self.profile.pick(u)
        } else {
            self.class_at(seed, entry_index, phase)
        };
        let value_seed = if churned {
            mix(&[seed, entry_index, bucket, 2])
        } else {
            mix(&[seed, entry_index, 3])
        };
        class.generate(value_seed)
    }
}

/// Domain-separation tags so the zero-fill draw, churn draw and value seeds
/// never collide in the hash space.
const ZERO_TAG: u64 = 0x5A45_524F;
const CHURN_TAG: u64 = 0xC4A1_1C4A;

#[cfg(test)]
mod tests {
    use super::*;
    use bpc::SizeClass;

    fn profile() -> MixtureProfile {
        MixtureProfile::from_class_weights(&[(SizeClass::B32, 0.5), (SizeClass::B128, 0.5)])
    }

    #[test]
    fn speckled_is_deterministic() {
        let spec = AllocationSpec::speckled("a", 1.0, profile());
        assert_eq!(spec.entry_at(7, 123, 0.0), spec.entry_at(7, 123, 0.0));
    }

    #[test]
    fn blocked_runs_share_class() {
        let spec = AllocationSpec {
            name: "b",
            footprint_frac: 1.0,
            profile: profile(),
            pattern: SpatialPattern::Blocked { run_entries: 64 },
            drift: TemporalDrift::Stable,
        };
        let c0 = spec.class_at(1, 0, 0.0);
        for i in 1..64 {
            assert_eq!(spec.class_at(1, i, 0.0), c0, "entry {i} left its run");
        }
    }

    #[test]
    fn striped_repeats_with_period() {
        let spec = AllocationSpec {
            name: "s",
            footprint_frac: 1.0,
            profile: profile(),
            pattern: SpatialPattern::Striped { period: 4 },
            drift: TemporalDrift::Stable,
        };
        for i in 0..32 {
            assert_eq!(spec.class_at(9, i, 0.0), spec.class_at(9, i + 4, 0.0));
        }
        // First half of the period is the first component.
        assert_eq!(
            spec.class_at(9, 0, 0.0),
            EntryClass::for_target(SizeClass::B32)
        );
        assert_eq!(spec.class_at(9, 3, 0.0), EntryClass::Random);
    }

    #[test]
    fn zero_fill_interpolates() {
        let spec = AllocationSpec {
            name: "z",
            footprint_frac: 1.0,
            profile: MixtureProfile::from_class_weights(&[(SizeClass::B64, 1.0)]),
            pattern: SpatialPattern::Speckled,
            drift: TemporalDrift::ZeroFill {
                start_zero: 0.9,
                end_zero: 0.1,
            },
        };
        let count_zero = |phase: f64| {
            (0..2000)
                .filter(|&i| spec.class_at(5, i, phase) == EntryClass::Zero)
                .count()
        };
        let early = count_zero(0.0);
        let late = count_zero(1.0);
        assert!(early > 1600, "expected ~90% zeros early, got {early}/2000");
        assert!(late < 400, "expected ~10% zeros late, got {late}/2000");
    }

    #[test]
    fn zero_fill_is_progressive_not_reshuffled() {
        let spec = AllocationSpec {
            name: "z",
            footprint_frac: 1.0,
            profile: MixtureProfile::from_class_weights(&[(SizeClass::B64, 1.0)]),
            pattern: SpatialPattern::Speckled,
            drift: TemporalDrift::ZeroFill {
                start_zero: 1.0,
                end_zero: 0.0,
            },
        };
        // An entry that is non-zero at phase p must stay non-zero at all
        // later phases (monotone fill-in).
        for i in 0..200u64 {
            let mut was_nonzero = false;
            for step in 0..=10 {
                let phase = step as f64 / 10.0;
                let nonzero = spec.class_at(5, i, phase) != EntryClass::Zero;
                if was_nonzero {
                    assert!(nonzero, "entry {i} reverted to zero at phase {phase}");
                }
                was_nonzero |= nonzero;
            }
        }
    }

    #[test]
    fn churn_changes_some_entries_between_snapshots() {
        let spec = AllocationSpec {
            name: "c",
            footprint_frac: 1.0,
            profile: profile(),
            pattern: SpatialPattern::Speckled,
            drift: TemporalDrift::Churn { rate: 0.5 },
        };
        let changed = (0..500)
            .filter(|&i| spec.entry_at(11, i, 0.0) != spec.entry_at(11, i, 1.0))
            .count();
        assert!(
            changed > 150,
            "churn should alter a sizable fraction: {changed}/500"
        );
        assert!(
            changed < 400,
            "churn should not alter everything: {changed}/500"
        );
    }

    #[test]
    fn stable_entries_do_not_change() {
        let spec = AllocationSpec::speckled("st", 1.0, profile());
        for i in 0..100 {
            assert_eq!(spec.entry_at(3, i, 0.0), spec.entry_at(3, i, 1.0));
        }
    }
}
