//! Multi-tenant service figures: the open-loop overload knee and quota
//! enforcement under a noisy neighbour (the `tenancy` binary), plus the
//! per-tenant telemetry ledger (the `service-report` binary).
//!
//! The tenancy sweep runs three phases against [`buddy_service`]:
//!
//! 1. **Calibrate** — one tenant offered a saturating arrival rate; its
//!    achieved completion rate is this machine's service capacity, making
//!    the rest of the sweep machine-independent.
//! 2. **Overload** — two symmetric tenants offered `ratio × capacity` in
//!    aggregate, sweeping the ratio across the knee. Below 1.0 the p99
//!    queueing delay sits near the timer floor; past 1.0 it rises
//!    superlinearly and shed load appears — the open-loop signature a
//!    closed-loop harness cannot show.
//! 3. **Quota** — a well-behaved victim shares the service with a noisy
//!    neighbour whose quota is deliberately too small for its demand,
//!    once per [`AdmissionPolicy`]. The neighbour's overage is rejected
//!    (or demoted down the target ladder); the victim's grants, effective
//!    compression ratio and queueing delay are compared against an
//!    isolated baseline run of the same victim plan.
//!
//! [`buddy_service`]: buddy_compression::buddy_service

use crate::obsfig::{append_breakdown, breakdown_row, MetricsEmitter};
use crate::report::{f3, pct, print_table, write_csv, RunConfig};
use buddy_compression::buddy_obs::trace;
use buddy_compression::buddy_service::loadgen::{
    run, OpenLoopConfig, OpenLoopReport, TenantPlan, TenantReport,
};
use buddy_compression::buddy_service::{
    AdmissionPolicy, BuddyService, DeviceConfig, PoolConfig, ServiceError, TargetRatio, ENTRY_BYTES,
};
use std::io;

/// Pool sizing for every scenario: ample for the working sets involved, so
/// overload manifests as queueing and quota pressure — never as pool
/// capacity exhaustion muddying the attribution.
fn pool(cfg: &RunConfig) -> PoolConfig {
    PoolConfig {
        shards: 2,
        shard_config: DeviceConfig {
            device_capacity: 4 << 20,
            carve_out_factor: 3,
        },
        codec: cfg.codec,
    }
}

fn open_loop(cfg: &RunConfig, tenants: Vec<TenantPlan>) -> OpenLoopConfig {
    OpenLoopConfig {
        pool: pool(cfg),
        tenants,
        queue_depth: 64,
        batch_entries: 16,
        seed: cfg.seed,
    }
}

/// Phase 1: measure this machine's service capacity (completed ops/s of a
/// single tenant offered a rate far past anything it can sustain).
pub fn calibrate_capacity(cfg: &RunConfig) -> (f64, TenantReport) {
    let ops = if cfg.quick { 2_000 } else { 10_000 };
    let plan = TenantPlan::new("calibrate", 50_000_000.0, ops);
    let report = run(&open_loop(cfg, vec![plan]));
    let t = report.tenants[0].clone();
    // Floor the capacity so a degenerate measurement cannot zero out the
    // overload phase's offered rates.
    (t.achieved_per_sec.max(10_000.0), t)
}

/// Offered-load ratios swept in phase 2 (the knee is at 1.0).
fn overload_ratios(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.5, 1.0, 2.0, 4.0]
    } else {
        vec![0.25, 0.5, 1.0, 2.0, 4.0]
    }
}

/// One CSV row of the tenancy sweep.
struct Row {
    phase: &'static str,
    scenario: String,
    tenant: String,
    policy: &'static str,
    offered_ratio: f64,
    rate_per_sec: f64,
    report: TenantReport,
}

fn policy_name(policy: AdmissionPolicy) -> &'static str {
    match policy {
        AdmissionPolicy::Reject => "reject",
        AdmissionPolicy::Demote => "demote",
    }
}

fn rows_of(
    phase: &'static str,
    scenario: &str,
    offered_ratio: f64,
    plans: &[TenantPlan],
    report: &OpenLoopReport,
) -> Vec<Row> {
    plans
        .iter()
        .zip(report.tenants.iter())
        .map(|(plan, t)| Row {
            phase,
            scenario: scenario.to_string(),
            tenant: t.name.clone(),
            policy: policy_name(plan.policy),
            offered_ratio,
            rate_per_sec: plan.rate_per_sec,
            report: t.clone(),
        })
        .collect()
}

/// The victim plan of the quota phase: modest fixed rate (its queueing
/// delay should be timer-dominated with or without a neighbour), ample
/// quota, R2 target.
fn victim_plan(ops: u64) -> TenantPlan {
    let mut plan = TenantPlan::new("victim", 2_000.0, ops);
    plan.quota_bytes = u64::MAX;
    plan
}

/// The noisy neighbour: wants its whole working set at R1 (the largest
/// per-entry reservation) but holds quota for only part of it, at a high
/// arrival rate. Under `Reject` the overage bounces; under `Demote` it is
/// pushed down the target ladder.
fn noisy_plan(ops: u64, policy: AdmissionPolicy) -> TenantPlan {
    let mut plan = TenantPlan::new("noisy", 20_000.0, ops);
    plan.policy = policy;
    plan.target = TargetRatio::R1;
    let alloc_bytes = plan.entries_per_alloc * TargetRatio::R1.device_bytes_per_entry() as u64;
    // 4.5 allocations' worth: four grants at full price, then the ladder
    // decides (reject, or demote into the half-slot of headroom).
    plan.quota_bytes = 4 * alloc_bytes + alloc_bytes / 2;
    plan
}

/// Runs the full tenancy sweep and writes `results/tenancy.csv` (the
/// `tenancy` binary; also part of `reproduce-all`).
pub fn tenancy(cfg: &RunConfig) -> io::Result<()> {
    let emitter = MetricsEmitter::start(cfg);
    let offered_counter = emitter.registry().counter(
        "tenancy_offered_total",
        "arrivals offered across all phases",
    );
    let completed_counter = emitter.registry().counter(
        "tenancy_completed_total",
        "arrivals completed across all phases",
    );
    let shed_counter = emitter
        .registry()
        .counter("tenancy_shed_total", "arrivals shed across all phases");
    let capacity_gauge = emitter.registry().gauge(
        "tenancy_capacity_ops_per_sec",
        "calibrated single-tenant service capacity",
    );
    let span_before = trace::totals();
    let mut rows: Vec<Row> = Vec::new();

    // Phase 1: capacity calibration.
    let (capacity, calibration) = calibrate_capacity(cfg);
    rows.push(Row {
        phase: "capacity",
        scenario: "saturate".to_string(),
        tenant: calibration.name.clone(),
        policy: "reject",
        offered_ratio: 0.0,
        rate_per_sec: capacity,
        report: calibration,
    });

    // Phase 2: open-loop overload sweep, two symmetric tenants.
    let ops = if cfg.quick { 600 } else { 3_000 };
    let mut knee: Vec<(f64, f64, f64)> = Vec::new();
    for &ratio in &overload_ratios(cfg.quick) {
        let per_tenant_rate = (ratio * capacity / 2.0).max(100.0);
        let plans = vec![
            TenantPlan::new("tenant-a", per_tenant_rate, ops),
            TenantPlan::new("tenant-b", per_tenant_rate, ops),
        ];
        let report = run(&open_loop(cfg, plans.clone()));
        let p99 = report
            .tenants
            .iter()
            .map(|t| t.queue_delay.p99_us)
            .fold(0.0, f64::max);
        let shed = report.shed() as f64 / report.offered().max(1) as f64;
        knee.push((ratio, p99, shed));
        rows.extend(rows_of(
            "overload",
            &format!("ratio_{ratio:.2}"),
            ratio,
            &plans,
            &report,
        ));
    }

    // Phase 3: quota enforcement, per policy, with an isolated baseline.
    let quota_ops = if cfg.quick { 400 } else { 1_500 };
    let mut enforcement: Vec<(String, TenantReport, TenantReport, TenantReport)> = Vec::new();
    for policy in [AdmissionPolicy::Reject, AdmissionPolicy::Demote] {
        let name = policy_name(policy);
        let baseline_plans = vec![victim_plan(quota_ops)];
        let baseline = run(&open_loop(cfg, baseline_plans.clone()));
        rows.extend(rows_of(
            "quota",
            &format!("{name}_baseline"),
            0.0,
            &baseline_plans,
            &baseline,
        ));
        let contended_plans = vec![victim_plan(quota_ops), noisy_plan(quota_ops, policy)];
        let contended = run(&open_loop(cfg, contended_plans.clone()));
        rows.extend(rows_of("quota", name, 0.0, &contended_plans, &contended));
        enforcement.push((
            name.to_string(),
            baseline.tenants[0].clone(),
            contended.tenants[0].clone(),
            contended.tenants[1].clone(),
        ));
    }

    // Report.
    let header = [
        "phase",
        "scenario",
        "tenant",
        "policy",
        "offered_ratio",
        "rate_per_sec",
        "offered",
        "completed",
        "shed",
        "shed_frac",
        "rejected",
        "demoted",
        "queue_p50_us",
        "queue_p99_us",
        "svc_p50_us",
        "achieved_per_sec",
        "effective_ratio",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let t = &row.report;
            vec![
                row.phase.to_string(),
                row.scenario.clone(),
                row.tenant.clone(),
                row.policy.to_string(),
                f3(row.offered_ratio),
                format!("{:.0}", row.rate_per_sec),
                t.offered.to_string(),
                t.completed.to_string(),
                t.shed.to_string(),
                f3(t.shed_fraction()),
                t.rejected.to_string(),
                t.demoted.to_string(),
                f3(t.queue_delay.p50_us),
                f3(t.queue_delay.p99_us),
                f3(t.service_time.p50_us),
                format!("{:.0}", t.achieved_per_sec),
                f3(t.effective_ratio()),
            ]
        })
        .collect();
    print_table(
        "Tenancy: open-loop overload knee and quota enforcement",
        &header,
        &table,
    );
    println!("  calibrated capacity: {capacity:.0} ops/s");
    for (ratio, p99, shed) in &knee {
        println!(
            "  offered {ratio:.2}x capacity -> p99 queue delay {p99:.0} us, shed {}",
            pct(*shed)
        );
    }
    for (name, baseline, victim, noisy) in &enforcement {
        println!(
            "  {name}: noisy neighbour rejected {} / demoted {} of {} arrivals; victim \
             effective ratio {:.3} (baseline {:.3}), p50 queue delay {:.0} us (baseline {:.0} us)",
            noisy.rejected,
            noisy.demoted,
            noisy.offered,
            victim.effective_ratio(),
            baseline.effective_ratio(),
            victim.queue_delay.p50_us,
            baseline.queue_delay.p50_us,
        );
    }

    let path = write_csv(&cfg.results_dir, &cfg.tagged("tenancy"), &header, &table)?;
    println!("  wrote {path:?}");

    // One breakdown row for the whole sweep (appended after
    // pool-throughput's truncate-write in a reproduce-all run): the sweep
    // multiplexes phases over the same 2-shard pool, so per-phase span
    // deltas would mostly re-measure the timer floor. queue_wait is the
    // column this source uniquely exercises.
    capacity_gauge.set(capacity as u64);
    for row in &rows {
        offered_counter.add(row.report.offered);
        completed_counter.add(row.report.completed);
        shed_counter.add(row.report.shed);
    }
    let span_delta = trace::totals().since(&span_before);
    let breakdown = vec![breakdown_row(
        "tenancy",
        &cfg.codec.to_string(),
        2,
        2,
        &span_delta,
    )];
    append_breakdown(cfg, &breakdown)?;
    if let Some((prom, csv)) = emitter.finish()? {
        println!("  metrics -> {prom:?} and {csv:?}");
    }
    Ok(())
}

/// Scripted mixed-tenant scenario behind the `service-report` binary: the
/// telemetry registry must account for every alloc, free, rejection,
/// demotion, transfer and denial the script performs.
pub fn service_report(cfg: &RunConfig) -> io::Result<()> {
    let service = BuddyService::new(pool(cfg));
    let roomy = 512 * 1024;
    let alpha = service
        .register_tenant("alpha", roomy, AdmissionPolicy::Reject)
        .map_err(other)?;
    // Bravo's quota fits eight full-price R1.33 grants plus exactly one
    // more rung down at R2 — so the ninth admission demotes, the rest of
    // its demand rejects.
    let bravo_quota = 64
        * (8 * TargetRatio::R1_33.device_bytes_per_entry() as u64
            + TargetRatio::R2.device_bytes_per_entry() as u64);
    let bravo = service
        .register_tenant("bravo", bravo_quota, AdmissionPolicy::Demote)
        .map_err(other)?;
    let mallory = service
        .register_tenant("mallory", 4 * 1024, AdmissionPolicy::Reject)
        .map_err(other)?;

    // Alpha: steady well-behaved traffic.
    let mut alpha_ids = Vec::new();
    let batch = vec![[0x2Du8; ENTRY_BYTES]; 16];
    for i in 0..8 {
        let grant = service
            .alloc(alpha, &format!("alpha-{i}"), 64, TargetRatio::R2)
            .map_err(other)?;
        service
            .write_entries(alpha, grant.id, 0, &batch)
            .map_err(other)?;
        alpha_ids.push(grant.id);
    }
    let mut out = vec![[0u8; ENTRY_BYTES]; 16];
    service
        .read_entries(alpha, alpha_ids[0], 0, &mut out)
        .map_err(other)?;
    if let Some(id) = alpha_ids.pop() {
        service.free(alpha, id).map_err(other)?;
    }

    // Bravo: asks for more reservation than its quota affords — the
    // demote ladder kicks in partway through.
    let mut bravo_ids = Vec::new();
    for i in 0..12 {
        if let Ok(grant) = service.alloc(bravo, &format!("bravo-{i}"), 64, TargetRatio::R1_33) {
            bravo_ids.push(grant.id);
        }
    }

    // Mallory: blows through a tiny quota, then pokes at alpha's handle.
    for i in 0..6 {
        let _ = service.alloc(mallory, &format!("m-{i}"), 64, TargetRatio::R2);
    }
    assert!(matches!(
        service.free(mallory, alpha_ids[0]),
        Err(ServiceError::CrossTenant { .. })
    ));
    assert!(matches!(
        service.read_entries(mallory, alpha_ids[0], 0, &mut out),
        Err(ServiceError::CrossTenant { .. })
    ));

    // Bravo frees one full-price grant to make room, then alpha donates
    // an allocation to it (the transfer re-charges bravo's quota).
    if let Some(id) = bravo_ids.pop() {
        service.free(bravo, id).map_err(other)?;
    }
    if let Some(donated) = alpha_ids.pop() {
        service.transfer(alpha, donated, bravo).map_err(other)?;
    }

    let header = [
        "tenant",
        "allocs",
        "frees",
        "rejections",
        "demotions",
        "transfers",
        "cross_tenant_denials",
        "used_kb",
        "quota_kb",
        "headroom_kb",
        "logical_kb",
        "live_allocations",
        "effective_ratio",
        "accesses",
        "buddy_access_frac",
    ];
    let kb = |b: u64| f3(b as f64 / 1024.0);
    let rows: Vec<Vec<String>> = service
        .telemetry()
        .snapshot()
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.allocs.to_string(),
                r.frees.to_string(),
                r.rejections.to_string(),
                r.demotions.to_string(),
                r.transfers.to_string(),
                r.cross_tenant_denials.to_string(),
                kb(r.used_bytes),
                if r.quota_bytes == u64::MAX {
                    "inf".to_string()
                } else {
                    kb(r.quota_bytes)
                },
                kb(r.quota_headroom),
                kb(r.logical_bytes),
                r.allocations.to_string(),
                f3(r.effective_ratio()),
                r.stats.total_accesses().to_string(),
                pct(r.stats.buddy_access_fraction()),
            ]
        })
        .collect();
    print_table(
        "Service report: per-tenant telemetry ledger",
        &header,
        &rows,
    );
    let path = write_csv(
        &cfg.results_dir,
        &cfg.tagged("service_report"),
        &header,
        &rows,
    )?;
    println!("  wrote {path:?}");
    Ok(())
}

fn other(e: ServiceError) -> io::Error {
    io::Error::other(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(dir: &str) -> RunConfig {
        RunConfig {
            quick: true,
            results_dir: std::env::temp_dir().join(dir),
            ..RunConfig::default()
        }
    }

    #[test]
    fn calibration_reports_a_positive_capacity() {
        let mut cfg = quick_cfg("tenantfig-calibrate");
        cfg.quick = true;
        let (capacity, report) = calibrate_capacity(&cfg);
        assert!(capacity >= 10_000.0);
        assert_eq!(report.offered, 2_000);
        assert_eq!(report.completed + report.shed, report.offered);
    }

    #[test]
    fn noisy_plan_quota_forces_enforcement() {
        // The plan's quota must sit strictly between 4 and 5 R1
        // allocations so the fifth admission is the enforcement point.
        let plan = noisy_plan(100, AdmissionPolicy::Demote);
        let alloc = plan.entries_per_alloc * TargetRatio::R1.device_bytes_per_entry() as u64;
        assert!(plan.quota_bytes > 4 * alloc && plan.quota_bytes < 5 * alloc);
    }

    #[test]
    fn tenancy_harness_writes_the_csv_artifact() {
        let cfg = quick_cfg("tenantfig-tenancy");
        tenancy(&cfg).expect("harness runs");
        let csv = cfg.results_dir.join("tenancy.csv");
        let text = std::fs::read_to_string(csv).expect("csv written");
        let mut lines = text.lines();
        let header = lines.next().expect("header line");
        for column in [
            "phase",
            "offered_ratio",
            "queue_p99_us",
            "shed",
            "rejected",
            "demoted",
        ] {
            assert!(header.contains(column), "missing column {column}");
        }
        // 1 calibration + 2 tenants × 4 ratios + 2 policies × (1 baseline
        // + 2 contended) = 15 data rows in quick mode.
        assert_eq!(lines.count(), 15);
        // Every phase present.
        for phase in ["capacity", "overload", "quota"] {
            assert!(text.contains(phase), "missing phase {phase}");
        }
    }

    #[test]
    fn service_report_writes_the_ledger() {
        let cfg = quick_cfg("tenantfig-report");
        service_report(&cfg).expect("harness runs");
        let csv = cfg.results_dir.join("service_report.csv");
        let text = std::fs::read_to_string(csv).expect("csv written");
        assert_eq!(text.lines().count(), 4, "header + three tenants");
        // The scripted scenario exercises every ledger column.
        let mallory = text
            .lines()
            .find(|l| l.starts_with("mallory"))
            .expect("mallory row");
        let fields: Vec<&str> = mallory.split(',').collect();
        assert_eq!(fields[6], "2", "two cross-tenant denials");
        let bravo = text
            .lines()
            .find(|l| l.starts_with("bravo"))
            .expect("bravo row");
        let fields: Vec<&str> = bravo.split(',').collect();
        assert!(
            fields[4].parse::<u64>().expect("demotions") > 0,
            "bravo demoted"
        );
    }
}
