//! MSB-first bitstream reader and writer used by all encoders in this crate.

use crate::DecodeError;

/// An append-only bit buffer. Bits are packed MSB-first within each byte,
/// matching how hardware serializers are usually drawn in the compression
/// literature.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    buf: Vec<u8>,
    len_bits: usize,
}

impl BitWriter {
    /// Creates an empty bit buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit buffer with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bits.div_ceil(8)),
            len_bits: 0,
        }
    }

    /// Creates an empty bit buffer on top of an existing byte buffer,
    /// clearing its contents but keeping its capacity.
    ///
    /// This is the zero-allocation path: `CompressedBuf` hands its backing
    /// storage through here on every re-encode, so steady-state encoding
    /// never touches the heap.
    pub fn reusing(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self { buf, len_bits: 0 }
    }

    /// Appends the low `n` bits of `value`, most-significant bit first.
    ///
    /// Writes byte-at-a-time rather than bit-at-a-time: this is the inner
    /// loop of every encoder, and chunked writes are what keep the
    /// compression paths at memory speed.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn push_bits(&mut self, value: u64, n: usize) {
        assert!(n <= 64, "cannot push more than 64 bits at once");
        let mut remaining = n;
        while remaining > 0 {
            let bit_pos = self.len_bits % 8;
            if bit_pos == 0 {
                self.buf.push(0);
            }
            let byte_idx = self.len_bits / 8;
            let space = 8 - bit_pos;
            let take = space.min(remaining);
            // The top `take` of the `remaining` unwritten bits, aligned to
            // the byte's free space.
            let chunk = ((value >> (remaining - take)) as u8) & ((1u16 << take) - 1) as u8;
            self.buf[byte_idx] |= chunk << (space - take);
            self.len_bits += take;
            remaining -= take;
        }
    }

    /// Appends one bit.
    pub fn push_bit(&mut self, bit: bool) {
        let byte_idx = self.len_bits / 8;
        if byte_idx == self.buf.len() {
            self.buf.push(0);
        }
        if bit {
            self.buf[byte_idx] |= 0x80 >> (self.len_bits % 8);
        }
        self.len_bits += 1;
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Whether no bits have been written.
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// Consumes the writer, returning the packed bytes and the bit length.
    pub fn into_parts(self) -> (Vec<u8>, usize) {
        (self.buf, self.len_bits)
    }
}

/// Reads bits MSB-first from a byte slice produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    len_bits: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`, limited to `len_bits` valid bits.
    pub fn new(data: &'a [u8], len_bits: usize) -> Self {
        Self {
            data,
            pos: 0,
            len_bits: len_bits.min(data.len() * 8),
        }
    }

    /// Current read position in bits from the start of the stream.
    pub fn bit_offset(&self) -> usize {
        self.pos
    }

    /// Number of unread bits remaining.
    pub fn remaining(&self) -> usize {
        self.len_bits - self.pos
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] at end of stream.
    pub fn read_bit(&mut self) -> Result<bool, DecodeError> {
        if self.pos >= self.len_bits {
            return Err(DecodeError::Truncated);
        }
        let bit = (self.data[self.pos / 8] >> (7 - self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `n` bits MSB-first into the low bits of the result.
    ///
    /// Byte-at-a-time, mirroring [`BitWriter::push_bits`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if fewer than `n` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn read_bits(&mut self, n: usize) -> Result<u64, DecodeError> {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let mut value = 0u64;
        let mut remaining = n;
        while remaining > 0 {
            let bit_pos = self.pos % 8;
            let avail = 8 - bit_pos;
            let take = avail.min(remaining);
            let byte = self.data[self.pos / 8];
            let chunk = (byte >> (avail - take)) & ((1u16 << take) - 1) as u8;
            value = (value << take) | chunk as u64;
            self.pos += take;
            remaining -= take;
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        w.push_bits(0xDEAD_BEEF, 32);
        w.push_bit(true);
        w.push_bits(0x1_FFFF_FFFF, 33);
        let (bytes, bits) = w.into_parts();
        assert_eq!(bits, 3 + 32 + 1 + 33);

        let mut r = BitReader::new(&bytes, bits);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEAD_BEEF);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(33).unwrap(), 0x1_FFFF_FFFF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn msb_first_packing() {
        let mut w = BitWriter::new();
        w.push_bit(true); // 1000_0000
        w.push_bits(0b01, 2); // 1010_0000
        let (bytes, bits) = w.into_parts();
        assert_eq!(bits, 3);
        assert_eq!(bytes, vec![0b1010_0000]);
    }

    #[test]
    fn read_past_end_is_truncated() {
        let mut r = BitReader::new(&[0xFF], 3);
        assert_eq!(r.read_bits(3).unwrap(), 0b111);
        assert_eq!(r.read_bit(), Err(DecodeError::Truncated));
        assert_eq!(r.read_bits(1), Err(DecodeError::Truncated));
    }

    #[test]
    fn reader_tracks_offset() {
        let mut r = BitReader::new(&[0xAA, 0xAA], 16);
        assert_eq!(r.bit_offset(), 0);
        r.read_bits(5).unwrap();
        assert_eq!(r.bit_offset(), 5);
        assert_eq!(r.remaining(), 11);
    }

    #[test]
    fn reusing_clears_but_keeps_capacity() {
        let mut first = BitWriter::new();
        first.push_bits(0xDEAD_BEEF, 32);
        let (bytes, _) = first.into_parts();
        let cap = bytes.capacity();
        let mut w = BitWriter::reusing(bytes);
        assert!(w.is_empty());
        w.push_bits(0b101, 3);
        let (bytes, bits) = w.into_parts();
        assert_eq!(bits, 3);
        assert_eq!(bytes, vec![0b1010_0000]);
        assert_eq!(bytes.capacity(), cap);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut a = BitWriter::with_capacity(100);
        let mut b = BitWriter::new();
        a.push_bits(0x3F, 7);
        b.push_bits(0x3F, 7);
        assert_eq!(a.into_parts(), b.into_parts());
    }

    #[test]
    fn empty_writer() {
        let w = BitWriter::new();
        assert!(w.is_empty());
        assert_eq!(w.len_bits(), 0);
        let (bytes, bits) = w.into_parts();
        assert!(bytes.is_empty());
        assert_eq!(bits, 0);
    }
}
