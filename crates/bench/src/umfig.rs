//! Figure 12: measured overheads of Unified Memory oversubscription.

use crate::report::{f3, print_table, write_csv, RunConfig};
use buddy_compression::unified_memory::{native_baseline, simulate, PageAccess, Policy, UmConfig};
use buddy_compression::workloads::by_name;
use std::io;

/// Entries per 64 KB migration page.
const ENTRIES_PER_PAGE: u64 = (64 << 10) / 128;

/// Figure 12: runtime relative to no oversubscription for UM migration and
/// pinned-host placement, 0–40% forced oversubscription.
///
/// Paper platform: Power9 + V100 over 3 NVLink2 bricks (75 GB/s). Paper
/// shape: UM slowdowns reach 16–64×, often *worse* than simply pinning the
/// data in host memory; Buddy Compression suffers at most 1.67× at 50%
/// oversubscription even with a 50 GB/s link (§4.3).
pub fn fig12(cfg: &RunConfig) -> io::Result<()> {
    let oversubs = [0.0, 0.10, 0.20, 0.30, 0.40];
    let accesses = cfg.scaled(300_000) as usize;
    let mut rows = Vec::new();
    for name in ["360.ilbdc", "356.sp", "351.palm"] {
        let mut bench = by_name(name).expect("benchmark exists"); // lint-allow(no-unwrap): benchmark names are compiled into the suite
        bench.scale = buddy_compression::workloads::Scale {
            divisor: 512.0,
            floor_bytes: 4 << 20,
        };
        let footprint_pages = bench.total_entries() / ENTRIES_PER_PAGE;
        let trace = || {
            bench.trace(cfg.seed).take(accesses).map(|a| PageAccess {
                page: a.entry / ENTRIES_PER_PAGE,
                bytes: a.sector_count() * 32,
                write: a.write,
            })
        };
        let native = native_baseline(trace(), &UmConfig::default());
        let mut um_row = vec![format!("{name} (UM)")];
        let mut pinned_row = vec![format!("{name} (pinned)")];
        for &oversub in &oversubs {
            let device_pages = ((footprint_pages as f64) * (1.0 - oversub)).max(1.0) as u64;
            let config = UmConfig {
                device_bytes: device_pages * (64 << 10),
                ..UmConfig::default()
            };
            let um = simulate(trace(), Policy::UnifiedMemory, &config);
            let pinned = simulate(trace(), Policy::PinnedHost, &config);
            um_row.push(f3(um.slowdown_vs(&native)));
            pinned_row.push(f3(pinned.slowdown_vs(&native)));
        }
        rows.push(um_row);
        rows.push(pinned_row);
    }
    let header = ["configuration", "0%", "10%", "20%", "30%", "40%"];
    print_table(
        "Figure 12: UM oversubscription slowdowns (relative runtime)",
        &header,
        &rows,
    );
    println!("  paper: UM reaches 16-64x and often loses to pinned placement;");
    println!("  Buddy at 50 GB/s stays below 1.67x at 50% oversubscription (Fig. 11).");
    write_csv(&cfg.results_dir, "fig12", &header, &rows)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_runs_and_produces_monotone_um_slowdowns() {
        let cfg = RunConfig {
            quick: true,
            results_dir: std::env::temp_dir().join("buddy-bench-um"),
            seed: 5,
            ..Default::default()
        };
        fig12(&cfg).unwrap();
        let csv = std::fs::read_to_string(cfg.results_dir.join("fig12.csv")).unwrap();
        let um_line = csv.lines().find(|l| l.contains("360.ilbdc (UM)")).unwrap();
        let cells: Vec<f64> = um_line
            .split(',')
            .skip(1)
            .map(|c| c.parse().unwrap())
            .collect();
        assert!(
            cells.windows(2).all(|w| w[1] >= w[0] * 0.95),
            "UM not monotone: {cells:?}"
        );
        assert!(
            cells[4] > 3.0,
            "40% oversubscription should slow ilbdc substantially: {cells:?}"
        );
    }
}
