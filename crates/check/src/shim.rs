//! Model-aware drop-in replacements for the `std::sync` primitives the
//! protocol uses: `AtomicU64`, `AtomicU8`, `fence`, `Mutex`, `OnceLock`,
//! and `spawn`/`JoinHandle`.
//!
//! Outside a checker execution (no scheduler context on the current
//! thread) every shim delegates straight to its `std` counterpart, so
//! `buddy-core` compiled with `--features model-sync` still passes its
//! ordinary test suite. Inside [`crate::sched::explore`], every operation
//! becomes a scheduling point and atomics route through the weak-memory
//! model in the crate's private `mem` module: `Relaxed`/`Acquire` loads branch over every
//! observable stale value, release/acquire edges and fences propagate
//! views, and `Mutex` blocking is modelled (and deadlocks detected)
//! without ever OS-blocking while holding the scheduler baton.
//!
//! Atomics mirror every model store into their real `std` atomic so the
//! fallback value, the registered initial value, and the latest history
//! entry always agree.

use crate::sched::{ctx, Exec, ExecState};
use std::sync::atomic::Ordering;
use std::sync::{Arc, LockResult, PoisonError, TryLockError};

/// Address of a shim object, used as its stable location key for one
/// execution (models keep their atomics alive end to end).
fn loc_of<T>(x: &T) -> usize {
    x as *const T as usize
}

/// One shim object's identity for a model operation: its location key,
/// optional trace label, and construction-time value (seeds the model's
/// history the first time the location is touched).
struct Site {
    loc: usize,
    label: Option<&'static str>,
    initial: u64,
}

/// Loads weaker than `SeqCst` may observe stale history entries; `SeqCst`
/// loads always read the latest (the model's global SC order is a little
/// stronger than C11 — see `mem`'s module docs).
fn injectable(ordering: Ordering) -> bool {
    ordering != Ordering::SeqCst
}

fn register_label(st: &mut ExecState, loc: usize, label: Option<&'static str>) {
    if let Some(name) = label {
        st.set_label(loc, name);
    }
}

fn model_load(exec: &Arc<Exec>, tid: usize, site: Site, ordering: Ordering) -> u64 {
    let Site {
        loc,
        label,
        initial,
    } = site;
    exec.op(tid, |st, tid| {
        register_label(st, loc, label);
        st.mem.ensure_location(loc, initial);
        let total = st.mem.candidates(tid, loc);
        let n = if injectable(ordering) { total } else { 1 };
        // Decision choice 0 = the *latest* value (the SC-like default
        // schedule), later choices = progressively staler entries; a
        // SeqCst load has no choice and always reads the latest.
        let pick = st.decide(n);
        let (value, stale) = st.mem.load(tid, loc, ordering, total - 1 - pick);
        let name = st.label_of(loc);
        let suffix = if stale { " [stale]" } else { "" };
        (
            value,
            format!("load {name} ({ordering:?}) -> {value}{suffix}"),
        )
    })
}

fn model_store(exec: &Arc<Exec>, tid: usize, site: Site, ordering: Ordering, value: u64) {
    let Site {
        loc,
        label,
        initial,
    } = site;
    exec.op(tid, |st, tid| {
        register_label(st, loc, label);
        st.mem.ensure_location(loc, initial);
        st.mem.store(tid, loc, ordering, value);
        let name = st.label_of(loc);
        ((), format!("store {name} = {value} ({ordering:?})"))
    });
}

fn model_rmw(
    exec: &Arc<Exec>,
    tid: usize,
    site: Site,
    ordering: Ordering,
    opname: &str,
    operand: u64,
    f: impl FnOnce(u64) -> u64,
) -> u64 {
    let Site {
        loc,
        label,
        initial,
    } = site;
    exec.op(tid, |st, tid| {
        register_label(st, loc, label);
        st.mem.ensure_location(loc, initial);
        let prev = st.mem.rmw(tid, loc, ordering, f);
        let name = st.label_of(loc);
        (
            prev,
            format!("{opname} {name}, {operand} ({ordering:?}) -> prev {prev}"),
        )
    })
}

macro_rules! atomic_shim {
    ($name:ident, $std:ty, $raw:ty) => {
        /// Model-aware atomic; see the module docs.
        #[derive(Debug)]
        pub struct $name {
            std: $std,
            label: Option<&'static str>,
        }

        impl $name {
            /// Creates an atomic with the given initial value.
            pub fn new(value: $raw) -> Self {
                Self {
                    std: <$std>::new(value),
                    label: None,
                }
            }

            /// Creates an atomic whose counterexample traces show `label`
            /// instead of a raw address.
            pub fn labelled(label: &'static str, value: $raw) -> Self {
                Self {
                    std: <$std>::new(value),
                    label: Some(label),
                }
            }

            fn initial(&self) -> u64 {
                // Relaxed: reads the construction-time value to seed the
                // model's history; ordering is modeled in `mem`, not here.
                self.std.load(Ordering::Relaxed) as u64
            }

            fn site(&self) -> Site {
                Site {
                    loc: loc_of(self),
                    label: self.label,
                    initial: self.initial(),
                }
            }

            /// Atomic load; under the checker, weaker-than-`SeqCst`
            /// orderings branch over every observable stale value.
            pub fn load(&self, ordering: Ordering) -> $raw {
                match ctx() {
                    None => self.std.load(ordering),
                    Some((exec, tid)) => model_load(&exec, tid, self.site(), ordering) as $raw,
                }
            }

            /// Atomic store.
            pub fn store(&self, value: $raw, ordering: Ordering) {
                match ctx() {
                    None => self.std.store(value, ordering),
                    Some((exec, tid)) => {
                        model_store(&exec, tid, self.site(), ordering, value as u64);
                        // Relaxed: shadow mirror kept for reads that happen
                        // after the run; all ordering lives in the model.
                        self.std.store(value, Ordering::Relaxed);
                    }
                }
            }

            /// Atomic add, returning the previous value. RMWs always read
            /// the latest entry (C11 modification-order head).
            pub fn fetch_add(&self, value: $raw, ordering: Ordering) -> $raw {
                self.rmw("fetch_add", value, ordering, |prev| {
                    (prev as $raw).wrapping_add(value) as u64
                })
            }

            /// Atomic bitwise AND, returning the previous value.
            pub fn fetch_and(&self, value: $raw, ordering: Ordering) -> $raw {
                self.rmw("fetch_and", value, ordering, |prev| {
                    ((prev as $raw) & value) as u64
                })
            }

            /// Atomic bitwise OR, returning the previous value.
            pub fn fetch_or(&self, value: $raw, ordering: Ordering) -> $raw {
                self.rmw("fetch_or", value, ordering, |prev| {
                    ((prev as $raw) | value) as u64
                })
            }

            fn rmw(
                &self,
                opname: &str,
                operand: $raw,
                ordering: Ordering,
                f: impl FnOnce(u64) -> u64,
            ) -> $raw {
                match ctx() {
                    None => match opname {
                        "fetch_add" => self.std.fetch_add(operand, ordering),
                        "fetch_and" => self.std.fetch_and(operand, ordering),
                        _ => self.std.fetch_or(operand, ordering),
                    },
                    Some((exec, tid)) => {
                        let prev =
                            model_rmw(&exec, tid, self.site(), ordering, opname, operand as u64, f);
                        let mirrored = f_apply(prev, operand as u64, opname) as $raw;
                        // Relaxed: shadow mirror, as in `store` above.
                        self.std.store(mirrored, Ordering::Relaxed);
                        prev as $raw
                    }
                }
            }
        }
    };
}

/// Recomputes an RMW result for the mirror store (the model consumed the
/// closure).
fn f_apply(prev: u64, operand: u64, opname: &str) -> u64 {
    match opname {
        "fetch_add" => prev.wrapping_add(operand),
        "fetch_and" => prev & operand,
        _ => prev | operand,
    }
}

atomic_shim!(AtomicU64, std::sync::atomic::AtomicU64, u64);
atomic_shim!(AtomicU8, std::sync::atomic::AtomicU8, u8);

/// Model-aware memory fence; under the checker, release fences snapshot
/// the thread view for later stores and acquire fences join the messages
/// of every load since the previous acquire fence.
pub fn fence(ordering: Ordering) {
    match ctx() {
        None => std::sync::atomic::fence(ordering),
        Some((exec, tid)) => exec.op(tid, |st, tid| {
            st.mem.fence(tid, ordering);
            ((), format!("fence({ordering:?})"))
        }),
    }
}

/// Model-aware mutex. Under the checker, contention blocks the model
/// thread (a schedule decision), never the OS thread holding the baton,
/// and lock-order deadlocks become counterexamples.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    std: std::sync::Mutex<T>,
    label: Option<&'static str>,
}

/// Guard for [`Mutex`]; releases the model lock (waking blocked model
/// threads) when dropped.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    std: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(Arc<Exec>, usize, usize)>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Self {
            std: std::sync::Mutex::new(value),
            label: None,
        }
    }

    /// Creates a mutex whose counterexample traces show `label`.
    pub fn labelled(label: &'static str, value: T) -> Self {
        Self {
            std: std::sync::Mutex::new(value),
            label: Some(label),
        }
    }

    /// Acquires the mutex, with `std`-compatible poison semantics.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match ctx() {
            None => match self.std.lock() {
                Ok(g) => Ok(MutexGuard {
                    std: Some(g),
                    model: None,
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    std: Some(poisoned.into_inner()),
                    model: None,
                })),
            },
            Some((exec, tid)) => {
                let loc = loc_of(self);
                if let Some(name) = self.label {
                    exec.op(tid, |st, _| {
                        st.set_label(loc, name);
                        ((), format!("lock {name}: request"))
                    });
                }
                exec.lock_mutex(tid, loc);
                // The model grants exclusivity, so the real lock is free;
                // WouldBlock cannot happen, but fall back defensively.
                let std_guard = match self.std.try_lock() {
                    Ok(g) => Ok(g),
                    Err(TryLockError::Poisoned(poisoned)) => Err(poisoned.into_inner()),
                    Err(TryLockError::WouldBlock) => match self.std.lock() {
                        Ok(g) => Ok(g),
                        Err(poisoned) => Err(poisoned.into_inner()),
                    },
                };
                let wrap = |g| MutexGuard {
                    std: Some(g),
                    model: Some((exec, tid, loc)),
                };
                match std_guard {
                    Ok(g) => Ok(wrap(g)),
                    Err(g) => Err(PoisonError::new(wrap(g))),
                }
            }
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> LockResult<T> {
        self.std.into_inner()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.std {
            Some(g) => g,
            None => unreachable!("guard is only taken in Drop"),
        }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.std {
            Some(g) => g,
            None => unreachable!("guard is only taken in Drop"),
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock *before* the model unlock: the model
        // unlock may schedule a woken waiter, which will immediately
        // try_lock the real mutex.
        drop(self.std.take());
        if let Some((exec, tid, loc)) = self.model.take() {
            exec.unlock_mutex(tid, loc);
        }
    }
}

/// Passthrough `OnceLock`. Not instrumented: the protocol only writes
/// these under structural serialization (chunk-table growth behind a
/// mutex), so there is nothing for the scheduler to branch on.
#[derive(Debug, Default)]
pub struct OnceLock<T> {
    std: std::sync::OnceLock<T>,
}

impl<T> OnceLock<T> {
    /// Creates an empty cell.
    pub fn new() -> Self {
        Self {
            std: std::sync::OnceLock::new(),
        }
    }

    /// Returns the value, if set.
    pub fn get(&self) -> Option<&T> {
        self.std.get()
    }

    /// Sets the value if the cell was empty.
    pub fn set(&self, value: T) -> Result<(), T> {
        self.std.set(value)
    }

    /// Returns the value, initializing it with `f` if empty.
    pub fn get_or_init(&self, f: impl FnOnce() -> T) -> &T {
        self.std.get_or_init(f)
    }
}

/// Handle to a model (or real) thread; [`JoinHandle::join`] establishes
/// the child-to-joiner happens-before edge.
pub struct JoinHandle {
    std: Option<std::thread::JoinHandle<()>>,
    model: Option<(Arc<Exec>, usize)>,
}

/// Model-aware `thread::spawn` (unit-returning: protocol models share
/// state through atomics, not return values).
pub fn spawn(f: impl FnOnce() + Send + 'static) -> JoinHandle {
    match ctx() {
        None => JoinHandle {
            std: Some(std::thread::spawn(f)),
            model: None,
        },
        Some((exec, tid)) => {
            let child = exec.spawn_thread(tid, Box::new(f));
            JoinHandle {
                std: None,
                model: Some((exec, child)),
            }
        }
    }
}

impl JoinHandle {
    /// Waits for the thread to finish (panics in real threads propagate as
    /// in `std`; in model threads they become counterexamples instead).
    pub fn join(self) {
        if let Some(h) = self.std {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
        if let Some((exec, child)) = self.model {
            let (_, tid) = match ctx() {
                Some(c) => c,
                None => return,
            };
            exec.join_thread(tid, child);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shims_behave_like_std_outside_the_checker() {
        let a = AtomicU64::new(5);
        assert_eq!(a.fetch_add(3, Ordering::SeqCst), 5);
        assert_eq!(a.load(Ordering::Acquire), 8);
        assert_eq!(a.fetch_and(0b1100, Ordering::Relaxed), 8);
        assert_eq!(a.fetch_or(0b0011, Ordering::Relaxed), 8);
        assert_eq!(a.load(Ordering::SeqCst), 0b1011);
        let b = AtomicU8::new(250);
        b.store(7, Ordering::Release);
        assert_eq!(b.load(Ordering::Relaxed), 7);
        fence(Ordering::SeqCst);

        let m = Mutex::new(41);
        {
            let mut g = match m.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            *g += 1;
        }
        assert_eq!(m.into_inner().unwrap_or_default(), 42);

        let once: OnceLock<u32> = OnceLock::new();
        assert_eq!(*once.get_or_init(|| 9), 9);
        assert_eq!(once.set(10), Err(10));

        let t = spawn(|| {});
        t.join();
    }
}
