//! Repo-specific build tasks. The only task today is `lint`, the custom
//! static-analysis driver that gates CI:
//!
//! ```text
//! cargo run -p xtask -- lint               # human output, exit 1 on findings
//! cargo run -p xtask -- lint --format json # machine output
//! cargo run -p xtask -- lint --self-check  # mutation-test the driver itself
//! ```
//!
//! See DESIGN.md §10 for the rule catalogue and the waiver policy.
#![forbid(unsafe_code)]

mod lint;
mod rules;
mod source;

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo run -p xtask -- <task>

tasks:
  lint [--format human|json] [--self-check] [--root PATH]
      Run the repo lint rules. Exits 1 on any unwaived deny finding.
      --self-check lints the fixture corpus instead and verifies every
      rule flags its known-bad snippets (the tooling's mutation test).
  rules
      List the registered lint rules.
";

fn default_root() -> PathBuf {
    // crates/xtask -> crates -> repo root; works both under `cargo run -p`
    // (manifest dir is compiled in) and when the binary is relocated, since
    // the fallback is the current directory.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .filter(|p| p.join("Cargo.toml").is_file())
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("rules") => {
            for rule in rules::registry() {
                println!("{:<22} {:<5} {}", rule.id, rule.severity, rule.summary);
            }
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut format = "human";
    let mut self_check = false;
    let mut root = default_root();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some(f @ ("human" | "json")) => format = if f == "json" { "json" } else { "human" },
                _ => {
                    eprintln!("xtask: --format takes `human` or `json`");
                    return ExitCode::FAILURE;
                }
            },
            "--self-check" => self_check = true,
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("xtask: --root takes a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask: unknown lint flag `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    if self_check {
        return match lint::self_check(&root) {
            Ok(problems) if problems.is_empty() => {
                println!("lint --self-check: all fixtures behave as annotated");
                ExitCode::SUCCESS
            }
            Ok(problems) => {
                for p in &problems {
                    eprintln!("self-check: {p}");
                }
                eprintln!("lint --self-check: {} problem(s)", problems.len());
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("xtask: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match lint::lint_tree(&root) {
        Ok(report) => {
            match format {
                "json" => print!("{}", lint::render_json(&report)),
                _ => print!("{}", lint::render_human(&report)),
            }
            if report.denied().next().is_some() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::FAILURE
        }
    }
}
