//! The dependency-driven simulation engine.
//!
//! The paper's proprietary simulator is dependency-driven (§4.1): each SM is
//! an in-order core whose warps expose a bounded number of outstanding
//! memory requests. We model the same structure as a set of *lanes* — each
//! lane is one dependent request stream (≈ warp × memory-level-parallelism
//! slot): a lane issues a request, waits for its completion, spends the
//! workload's compute cycles, then issues the next. Shared resources (HBM2
//! channels, the interconnect, L2, metadata caches) are modeled as
//! bandwidth-latency queues, which is where all the contention effects of
//! Figure 11 come from:
//!
//! * bandwidth-only compression transfers fewer sectors per block but
//!   forces whole-block fills (over-fetch on random single-sector access),
//! * (de)compression adds pipeline latency on the critical path,
//! * Buddy mode adds metadata-cache misses (extra DRAM traffic) and
//!   serialized buddy-memory fetches over the interconnect.

use crate::cache::{Lookup, SectoredCache};
use crate::config::GpuConfig;
use crate::layout::MemoryLayout;
use crate::stats::SimStats;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// One memory access fed to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// 128 B entry index.
    pub entry: u64,
    /// Sectors requested (bits 0–3).
    pub sector_mask: u8,
    /// Store (true) or load (false).
    pub write: bool,
    /// Natively targets host memory over the interconnect (e.g. FF_HPGMG's
    /// synchronous copies) — bypasses device DRAM in every mode.
    pub to_host: bool,
}

/// Memory-system organization being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryMode {
    /// Ideal large-capacity GPU: no compression anywhere (the Figure 11
    /// baseline).
    Uncompressed,
    /// Compression between L2 and DRAM for bandwidth only — capacity is
    /// unchanged and no metadata or buddy accesses are needed (§4.1).
    BandwidthCompressed,
    /// Full Buddy Compression: metadata cache + buddy-memory overflow.
    Buddy,
}

/// Modeling fidelity (Figure 10's fast-vs-detailed comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Block-granular resource reservations (the production model).
    Fast,
    /// Sector-granular reservations with per-bank timing — slower but
    /// finer; stands in for the cycle-accurate reference simulator.
    Detailed,
}

/// Execution-side configuration derived from the workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecConfig {
    /// Parallel dependent request streams
    /// (≈ SMs × active warps × per-warp MLP).
    pub lanes: u32,
    /// Compute cycles between dependent requests in one lane.
    pub compute_cycles: f64,
    /// Total accesses to simulate.
    pub accesses: u64,
}

impl ExecConfig {
    /// Derives lanes from the Table 2 machine and a workload's MLP.
    ///
    /// `active_warps` models occupancy (warps concurrently issuing memory
    /// operations per SM); the paper's GTO scheduler keeps a fraction of
    /// the 64 resident warps active in the memory system.
    pub fn from_profile(cfg: &GpuConfig, mlp: u8, compute_cycles: f64, accesses: u64) -> Self {
        let active_warps = 8;
        Self {
            lanes: cfg.sms * active_warps * mlp.max(1) as u32,
            compute_cycles,
            accesses,
        }
    }
}

/// f64 time that is totally ordered for the event heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Bandwidth-latency queue for one resource (DRAM channel or link
/// direction): requests serialize; each occupies the resource for its
/// transfer time.
#[derive(Debug, Clone, Default)]
struct Queue {
    free_at: f64,
    busy: f64,
}

impl Queue {
    /// Reserves the resource for `cycles` starting no earlier than `now`;
    /// returns the completion time of the transfer.
    fn reserve(&mut self, now: f64, cycles: f64) -> f64 {
        let start = self.free_at.max(now);
        self.free_at = start + cycles;
        self.busy += cycles;
        self.free_at
    }
}

/// Detailed-mode DRAM bank state.
#[derive(Debug, Clone, Default)]
struct Bank {
    free_at: f64,
    open_row: u64,
}

/// The simulator.
pub struct Engine<'a> {
    cfg: GpuConfig,
    exec: ExecConfig,
    mode: MemoryMode,
    fidelity: Fidelity,
    layout: &'a dyn MemoryLayout,
    l2: SectoredCache,
    md_caches: Vec<SectoredCache>,
    channels: Vec<Queue>,
    banks: Vec<Vec<Bank>>,
    link_in: Queue,
    link_out: Queue,
    stats: SimStats,
}

const BANKS_PER_CHANNEL: usize = 16;
const ROW_ENTRIES: u64 = 16; // entries sharing a DRAM row (2 KB rows)
const BANK_ROW_HIT_CYCLES: f64 = 4.0;
const BANK_ROW_MISS_CYCLES: f64 = 14.0;
/// Domain-separation tag for the metadata-line slice hash.
const METADATA_HASH_TAG: u64 = 0x4D44_4D44;

impl<'a> Engine<'a> {
    /// Builds an engine over the given machine, mode and layout.
    pub fn new(
        cfg: GpuConfig,
        exec: ExecConfig,
        mode: MemoryMode,
        fidelity: Fidelity,
        layout: &'a dyn MemoryLayout,
    ) -> Self {
        let md_lines = cfg.metadata_cache_lines_per_slice();
        let md_ways = (cfg.metadata_cache_ways as usize).min(md_lines.max(1));
        Self {
            cfg,
            exec,
            mode,
            fidelity,
            layout,
            l2: SectoredCache::new(cfg.l2_lines(), cfg.l2_ways as usize),
            md_caches: (0..cfg.l2_slices)
                .map(|_| SectoredCache::new(md_lines.max(md_ways), md_ways))
                .collect(),
            channels: vec![Queue::default(); cfg.dram_channels as usize],
            banks: vec![vec![Bank::default(); BANKS_PER_CHANNEL]; cfg.dram_channels as usize],
            link_in: Queue::default(),
            link_out: Queue::default(),
            stats: SimStats::default(),
        }
    }

    fn channel_of(&self, entry: u64) -> usize {
        (splitmix64(entry) % self.cfg.dram_channels as u64) as usize
    }

    /// Reserves `sectors` sectors on the DRAM channel serving `entry`.
    fn dram_fetch(&mut self, now: f64, entry: u64, sectors: u8) -> f64 {
        if sectors == 0 {
            return now;
        }
        self.stats.dram_sectors += sectors as u64;
        let ch = self.channel_of(entry);
        let per_sector = self.cfg.dram_sector_cycles();
        match self.fidelity {
            Fidelity::Fast => {
                let exit = self.channels[ch].reserve(now, sectors as f64 * per_sector);
                exit + self.cfg.dram_latency_cycles
            }
            Fidelity::Detailed => {
                // Sector-granular: each sector pays channel burst time plus
                // bank row timing; completion is the last sector's.
                let row = entry / ROW_ENTRIES;
                let mut last = now;
                for s in 0..sectors {
                    let bank_idx =
                        (splitmix64(entry ^ (s as u64) << 17) % BANKS_PER_CHANNEL as u64) as usize;
                    let channel_exit = self.channels[ch].reserve(now, per_sector);
                    let bank = &mut self.banks[ch][bank_idx];
                    let row_cycles = if bank.open_row == row {
                        BANK_ROW_HIT_CYCLES
                    } else {
                        bank.open_row = row;
                        BANK_ROW_MISS_CYCLES
                    };
                    let bank_start = bank.free_at.max(channel_exit);
                    bank.free_at = bank_start + row_cycles;
                    last = last.max(bank.free_at);
                }
                last + self.cfg.dram_latency_cycles
            }
        }
    }

    /// Reserves write bandwidth without latency tracking (posted writes).
    fn dram_writeback(&mut self, now: f64, entry: u64, sectors: u8) {
        if sectors == 0 {
            return;
        }
        self.stats.dram_sectors += sectors as u64;
        let ch = self.channel_of(entry);
        self.channels[ch].reserve(now, sectors as f64 * self.cfg.dram_sector_cycles());
    }

    /// Fetches `sectors` sectors over the interconnect (buddy/host reads).
    ///
    /// Bandwidth is reserved at `now` (the queue is FCFS without backfill,
    /// so reserving at future timestamps would block earlier arrivals);
    /// `ready_after` adds any serialization latency (e.g. waiting for
    /// metadata) without holding the link.
    fn link_fetch(&mut self, now: f64, ready_after: f64, sectors: u8) -> f64 {
        if sectors == 0 {
            return ready_after;
        }
        self.stats.link_sectors_in += sectors as u64;
        let exit = self
            .link_in
            .reserve(now, sectors as f64 * self.cfg.link_sector_cycles());
        exit.max(ready_after) + self.cfg.link_latency_cycles
    }

    /// Sends `sectors` sectors over the interconnect (buddy/host writes).
    fn link_send(&mut self, now: f64, sectors: u8) {
        if sectors == 0 {
            return;
        }
        self.stats.link_sectors_out += sectors as u64;
        self.link_out
            .reserve(now, sectors as f64 * self.cfg.link_sector_cycles());
    }

    /// Metadata lookup for `entry`; returns the time the metadata is known.
    fn metadata_lookup(&mut self, now: f64, entry: u64) -> f64 {
        let md_line = entry / buddy_core::ENTRIES_PER_METADATA_LINE;
        let slice = (splitmix64(md_line ^ METADATA_HASH_TAG) % self.cfg.l2_slices as u64) as usize;
        match self.md_caches[slice].lookup(md_line, 0b1111) {
            Lookup::Hit => {
                self.stats.md_hits += 1;
                now
            }
            _ => {
                self.stats.md_misses += 1;
                self.md_caches[slice].fill(md_line, 0b1111, false);
                // One 32 B metadata sector from DRAM, in parallel with data.
                self.dram_fetch(now, md_line ^ METADATA_HASH_TAG, 1)
            }
        }
    }

    /// Handles the eviction of a dirty L2 line: write back the victim in
    /// its compressed (or raw) form.
    fn writeback_victim(&mut self, now: f64, tag: u64, dirty_mask: u8) {
        match self.mode {
            MemoryMode::Uncompressed => {
                self.dram_writeback(now, tag, dirty_mask.count_ones() as u8);
            }
            MemoryMode::BandwidthCompressed => {
                let sectors = self.layout.compressed_sectors(tag).max(1);
                self.dram_writeback(now, tag, sectors);
            }
            MemoryMode::Buddy => {
                let p = self.layout.placement(tag);
                self.dram_writeback(now, tag, p.device_sectors);
                self.link_send(now, p.buddy_sectors);
            }
        }
    }

    /// Full-entry fetch in a compressed mode; returns data-ready time.
    fn compressed_fill(&mut self, now: f64, entry: u64) -> f64 {
        let (device_sectors, buddy_sectors, md_done) = match self.mode {
            MemoryMode::BandwidthCompressed => {
                // Without metadata there is no way to know a block is zero
                // before reading it: at least one sector is always fetched.
                (self.layout.compressed_sectors(entry).max(1), 0, now)
            }
            MemoryMode::Buddy => {
                let p = self.layout.placement(entry);
                let md_done = self.metadata_lookup(now, entry);
                if p.buddy_sectors > 0 {
                    self.stats.buddy_accesses += 1;
                }
                (p.device_sectors, p.buddy_sectors, md_done)
            }
            MemoryMode::Uncompressed => unreachable!("compressed_fill in uncompressed mode"),
        };
        let data_done = self.dram_fetch(now, entry, device_sectors);
        // §3.4: buddy memory is NOT accessed in parallel with metadata —
        // the buddy data is not ready before the metadata is known.
        let buddy_done = if buddy_sectors > 0 {
            self.link_fetch(now, md_done, buddy_sectors)
        } else {
            md_done
        };
        let done = data_done.max(buddy_done);
        if device_sectors + buddy_sectors > 0 {
            done + self.cfg.decompression_latency_cycles
        } else {
            done // tracked-zero entry: nothing to decompress
        }
    }

    /// Executes one request at time `now`; returns its completion time.
    fn execute(&mut self, now: f64, req: MemRequest) -> f64 {
        self.stats.accesses += 1;
        if req.write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }

        // Native host traffic bypasses device memory in every mode.
        if req.to_host {
            self.stats.host_native_accesses += 1;
            let sectors = req.sector_mask.count_ones() as u8;
            return if req.write {
                self.link_send(now, sectors);
                now + 1.0
            } else {
                self.link_fetch(now, now, sectors)
            };
        }

        let lookup = self.l2.lookup(req.entry, req.sector_mask);

        if req.write {
            match lookup {
                Lookup::Hit => {
                    self.stats.l2_hits += 1;
                    self.l2.mark_dirty(req.entry, req.sector_mask);
                    now + 1.0
                }
                Lookup::Partial { .. } | Lookup::Miss => {
                    self.stats.l2_misses += 1;
                    let full_line = req.sector_mask == 0b1111;
                    let ready = match self.mode {
                        // Uncompressed (and any full-line write): write-
                        // validate, no fetch needed.
                        MemoryMode::Uncompressed => now,
                        _ if full_line => now,
                        // Partial write under compression: the block must be
                        // recompressed as a whole → read-modify-write fetch.
                        _ => self.compressed_fill(now, req.entry),
                    };
                    let fill_mask = if self.mode == MemoryMode::Uncompressed {
                        req.sector_mask
                    } else {
                        0b1111
                    };
                    if let Some(ev) = self.l2.fill(req.entry, fill_mask, false) {
                        self.writeback_victim(now, ev.tag, ev.dirty_mask);
                    }
                    self.l2.mark_dirty(req.entry, req.sector_mask);
                    ready + 1.0
                }
            }
        } else {
            match lookup {
                Lookup::Hit => {
                    self.stats.l2_hits += 1;
                    now + self.cfg.l2_hit_latency_cycles
                }
                Lookup::Partial { missing } => {
                    self.stats.l2_misses += 1;
                    let done = match self.mode {
                        MemoryMode::Uncompressed => {
                            self.dram_fetch(now, req.entry, missing.count_ones() as u8)
                        }
                        _ => self.compressed_fill(now, req.entry),
                    };
                    let fill_mask = if self.mode == MemoryMode::Uncompressed {
                        missing
                    } else {
                        0b1111
                    };
                    if let Some(ev) = self.l2.fill(req.entry, fill_mask, false) {
                        self.writeback_victim(now, ev.tag, ev.dirty_mask);
                    }
                    done + self.cfg.l2_hit_latency_cycles
                }
                Lookup::Miss => {
                    self.stats.l2_misses += 1;
                    let done = match self.mode {
                        MemoryMode::Uncompressed => {
                            self.dram_fetch(now, req.entry, req.sector_mask.count_ones() as u8)
                        }
                        _ => self.compressed_fill(now, req.entry),
                    };
                    let fill_mask = if self.mode == MemoryMode::Uncompressed {
                        req.sector_mask
                    } else {
                        0b1111
                    };
                    if let Some(ev) = self.l2.fill(req.entry, fill_mask, false) {
                        self.writeback_victim(now, ev.tag, ev.dirty_mask);
                    }
                    done + self.cfg.l2_hit_latency_cycles
                }
            }
        }
    }

    /// Runs the engine over `trace` and returns the statistics.
    pub fn run(mut self, trace: &mut dyn Iterator<Item = MemRequest>) -> SimStats {
        let wall_start = Instant::now();
        let mut trace = trace.take(self.exec.accesses as usize);
        let mut heap: BinaryHeap<Reverse<(Time, u32)>> = BinaryHeap::new();
        // Stagger lane start times so the cold machine fills smoothly.
        for lane in 0..self.exec.lanes {
            heap.push(Reverse((Time(lane as f64 * 0.25), lane)));
        }
        let mut last_completion = 0.0f64;
        while let Some(Reverse((Time(now), lane))) = heap.pop() {
            match trace.next() {
                Some(req) => {
                    let done = self.execute(now, req);
                    last_completion = last_completion.max(done);
                    heap.push(Reverse((Time(done + self.exec.compute_cycles), lane)));
                }
                None => continue, // lane retires
            }
        }
        self.stats.cycles = last_completion;
        self.stats.wall_seconds = wall_start.elapsed().as_secs_f64();
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{EntryPlacement, UniformLayout};

    fn streaming_trace(entries: u64, mask: u8) -> impl Iterator<Item = MemRequest> {
        (0..).map(move |i| MemRequest {
            entry: i % entries,
            sector_mask: mask,
            write: false,
            to_host: false,
        })
    }

    fn run(
        mode: MemoryMode,
        layout: &UniformLayout,
        trace: &mut dyn Iterator<Item = MemRequest>,
        accesses: u64,
    ) -> SimStats {
        let cfg = GpuConfig::p100();
        let exec = ExecConfig {
            lanes: 3584,
            compute_cycles: 20.0,
            accesses,
        };
        Engine::new(cfg, exec, mode, Fidelity::Fast, layout).run(trace)
    }

    #[test]
    fn small_working_set_hits_l2() {
        // 1 MB footprint < 4 MB L2: after the cold pass everything hits.
        let layout = UniformLayout {
            entries: 8192,
            placement: EntryPlacement::device(4),
        };
        let stats = run(
            MemoryMode::Uncompressed,
            &layout,
            &mut streaming_trace(8192, 0b1111),
            80_000,
        );
        assert!(
            stats.l2_hit_rate() > 0.85,
            "hit rate {}",
            stats.l2_hit_rate()
        );
    }

    #[test]
    fn bandwidth_compression_speeds_up_streaming() {
        // Footprint 64 MB >> L2; coalesced streaming; compressed to 1 sector.
        let entries = 512 * 1024;
        let layout = UniformLayout {
            entries,
            placement: EntryPlacement::device(1),
        };
        let base = run(
            MemoryMode::Uncompressed,
            &layout,
            &mut streaming_trace(entries, 0b1111),
            150_000,
        );
        let comp = run(
            MemoryMode::BandwidthCompressed,
            &layout,
            &mut streaming_trace(entries, 0b1111),
            150_000,
        );
        let speedup = comp.speedup_vs(&base);
        // The baseline is DRAM-bound (~5.4 accesses/cycle) while the
        // compressed run becomes latency-bound (~8/cycle): speedup ≈ 1.5.
        assert!(
            speedup > 1.3,
            "4:1 compression should speed up streaming: {speedup:.2}"
        );
        assert!(comp.dram_sectors < base.dram_sectors / 2);
    }

    #[test]
    fn bandwidth_compression_hurts_random_single_sector() {
        // Random single-sector reads over a huge footprint: compression
        // over-fetches whole blocks (4 sectors for incompressible data).
        let entries = 4 * 1024 * 1024;
        let layout = UniformLayout {
            entries,
            placement: EntryPlacement::device(4),
        };
        let mut rng_state = 1u64;
        let mut random_trace = std::iter::from_fn(move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            Some(MemRequest {
                entry: (rng_state >> 33) % entries,
                sector_mask: 1 << ((rng_state >> 13) % 4),
                write: false,
                to_host: false,
            })
        });
        let mut rng_state2 = 1u64;
        let mut random_trace2 = std::iter::from_fn(move || {
            rng_state2 = rng_state2.wrapping_mul(6364136223846793005).wrapping_add(1);
            Some(MemRequest {
                entry: (rng_state2 >> 33) % entries,
                sector_mask: 1 << ((rng_state2 >> 13) % 4),
                write: false,
                to_host: false,
            })
        });
        let base = run(
            MemoryMode::Uncompressed,
            &layout,
            &mut random_trace,
            100_000,
        );
        let comp = run(
            MemoryMode::BandwidthCompressed,
            &layout,
            &mut random_trace2,
            100_000,
        );
        let speedup = comp.speedup_vs(&base);
        assert!(
            speedup < 1.0,
            "over-fetch should slow random access: {speedup:.2}"
        );
        assert!(comp.dram_sectors > base.dram_sectors * 2);
    }

    #[test]
    fn engine_always_fills_before_marking_dirty() {
        // Regression for the fill-before-mark invariant pinned by
        // `SectoredCache::mark_dirty`'s debug assert: a write-heavy trace
        // mixing full-line, two-sector and single-sector stores (plus
        // interleaved reads) drives every L2 write path — hit, partial
        // hit and miss — in all three memory modes. If the engine ever
        // marked a not-yet-filled sector dirty, the assert would abort
        // this (debug-built) test; completing with plausible stats is the
        // pass condition.
        let entries = 4096u64;
        let layout = UniformLayout {
            entries,
            placement: EntryPlacement {
                device_sectors: 2,
                buddy_sectors: 2,
            },
        };
        for mode in [
            MemoryMode::Uncompressed,
            MemoryMode::BandwidthCompressed,
            MemoryMode::Buddy,
        ] {
            let mut state = 7u64;
            let mut trace = std::iter::from_fn(move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let masks = [0b1111u8, 0b0011, 0b0001, 0b1100];
                Some(MemRequest {
                    entry: (state >> 33) % entries,
                    sector_mask: masks[(state >> 13) as usize % masks.len()],
                    write: state >> 7 & 0b11 != 0, // 75% stores
                    to_host: false,
                })
            });
            let stats = run(mode, &layout, &mut trace, 40_000);
            assert_eq!(stats.accesses, 40_000, "{mode:?}: all requests executed");
            assert!(stats.dram_sectors > 0, "{mode:?}: writebacks reached DRAM");
        }
    }

    #[test]
    fn buddy_overflow_generates_link_traffic() {
        let entries = 1024 * 1024;
        let layout = UniformLayout {
            entries,
            placement: EntryPlacement {
                device_sectors: 2,
                buddy_sectors: 2,
            },
        };
        let stats = run(
            MemoryMode::Buddy,
            &layout,
            &mut streaming_trace(entries, 0b1111),
            50_000,
        );
        assert!(stats.buddy_accesses > 0);
        assert!(stats.link_sectors_in > 0);
        assert!(
            stats.buddy_fraction() > 0.5,
            "every miss overflows: {}",
            stats.buddy_fraction()
        );
    }

    #[test]
    fn buddy_slower_than_bandwidth_only_when_overflowing() {
        let entries = 1024 * 1024;
        let overflowing = UniformLayout {
            entries,
            placement: EntryPlacement {
                device_sectors: 2,
                buddy_sectors: 2,
            },
        };
        let bw = run(
            MemoryMode::BandwidthCompressed,
            &overflowing,
            &mut streaming_trace(entries, 0b1111),
            60_000,
        );
        let buddy = run(
            MemoryMode::Buddy,
            &overflowing,
            &mut streaming_trace(entries, 0b1111),
            60_000,
        );
        assert!(
            buddy.speedup_vs(&bw) < 1.0,
            "buddy pays for link transfers: {:.3}",
            buddy.speedup_vs(&bw)
        );
    }

    #[test]
    fn metadata_cache_hits_on_streaming() {
        // Sequential access: one metadata line covers 64 entries → ~98% hits.
        let entries = 1024 * 1024;
        let layout = UniformLayout {
            entries,
            placement: EntryPlacement::device(2),
        };
        let stats = run(
            MemoryMode::Buddy,
            &layout,
            &mut streaming_trace(entries, 0b1111),
            60_000,
        );
        assert!(
            stats.md_hit_rate() > 0.9,
            "streaming md hit rate {}",
            stats.md_hit_rate()
        );
    }

    #[test]
    fn zero_entries_cost_no_dram_traffic() {
        let entries = 1024 * 1024;
        let layout = UniformLayout {
            entries,
            placement: EntryPlacement::device(0),
        };
        let stats = run(
            MemoryMode::Buddy,
            &layout,
            &mut streaming_trace(entries, 0b1111),
            30_000,
        );
        // Only metadata fetches hit DRAM.
        assert!(
            stats.dram_sectors < stats.accesses,
            "{} sectors",
            stats.dram_sectors
        );
    }

    #[test]
    fn host_native_traffic_uses_link_in_all_modes() {
        let entries = 1024u64;
        let layout = UniformLayout {
            entries,
            placement: EntryPlacement::device(4),
        };
        let mut trace = (0..).map(|i| MemRequest {
            entry: i % entries,
            sector_mask: 0b1111,
            write: false,
            to_host: true,
        });
        let stats = run(MemoryMode::Uncompressed, &layout, &mut trace, 10_000);
        assert_eq!(stats.host_native_accesses, 10_000);
        assert_eq!(stats.link_sectors_in, 40_000);
        assert_eq!(stats.dram_sectors, 0);
    }

    #[test]
    fn detailed_mode_correlates_with_fast() {
        let entries = 512 * 1024;
        let layout = UniformLayout {
            entries,
            placement: EntryPlacement::device(2),
        };
        let cfg = GpuConfig::p100();
        let exec = ExecConfig {
            lanes: 512,
            compute_cycles: 20.0,
            accesses: 40_000,
        };
        let fast = Engine::new(cfg, exec, MemoryMode::Buddy, Fidelity::Fast, &layout)
            .run(&mut streaming_trace(entries, 0b1111));
        let detailed = Engine::new(cfg, exec, MemoryMode::Buddy, Fidelity::Detailed, &layout)
            .run(&mut streaming_trace(entries, 0b1111));
        let ratio = detailed.cycles / fast.cycles;
        assert!(
            (0.5..2.0).contains(&ratio),
            "fast and detailed should agree within 2x: {ratio:.2}"
        );
    }

    #[test]
    fn writes_generate_writeback_traffic() {
        let entries = 1024 * 1024; // footprint >> L2 so dirty lines evict
        let layout = UniformLayout {
            entries,
            placement: EntryPlacement::device(2),
        };
        let mut trace = (0..).map(move |i| MemRequest {
            entry: i % entries,
            sector_mask: 0b1111,
            write: true,
            to_host: false,
        });
        let stats = run(MemoryMode::Buddy, &layout, &mut trace, 120_000);
        assert!(stats.writes == 120_000);
        assert!(
            stats.dram_sectors > 0,
            "evicted dirty lines must write back"
        );
    }

    #[test]
    fn lower_link_bandwidth_slows_buddy_workloads() {
        let entries = 1024 * 1024;
        let layout = UniformLayout {
            entries,
            placement: EntryPlacement {
                device_sectors: 2,
                buddy_sectors: 2,
            },
        };
        let exec = ExecConfig {
            lanes: 3584,
            compute_cycles: 20.0,
            accesses: 60_000,
        };
        let fast_link = Engine::new(
            GpuConfig::p100().with_link_bandwidth(150.0),
            exec,
            MemoryMode::Buddy,
            Fidelity::Fast,
            &layout,
        )
        .run(&mut streaming_trace(entries, 0b1111));
        let slow_link = Engine::new(
            GpuConfig::p100().with_link_bandwidth(50.0),
            exec,
            MemoryMode::Buddy,
            Fidelity::Fast,
            &layout,
        )
        .run(&mut streaming_trace(entries, 0b1111));
        assert!(
            slow_link.speedup_vs(&fast_link) < 0.95,
            "50 GB/s must be slower than 150 GB/s: {:.3}",
            slow_link.speedup_vs(&fast_link)
        );
    }
}
