//! Criterion benchmark for pool scaling: the same total replay work pushed
//! through a 1-shard/1-client pool versus an N-shard/N-client pool.
//!
//! Elements throughput counts total entries moved per replay, so the two
//! configurations are directly comparable; on a multi-core host the sharded
//! configuration's entries/s should approach `min(shards, cores)×` the
//! serial one.

use buddy_core::{DeviceConfig, TargetRatio};
use buddy_pool::loadgen::{replay, LoadgenConfig};
use buddy_pool::{BuddyPool, CodecKind, PoolConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use workloads::AccessProfile;

const BATCH: usize = 64;
const BATCHES_PER_CLIENT_TOTAL: u64 = 256;
const ENTRIES_PER_CLIENT: u64 = 1024;

fn replay_once(shards: usize, clients: usize) {
    let pool = BuddyPool::new(PoolConfig {
        shards,
        shard_config: DeviceConfig {
            device_capacity: 4 << 20,
            carve_out_factor: 3,
        },
        codec: CodecKind::Bpc,
    });
    let cfg = LoadgenConfig {
        clients,
        // Fixed total work: each client replays its share of the batches.
        batches_per_client: (BATCHES_PER_CLIENT_TOTAL / clients as u64).max(1),
        batch_entries: BATCH,
        entries_per_client: ENTRIES_PER_CLIENT,
        target: TargetRatio::R2,
        seed: 0xB0DD7,
        retarget_every: 0,
        churn_every: 0,
        read_pct: None,
        locked_reads: false,
    };
    let report = replay(&pool, AccessProfile::streaming_dl(), &cfg).expect("pool fits clients");
    criterion::black_box(report.entries_per_sec);
}

fn bench_pool_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool-scaling");
    let total_entries = BATCHES_PER_CLIENT_TOTAL * BATCH as u64;
    group.throughput(Throughput::Elements(total_entries));
    for (shards, clients) in [(1usize, 1usize), (4, 4)] {
        group.bench_with_input(
            BenchmarkId::new("replay", format!("{shards}s-{clients}c")),
            &(shards, clients),
            |b, &(shards, clients)| b.iter(|| replay_once(shards, clients)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pool_scaling);
criterion_main!(benches);
