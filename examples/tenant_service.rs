//! Multi-tenant service walkthrough: two tenants with different quotas
//! and admission policies share one [`BuddyService`]; the quota-pinched
//! tenant gets demoted down the target-ratio ladder, a cross-tenant poke
//! is denied, an allocation changes owners, and the telemetry ledger
//! accounts for all of it.
//!
//! Run with `cargo run --example tenant_service`.

use buddy_compression::buddy_service::{
    AdmissionPolicy, BuddyService, CodecKind, DeviceConfig, PoolConfig, ServiceError, TargetRatio,
    ENTRY_BYTES,
};

fn main() {
    let service = BuddyService::new(PoolConfig {
        shards: 2,
        shard_config: DeviceConfig {
            device_capacity: 4 << 20,
            carve_out_factor: 3,
        },
        codec: CodecKind::Bpc,
    });

    // "prod" has room to spare and strict admission; "batch" holds quota
    // for only three full-price R2 allocations but may be demoted to a
    // more aggressive target instead of failing.
    let prod = service
        .register_tenant("prod", 512 * 1024, AdmissionPolicy::Reject)
        .expect("fresh name");
    let batch_quota = 3 * 256 * TargetRatio::R2.device_bytes_per_entry() as u64
        + 256 * TargetRatio::R4.device_bytes_per_entry() as u64;
    let batch = service
        .register_tenant("batch", batch_quota, AdmissionPolicy::Demote)
        .expect("fresh name");

    // Prod allocates and writes normally.
    let model = service
        .alloc(prod, "model", 512, TargetRatio::R2)
        .expect("within quota");
    let payload = vec![[0x42u8; ENTRY_BYTES]; 64];
    service
        .write_entries(prod, model.id, 0, &payload)
        .expect("owner writes");

    // Batch burns through its quota: three grants at the asked target,
    // then the ladder demotes the fourth, then admission fails.
    let mut jobs = Vec::new();
    for i in 0..5 {
        match service.alloc(batch, &format!("job-{i}"), 256, TargetRatio::R2) {
            Ok(grant) if grant.demoted => {
                println!(
                    "job-{i}: demoted to {:?} ({} B/entry instead of {})",
                    grant.target,
                    grant.target.device_bytes_per_entry(),
                    TargetRatio::R2.device_bytes_per_entry()
                );
                jobs.push(grant.id);
            }
            Ok(grant) => {
                println!("job-{i}: granted at {:?}", grant.target);
                jobs.push(grant.id);
            }
            Err(ServiceError::QuotaExceeded {
                requested,
                headroom,
            }) => println!("job-{i}: rejected — needs {requested} B, headroom {headroom} B"),
            Err(e) => println!("job-{i}: {e}"),
        }
    }

    // Tenancy is enforced: batch cannot touch prod's model...
    match service.free(batch, model.id) {
        Err(ServiceError::CrossTenant { .. }) => println!("cross-tenant free denied"),
        other => panic!("expected CrossTenant, got {other:?}"),
    }
    // ...until prod deliberately hands it over. The recipient admits
    // under its quota, so the full batch tenant can't take it — but after
    // a job is freed the transfer goes through and the old handle dies.
    match service.transfer(prod, model.id, batch) {
        Err(ServiceError::QuotaExceeded {
            requested,
            headroom,
        }) => println!("transfer rejected first: needs {requested} B, batch headroom {headroom} B"),
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    let rows = service.telemetry().snapshot();
    assert_eq!(
        rows[0].used_bytes,
        512 * 64,
        "rejected transfer moved nothing"
    );
    drop(rows);
    // Make room on the batch side (free the demoted job), shrink the
    // model's reservation, retry — and watch the old handle die.
    if let Some(id) = jobs.pop() {
        service.free(batch, id).expect("owner frees");
    }
    service
        .retarget(prod, model.id, TargetRatio::ZeroPage16)
        .expect("shrinking always fits the owner's quota");
    let new_id = service
        .transfer(prod, model.id, batch)
        .expect("shrunk allocation fits batch's recycled headroom");
    println!("transfer accepted after retargeting the model down");
    assert!(matches!(
        service.write_entries(prod, model.id, 0, &payload),
        Err(ServiceError::BadHandle)
    ));
    assert!(service.write_entries(batch, new_id, 0, &payload).is_ok());

    // The ledger saw everything.
    println!("\ntenant ledger:");
    for row in service.telemetry().snapshot() {
        println!(
            "  {:>5}: allocs {} rejections {} demotions {} denials {} used {} B of {} B \
             (effective ratio {:.2})",
            row.name,
            row.allocs,
            row.rejections,
            row.demotions,
            row.cross_tenant_denials,
            row.used_bytes,
            row.quota_bytes,
            row.effective_ratio()
        );
    }
}
