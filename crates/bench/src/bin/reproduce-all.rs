//! Regenerates every table and figure of the paper into `results/`.
//! Pass --quick for a reduced smoke run.

fn main() -> std::io::Result<()> {
    let cfg = buddy_bench::RunConfig::from_args();
    buddy_bench::reproduce_all(&cfg)
}
