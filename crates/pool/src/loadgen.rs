//! Concurrent trace-replay load generator for [`BuddyPool`].
//!
//! Replays `workloads` access traces from `N` client threads against a
//! pool, the multi-tenant operating regime the paper's §5 performance model
//! aggregates over. Each client owns one allocation (its private partition
//! of the replayed footprint) and drives it with a
//! [`TraceGenerator::per_client`] stream seeded deterministically from
//! `(seed, client)`, so a replay's *work* — every access, every written
//! byte, every traffic counter — is exactly reproducible; only wall-clock
//! timing varies.
//!
//! Throughput is reported as entries/s and logical GB/s. Latency is sampled
//! per **entry-batch** (one batched `write_entries`/`read_entries` call),
//! not per entry: single-entry timings at ~100 ns are dominated by timer
//! and scheduling noise, while a batch is a large enough unit of work for
//! wall-clock percentiles (p50/p95/p99/p99.9) to be meaningful. Each client
//! records into its own fixed-size [`buddy_obs::Histogram`] (no per-sample
//! allocation, no end-of-run sort) and the snapshots are merged, so the
//! replay's memory cost no longer grows with `batches_per_client`;
//! percentile error is bounded by the histogram's documented 12.5 %
//! bucket width.
//!
//! With [`LoadgenConfig::retarget_every`] set, each client additionally
//! runs the adaptive re-targeting sweep between batches (window → policy →
//! [`BuddyPool::retarget`]), so migrations execute concurrently with other
//! clients' reads and writes on the same shards — the harness's standing
//! exercise of live migration under contention (DESIGN.md §8). With
//! [`LoadgenConfig::churn_every`] set, clients also free and re-allocate
//! their footprint mid-replay (DL-iteration activation turnover), driving
//! the shards' free-list allocators concurrently with entry traffic
//! (DESIGN.md §9).
//!
//! # Example
//!
//! ```
//! use buddy_pool::{BuddyPool, PoolConfig};
//! use buddy_pool::loadgen::{replay, LoadgenConfig};
//! use workloads::AccessProfile;
//!
//! let pool = BuddyPool::new(PoolConfig { shards: 2, ..PoolConfig::default() });
//! let cfg = LoadgenConfig {
//!     clients: 2,
//!     batches_per_client: 8,
//!     batch_entries: 16,
//!     entries_per_client: 256,
//!     ..LoadgenConfig::default()
//! };
//! let report = replay(&pool, AccessProfile::streaming_dl(), &cfg)?;
//! assert_eq!(report.entries_processed, 2 * 8 * 16);
//! assert!(report.entries_per_sec > 0.0);
//! # Ok::<(), buddy_pool::DeviceError>(())
//! ```

use crate::{
    AccessStats, AdaptConfig, BuddyPool, DeviceError, Entry, PoolAllocId, RetargetPolicy,
    TargetRatio, ENTRY_BYTES,
};
use buddy_obs::{Histogram, HistogramSnapshot};
use std::time::{Duration, Instant};
use workloads::entry_gen::splitmix64;
use workloads::{AccessProfile, TraceGenerator};

/// Configuration of one replay run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadgenConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Batched operations each client issues.
    pub batches_per_client: u64,
    /// Entries per batched operation.
    pub batch_entries: usize,
    /// Footprint (in entries) of each client's private allocation.
    pub entries_per_client: u64,
    /// Target compression ratio of the replayed allocations.
    pub target: TargetRatio,
    /// Master seed; every client derives its own stream from it.
    pub seed: u64,
    /// Re-targeting sweep period in batches (`0` disables the sweep).
    /// Every `retarget_every` batches a client pauses between operations,
    /// reads its allocation's [`StateWindow`](crate::StateWindow) and
    /// applies the default [`RetargetPolicy`]'s recommendation via
    /// [`BuddyPool::retarget`] — so a replay with the sweep enabled
    /// exercises live migration *concurrent* with other clients hammering
    /// the same shards. Decisions depend only on the client's own
    /// deterministic write stream, so each client performs the same
    /// migration sequence on every run, and since a migration re-encodes
    /// only its own allocation (alloc-new/re-encode/free-old — no
    /// neighbour is relocated), **every** counter, including
    /// [`AccessStats::moved_sectors`], replays identically regardless of
    /// thread interleaving.
    pub retarget_every: u64,
    /// Churn period in batches (`0` disables churn). Every `churn_every`
    /// batches a client **frees its allocation and allocates a fresh one**
    /// of the same size at the configured target — the DL-iteration
    /// activation-turnover regime, exercised mid-replay while other
    /// clients keep hammering the same shards. The replacement starts
    /// zeroed (like any fresh allocation) and the freed space returns to
    /// the shard's free lists, so a churning replay holds the pool at a
    /// steady footprint instead of leaking a new region per cycle.
    pub churn_every: u64,
    /// Optional read percentage override in `0..=100`. `None` (default)
    /// takes the read/write decision from the access profile's trace;
    /// `Some(p)` forces each batch to be a read with probability `p`% from
    /// a deterministic per-`(seed, client, batch)` stream — how the bench
    /// harness dials in a 95/5 read-heavy mix independent of the profile.
    pub read_pct: Option<u8>,
    /// Route read batches through the shard-mutex baseline
    /// ([`BuddyPool::read_entries_collect_locked`]) instead of the
    /// lock-free snapshot path — the "before" side of the
    /// locked-vs-snapshot scaling comparison. Writes are unaffected.
    pub locked_reads: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            clients: 4,
            batches_per_client: 512,
            batch_entries: 64,
            entries_per_client: 4096,
            target: TargetRatio::R2,
            seed: 0xB0DD7,
            retarget_every: 0,
            churn_every: 0,
            read_pct: None,
            locked_reads: false,
        }
    }
}

/// Latency percentiles over per-batch samples, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyPercentiles {
    /// Median batch latency.
    pub p50_us: f64,
    /// 95th-percentile batch latency.
    pub p95_us: f64,
    /// 99th-percentile batch latency.
    pub p99_us: f64,
    /// 99.9th-percentile batch latency.
    pub p999_us: f64,
    /// Largest single batch latency (exact, not bucketed).
    pub max_us: f64,
}

impl LatencyPercentiles {
    /// Reads the standard percentile set out of a histogram snapshot.
    /// Every estimate obeys the histogram's one-sided ≤ 12.5 % bound; the
    /// max is exact.
    pub fn from_snapshot(snap: &HistogramSnapshot) -> Self {
        Self {
            p50_us: snap.percentile_us(0.50),
            p95_us: snap.percentile_us(0.95),
            p99_us: snap.percentile_us(0.99),
            p999_us: snap.percentile_us(0.999),
            max_us: snap.max() as f64 / 1_000.0,
        }
    }
}

/// Result of one replay run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Shards in the pool the run drove.
    pub shards: usize,
    /// Client threads that replayed.
    pub clients: usize,
    /// Total 128 B entries moved (reads + writes).
    pub entries_processed: u64,
    /// Total batched operations issued.
    pub batches: u64,
    /// Wall-clock duration of the replay phase (allocations excluded).
    pub elapsed: Duration,
    /// Aggregate throughput in entries per second.
    pub entries_per_sec: f64,
    /// Aggregate logical (uncompressed) throughput in GB/s (10⁹ bytes).
    pub logical_gb_per_sec: f64,
    /// Per-batch latency percentiles across all clients.
    pub latency: LatencyPercentiles,
    /// The merged per-batch latency distribution the percentiles were read
    /// from — harnesses can [`merge`](HistogramSnapshot::merge) it across
    /// runs or absorb it into a `buddy_obs` metrics registry.
    pub latency_hist: HistogramSnapshot,
    /// Alloc/free churn cycles the clients performed
    /// ([`LoadgenConfig::churn_every`]; `0` when churn is disabled).
    pub churn_cycles: u64,
    /// Entry batches that returned a [`DeviceError`] instead of
    /// completing. Errored batches are excluded from the latency
    /// histogram and from `entries_processed`, and the count is surfaced
    /// here so a sweep can *assert* on it — previously such batches were
    /// silently dropped, letting a replay under-count real traffic
    /// regressions. Non-churn sweeps must see zero.
    pub errored_batches: u64,
    /// Traffic this replay added to the pool (delta of the merged
    /// counters, exact — taken after a [`BuddyPool::drain`] barrier).
    pub stats: AccessStats,
}

/// Linearly interpolated percentile (quantile type 7, the R/NumPy
/// default) of an **ascending-sorted** sample of nanosecond latencies,
/// returned in microseconds. Returns 0 for an empty sample.
///
/// The previous nearest-rank rule biased small-sample upper percentiles
/// low: with 32 samples per client, `ceil(0.99 × 32) = 32` made "p99" the
/// plain maximum of rank 32 out of 32 — every tail percentile collapsed
/// onto the same order statistic. Interpolating on `q · (n − 1)` keeps
/// distinct quantiles distinct down to the smallest samples.
pub fn percentile_us(sorted_nanos: &[u64], q: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted_nanos.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = (lo + 1).min(sorted_nanos.len() - 1);
    let frac = pos - lo as f64;
    let nanos =
        sorted_nanos[lo] as f64 + frac * (sorted_nanos[hi] as f64 - sorted_nanos[lo] as f64);
    nanos / 1_000.0
}

/// The write palette: a ring of entries spanning the compressibility
/// spectrum (zero / constant / ramp / noise), generated deterministically
/// from `seed`. Sized `ring + batch` so any batch is a contiguous window —
/// write paths borrow straight from the palette with no per-op copying.
///
/// The seed is diffused through splitmix64 before driving the LCG: the
/// previous `seed | 1` initialization collapsed seeds differing only in
/// bit 0 — exactly the adjacent per-client seeds the replay hands out — to
/// byte-identical palettes, so two clients replayed identical traffic.
fn write_palette(seed: u64, batch: usize) -> Vec<Entry> {
    const RING: usize = 256;
    let mut palette = Vec::with_capacity(RING + batch);
    let mut state = splitmix64(seed);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    for slot in 0..RING {
        let mut entry = [0u8; ENTRY_BYTES];
        match slot % 4 {
            0 => {} // zero entry
            1 => {
                let word = (slot as u32).wrapping_mul(0x9E37_79B9); // lint-allow(lossy-cast): intentional low-bit mixing for the synthetic palette
                for c in entry.chunks_exact_mut(4) {
                    c.copy_from_slice(&word.to_le_bytes());
                }
            }
            2 => {
                for (j, c) in entry.chunks_exact_mut(4).enumerate() {
                    let v = 1_000_000u32.wrapping_add((slot * 64 + j * 3) as u32); // lint-allow(lossy-cast): intentional low-bit mixing for the synthetic palette
                    c.copy_from_slice(&v.to_le_bytes());
                }
            }
            _ => {
                for b in entry.iter_mut() {
                    *b = (next() >> 33) as u8; // lint-allow(lossy-cast): intentionally keeps 8 bits of the mixed stream
                }
            }
        }
        palette.push(entry);
    }
    // Mirror the head onto the tail so window `i` equals window `i % RING`.
    for i in 0..batch {
        let e = palette[i];
        palette.push(e);
    }
    palette
}

/// Replays `cfg.clients` concurrent trace streams with `profile`'s access
/// statistics against `pool`.
///
/// Setup (outside the timed window): each client gets one private
/// allocation of `cfg.entries_per_client` entries. Replay (timed): each
/// client walks its own deterministic [`TraceGenerator`] stream; every
/// access becomes one batched operation of `cfg.batch_entries` contiguous
/// entries anchored at the access's entry index (clamped to the
/// allocation): writes draw from a seeded compressibility palette, reads
/// decompress into a reusable buffer (read *correctness* under concurrency
/// is covered by `tests/pool_equivalence.rs`, not re-checked in the timed
/// loop). Latency is sampled per batch; see the module docs for why.
///
/// # Errors
///
/// Returns the first *structural* [`DeviceError`] any client hits
/// (allocation failure when the pool is too small for
/// `clients × entries_per_client`, or a failed churn/retarget cycle).
/// Entry-batch errors do **not** abort the replay: they are counted into
/// [`LoadReport::errored_batches`] and excluded from the latency sample,
/// so a sweep can assert the count instead of silently losing batches.
///
/// # Panics
///
/// Panics if `cfg` is degenerate: zero clients, zero batches, a zero-entry
/// batch, or a batch larger than the per-client footprint.
pub fn replay(
    pool: &BuddyPool,
    profile: AccessProfile,
    cfg: &LoadgenConfig,
) -> Result<LoadReport, DeviceError> {
    assert!(cfg.clients > 0, "loadgen needs at least one client");
    assert!(
        cfg.batches_per_client > 0,
        "loadgen needs at least one batch"
    );
    assert!(
        cfg.batch_entries > 0 && cfg.batch_entries as u64 <= cfg.entries_per_client,
        "batch ({}) must be 1..=entries_per_client ({})",
        cfg.batch_entries,
        cfg.entries_per_client
    );

    let handles: Vec<PoolAllocId> = (0..cfg.clients)
        .map(|c| {
            pool.alloc(
                &format!("loadgen-client-{c}"),
                cfg.entries_per_client,
                cfg.target,
            )
        })
        .collect::<Result<_, _>>()?;

    let before = pool.drain();
    let started = Instant::now();

    let per_client: Vec<Result<(HistogramSnapshot, u64), DeviceError>> =
        std::thread::scope(|scope| {
            let workers: Vec<_> = handles
                .iter()
                .enumerate()
                .map(|(c, &handle)| {
                    let cfg = *cfg;
                    scope.spawn(move || client_run(pool, handle, profile, &cfg, c as u64))
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("loadgen client panicked")) // lint-allow(no-unwrap): a client panic must fail the whole harness run
                .collect()
        });

    let elapsed = started.elapsed();
    let after = pool.drain();

    let mut latency_hist = HistogramSnapshot::default();
    let mut errored_batches = 0u64;
    for result in per_client {
        let (hist, errored) = result?;
        latency_hist.merge(&hist);
        errored_batches += errored;
    }

    let batches = cfg.clients as u64 * cfg.batches_per_client;
    let entries_processed = (batches - errored_batches) * cfg.batch_entries as u64;
    let secs = elapsed.as_secs_f64().max(1e-9);
    // Every cycle either completed or surfaced its error above, so the
    // count is a closed form, not something the clients need to report.
    let churn_cycles = cfg
        .batches_per_client
        .checked_div(cfg.churn_every)
        .map_or(0, |cycles| cfg.clients as u64 * cycles);
    Ok(LoadReport {
        shards: pool.shard_count(),
        clients: cfg.clients,
        entries_processed,
        batches,
        elapsed,
        entries_per_sec: entries_processed as f64 / secs,
        logical_gb_per_sec: (entries_processed * ENTRY_BYTES as u64) as f64 / secs / 1e9,
        latency: LatencyPercentiles::from_snapshot(&latency_hist),
        latency_hist,
        churn_cycles,
        errored_batches,
        stats: stats_delta(&before, &after),
    })
}

/// One client thread: walks its deterministic trace, issuing one batched
/// op per access and timing each batch into a thread-local histogram.
/// Returns the latency snapshot plus the count of batches that errored
/// (counted, skipped from the sample, never silently dropped).
fn client_run(
    pool: &BuddyPool,
    mut handle: PoolAllocId,
    profile: AccessProfile,
    cfg: &LoadgenConfig,
    client: u64,
) -> Result<(HistogramSnapshot, u64), DeviceError> {
    let palette = write_palette(cfg.seed.wrapping_add(client), cfg.batch_entries);
    let ring = palette.len() - cfg.batch_entries;
    let mut trace = TraceGenerator::per_client(profile, cfg.entries_per_client, cfg.seed, client);
    let mut read_buf = vec![[0u8; ENTRY_BYTES]; cfg.batch_entries];
    let latencies = Histogram::new();
    let mut errored_batches = 0u64;
    let max_start = cfg.entries_per_client - cfg.batch_entries as u64;
    let policy = RetargetPolicy::new(AdaptConfig::default());
    let mut current_target = cfg.target;
    let mut cycle = 0u64;

    for op in 0..cfg.batches_per_client {
        let access = trace.next().expect("trace generators are infinite"); // lint-allow(no-unwrap): trace generators are infinite
        let start = access.entry.min(max_start);
        // The profile decides read-vs-write unless `read_pct` pins the mix
        // (deterministic per (seed, client, batch), like everything else).
        let is_write = match cfg.read_pct {
            Some(pct) => {
                let roll = splitmix64(cfg.seed ^ (client << 32).wrapping_add(op)) % 100;
                roll >= u64::from(pct.min(100))
            }
            None => access.write,
        };
        let timer = Instant::now();
        let outcome = if is_write {
            let window = &palette[(op as usize) % ring..][..cfg.batch_entries];
            pool.write_entries(handle, start, window)
        } else if cfg.locked_reads {
            pool.read_entries_collect_locked(handle, start, &mut read_buf)
                .map(|_| ())
        } else {
            pool.read_entries(handle, start, &mut read_buf)
        };
        match outcome {
            Ok(()) => {
                std::hint::black_box(&read_buf);
                latencies.record_duration(timer.elapsed());
            }
            // An errored batch is counted and excluded from the latency
            // sample — not propagated (that would abort the whole replay
            // on a transient race) and not dropped (that silently
            // under-counted real regressions).
            Err(_) => errored_batches += 1,
        }

        // Between batches: the optional re-targeting sweep. Outside the
        // latency sample (migration is a background maintenance cost, not
        // an access), inside the replay window (it contends for the shard
        // lock exactly like production migration would).
        if cfg.retarget_every > 0 && (op + 1) % cfg.retarget_every == 0 {
            let window = pool.state_window(handle)?;
            if let Some(next) = policy.recommend(current_target, &window) {
                pool.retarget(handle, next)?;
                current_target = next;
            }
        }

        // Between batches: the optional churn cycle — the client releases
        // its allocation and takes a fresh one of the same size, the
        // DL-iteration activation turnover. Freed space returns to the
        // shard free lists mid-replay while other clients keep accessing
        // the same shards; the replacement starts zeroed and back on the
        // configured target.
        if cfg.churn_every > 0 && (op + 1) % cfg.churn_every == 0 {
            pool.free(handle)?;
            cycle += 1;
            handle = pool.alloc(
                &format!("loadgen-client-{client}-cycle-{cycle}"),
                cfg.entries_per_client,
                cfg.target,
            )?;
            current_target = cfg.target;
        }
    }
    Ok((latencies.snapshot(), errored_batches))
}

/// Field-wise difference of two monotonically increasing counter sets.
fn stats_delta(before: &AccessStats, after: &AccessStats) -> AccessStats {
    AccessStats {
        reads_device_only: after.reads_device_only - before.reads_device_only,
        reads_with_buddy: after.reads_with_buddy - before.reads_with_buddy,
        writes_device_only: after.writes_device_only - before.writes_device_only,
        writes_with_buddy: after.writes_with_buddy - before.writes_with_buddy,
        device_sectors: after.device_sectors - before.device_sectors,
        buddy_sectors: after.buddy_sectors - before.buddy_sectors,
        retargets: after.retargets - before.retargets,
        moved_sectors: after.moved_sectors - before.moved_sectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceConfig, PoolConfig};

    fn pool(shards: usize) -> BuddyPool {
        BuddyPool::new(PoolConfig {
            shards,
            shard_config: DeviceConfig {
                device_capacity: 4 << 20,
                carve_out_factor: 3,
            },
            codec: crate::CodecKind::Bpc,
        })
    }

    fn quick_cfg(clients: usize) -> LoadgenConfig {
        LoadgenConfig {
            clients,
            batches_per_client: 32,
            batch_entries: 16,
            entries_per_client: 512,
            ..LoadgenConfig::default()
        }
    }

    #[test]
    fn replay_accounts_every_entry() {
        let pool = pool(2);
        let report = replay(&pool, AccessProfile::streaming_dl(), &quick_cfg(3)).unwrap();
        assert_eq!(report.clients, 3);
        assert_eq!(report.shards, 2);
        assert_eq!(report.batches, 3 * 32);
        assert_eq!(report.entries_processed, 3 * 32 * 16);
        assert_eq!(
            report.errored_batches, 0,
            "a non-churn sweep must complete every batch"
        );
        // One traffic-counter access per entry moved.
        assert_eq!(report.stats.total_accesses(), report.entries_processed);
        assert!(report.entries_per_sec > 0.0);
        assert!(report.logical_gb_per_sec > 0.0);
        assert!(report.latency.p50_us <= report.latency.p95_us);
        assert!(report.latency.p95_us <= report.latency.p99_us);
        assert!(report.latency.p99_us <= report.latency.p999_us);
        assert!(report.latency.p999_us <= report.latency.max_us);
        assert!(report.latency.max_us > 0.0);
    }

    #[test]
    fn replay_work_is_deterministic() {
        // Same seed on fresh pools ⇒ identical traffic, whatever the
        // thread interleaving was.
        let a = replay(&pool(4), AccessProfile::random_sparse(), &quick_cfg(4)).unwrap();
        let b = replay(&pool(4), AccessProfile::random_sparse(), &quick_cfg(4)).unwrap();
        assert_eq!(a.stats, b.stats);
        // Different seed ⇒ different access mix (with overwhelming odds).
        let other = LoadgenConfig {
            seed: 7,
            ..quick_cfg(4)
        };
        let c = replay(&pool(4), AccessProfile::random_sparse(), &other).unwrap();
        assert_ne!(a.stats, c.stats);
    }

    #[test]
    fn stats_are_a_delta_not_a_total() {
        let pool = pool(1);
        let first = replay(&pool, AccessProfile::stencil(), &quick_cfg(1)).unwrap();
        let second = replay(&pool, AccessProfile::stencil(), &quick_cfg(1)).unwrap();
        // The second replay allocates fresh regions but reports only its
        // own traffic, not the pool's lifetime counters.
        assert_eq!(first.stats.total_accesses(), second.stats.total_accesses());
        assert_eq!(
            pool.stats().total_accesses(),
            first.stats.total_accesses() + second.stats.total_accesses()
        );
    }

    #[test]
    fn undersized_pool_reports_allocation_failure() {
        let tiny = BuddyPool::new(PoolConfig {
            shards: 1,
            shard_config: DeviceConfig {
                device_capacity: 4096,
                carve_out_factor: 3,
            },
            codec: crate::CodecKind::Bpc,
        });
        let err = replay(&tiny, AccessProfile::stencil(), &quick_cfg(2)).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfDeviceMemory { .. }));
    }

    #[test]
    fn percentiles_interpolate_between_order_statistics() {
        let sample: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        // Type-7: position q·(n−1) into the sorted sample, interpolated.
        assert_eq!(percentile_us(&sample, 0.50), 50.5);
        assert!((percentile_us(&sample, 0.95) - 95.05).abs() < 1e-9);
        assert!((percentile_us(&sample, 0.99) - 99.01).abs() < 1e-9);
        assert_eq!(percentile_us(&sample, 1.0), 100.0);
        assert_eq!(percentile_us(&sample, 0.0), 1.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
        assert_eq!(percentile_us(&[5000], 0.99), 5.0);
    }

    #[test]
    fn small_sample_tail_percentiles_no_longer_collapse() {
        // Regression for the nearest-rank bias: with 32 samples,
        // ceil(0.99·32) = 32 made p99 the plain maximum, identical to p100
        // and far from distinct from p95. Interpolation keeps the tail
        // quantiles strictly ordered on a strictly increasing sample.
        let sample: Vec<u64> = (1..=32).map(|i| i * 1000).collect();
        let p95 = percentile_us(&sample, 0.95);
        let p99 = percentile_us(&sample, 0.99);
        let p100 = percentile_us(&sample, 1.0);
        assert!(p95 < p99, "p95 {p95} must stay below p99 {p99}");
        assert!(p99 < p100, "p99 {p99} must stay below the max {p100}");
    }

    #[test]
    fn retarget_sweep_fixes_mis_targeted_allocations() {
        // Clients start on the 16x zero-page target, but the palette is
        // only ~25% zero entries: the sweep must demote each client's
        // allocation (to a standard target) exactly once and then hold.
        let pool = pool(2);
        let cfg = LoadgenConfig {
            target: TargetRatio::ZeroPage16,
            retarget_every: 4,
            batches_per_client: 96,
            ..quick_cfg(3)
        };
        let report = replay(&pool, AccessProfile::streaming_dl(), &cfg).unwrap();
        assert_eq!(
            report.stats.retargets, 3,
            "each client demotes its zero-page allocation exactly once"
        );
        assert!(report.stats.moved_sectors > 0);
        // Sweeps never lose data: each allocation still answers reads and
        // no longer sits on the zero-page target.
        assert_eq!(report.entries_processed, 3 * 96 * 16);
    }

    #[test]
    fn retarget_sweep_is_deterministic_and_off_by_default() {
        let sweep_cfg = LoadgenConfig {
            retarget_every: 8,
            ..quick_cfg(4)
        };
        let a = replay(&pool(4), AccessProfile::stencil(), &sweep_cfg).unwrap();
        let b = replay(&pool(4), AccessProfile::stencil(), &sweep_cfg).unwrap();
        // Every per-client decision — accesses, states, migration count,
        // and since a migration re-encodes only its own allocation, even
        // `moved_sectors` — replays identically whatever the scheduler did.
        assert_eq!(
            a.stats, b.stats,
            "sweep decisions and costs must replay identically for a fixed seed"
        );
        assert!(a.stats.retargets > 0, "the sweep must actually migrate");
        let off = replay(&pool(4), AccessProfile::stencil(), &quick_cfg(4)).unwrap();
        assert_eq!(off.stats.retargets, 0, "no sweep without opting in");
        assert_eq!(off.stats.moved_sectors, 0);
    }

    #[test]
    fn adjacent_seeds_generate_distinct_palettes() {
        // Regression: the palette generator used `state = seed | 1`, so
        // seeds differing only in bit 0 — exactly the adjacent per-client
        // seeds `seed + client` hands out — produced byte-identical
        // palettes and two clients replayed identical traffic.
        for seed in [0u64, 2, 0xB0DD6, 0xFFFF_FFFF_FFFF_FFFE] {
            assert_ne!(
                write_palette(seed, 16),
                write_palette(seed | 1, 16),
                "palettes for seeds {seed} and {} must differ",
                seed | 1
            );
        }
        // Still deterministic for a fixed seed.
        assert_eq!(write_palette(42, 16), write_palette(42, 16));
    }

    #[test]
    fn churn_mode_turns_the_footprint_over_without_leaking() {
        let pool = pool(2);
        let cfg = LoadgenConfig {
            churn_every: 8,
            batches_per_client: 64,
            ..quick_cfg(3)
        };
        let report = replay(&pool, AccessProfile::streaming_dl(), &cfg).unwrap();
        assert_eq!(report.churn_cycles, 3 * (64 / 8));
        // A client only churns its *own* allocation between its own
        // batches, so even under churn no batch hits a dead handle.
        assert_eq!(report.errored_batches, 0);
        assert_eq!(report.entries_processed, 3 * 64 * 16);
        // Every client ends with exactly one live allocation: all churned
        // regions were freed, so the pool's footprint is the steady-state
        // 3 × 512 entries, not 3 × (cycles + 1) × 512.
        let live: usize = pool.occupancy().iter().map(|o| o.allocations).sum();
        assert_eq!(live, 3);
        assert_eq!(
            pool.device_used(),
            3 * 512 * cfg.target.device_bytes_per_entry() as u64
        );
    }

    #[test]
    fn churn_replay_is_deterministic() {
        let cfg = LoadgenConfig {
            churn_every: 4,
            retarget_every: 8,
            ..quick_cfg(4)
        };
        let a = replay(&pool(4), AccessProfile::stencil(), &cfg).unwrap();
        let b = replay(&pool(4), AccessProfile::stencil(), &cfg).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.churn_cycles, b.churn_cycles);
        let off = replay(&pool(4), AccessProfile::stencil(), &quick_cfg(4)).unwrap();
        assert_eq!(off.churn_cycles, 0, "no churn without opting in");
    }

    #[test]
    fn read_pct_overrides_the_profile_mix() {
        // 100% reads: no write traffic at all, whatever the profile says.
        let all_reads = LoadgenConfig {
            read_pct: Some(100),
            ..quick_cfg(2)
        };
        let report = replay(&pool(2), AccessProfile::streaming_dl(), &all_reads).unwrap();
        assert_eq!(report.errored_batches, 0);
        assert_eq!(report.stats.writes_device_only, 0);
        assert_eq!(report.stats.writes_with_buddy, 0);
        assert_eq!(report.stats.total_accesses(), report.entries_processed);
        // A 95/5 mix produces *some* writes but stays read-dominated.
        let read_heavy = LoadgenConfig {
            read_pct: Some(95),
            batches_per_client: 128,
            ..quick_cfg(2)
        };
        let report = replay(&pool(2), AccessProfile::streaming_dl(), &read_heavy).unwrap();
        let writes = report.stats.writes_device_only + report.stats.writes_with_buddy;
        let reads = report.stats.reads_device_only + report.stats.reads_with_buddy;
        assert!(writes > 0, "a 95/5 mix still writes");
        assert!(
            reads > writes * 8,
            "the mix must be read-dominated: {reads} reads vs {writes} writes"
        );
    }

    #[test]
    fn locked_reads_baseline_does_the_same_work() {
        // The mutex-baseline read path must complete the identical replay
        // with identical traffic — it is the same semantics, only slower
        // under contention.
        let snapshot_cfg = LoadgenConfig {
            read_pct: Some(95),
            ..quick_cfg(3)
        };
        let locked_cfg = LoadgenConfig {
            locked_reads: true,
            ..snapshot_cfg
        };
        let snapshot = replay(&pool(2), AccessProfile::streaming_dl(), &snapshot_cfg).unwrap();
        let locked = replay(&pool(2), AccessProfile::streaming_dl(), &locked_cfg).unwrap();
        assert_eq!(snapshot.stats, locked.stats);
        assert_eq!(locked.errored_batches, 0);
    }

    #[test]
    #[should_panic(expected = "batch")]
    fn oversized_batch_is_rejected() {
        let cfg = LoadgenConfig {
            batch_entries: 1024,
            entries_per_client: 512,
            ..quick_cfg(1)
        };
        let _ = replay(&pool(1), AccessProfile::stencil(), &cfg);
    }
}
