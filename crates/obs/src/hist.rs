//! Lock-free log-bucketed latency histograms.
//!
//! # Layout
//!
//! A [`Histogram`] is 256 `AtomicU64` buckets (2 KB of counters) plus a
//! `sum` and `max` atomic. Values `0..8` index their own bucket exactly
//! (the *linear region*); from 8 upward each power-of-two octave is split
//! into 8 sub-buckets (3 bits of mantissa), so bucket width is always
//! ⅛ of the bucket's base octave. 248 logarithmic buckets cover octaves
//! 2³..2³⁴; values at or above [`SATURATION_VALUE`] (2³⁴ ns ≈ 17.2 s when
//! recording nanoseconds) saturate into the top bucket, with the exact
//! maximum still tracked separately.
//!
//! # Error bound
//!
//! [`HistogramSnapshot::value_at`] walks the cumulative counts to the
//! nearest-rank bucket and returns the bucket's highest contained value,
//! capped at the recorded maximum. The true nearest-rank order statistic
//! `x` lies in the same bucket, so the estimate `e` satisfies
//! `x ≤ e ≤ bucket_high ≤ bucket_low · (1 + ⅛) ≤ x · 1.125`: estimates
//! are **never below** the exact percentile and at most **12.5 % above**
//! it (exact in the linear region). The bound holds for samples below
//! [`SATURATION_VALUE`]; saturated samples report at most the recorded
//! maximum. `crates/obs/tests/hist_oracle.rs` pins this bound against a
//! sorted-vec oracle by property testing, including merge
//! associativity/commutativity.
//!
//! # Concurrency
//!
//! Recording is wait-free (`fetch_add`/`fetch_max`, no CAS loops). A
//! snapshot taken while writers are active may split an in-flight update
//! across `counts` and `sum`; totals are exact once writers are quiescent
//! — the same contract as the pool's traffic counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Total bucket count (8 linear + 248 logarithmic).
pub const BUCKET_COUNT: usize = 256;

/// Mantissa bits retained per value: each octave splits into
/// `2^SUB_BITS = 8` sub-buckets.
const SUB_BITS: u32 = 3;

/// Sub-buckets per octave.
const SUB_PER_OCTAVE: u64 = 1 << SUB_BITS;

/// Values below this are recorded exactly (one bucket per value).
const LINEAR_LIMIT: u64 = 8;

/// Smallest value that saturates into the top bucket. With nanosecond
/// samples this is ≈ 17.2 s — far beyond any latency the harnesses
/// measure; saturated samples still update the exact `max`.
pub const SATURATION_VALUE: u64 = 1 << 34;

/// Bucket index of a value.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        return v as usize;
    }
    let exp = u64::from(63 - v.leading_zeros());
    let sub = (v >> (exp - u64::from(SUB_BITS))) & (SUB_PER_OCTAVE - 1);
    let idx = LINEAR_LIMIT + (exp - u64::from(SUB_BITS)) * SUB_PER_OCTAVE + sub;
    (idx as usize).min(BUCKET_COUNT - 1)
}

/// Lowest value mapping to bucket `i`.
fn bucket_low(i: usize) -> u64 {
    let i = i as u64;
    if i < LINEAR_LIMIT {
        return i;
    }
    let octave = (i - LINEAR_LIMIT) / SUB_PER_OCTAVE;
    let sub = (i - LINEAR_LIMIT) % SUB_PER_OCTAVE;
    let exp = u32::try_from(octave).unwrap_or(u32::MAX) + SUB_BITS;
    (1u64 << exp) + sub * (1u64 << (exp - SUB_BITS))
}

/// Highest value mapping to bucket `i`. The top bucket is open-ended
/// (saturation); its reported value is capped at the recorded maximum.
fn bucket_high(i: usize) -> u64 {
    if i + 1 >= BUCKET_COUNT {
        u64::MAX
    } else {
        bucket_low(i + 1) - 1
    }
}

/// A fixed-footprint (~2 KB) lock-free histogram of `u64` samples.
///
/// Threads record concurrently through a shared reference; aggregation
/// happens by taking [`HistogramSnapshot`]s and [`HistogramSnapshot::merge`]-ing
/// them, or by [`Histogram::absorb`]-ing a snapshot into a live histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Wait-free: three `fetch_add`-class operations,
    /// no locks, no allocation.
    pub fn record(&self, v: u64) {
        // Relaxed: independent statistical counters — nothing is published
        // through them and snapshots tolerate in-flight updates (module
        // contract: exact once writers are quiescent).
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // Relaxed: same statistical-counter contract as the bucket above.
        self.sum.fetch_add(v, Ordering::Relaxed);
        // Relaxed: same statistical-counter contract as the bucket above.
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKET_COUNT];
        for (c, b) in counts.iter_mut().zip(self.buckets.iter()) {
            // Relaxed: statistical read; the snapshot contract tolerates
            // tearing against concurrent writers.
            *c = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            // Relaxed: statistical read, see the loop above.
            sum: self.sum.load(Ordering::Relaxed),
            // Relaxed: statistical read, see the loop above.
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Folds a snapshot (e.g. a worker thread's private histogram) into
    /// this one.
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        for (b, &c) in self.buckets.iter().zip(snap.counts.iter()) {
            if c > 0 {
                // Relaxed: statistical counter merge, same contract as
                // `record`.
                b.fetch_add(c, Ordering::Relaxed);
            }
        }
        // Relaxed: statistical counter merge, same contract as `record`.
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        // Relaxed: statistical counter merge, same contract as `record`.
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }
}

/// A plain (non-atomic) copy of a [`Histogram`]'s counters: mergeable,
/// comparable, and the thing percentiles are computed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; BUCKET_COUNT],
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            counts: [0; BUCKET_COUNT],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (exact, even for saturated samples).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum as f64 / n as f64
    }

    /// Merges another snapshot into this one. Merging is associative and
    /// commutative (bucket-wise addition, max of maxima) — property-tested
    /// in `tests/hist_oracle.rs`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank quantile estimate: the upper edge of the bucket
    /// containing the rank-`⌈q·n⌉` sample, capped at the recorded
    /// maximum. Never below the exact order statistic, at most 12.5 %
    /// above it (module docs). Returns 0 when empty.
    pub fn value_at(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// [`Self::value_at`] converted from nanosecond samples to
    /// microseconds.
    pub fn percentile_us(&self, q: f64) -> f64 {
        self.value_at(q) as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_self_consistent() {
        let mut prev = 0usize;
        for v in 0..SATURATION_VALUE.ilog2() {
            let sample = 1u64 << v;
            let idx = bucket_index(sample);
            assert!(idx >= prev, "index must not decrease at 2^{v}");
            assert!(bucket_low(idx) <= sample && sample <= bucket_high(idx));
            prev = idx;
        }
        // Exhaustive over the linear region and the first octaves.
        for v in 0..4096u64 {
            let idx = bucket_index(v);
            assert!(bucket_low(idx) <= v && v <= bucket_high(idx), "v={v}");
        }
        // Bucket edges meet with no gaps.
        for i in 0..BUCKET_COUNT - 1 {
            assert_eq!(bucket_high(i) + 1, bucket_low(i + 1), "gap after {i}");
        }
    }

    #[test]
    fn linear_region_is_exact() {
        let h = Histogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 8);
        assert_eq!(s.sum(), 28);
        assert_eq!(s.max(), 7);
        assert_eq!(s.value_at(0.0), 0);
        assert_eq!(s.value_at(1.0), 7);
    }

    #[test]
    fn bound_holds_for_a_known_sample() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let s = h.snapshot();
        for q in [0.5f64, 0.95, 0.99, 0.999] {
            let exact = ((q * 1000.0).ceil() as u64).clamp(1, 1000) * 1000;
            let est = s.value_at(q);
            assert!(est >= exact, "q={q}: {est} < exact {exact}");
            assert!(
                est as f64 <= exact as f64 * 1.125,
                "q={q}: {est} above bound for exact {exact}"
            );
        }
        assert_eq!(s.value_at(1.0), 1_000_000, "max is exact");
    }

    #[test]
    fn saturated_samples_report_the_exact_max() {
        let h = Histogram::new();
        h.record(SATURATION_VALUE + 12345);
        let s = h.snapshot();
        assert_eq!(s.max(), SATURATION_VALUE + 12345);
        assert_eq!(s.value_at(1.0), SATURATION_VALUE + 12345);
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..500u64 {
            let target = if v % 2 == 0 { &a } else { &b };
            target.record(v * 17);
            all.record(v * 17);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn absorb_matches_merge() {
        let worker = Histogram::new();
        for v in [3u64, 99, 4000, 1 << 20] {
            worker.record(v);
        }
        let global = Histogram::new();
        global.record(7);
        global.absorb(&worker.snapshot());
        let mut expected = worker.snapshot();
        let seven = Histogram::new();
        seven.record(7);
        expected.merge(&seven.snapshot());
        assert_eq!(global.snapshot(), expected);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 40_000);
    }

    #[test]
    fn empty_snapshot_is_all_zeros() {
        let s = HistogramSnapshot::default();
        assert!(s.is_empty());
        assert_eq!(s.value_at(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s, Histogram::new().snapshot());
    }
}
