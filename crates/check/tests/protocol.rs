//! The protocol suite: every model green as written, every seeded
//! mutation caught with a replayable counterexample schedule.
//!
//! This is both the protocol's correctness evidence (the unmutated
//! models encode exactly the orderings `core::sync`'s seqlock helpers
//! use) and the checker's own validation: a checker that cannot catch a
//! dropped tombstone or a downgraded `Release` would pass everything,
//! so each mutation test demands a counterexample and replays it.

use buddy_check::models::{
    drain, retarget, seqlock, tombstone, DrainMutation, RetargetMutation, SeqlockMutation,
    TombstoneMutation,
};
use buddy_check::{explore, Config, Outcome};

/// Exploration budget for the suite: generous enough that every model
/// here is fully exhausted (asserted for the unmutated ones), small
/// enough that the suite stays quick in debug builds.
fn budget() -> Config {
    Config {
        max_preemptions: 3,
        max_steps: 400,
        max_executions: 3_000_000,
        replay: None,
    }
}

/// The unmutated protocol must survive the *entire* bounded schedule
/// space — a budget-capped pass would weaken the evidence.
fn assert_protocol_holds(name: &str, model: impl Fn() + Send + Sync + 'static) {
    match explore(name, budget(), model) {
        Outcome::Pass {
            executions,
            exhausted,
            ..
        } => {
            assert!(
                exhausted,
                "{name}: exploration not exhausted after {executions} executions; raise the budget"
            );
            println!("{name}: {executions} schedules explored, all pass");
        }
        Outcome::Counterexample(report) => {
            panic!("{name}: unmutated protocol has a counterexample:\n{report}")
        }
    }
}

/// A seeded bug must produce a counterexample; print it (the
/// thread-by-thread trace is the artifact this suite exists for) and
/// prove it replays: rerunning the recorded decision vector alone must
/// reproduce the violation.
fn assert_mutation_caught(name: &str, model: impl Fn() + Send + Sync + 'static + Clone) {
    let outcome = explore(name, budget(), model.clone());
    let report = match outcome.counterexample() {
        Some(r) => r.clone(),
        None => panic!("{name}: seeded mutation was NOT caught — checker is blind to this bug"),
    };
    println!("{report}");
    assert!(
        !report.trace.is_empty(),
        "{name}: empty counterexample trace"
    );
    let replayed = explore(name, Config::replay(report.choices.clone()), model);
    assert!(
        replayed.counterexample().is_some(),
        "{name}: recorded schedule did not replay to the same violation"
    );
}

#[test]
fn seqlock_protocol_holds() {
    assert_protocol_holds("seqlock", seqlock(SeqlockMutation::None));
}

#[test]
fn seqlock_mutation_skip_odd_bump_is_caught() {
    assert_mutation_caught(
        "seqlock[skip-odd-bump]",
        seqlock(SeqlockMutation::SkipOddBump),
    );
}

#[test]
fn seqlock_mutation_close_relaxed_is_caught() {
    assert_mutation_caught(
        "seqlock[close-relaxed]",
        seqlock(SeqlockMutation::CloseRelaxed),
    );
}

#[test]
fn seqlock_mutation_no_reader_fence_is_caught() {
    assert_mutation_caught(
        "seqlock[no-reader-fence]",
        seqlock(SeqlockMutation::NoReaderFence),
    );
}

#[test]
fn seqlock_mutation_no_writer_fence_is_caught() {
    assert_mutation_caught(
        "seqlock[no-writer-fence]",
        seqlock(SeqlockMutation::NoWriterFence),
    );
}

#[test]
fn tombstone_protocol_holds() {
    assert_protocol_holds("tombstone", tombstone(TombstoneMutation::None));
}

#[test]
fn tombstone_mutation_drop_tombstone_is_caught() {
    assert_mutation_caught(
        "tombstone[drop-tombstone]",
        tombstone(TombstoneMutation::DropTombstone),
    );
}

#[test]
fn retarget_protocol_holds() {
    assert_protocol_holds("retarget", retarget(RetargetMutation::None));
}

#[test]
fn retarget_mutation_early_close_is_caught() {
    assert_mutation_caught(
        "retarget[early-close]",
        retarget(RetargetMutation::EarlyClose),
    );
}

#[test]
fn drain_protocol_holds() {
    assert_protocol_holds("drain", drain(DrainMutation::None));
}

#[test]
fn drain_mutation_skip_wait_is_caught() {
    assert_mutation_caught("drain[skip-wait]", drain(DrainMutation::SkipWait));
}

#[test]
fn drain_mutation_exit_relaxed_is_caught() {
    assert_mutation_caught("drain[exit-relaxed]", drain(DrainMutation::ExitRelaxed));
}
