//! Regenerates the §2.4 algorithm-comparison ablation. Pass --quick for a
//! smoke run.

fn main() -> std::io::Result<()> {
    let cfg = buddy_bench::RunConfig::from_args();
    buddy_bench::ablation::ablation(&cfg)
}
