//! Linearizability of the sharded pool against the single-device
//! sequential specification.
//!
//! Four client threads hammer one [`BuddyPool`] with allocs, frees,
//! reads, writes and live migrations; every call is recorded as an
//! invocation/response interval on a shared logical clock. The
//! [`checker`] module then searches for a legal sequential witness —
//! a total order respecting real time whose replay against a bare
//! [`BuddyDevice`] reproduces every recorded outcome. Histories are
//! generated from proptest-seeded scripts, so a failing case shrinks and
//! replays deterministically.
//!
//! The suite also pins the checker's own teeth with hand-built histories:
//! overlapping free/read intervals must be accepted in either commit
//! order, and a *stale read* — a read that returns data strictly after the
//! free responded — must be rejected.
//!
//! CI runs this target with `RUST_TEST_THREADS=1` so the recorded
//! intervals reflect genuine pool contention rather than test-runner
//! scheduling.

#[path = "linearizability/checker.rs"]
mod checker;

use checker::{linearize, verify_witness, Call, ErrorKind, Operation, Outcome};

use buddy_pool::{
    BuddyPool, CodecKind, DeviceConfig, DeviceError, PoolAllocId, PoolConfig, TargetRatio,
    ENTRY_BYTES,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

const SHARD_CONFIG: DeviceConfig = DeviceConfig {
    device_capacity: 1 << 16,
    carve_out_factor: 3,
};
const THREADS: usize = 4;
/// Names 0..SHARED are allocated up front and contended by every thread;
/// name `SHARED + t` is thread `t`'s private allocation. A name is never
/// allocated twice in one history (the checker's addressing contract).
const SHARED: usize = 3;
const ENTRIES_PER_ALLOC: u64 = 8;

/// One scripted step: `(op selector, name selector, fill, misc)`.
type Step = (u8, u8, u8, u64);

/// Records one pool call as an interval on the logical clock.
fn record(clock: &AtomicU64, call: Call, run: impl FnOnce() -> Outcome) -> Operation {
    let invoke = clock.fetch_add(1, Ordering::SeqCst);
    let outcome = run();
    let response = clock.fetch_add(1, Ordering::SeqCst);
    Operation {
        invoke,
        response,
        call,
        outcome,
    }
}

fn fail(e: &DeviceError) -> Outcome {
    Outcome::Failed(ErrorKind::of(e))
}

fn ok_or_fail<T>(r: Result<T, DeviceError>) -> Outcome {
    match r {
        Ok(_) => Outcome::Ok,
        Err(e) => fail(&e),
    }
}

/// Runs the scripted threads against a real pool and returns the merged
/// completed history.
fn run_history(scripts: &[Vec<Step>; THREADS], shards: usize) -> Vec<Operation> {
    let pool = BuddyPool::new(PoolConfig {
        shards,
        shard_config: SHARD_CONFIG,
        codec: CodecKind::Bpc,
    });
    let clock = AtomicU64::new(0);
    let registry: Vec<OnceLock<PoolAllocId>> =
        (0..SHARED + THREADS).map(|_| OnceLock::new()).collect();

    // Shared allocations come first, sequentially, so every thread starts
    // with a live handle for each contended name.
    let mut history: Vec<Operation> = (0..SHARED)
        .map(|name| {
            record(
                &clock,
                Call::Alloc {
                    name,
                    entries: ENTRIES_PER_ALLOC,
                    target: TargetRatio::R2,
                },
                || {
                    ok_or_fail(
                        pool.alloc(&format!("n{name}"), ENTRIES_PER_ALLOC, TargetRatio::R2)
                            .map(|id| {
                                registry[name].set(id).expect("names allocate once");
                            }),
                    )
                },
            )
        })
        .collect();

    let per_thread: Vec<Vec<Operation>> = std::thread::scope(|scope| {
        let workers: Vec<_> = scripts
            .iter()
            .enumerate()
            .map(|(t, script)| {
                let pool = &pool;
                let clock = &clock;
                let registry = &registry;
                scope.spawn(move || {
                    let own = SHARED + t;
                    let mut ops = Vec::new();
                    for &(op, name_sel, fill, misc) in script {
                        let name = (name_sel as usize) % SHARED;
                        let index = misc % (ENTRIES_PER_ALLOC + 2);
                        let target = TargetRatio::DESCENDING[(misc % 5) as usize];
                        // Handles are published through the registry after
                        // the alloc *responds*, so every use is invoked
                        // after the alloc in real time.
                        let shared_id = registry[name].get().copied();
                        let own_id = registry[own].get().copied();
                        let recorded = match op % 6 {
                            0 => shared_id.map(|id| {
                                record(clock, Call::Write { name, index, fill }, || {
                                    ok_or_fail(pool.write_entry(id, index, &[fill; ENTRY_BYTES]))
                                })
                            }),
                            1 => shared_id.map(|id| {
                                record(clock, Call::Read { name, index }, || {
                                    match pool.read_entry(id, index) {
                                        Ok(entry) => Outcome::Value(entry),
                                        Err(e) => fail(&e),
                                    }
                                })
                            }),
                            2 => shared_id.map(|id| {
                                record(clock, Call::Free { name }, || ok_or_fail(pool.free(id)))
                            }),
                            3 => shared_id.map(|id| {
                                record(clock, Call::Retarget { name, target }, || {
                                    match pool.retarget(id, target) {
                                        Ok(r) => Outcome::Retargeted(r.old_target, r.new_target),
                                        Err(e) => fail(&e),
                                    }
                                })
                            }),
                            4 if own_id.is_none() => Some(record(
                                clock,
                                Call::Alloc {
                                    name: own,
                                    entries: ENTRIES_PER_ALLOC,
                                    target: TargetRatio::R4,
                                },
                                || {
                                    ok_or_fail(
                                        pool.alloc(
                                            &format!("n{own}"),
                                            ENTRIES_PER_ALLOC,
                                            TargetRatio::R4,
                                        )
                                        .map(|id| {
                                            registry[own].set(id).expect("names allocate once");
                                        }),
                                    )
                                },
                            )),
                            _ => own_id.map(|id| {
                                record(clock, Call::Read { name: own, index }, || {
                                    match pool.read_entry(id, index) {
                                        Ok(entry) => Outcome::Value(entry),
                                        Err(e) => fail(&e),
                                    }
                                })
                            }),
                        };
                        ops.extend(recorded);
                    }
                    ops
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("scripted worker panicked"))
            .collect()
    });
    history.extend(per_thread.into_iter().flatten());
    history
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every history a real multi-shard pool produces under contended
    /// reads, writes, frees and migrations has a legal sequential witness,
    /// and the witness survives an independent from-scratch replay.
    #[test]
    fn four_thread_pool_histories_linearize(
        scripts in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>()), 1..7),
            4..5,
        ),
        shards in 1usize..4,
    ) {
        let scripts: [Vec<Step>; THREADS] =
            scripts.try_into().expect("strategy draws exactly 4 scripts");
        let history = run_history(&scripts, shards);
        match linearize(&history, SHARD_CONFIG, CodecKind::Bpc) {
            Ok(witness) => verify_witness(&history, &witness, SHARD_CONFIG, CodecKind::Bpc),
            Err(counterexample) => panic!(
                "no sequential witness for a {}-op history; longest legal prefix \
                 has {} ops: {:?}",
                history.len(),
                counterexample.longest_prefix.len(),
                history
            ),
        }
    }
}

/// Builds the shared fixture prefix: alloc name 0 (8 entries, R2) and fill
/// entry 0 with `7`, sequentially.
fn fixture_prefix() -> Vec<Operation> {
    vec![
        Operation {
            invoke: 0,
            response: 1,
            call: Call::Alloc {
                name: 0,
                entries: ENTRIES_PER_ALLOC,
                target: TargetRatio::R2,
            },
            outcome: Outcome::Ok,
        },
        Operation {
            invoke: 2,
            response: 3,
            call: Call::Write {
                name: 0,
                index: 0,
                fill: 7,
            },
            outcome: Outcome::Ok,
        },
    ]
}

/// A free and a read whose intervals overlap may commit in either order:
/// the read may return the data (linearized before the free) or a stale
/// handle error (linearized after). Both histories must be accepted.
#[test]
fn overlapping_free_and_read_linearize_in_either_order() {
    for (read_outcome, description) in [
        (Outcome::Value([7u8; ENTRY_BYTES]), "read commits first"),
        (
            Outcome::Failed(ErrorKind::of(&DeviceError::BadAllocation)),
            "free commits first",
        ),
    ] {
        let mut history = fixture_prefix();
        history.push(Operation {
            invoke: 4,
            response: 7,
            call: Call::Free { name: 0 },
            outcome: Outcome::Ok,
        });
        history.push(Operation {
            invoke: 5,
            response: 6,
            call: Call::Read { name: 0, index: 0 },
            outcome: read_outcome,
        });
        let witness = linearize(&history, SHARD_CONFIG, CodecKind::Bpc)
            .unwrap_or_else(|_| panic!("{description}: overlapping ops must linearize"));
        verify_witness(&history, &witness, SHARD_CONFIG, CodecKind::Bpc);
    }
}

/// The seeded non-linearizable fixture: the read is invoked strictly
/// *after* the free responded, yet still returns the freed allocation's
/// data. No sequential order can explain that — real time forces the free
/// first, and the specification then demands `BadAllocation`. The checker
/// must reject it.
#[test]
fn stale_read_after_free_is_rejected() {
    let mut history = fixture_prefix();
    history.push(Operation {
        invoke: 4,
        response: 5,
        call: Call::Free { name: 0 },
        outcome: Outcome::Ok,
    });
    history.push(Operation {
        invoke: 6,
        response: 7,
        call: Call::Read { name: 0, index: 0 },
        outcome: Outcome::Value([7u8; ENTRY_BYTES]),
    });
    let counterexample = linearize(&history, SHARD_CONFIG, CodecKind::Bpc)
        .expect_err("a stale read past a completed free must not linearize");
    // Everything up to the impossible read is explainable.
    assert_eq!(counterexample.longest_prefix.len(), history.len() - 1);
}

/// A double free must linearize with exactly one `Ok`: the loser observes
/// the bumped generation. A history claiming both frees succeeded is
/// rejected.
#[test]
fn double_free_linearizes_only_once() {
    let bad_alloc = Outcome::Failed(ErrorKind::of(&DeviceError::BadAllocation));
    for (second_outcome, accepted) in [(bad_alloc, true), (Outcome::Ok, false)] {
        let mut history = fixture_prefix();
        history.push(Operation {
            invoke: 4,
            response: 6,
            call: Call::Free { name: 0 },
            outcome: Outcome::Ok,
        });
        history.push(Operation {
            invoke: 5,
            response: 7,
            call: Call::Free { name: 0 },
            outcome: second_outcome,
        });
        let result = linearize(&history, SHARD_CONFIG, CodecKind::Bpc);
        match (accepted, result) {
            (true, Ok(witness)) => {
                verify_witness(&history, &witness, SHARD_CONFIG, CodecKind::Bpc);
            }
            (true, Err(_)) => panic!("one-Ok double free must linearize"),
            (false, Ok(witness)) => {
                panic!("two-Ok double free wrongly accepted via {witness:?}")
            }
            (false, Err(_)) => {}
        }
    }
}
