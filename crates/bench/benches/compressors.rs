//! Criterion micro-benchmarks for the compression algorithms: single-entry
//! compress/decompress throughput across data regimes, plus a head-to-head
//! of the allocating [`BlockCompressor::compress`] path against the
//! zero-allocation [`Codec::compress_into`] path.
//!
//! These measure the software model, not hardware latency — the paper's
//! 11-cycle pipeline figure comes from Kim et al.'s RTL; what matters here
//! is that the harness can characterize memory images quickly, and that the
//! device's hot path (`compress_into` with a reused buffer) is measurably
//! cheaper than allocating a fresh `Compressed` per entry.

use bpc::{BlockCompressor, Codec, CodecKind, CompressedBuf, ENTRY_BYTES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn entry_of(kind: &str) -> [u8; ENTRY_BYTES] {
    let mut e = [0u8; ENTRY_BYTES];
    match kind {
        "zero" => {}
        "ramp" => {
            for (i, c) in e.chunks_exact_mut(4).enumerate() {
                c.copy_from_slice(&(1000u32 + 7 * i as u32).to_le_bytes());
            }
        }
        "noisy" => {
            let mut s = 0x0123_4567_89AB_CDEFu64;
            for c in e.chunks_exact_mut(4) {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let v = 0x4000_0000u32 + ((s >> 40) as u32 & 0x3FF);
                c.copy_from_slice(&v.to_le_bytes());
            }
        }
        _ => {
            let mut s = 0x9E37_79B9u64;
            for b in e.iter_mut() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (s >> 33) as u8;
            }
        }
    }
    e
}

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(ENTRY_BYTES as u64));
    for kind in ["zero", "ramp", "noisy", "random"] {
        let entry = entry_of(kind);
        for codec in CodecKind::ALL {
            group.bench_with_input(BenchmarkId::new(codec.to_string(), kind), &entry, |b, e| {
                b.iter(|| codec.compress(e))
            });
        }
    }
    group.finish();
}

/// The acceptance benchmark for the zero-allocation API: the same codec and
/// data, `compress` (one `Vec` per entry) vs `compress_into` (one reused
/// [`CompressedBuf`] for the whole run).
fn bench_alloc_vs_into(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc-vs-into");
    group.throughput(Throughput::Bytes(ENTRY_BYTES as u64));
    for kind in ["ramp", "noisy", "random"] {
        let entry = entry_of(kind);
        for codec in CodecKind::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("{codec}-alloc"), kind),
                &entry,
                |b, e| b.iter(|| codec.compress(e).bits()),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{codec}-into"), kind),
                &entry,
                |b, e| {
                    let mut buf = CompressedBuf::new();
                    b.iter(|| {
                        codec.compress_into(e, &mut buf);
                        buf.bits()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes(ENTRY_BYTES as u64));
    for kind in ["ramp", "noisy", "random"] {
        let entry = entry_of(kind);
        for codec in CodecKind::ALL {
            let compressed = codec.compress(&entry);
            group.bench_with_input(
                BenchmarkId::new(codec.to_string(), kind),
                &compressed,
                |b, c| {
                    let mut out = [0u8; ENTRY_BYTES];
                    b.iter(|| {
                        codec
                            .decompress_into(c.data(), c.bits(), &mut out)
                            .expect("own output decodes");
                        out[0]
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_compress, bench_alloc_vs_into, bench_decompress
}
criterion_main!(benches);
