//! Known-bad corpus for the `wallclock-in-replay` rule: wallclock types in
//! deterministic trace/replay code must be flagged; identifiers that merely
//! contain the words must not.
#![forbid(unsafe_code)]

use std::time::SystemTime; // expect(wallclock-in-replay)

fn bad_epoch() -> u64 {
    let now = SystemTime::now(); // expect(wallclock-in-replay)
    seed_from(now)
}

fn bad_signature(started: Instant) -> bool { // expect(wallclock-in-replay)
    started.elapsed().as_nanos() > 0
}

fn fine(instants: usize, duration_ms: u64) -> u64 {
    let per_instant = duration_ms / 7;
    (instants as u64) * per_instant
}

fn waived_cache_warmup() -> u64 {
    // lint-allow(wallclock-in-replay): one-shot warmup timing, never feeds the trace
    let t = Instant::now();
    drop(t);
    0
}
