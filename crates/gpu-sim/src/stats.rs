//! Simulation result counters and derived metrics.

use std::fmt;

/// Counters produced by one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Simulated core cycles until the last access completed.
    pub cycles: f64,
    /// Memory accesses simulated.
    pub accesses: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// L2 full hits.
    pub l2_hits: u64,
    /// L2 misses (sector-partial hits count as misses).
    pub l2_misses: u64,
    /// Metadata cache hits (Buddy mode only).
    pub md_hits: u64,
    /// Metadata cache misses (Buddy mode only).
    pub md_misses: u64,
    /// Entry accesses that needed buddy-memory sectors.
    pub buddy_accesses: u64,
    /// 32 B sectors transferred to/from device DRAM.
    pub dram_sectors: u64,
    /// 32 B sectors received over the interconnect (buddy/host reads).
    pub link_sectors_in: u64,
    /// 32 B sectors sent over the interconnect (buddy/host writes).
    pub link_sectors_out: u64,
    /// Accesses that natively targeted host memory.
    pub host_native_accesses: u64,
    /// Wall-clock seconds the simulation took (Figure 10's speed metric).
    pub wall_seconds: f64,
}

impl SimStats {
    /// Memory accesses retired per simulated cycle (throughput).
    pub fn accesses_per_cycle(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.accesses as f64 / self.cycles
        }
    }

    /// Speedup of this run relative to `baseline` (>1 means faster).
    pub fn speedup_vs(&self, baseline: &SimStats) -> f64 {
        if self.cycles == 0.0 {
            return 1.0;
        }
        // Normalize per access so runs of different lengths compare.
        let own = self.cycles / self.accesses.max(1) as f64;
        let base = baseline.cycles / baseline.accesses.max(1) as f64;
        base / own
    }

    /// L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// Metadata cache hit rate (Figure 5b).
    pub fn md_hit_rate(&self) -> f64 {
        let total = self.md_hits + self.md_misses;
        if total == 0 {
            0.0
        } else {
            self.md_hits as f64 / total as f64
        }
    }

    /// Fraction of accesses that touched buddy memory (Figures 7–9).
    pub fn buddy_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.buddy_accesses as f64 / self.accesses as f64
        }
    }

    /// Simulated cycles per wall-clock second — the simulator speed metric
    /// of Figure 10 (right).
    pub fn sim_cycles_per_second(&self) -> f64 {
        if self.wall_seconds == 0.0 {
            0.0
        } else {
            self.cycles / self.wall_seconds
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} cycles for {} accesses ({:.3}/cyc); L2 {:.1}% md {:.1}% buddy {:.2}%",
            self.cycles,
            self.accesses,
            self.accesses_per_cycle(),
            100.0 * self.l2_hit_rate(),
            100.0 * self.md_hit_rate(),
            100.0 * self.buddy_fraction()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 1000.0,
            accesses: 500,
            l2_hits: 300,
            l2_misses: 100,
            md_hits: 90,
            md_misses: 10,
            buddy_accesses: 5,
            ..Default::default()
        };
        assert!((s.accesses_per_cycle() - 0.5).abs() < 1e-12);
        assert!((s.l2_hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.md_hit_rate() - 0.9).abs() < 1e-12);
        assert!((s.buddy_fraction() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn speedup_normalizes_by_access_count() {
        let baseline = SimStats {
            cycles: 1000.0,
            accesses: 100,
            ..Default::default()
        };
        let half_speed = SimStats {
            cycles: 2000.0,
            accesses: 100,
            ..Default::default()
        };
        assert!((half_speed.speedup_vs(&baseline) - 0.5).abs() < 1e-12);
        // Same per-access cost at twice the length: speedup 1.
        let longer = SimStats {
            cycles: 2000.0,
            accesses: 200,
            ..Default::default()
        };
        assert!((longer.speedup_vs(&baseline) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = SimStats::default();
        assert_eq!(s.accesses_per_cycle(), 0.0);
        assert_eq!(s.l2_hit_rate(), 0.0);
        assert_eq!(s.md_hit_rate(), 0.0);
        assert_eq!(s.buddy_fraction(), 0.0);
        assert_eq!(s.sim_cycles_per_second(), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let s = SimStats {
            cycles: 10.0,
            accesses: 5,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("10 cycles"));
        assert!(text.contains("5 accesses"));
    }
}
