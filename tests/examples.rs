//! Coverage for the `examples/` directory.
//!
//! All three examples are compiled as part of `cargo test` / `cargo build
//! --examples` (compilation is the coverage for the two long-running
//! sweeps); `quickstart` is additionally *executed* here — it is already a
//! test-scale configuration (4096 entries against a 1 MiB device) and
//! finishes in well under a second.

use std::path::PathBuf;
use std::process::Command;

/// Locates a compiled example binary next to the test executable
/// (`target/<profile>/examples/<name>`); examples are always built before
/// integration tests run.
fn example_bin(name: &str) -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // deps/
    path.pop(); // <profile>/
    path.push("examples");
    path.push(name);
    path
}

#[test]
fn quickstart_example_runs_and_reports_compression() {
    let bin = example_bin("quickstart");
    assert!(
        bin.exists(),
        "{} not found — examples should be built alongside tests",
        bin.display()
    );
    let output = Command::new(&bin).output().expect("quickstart spawns");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "quickstart failed ({}):\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status
    );
    // The example walks profile → choose target → device round-trip and
    // prints each stage; spot-check the load-bearing lines.
    assert!(
        stdout.contains("profiled 4096 entries"),
        "missing profile line:\n{stdout}"
    );
    assert!(
        stdout.contains("profiler chose"),
        "missing target-choice line:\n{stdout}"
    );
    assert!(
        stdout.contains("device ratio"),
        "missing device-stats line:\n{stdout}"
    );
}

#[test]
fn remaining_examples_are_present_and_compiled() {
    for name in ["dl_batch_scaling", "hpc_oversubscription"] {
        let bin = example_bin(name);
        assert!(
            bin.exists(),
            "{} not found — `cargo build --examples` must cover it",
            bin.display()
        );
    }
}
