//! Base-Delta-Immediate (BDI) compression after Pekhimenko et al.,
//! *"Base-Delta-Immediate Compression: Practical Data Compression for
//! On-Chip Caches"*, PACT 2012.
//!
//! BDI represents a block as one arbitrary base value plus narrow deltas,
//! with a second implicit zero base: every element is either a small
//! immediate (delta from zero) or close to the block's base. We generalize
//! the original 32 B-line scheme to the 128 B GPU memory-entry, keeping the
//! canonical (base size, delta size) pairs.
//!
//! The encoding is: 4-bit scheme id, then for non-trivial schemes a 1-bit
//! mask per element (0 = zero base, 1 = arbitrary base), the 8/4/2-byte base,
//! and one delta per element. This matches the hardware layout described in
//! the paper (the mask is the "immediate" bit vector).

use crate::bits::{BitReader, BitWriter};
use crate::{Codec, CompressedBuf, DecodeError, Entry, ENTRY_BYTES};

/// The canonical BDI (base size, delta size) schemes, in preference order.
const SCHEMES: [(usize, usize); 6] = [(8, 1), (8, 2), (8, 4), (4, 1), (4, 2), (2, 1)];

/// Scheme ids used in the 4-bit header.
const ID_ZEROS: u64 = 0;
const ID_REPEAT: u64 = 1;
const ID_RAW: u64 = 15;

/// The Base-Delta-Immediate codec.
///
/// # Example
///
/// ```
/// use bpc::{BaseDeltaImmediate, BlockCompressor};
///
/// let codec = BaseDeltaImmediate::new();
/// let mut entry = [0u8; 128];
/// for (i, w) in entry.chunks_exact_mut(8).enumerate() {
///     w.copy_from_slice(&(0x1000_0000u64 + i as u64).to_le_bytes());
/// }
/// let compressed = codec.compress(&entry);
/// assert!(compressed.bytes() < 64);
/// assert_eq!(codec.decompress(&compressed).unwrap(), entry);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaseDeltaImmediate;

impl BaseDeltaImmediate {
    /// Algorithm name used in [`crate::Compressed::algorithm`].
    pub const NAME: &'static str = "bdi";

    /// Creates the codec.
    pub fn new() -> Self {
        Self
    }

    /// Reads element `index` of the block viewed as `ENTRY_BYTES / size`
    /// little-endian unsigned values (on the fly — no element buffer).
    fn element_at(entry: &Entry, size: usize, index: usize) -> u64 {
        let mut v = 0u64;
        for (i, &b) in entry[index * size..(index + 1) * size].iter().enumerate() {
            v |= (b as u64) << (8 * i);
        }
        v
    }

    /// Whether `delta` (a two's-complement difference of `base_size`-byte
    /// values) fits in a signed `delta_size`-byte immediate.
    fn fits(delta: u64, base_size: usize, delta_size: usize) -> bool {
        let width = 8 * base_size as u32;
        let sign_extended = if width == 64 {
            delta as i64
        } else {
            ((delta << (64 - width)) as i64) >> (64 - width)
        };
        let bound = 1i64 << (8 * delta_size - 1);
        (-bound..bound).contains(&sign_extended)
    }

    /// Checks whether one (base, delta) scheme covers the block, without
    /// materializing masks or deltas; returns the base value on success.
    ///
    /// The base is the first element that is not itself a small immediate
    /// (zero when every element is an immediate).
    fn try_scheme(entry: &Entry, base_size: usize, delta_size: usize) -> Option<u64> {
        let n = ENTRY_BYTES / base_size;
        let mut base = 0u64;
        let mut have_base = false;
        for i in 0..n {
            let e = Self::element_at(entry, base_size, i);
            if Self::fits(e, base_size, delta_size) {
                continue;
            }
            if !have_base {
                base = e;
                have_base = true;
            }
            let delta = e.wrapping_sub(base) & mask_of(8 * base_size as u32);
            if !Self::fits(delta, base_size, delta_size) {
                return None;
            }
        }
        Some(base)
    }

    /// Serializes the block under scheme `idx` (validated by
    /// [`try_scheme`](Self::try_scheme)): 4-bit id, per-element base mask,
    /// the base, then one delta per element.
    fn encode_scheme(w: &mut BitWriter, entry: &Entry, idx: usize, base: u64) {
        let (base_size, delta_size) = SCHEMES[idx];
        let n = ENTRY_BYTES / base_size;
        let mask_width = 8 * delta_size as u32;
        w.push_bits(2 + idx as u64, 4);
        for i in 0..n {
            let e = Self::element_at(entry, base_size, i);
            w.push_bit(!Self::fits(e, base_size, delta_size));
        }
        w.push_bits(base & mask_of(8 * base_size as u32), 8 * base_size);
        for i in 0..n {
            let e = Self::element_at(entry, base_size, i);
            let delta = if Self::fits(e, base_size, delta_size) {
                e
            } else {
                e.wrapping_sub(base) & mask_of(8 * base_size as u32)
            };
            w.push_bits(delta & mask_of(mask_width), 8 * delta_size);
        }
    }
}

fn mask_of(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

fn sign_extend(v: u64, bits: u32) -> u64 {
    (((v << (64 - bits)) as i64) >> (64 - bits)) as u64
}

impl Codec for BaseDeltaImmediate {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn compress_into(&self, entry: &Entry, out: &mut CompressedBuf) {
        let mut w = out.begin();

        if entry.iter().all(|&b| b == 0) {
            w.push_bits(ID_ZEROS, 4);
            out.finish(Self::NAME, w);
            return;
        }

        // Repeated 8-byte value.
        let first = Self::element_at(entry, 8, 0);
        if (1..ENTRY_BYTES / 8).all(|i| Self::element_at(entry, 8, i) == first) {
            w.push_bits(ID_REPEAT, 4);
            w.push_bits(first, 64);
            out.finish(Self::NAME, w);
            return;
        }

        // Try each (base, delta) scheme in order; pick the smallest encoding.
        let mut best: Option<(usize, u64)> = None;
        let mut best_bits = usize::MAX;
        for (idx, &(base_size, delta_size)) in SCHEMES.iter().enumerate() {
            if let Some(base) = Self::try_scheme(entry, base_size, delta_size) {
                let n = ENTRY_BYTES / base_size;
                let bits = 4 + n + 8 * base_size + 8 * delta_size * n;
                if bits < best_bits {
                    best_bits = bits;
                    best = Some((idx, base));
                }
            }
        }

        if let Some((idx, base)) = best {
            if best_bits < 4 + ENTRY_BYTES * 8 {
                Self::encode_scheme(&mut w, entry, idx, base);
                out.finish(Self::NAME, w);
                return;
            }
        }

        // Raw fallback.
        w.push_bits(ID_RAW, 4);
        for &b in entry.iter() {
            w.push_bits(b as u64, 8);
        }
        out.finish(Self::NAME, w);
    }

    fn decompress_into(
        &self,
        data: &[u8],
        bits: usize,
        out: &mut Entry,
    ) -> Result<(), DecodeError> {
        let mut r = BitReader::new(data, bits);
        let id = r.read_bits(4)?;
        *out = [0u8; ENTRY_BYTES];
        match id {
            ID_ZEROS => Ok(()),
            ID_REPEAT => {
                let v = r.read_bits(64)?;
                for chunk in out.chunks_exact_mut(8) {
                    chunk.copy_from_slice(&v.to_le_bytes());
                }
                Ok(())
            }
            ID_RAW => {
                for b in out.iter_mut() {
                    *b = r.read_bits(8)? as u8;
                }
                Ok(())
            }
            scheme if (2..2 + SCHEMES.len() as u64).contains(&scheme) => {
                let (base_size, delta_size) = SCHEMES[(scheme - 2) as usize];
                let n = ENTRY_BYTES / base_size;
                // The widest scheme views the block as 64 two-byte elements.
                let mut mask = [false; ENTRY_BYTES / 2];
                for m in mask.iter_mut().take(n) {
                    *m = r.read_bit()?;
                }
                let base = r.read_bits(8 * base_size)?;
                let elem_mask = mask_of(8 * base_size as u32);
                for (i, &from_base) in mask.iter().take(n).enumerate() {
                    let raw = r.read_bits(8 * delta_size)?;
                    let delta = sign_extend(raw, 8 * delta_size as u32);
                    let value = if from_base {
                        base.wrapping_add(delta)
                    } else {
                        delta
                    } & elem_mask;
                    for (j, byte) in out[i * base_size..(i + 1) * base_size]
                        .iter_mut()
                        .enumerate()
                    {
                        *byte = (value >> (8 * j)) as u8;
                    }
                }
                Ok(())
            }
            _ => Err(DecodeError::InvalidCode {
                bit_offset: r.bit_offset(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockCompressor, Compressed};

    fn round_trip(entry: &Entry) -> usize {
        let codec = BaseDeltaImmediate::new();
        let c = codec.compress(entry);
        assert_eq!(&codec.decompress(&c).unwrap(), entry);
        c.bits()
    }

    #[test]
    fn zeros_are_four_bits() {
        assert_eq!(round_trip(&[0u8; 128]), 4);
    }

    #[test]
    fn repeated_word() {
        let mut entry = [0u8; 128];
        for chunk in entry.chunks_exact_mut(8) {
            chunk.copy_from_slice(&0xDEAD_BEEF_CAFE_F00Du64.to_le_bytes());
        }
        assert_eq!(round_trip(&entry), 4 + 64);
    }

    #[test]
    fn near_base_pointers_compress() {
        let mut entry = [0u8; 128];
        for (i, chunk) in entry.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&(0x7FFF_AB00_0000_0000u64 + 17 * i as u64).to_le_bytes());
        }
        let bits = round_trip(&entry);
        // Deltas up to 17 * 15 = 255 need the (8, 2) scheme:
        // 4-bit id + 16 mask bits + 64-bit base + 16 two-byte deltas.
        assert_eq!(
            bits,
            4 + 16 + 64 + 16 * 16,
            "pointer-like data should use (8,2)"
        );
    }

    #[test]
    fn small_ints_with_outlier_base() {
        let mut entry = [0u8; 128];
        for (i, chunk) in entry.chunks_exact_mut(4).enumerate() {
            let v: u32 = if i % 5 == 0 {
                0x4000_0000 + i as u32
            } else {
                i as u32
            };
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        let bits = round_trip(&entry);
        assert!(
            bits < 128 * 8,
            "mixed immediates/base should compress: {bits}"
        );
    }

    #[test]
    fn random_data_falls_back_to_raw() {
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut entry = [0u8; 128];
        for b in entry.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (state >> 33) as u8;
        }
        let bits = round_trip(&entry);
        assert_eq!(bits, 4 + 128 * 8);
    }

    #[test]
    fn fits_checks_signed_ranges() {
        assert!(BaseDeltaImmediate::fits(127, 4, 1));
        assert!(!BaseDeltaImmediate::fits(128, 4, 1));
        // -128 as a 32-bit value.
        assert!(BaseDeltaImmediate::fits(0xFFFF_FF80, 4, 1));
        assert!(!BaseDeltaImmediate::fits(0xFFFF_FF7F, 4, 1));
        assert!(BaseDeltaImmediate::fits(u64::MAX, 8, 1)); // -1
    }

    #[test]
    fn wrong_algorithm_rejected() {
        let c = Compressed::new("bpc", 8, vec![0]);
        assert!(matches!(
            BaseDeltaImmediate::new().decompress(&c),
            Err(DecodeError::WrongAlgorithm { .. })
        ));
    }

    #[test]
    fn invalid_scheme_rejected() {
        // Scheme id 9 is unused (2..=7 valid, 0, 1, 15 special).
        let c = Compressed::new(BaseDeltaImmediate::NAME, 4, vec![0b1001_0000]);
        assert!(matches!(
            BaseDeltaImmediate::new().decompress(&c),
            Err(DecodeError::InvalidCode { .. })
        ));
    }
}
