//! Regenerates the paper's fig13a (see DESIGN.md §5). Pass --quick for a smoke run.

fn main() -> std::io::Result<()> {
    let cfg = buddy_bench::RunConfig::from_args();
    buddy_bench::dlfig::fig13a(&cfg)?;
    Ok(())
}
