//! Online adaptive re-targeting: the live analogue of the §3.4 profiling
//! pass.
//!
//! The paper picks each allocation's target ratio once, from an offline
//! profiling run, and observes (§4.2, Figure 8) that DL workloads
//! re-allocate every epoch while compressibility drifts over training. This
//! module closes that loop at run time: a [`StateWindow`] summarizes the
//! *live* compressed footprint of an allocation (read straight from the
//! 4-bit metadata array — exactly the information the memory controller
//! already has), and a [`RetargetPolicy`] recommends promotions or
//! demotions along [`TargetRatio::DESCENDING`] with hysteresis, feeding
//! [`BuddyDevice::retarget`](crate::BuddyDevice::retarget).
//!
//! # Hysteresis
//!
//! Two thresholds separate the decisions:
//!
//! * **Demotion** uses the plain admission rule of `choose_targets`: if the
//!   current target's observed overflow exceeds its threshold, move to the
//!   most aggressive target that is admissible. An allocation that has
//!   genuinely stopped compressing is fixed in one step.
//! * **Promotion** demands *headroom*: a more aggressive target is adopted
//!   only if its observed overflow sits below the admission threshold minus
//!   [`AdaptConfig::promote_margin`] (never below half the threshold). An
//!   allocation hovering inside the band `(threshold − margin, threshold]`
//!   keeps its current target rather than ping-ponging.
//!
//! On a stationary window the policy therefore recommends at most one
//! change and then goes quiet — property `constant_compressibility_never_
//! oscillates` below drives a real device through repeated sweeps to pin
//! this down.
//!
//! # What the window can and cannot see
//!
//! Metadata states record *stored sector counts*, which is exactly what the
//! standard targets (1×–4×) need. They do **not** record whether an entry
//! would compress below the 8 B zero-page granule (a `Compressed {1}`
//! entry may be 9 or 32 bytes), so promotion *to* the 16× zero-page target
//! is only recommended when the observed window is almost entirely
//! tracked-zero / sub-granule entries — the same "mostly zero, and remains
//! so" conservatism the paper applies (§3.4). Entries stored as raw
//! zero-page overflow are counted as incompressible for the same reason.

use crate::metadata::EntryState;
use crate::target::TargetRatio;

/// A summary of the live compressed states of one allocation's entries,
/// bucketed by what they demand from each candidate target ratio.
///
/// Build one with [`BuddyDevice::state_window`](crate::BuddyDevice::state_window)
/// (a metadata-only scan that records no traffic), or feed states in by
/// hand with [`observe`](Self::observe).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateWindow {
    /// Tracked-zero entries ([`EntryState::Zero`]): free under every target.
    zero: u64,
    /// Entries known to fit the 8 B zero-page granule
    /// ([`EntryState::ZeroPageFit`]).
    le8: u64,
    /// Entries needing exactly 1–4 stored sectors (`sectors[k]` counts
    /// entries needing `k + 1`). Raw zero-page overflow is folded into the
    /// 4-sector bucket: its compressed size is unknown, so the window
    /// treats it as incompressible.
    sectors: [u64; 4],
}

impl StateWindow {
    /// An empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observed entry state into the window.
    pub fn observe(&mut self, state: EntryState) {
        match state {
            EntryState::Zero => self.zero += 1,
            EntryState::ZeroPageFit => self.le8 += 1,
            EntryState::ZeroPageOverflow => self.sectors[3] += 1,
            EntryState::Compressed { sectors } => {
                self.sectors[usize::from(sectors.clamp(1, 4)) - 1] += 1;
            }
        }
    }

    /// Entries observed.
    pub fn total(&self) -> u64 {
        self.zero + self.le8 + self.sectors.iter().sum::<u64>()
    }

    /// Fraction of observed entries that are tracked zeros.
    pub fn zero_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.zero as f64 / self.total() as f64
    }

    /// Fraction of observed entries that would overflow to buddy memory
    /// under target `t` — the online counterpart of
    /// [`AllocationProfile::overflow_fraction`](crate::AllocationProfile::overflow_fraction).
    pub fn overflow_fraction(&self, t: TargetRatio) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let fits = match t {
            TargetRatio::ZeroPage16 => self.zero + self.le8,
            other => {
                let budget = other.device_sectors() as usize;
                self.zero + self.le8 + self.sectors[..budget].iter().sum::<u64>()
            }
        };
        1.0 - fits as f64 / total as f64
    }
}

/// Configuration of the online re-targeting policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptConfig {
    /// Maximum tolerated overflow fraction for the standard targets — the
    /// online Buddy Threshold (the paper's offline default is 30%).
    pub buddy_threshold: f64,
    /// Extra headroom a *promotion* must demonstrate below the admission
    /// threshold (see the module docs on hysteresis).
    pub promote_margin: f64,
    /// Whether the 16× zero-page target may be recommended at all.
    pub zero_page: bool,
    /// Stricter admission threshold for the zero-page target (§3.4 applies
    /// 16× only to allocations that are "mostly zero, and remain so").
    pub zero_page_threshold: f64,
    /// Minimum observed entries before the policy acts; smaller windows
    /// return no recommendation.
    pub min_samples: u64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        Self {
            buddy_threshold: 0.30,
            promote_margin: 0.10,
            zero_page: true,
            zero_page_threshold: 0.05,
            min_samples: 64,
        }
    }
}

impl AdaptConfig {
    /// The admission threshold governing target `t` (demotions and the
    /// plain `choose_targets` rule).
    pub fn admission_threshold(&self, t: TargetRatio) -> f64 {
        if t == TargetRatio::ZeroPage16 {
            self.zero_page_threshold
        } else {
            self.buddy_threshold
        }
    }

    /// The stricter threshold a promotion to `t` must clear: admission
    /// minus [`promote_margin`](Self::promote_margin), floored at half the
    /// admission threshold so a tight threshold (the zero-page 5%) is not
    /// driven to an unreachable zero.
    pub fn promotion_threshold(&self, t: TargetRatio) -> f64 {
        let admission = self.admission_threshold(t);
        (admission - self.promote_margin).max(admission / 2.0)
    }
}

/// The online target-ratio policy: consumes per-allocation state windows
/// and recommends migrations along [`TargetRatio::DESCENDING`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RetargetPolicy {
    config: AdaptConfig,
}

impl RetargetPolicy {
    /// Creates a policy with the given configuration.
    pub fn new(config: AdaptConfig) -> Self {
        Self { config }
    }

    /// The policy configuration.
    pub fn config(&self) -> AdaptConfig {
        self.config
    }

    /// Recommends a new target for an allocation currently annotated
    /// `current`, given its observed window — or `None` to keep it.
    ///
    /// The most aggressive target admissible under the plain thresholds is
    /// computed exactly as `choose_targets` would from a profile. If it
    /// equals `current`, nothing happens. If it is *less* aggressive, the
    /// current target is overflowing and the demotion is recommended
    /// directly. If it is *more* aggressive, the promotion must clear the
    /// stricter [`AdaptConfig::promotion_threshold`]; failing that, less
    /// aggressive intermediate steps (still above `current`) are tried
    /// before giving up. See the module docs for why this never
    /// oscillates on stationary data.
    pub fn recommend(&self, current: TargetRatio, window: &StateWindow) -> Option<TargetRatio> {
        if window.total() < self.config.min_samples {
            return None;
        }
        let candidates: &[TargetRatio] = if self.config.zero_page {
            &TargetRatio::DESCENDING
        } else {
            &TargetRatio::STANDARD_DESCENDING
        };
        let pick = candidates
            .iter()
            .copied()
            .find(|&t| window.overflow_fraction(t) <= self.config.admission_threshold(t))
            .unwrap_or(TargetRatio::R1);
        if pick == current {
            return None;
        }
        if pick.ratio() < current.ratio() {
            // Demotion: the current target is past its admission threshold.
            return Some(pick);
        }
        // Promotion: walk from the aggressive pick back down toward the
        // current target, taking the first step with enough headroom.
        for &t in candidates.iter().skip_while(|&&t| t != pick) {
            if t.ratio() <= current.ratio() {
                break;
            }
            if window.overflow_fraction(t) <= self.config.promotion_threshold(t) {
                return Some(t);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{BuddyDevice, DeviceConfig};
    use bpc::ENTRY_BYTES;

    /// A window of `zero` tracked zeros plus `per_sectors[k]` entries
    /// needing `k + 1` sectors.
    fn window(zero: u64, le8: u64, per_sectors: [u64; 4]) -> StateWindow {
        let mut w = StateWindow::new();
        for _ in 0..zero {
            w.observe(EntryState::Zero);
        }
        for _ in 0..le8 {
            w.observe(EntryState::ZeroPageFit);
        }
        for (k, &n) in per_sectors.iter().enumerate() {
            for _ in 0..n {
                w.observe(EntryState::Compressed {
                    sectors: k as u8 + 1,
                });
            }
        }
        w
    }

    #[test]
    fn window_overflow_fractions() {
        let w = window(20, 10, [40, 10, 0, 20]);
        assert_eq!(w.total(), 100);
        assert!((w.zero_fraction() - 0.20).abs() < 1e-12);
        // 1x fits everything.
        assert_eq!(w.overflow_fraction(TargetRatio::R1), 0.0);
        // 2x: the 20 four-sector entries overflow.
        assert!((w.overflow_fraction(TargetRatio::R2) - 0.20).abs() < 1e-12);
        // 4x: the 10 two-sector + 20 four-sector entries overflow.
        assert!((w.overflow_fraction(TargetRatio::R4) - 0.30).abs() < 1e-12);
        // 16x: only zeros and sub-granule entries fit.
        assert!((w.overflow_fraction(TargetRatio::ZeroPage16) - 0.70).abs() < 1e-12);
    }

    #[test]
    fn zero_page_overflow_counts_as_incompressible() {
        let mut w = StateWindow::new();
        for _ in 0..4 {
            w.observe(EntryState::ZeroPageOverflow);
        }
        assert_eq!(w.overflow_fraction(TargetRatio::R1), 0.0);
        assert_eq!(w.overflow_fraction(TargetRatio::R2), 1.0);
        assert_eq!(w.overflow_fraction(TargetRatio::ZeroPage16), 1.0);
    }

    #[test]
    fn small_windows_are_ignored() {
        let policy = RetargetPolicy::new(AdaptConfig {
            min_samples: 64,
            ..AdaptConfig::default()
        });
        let w = window(10, 0, [0, 0, 0, 10]); // 50% overflow under anything
        assert_eq!(policy.recommend(TargetRatio::R4, &w), None);
    }

    #[test]
    fn demotion_is_direct() {
        let policy = RetargetPolicy::new(AdaptConfig::default());
        // 60% of entries need 2 sectors: 4x overflows 60%, 2x fits all.
        let w = window(0, 0, [40, 60, 0, 0]);
        assert_eq!(policy.recommend(TargetRatio::R4, &w), Some(TargetRatio::R2));
        // From zero-page, mostly-nonzero data demotes likewise.
        let w = window(30, 0, [70, 0, 0, 0]);
        assert_eq!(
            policy.recommend(TargetRatio::ZeroPage16, &w),
            Some(TargetRatio::R4)
        );
    }

    #[test]
    fn promotion_requires_headroom() {
        let policy = RetargetPolicy::new(AdaptConfig::default());
        // 25% overflow under 4x: admissible (<= 30%) but inside the
        // hysteresis band (promotion needs <= 20%), so R2 holds.
        let w = window(0, 0, [75, 25, 0, 0]);
        assert_eq!(policy.recommend(TargetRatio::R2, &w), None);
        // 10% overflow: clear headroom, promote.
        let w = window(0, 0, [90, 10, 0, 0]);
        assert_eq!(policy.recommend(TargetRatio::R2, &w), Some(TargetRatio::R4));
    }

    #[test]
    fn promotion_settles_for_an_intermediate_step() {
        let policy = RetargetPolicy::new(AdaptConfig::default());
        // 4x is the admissible pick (28% overflow <= 30%) but lacks
        // promotion headroom; 2x has 10% overflow — promote to 2x instead.
        let w = window(0, 0, [72, 18, 4, 6]);
        assert!((w.overflow_fraction(TargetRatio::R4) - 0.28).abs() < 1e-12);
        assert!((w.overflow_fraction(TargetRatio::R2) - 0.10).abs() < 1e-12);
        assert_eq!(policy.recommend(TargetRatio::R1, &w), Some(TargetRatio::R2));
    }

    #[test]
    fn zero_page_promotion_is_conservative() {
        let policy = RetargetPolicy::new(AdaptConfig::default());
        // 97% zeros: still short of the 16x promotion bar (97.5%).
        let w = window(97, 0, [3, 0, 0, 0]);
        assert_eq!(policy.recommend(TargetRatio::R1, &w), Some(TargetRatio::R4));
        // 99% zeros clears it.
        let w = window(99, 0, [1, 0, 0, 0]);
        assert_eq!(
            policy.recommend(TargetRatio::R4, &w),
            Some(TargetRatio::ZeroPage16)
        );
        // With zero-page disabled the same window stays at 4x.
        let no_zp = RetargetPolicy::new(AdaptConfig {
            zero_page: false,
            ..AdaptConfig::default()
        });
        assert_eq!(no_zp.recommend(TargetRatio::R4, &w), None);
    }

    #[test]
    fn stationary_window_reaches_a_fixed_point_from_every_start() {
        let policy = RetargetPolicy::new(AdaptConfig::default());
        let windows = [
            window(0, 0, [100, 0, 0, 0]),
            window(0, 0, [75, 25, 0, 0]),
            window(50, 0, [25, 0, 0, 25]),
            window(100, 0, [0, 0, 0, 0]),
            window(0, 0, [0, 0, 0, 100]),
        ];
        for w in &windows {
            for start in TargetRatio::DESCENDING {
                let mut current = start;
                let mut changes = 0;
                for _ in 0..10 {
                    if let Some(next) = policy.recommend(current, w) {
                        current = next;
                        changes += 1;
                    }
                }
                assert!(
                    changes <= 1,
                    "window {w:?} from {start}: {changes} changes (oscillation)"
                );
                // Once settled, the recommendation stays quiet.
                assert_eq!(policy.recommend(current, w), None, "from {start}");
            }
        }
    }

    /// End-to-end no-oscillation: a device fed a *constant-compressibility*
    /// data mix, swept repeatedly by the policy, retargets at most once and
    /// then never again (the satellite guarantee for the loadgen hook).
    #[test]
    fn constant_compressibility_never_oscillates() {
        let mut dev = BuddyDevice::new(DeviceConfig {
            device_capacity: 1 << 20,
            carve_out_factor: 3,
        });
        let a = dev.alloc("steady", 256, TargetRatio::R1).unwrap();
        let policy = RetargetPolicy::new(AdaptConfig::default());
        let mut current = TargetRatio::R1;
        let mut retargets = 0;
        for round in 0..8u64 {
            // The same 90/10 one-sector/incompressible mix every round.
            for i in 0..256u64 {
                let mut e = [0u8; ENTRY_BYTES];
                if i % 10 == 9 {
                    let mut s = round * 1000 + i + 1;
                    for b in e.iter_mut() {
                        s = s
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        *b = (s >> 33) as u8;
                    }
                } else {
                    let w = (1_000_000 + i) as u32;
                    for c in e.chunks_exact_mut(4) {
                        c.copy_from_slice(&w.to_le_bytes());
                    }
                }
                dev.write_entry(a, i, &e).unwrap();
            }
            let window = dev.state_window(a).unwrap();
            if let Some(next) = policy.recommend(current, &window) {
                dev.retarget(a, next).unwrap();
                current = next;
                retargets += 1;
            }
        }
        assert_eq!(
            retargets, 1,
            "constant mix must converge in one step (to 4x) and stay"
        );
        assert_eq!(current, TargetRatio::R4);
        assert_eq!(dev.stats().retargets, 1);
    }
}
