//! Protocol models: the `core::shared` seqlock/epoch protocol distilled
//! to its synchronization skeleton, one model per invariant.
//!
//! Each model is a closure for [`crate::explore`] that builds its state,
//! runs two model threads against each other, and asserts the protocol
//! invariant whenever the reader's validation accepts a snapshot. Each
//! model also takes a *mutation*: a seeded protocol bug (dropped
//! tombstone, skipped odd-seq bump, downgraded `Release`, removed fence)
//! that the checker must turn into a counterexample schedule — the
//! integration suite (`tests/protocol.rs`) fails if any mutation goes
//! undetected, which is how the checker itself is kept honest.
//!
//! The orderings in the unmutated models are exactly the ones
//! `core::sync`'s `seq_open`/`seq_release`/`seq_acquire`/`acquire_fence`
//! helpers implement; `shared.rs` cites these models as evidence for its
//! fence choices.

use crate::shim::{fence, spawn, AtomicU64};
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::Arc;

/// Reader retry budget: enough to ride out the writer's two epochs; on
/// exhaustion the reader gives up without asserting (a valid outcome —
/// liveness is out of scope, see DESIGN.md §13).
const READER_RETRIES: usize = 3;

/// Seeded bugs for [`seqlock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqlockMutation {
    /// The correct protocol.
    None,
    /// Writer does not bump `seq` to odd before writing — readers cannot
    /// tell a write is in flight.
    SkipOddBump,
    /// Writer's closing `seq` bump is `Relaxed` instead of `Release` —
    /// a reader that validates against the closed `seq` no longer
    /// inherits the data written inside the window.
    CloseRelaxed,
    /// Reader omits the acquire fence between its data loads and its
    /// validating `seq` re-load — stale data can slip past validation.
    NoReaderFence,
    /// Writer omits the release fence after the odd bump — the data
    /// stores no longer carry the open window, so a reader can observe
    /// them and still validate against the old even sequence.
    NoWriterFence,
}

/// Seqlock read vs. batched write (`SlotCell::begin_read`/`still` vs.
/// `SeqWindow`): a validated snapshot must never span two write epochs.
///
/// The writer publishes two epochs; each stores the epoch number to both
/// data words inside a seq window. A reader whose `s1 == s2` (both even)
/// validation passes must see `a == b`.
pub fn seqlock(mutation: SeqlockMutation) -> impl Fn() + Send + Sync + Clone + 'static {
    move || {
        let seq = Arc::new(AtomicU64::labelled("seq", 0));
        let a = Arc::new(AtomicU64::labelled("a", 0));
        let b = Arc::new(AtomicU64::labelled("b", 0));

        let (wseq, wa, wb) = (Arc::clone(&seq), Arc::clone(&a), Arc::clone(&b));
        let writer = spawn(move || {
            for epoch in 1..=2u64 {
                if mutation != SeqlockMutation::SkipOddBump {
                    wseq.fetch_add(1, Relaxed);
                }
                if mutation != SeqlockMutation::NoWriterFence {
                    fence(Release);
                }
                wa.store(epoch, Relaxed);
                wb.store(epoch, Relaxed);
                let close = if mutation == SeqlockMutation::CloseRelaxed {
                    Relaxed
                } else {
                    Release
                };
                wseq.fetch_add(1, close);
            }
        });

        for _ in 0..READER_RETRIES {
            let s1 = seq.load(Acquire);
            if s1 % 2 == 1 {
                continue;
            }
            let va = a.load(Relaxed);
            let vb = b.load(Relaxed);
            if mutation != SeqlockMutation::NoReaderFence {
                fence(Acquire);
            }
            let s2 = seq.load(Relaxed);
            if s1 == s2 {
                assert_eq!(va, vb, "torn descriptor: a={va} b={vb} under seq {s1}");
                break;
            }
        }
        writer.join();
    }
}

/// Seeded bugs for [`tombstone`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TombstoneMutation {
    /// The correct protocol.
    None,
    /// Free recycles the bytes without first publishing the dead
    /// generation — a stale handle can read recycled bytes while the
    /// generation still looks live.
    DropTombstone,
}

/// Free-tombstone vs. stale reader (`SlotTable` generation protocol): a
/// validated read that sees a live generation must never see recycled
/// bytes.
pub fn tombstone(mutation: TombstoneMutation) -> impl Fn() + Send + Sync + Clone + 'static {
    const LIVE: u64 = 2;
    const DEAD: u64 = 1;
    const PAYLOAD: u64 = 7;
    const RECYCLED: u64 = 99;
    move || {
        let seq = Arc::new(AtomicU64::labelled("seq", 0));
        let gen = Arc::new(AtomicU64::labelled("gen", LIVE));
        let data = Arc::new(AtomicU64::labelled("data", PAYLOAD));

        let (fseq, fgen, fdata) = (Arc::clone(&seq), Arc::clone(&gen), Arc::clone(&data));
        let freer = spawn(move || {
            fseq.fetch_add(1, Relaxed);
            fence(Release);
            if mutation != TombstoneMutation::DropTombstone {
                fgen.store(DEAD, Relaxed);
            }
            fdata.store(RECYCLED, Relaxed);
            fseq.fetch_add(1, Release);
        });

        // Reader holding a handle minted while the slot was live.
        for _ in 0..READER_RETRIES {
            let s1 = seq.load(Acquire);
            if s1 % 2 == 1 {
                continue;
            }
            let g = gen.load(Relaxed);
            let v = data.load(Relaxed);
            fence(Acquire);
            let s2 = seq.load(Relaxed);
            if s1 == s2 {
                if g == LIVE {
                    assert_eq!(v, PAYLOAD, "recycled bytes ({v}) under live generation");
                }
                break;
            }
        }
        freer.join();
    }
}

/// Seeded bugs for [`retarget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetargetMutation {
    /// The correct protocol.
    None,
    /// Republish closes the seq window right after the target switch and
    /// rewrites the bases outside it — readers can observe the new target
    /// with the old bases.
    EarlyClose,
}

/// Retarget republish vs. concurrent read (`SharedState::republish`): a
/// validated read sees the old tier triple or the new one, never a blend
/// of target and bases.
pub fn retarget(mutation: RetargetMutation) -> impl Fn() + Send + Sync + Clone + 'static {
    const OLD: (u64, u64, u64) = (0, 10, 20);
    const NEW: (u64, u64, u64) = (1, 11, 21);
    move || {
        let seq = Arc::new(AtomicU64::labelled("seq", 0));
        let target = Arc::new(AtomicU64::labelled("target", OLD.0));
        let base_a = Arc::new(AtomicU64::labelled("base_a", OLD.1));
        let base_b = Arc::new(AtomicU64::labelled("base_b", OLD.2));

        let (wseq, wt, wa, wb) = (
            Arc::clone(&seq),
            Arc::clone(&target),
            Arc::clone(&base_a),
            Arc::clone(&base_b),
        );
        let writer = spawn(move || {
            wseq.fetch_add(1, Relaxed);
            fence(Release);
            wt.store(NEW.0, Relaxed);
            if mutation == RetargetMutation::EarlyClose {
                wseq.fetch_add(1, Release);
                wa.store(NEW.1, Relaxed);
                wb.store(NEW.2, Relaxed);
            } else {
                wa.store(NEW.1, Relaxed);
                wb.store(NEW.2, Relaxed);
                wseq.fetch_add(1, Release);
            }
        });

        for _ in 0..READER_RETRIES {
            let s1 = seq.load(Acquire);
            if s1 % 2 == 1 {
                continue;
            }
            let snap = (
                target.load(Relaxed),
                base_a.load(Relaxed),
                base_b.load(Relaxed),
            );
            fence(Acquire);
            let s2 = seq.load(Relaxed);
            if s1 == s2 {
                assert!(
                    snap == OLD || snap == NEW,
                    "blended republish: observed {snap:?}, expected {OLD:?} or {NEW:?}"
                );
                break;
            }
        }
        writer.join();
    }
}

/// Seeded bugs for [`drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainMutation {
    /// The correct protocol.
    None,
    /// Drain reads the stats without waiting for the in-flight counter
    /// balance.
    SkipWait,
    /// The op's exit counter bump is `Relaxed` instead of `SeqCst` — the
    /// barrier count balances but the op's stats writes are not yet
    /// ordered before the drain's reads.
    ExitRelaxed,
}

/// Drain barrier vs. in-flight op (`SharedState::enter_op` /
/// `wait_quiescent`, the `quiesce_handles` sweep): every op in flight at
/// the barrier's entered-counter snapshot must have **all** of its stats
/// pieces visible once the exited counter catches up — no half-merged
/// snapshot.
///
/// Mirrors the real contract precisely: an op that enters *after* the
/// snapshot (the reader slipping in between the lock sweep and the
/// barrier wait) is outside the barrier, so the drain asserts nothing
/// about it — `drain`'s callers quiesce their own traffic sources first.
pub fn drain(mutation: DrainMutation) -> impl Fn() + Send + Sync + Clone + 'static {
    move || {
        let entered = Arc::new(AtomicU64::labelled("ops_entered", 0));
        let exited = Arc::new(AtomicU64::labelled("ops_exited", 0));
        let stat_hi = Arc::new(AtomicU64::labelled("stat_hi", 0));
        let stat_lo = Arc::new(AtomicU64::labelled("stat_lo", 0));

        let (oe, ox, oh, ol) = (
            Arc::clone(&entered),
            Arc::clone(&exited),
            Arc::clone(&stat_hi),
            Arc::clone(&stat_lo),
        );
        let op = spawn(move || {
            oe.fetch_add(1, SeqCst);
            oh.fetch_add(1, Relaxed);
            ol.fetch_add(1, Relaxed);
            let exit = if mutation == DrainMutation::ExitRelaxed {
                Relaxed
            } else {
                SeqCst
            };
            ox.fetch_add(1, exit);
        });

        // wait_quiescent: snapshot the entered counter, then wait for the
        // exited counter to catch up to that snapshot.
        let target = entered.load(SeqCst);
        let mut quiescent = mutation == DrainMutation::SkipWait;
        if !quiescent {
            for _ in 0..READER_RETRIES + 1 {
                if exited.load(SeqCst) >= target {
                    quiescent = true;
                    break;
                }
            }
        }
        // Only ops inside the snapshot are covered by the barrier.
        if quiescent && target == 1 {
            let hi = stat_hi.load(Relaxed);
            let lo = stat_lo.load(Relaxed);
            assert!(
                hi == 1 && lo == 1,
                "half-merged stats snapshot behind the barrier: hi={hi} lo={lo}"
            );
        }
        op.join();
    }
}
