//! Multi-tenant service layer over the Buddy-Compression pool: per-tenant
//! capacity quotas, admission control, ownership-checked handles, lock-free
//! telemetry, and an open-loop overload harness.
//!
//! Buddy Compression's value is letting a fixed device-memory budget serve
//! more than it physically holds (Choukse et al., ISCA 2020). Once that
//! budget is shared by many users, someone has to decide *who* gets the
//! compressed capacity when demand exceeds supply — this crate is that
//! layer (DESIGN.md §11):
//!
//! * [`BuddyService`] fronts one [`BuddyPool`] for N registered tenants.
//!   Every allocation is charged against its tenant's quota in
//!   **compressed device bytes** (`entries × target bytes-per-entry`) —
//!   the resource that is actually scarce — and every handle is
//!   generational and ownership-checked: a tenant cannot free, read,
//!   write, retarget or transfer another tenant's allocation, and a stale
//!   handle (freed, or invalidated by an ownership transfer) fails every
//!   operation with [`ServiceError::BadHandle`].
//! * [`AdmissionPolicy`] decides what happens on quota breach:
//!   [`Reject`](AdmissionPolicy::Reject) returns a typed
//!   [`ServiceError::QuotaExceeded`], while
//!   [`Demote`](AdmissionPolicy::Demote) walks the
//!   [`TargetRatio::DESCENDING`] ladder toward more aggressive targets —
//!   smaller device reservations, more buddy-memory overflow — and admits
//!   at the least-aggressive target that fits both the quota and the pool.
//!   Demotion trades the tenant's bandwidth for admission, the paper's
//!   target-ratio tradeoff turned into policy.
//! * [`telemetry`] is the lock-free per-tenant metric registry (the only
//!   module allowed to own raw atomics — see the `raw-atomic-metric`
//!   lint); per-batch [`AccessStats`] deltas from the pool's `*_collect`
//!   paths are attributed to the issuing tenant at zero extra cost.
//! * [`loadgen`] is the open-loop load harness: offered arrival rate is
//!   fixed by a deterministic schedule, so overload shows up as measured
//!   queueing delay and shed load instead of closed-loop slowdown.
//!
//! # Example
//!
//! ```
//! use buddy_service::{AdmissionPolicy, BuddyService, ServiceError};
//! use buddy_pool::{PoolConfig, TargetRatio};
//!
//! let service = BuddyService::new(PoolConfig::default());
//! let quota = 64 * 1024;
//! let a = service.register_tenant("tenant-a", quota, AdmissionPolicy::Reject)?;
//! let b = service.register_tenant("tenant-b", quota, AdmissionPolicy::Reject)?;
//!
//! let grant = service.alloc(a, "model", 256, TargetRatio::R2)?;
//! // Tenant B cannot touch tenant A's allocation.
//! assert!(matches!(
//!     service.free(b, grant.id),
//!     Err(ServiceError::CrossTenant { .. })
//! ));
//! service.free(a, grant.id)?;
//! # Ok::<(), buddy_service::ServiceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;
pub mod telemetry;

pub use buddy_pool::{
    AccessStats, CodecKind, DeviceConfig, DeviceError, Entry, PoolConfig, RetargetReport,
    TargetRatio, ENTRY_BYTES,
};
pub use telemetry::{TelemetryRegistry, TenantRow, TenantTelemetry};

use buddy_pool::{BuddyPool, PoolAllocId};
use std::error::Error;
use std::fmt;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// What admission control does when a request breaches its tenant's quota
/// (or the pool's capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Fail the request with [`ServiceError::QuotaExceeded`].
    Reject,
    /// Walk the [`TargetRatio::DESCENDING`] ladder toward more aggressive
    /// targets (smaller device reservation, more buddy overflow) and admit
    /// at the least-aggressive target that fits; reject only when even the
    /// most aggressive target does not fit.
    Demote,
}

/// Handle to one tenant of a [`BuddyService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(u32);

/// Handle to one service allocation.
///
/// Ids are **generational** at the service layer (on top of the pool's own
/// generational ids): [`free`](BuddyService::free) and
/// [`transfer`](BuddyService::transfer) bump the slot generation, so a
/// retained copy of the handle fails every later operation with
/// [`ServiceError::BadHandle`] — it can never alias a newer allocation or
/// outlive an ownership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServiceAllocId {
    slot: u32,
    generation: u64,
}

/// Outcome of a successful admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocGrant {
    /// The allocation handle.
    pub id: ServiceAllocId,
    /// The target ratio actually granted.
    pub target: TargetRatio,
    /// Whether admission demoted the request below the asked-for target.
    pub demoted: bool,
}

/// Errors of the service layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The request does not fit the tenant's quota (after any demotion
    /// search its policy allows).
    QuotaExceeded {
        /// Compressed device bytes the request needs at the asked target.
        requested: u64,
        /// Compressed device bytes of quota headroom remaining.
        headroom: u64,
    },
    /// The handle names an allocation owned by a different tenant.
    CrossTenant {
        /// The allocation's owner.
        owner: TenantId,
        /// The tenant that attempted the operation.
        caller: TenantId,
    },
    /// The tenant id was never returned by
    /// [`register_tenant`](BuddyService::register_tenant).
    UnknownTenant,
    /// A tenant with this name is already registered.
    DuplicateTenant,
    /// The allocation handle is stale (freed or transferred) or was never
    /// issued by this service.
    BadHandle,
    /// An underlying device/pool error (capacity, bad index, overflow).
    Device(DeviceError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QuotaExceeded {
                requested,
                headroom,
            } => write!(
                f,
                "quota exceeded: request needs {requested} B compressed, {headroom} B headroom"
            ),
            ServiceError::CrossTenant { owner, caller } => write!(
                f,
                "cross-tenant access denied: allocation owned by tenant {} but used by tenant {}",
                owner.0, caller.0
            ),
            ServiceError::UnknownTenant => write!(f, "unknown tenant id"),
            ServiceError::DuplicateTenant => write!(f, "tenant name already registered"),
            ServiceError::BadHandle => write!(f, "stale or foreign service allocation handle"),
            ServiceError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl Error for ServiceError {}

impl From<DeviceError> for ServiceError {
    fn from(e: DeviceError) -> Self {
        ServiceError::Device(e)
    }
}

/// Per-tenant accounting state (behind the service lock).
#[derive(Debug)]
struct TenantState {
    name: String,
    quota_bytes: u64,
    policy: AdmissionPolicy,
    used_bytes: u64,
    telemetry: Arc<TenantTelemetry>,
}

/// One live allocation's bookkeeping.
#[derive(Debug, Clone, Copy)]
struct ServiceAlloc {
    owner: u32,
    pool_id: PoolAllocId,
    device_bytes: u64,
    entries: u64,
    target: TargetRatio,
}

/// One entry of the service slot map.
#[derive(Debug, Clone, Copy)]
struct ServiceSlot {
    generation: u64,
    alloc: Option<ServiceAlloc>,
}

/// Registry + slot map behind one RwLock: reads (I/O resolution) share,
/// writes (alloc/free/retarget/transfer, which move quota charges) exclude.
#[derive(Debug, Default)]
struct ServiceState {
    tenants: Vec<TenantState>,
    slots: Vec<ServiceSlot>,
    free_slots: Vec<u32>,
}

/// A multi-tenant façade over one [`BuddyPool`]; see the crate docs.
///
/// All methods take `&self` and are safe to call from many threads. Entry
/// I/O resolves handles under a shared read lock and then runs against the
/// pool *outside* the service lock — a concurrent `free` is harmless
/// because the pool's own generational ids catch the race and the
/// operation fails with [`DeviceError::BadAllocation`].
#[derive(Debug)]
pub struct BuddyService {
    pool: BuddyPool,
    telemetry: TelemetryRegistry,
    state: RwLock<ServiceState>,
}

// The whole point of the service: shareable across tenant threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BuddyService>();
    assert_send_sync::<TenantId>();
    assert_send_sync::<ServiceAllocId>();
};

impl BuddyService {
    /// Creates a service over a fresh pool built from `config`.
    ///
    /// # Panics
    ///
    /// As [`BuddyPool::new`] (zero or oversized shard count).
    pub fn new(config: PoolConfig) -> Self {
        Self {
            pool: BuddyPool::new(config),
            telemetry: TelemetryRegistry::new(),
            state: RwLock::new(ServiceState::default()),
        }
    }

    /// The underlying pool (occupancy, fragmentation, drain — everything
    /// that is about *capacity*, not tenancy).
    pub fn pool(&self) -> &BuddyPool {
        &self.pool
    }

    /// The telemetry registry ([`snapshot`](TelemetryRegistry::snapshot)
    /// is the `service-report` data source).
    pub fn telemetry(&self) -> &TelemetryRegistry {
        &self.telemetry
    }

    /// Read-locks the state, recovering from poisoning: every mutation
    /// keeps the maps structurally valid even if a caller panics (plain
    /// `Vec` state, charges updated only on completed operations).
    fn read(&self) -> RwLockReadGuard<'_, ServiceState> {
        match self.state.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Write-locks the state; poisoning recovery as [`read`](Self::read).
    fn write(&self) -> RwLockWriteGuard<'_, ServiceState> {
        match self.state.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers a tenant with a quota in **compressed device bytes** and
    /// an admission policy. Use `u64::MAX` for an effectively unlimited
    /// quota.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::DuplicateTenant`] if the name is taken.
    pub fn register_tenant(
        &self,
        name: &str,
        quota_bytes: u64,
        policy: AdmissionPolicy,
    ) -> Result<TenantId, ServiceError> {
        let mut state = self.write();
        if state.tenants.iter().any(|t| t.name == name) {
            return Err(ServiceError::DuplicateTenant);
        }
        let telemetry = self.telemetry.register(name);
        telemetry.quota_bytes.set(quota_bytes);
        let id = u32::try_from(state.tenants.len()).map_err(|_| ServiceError::UnknownTenant)?;
        state.tenants.push(TenantState {
            name: name.to_string(),
            quota_bytes,
            policy,
            used_bytes: 0,
            telemetry,
        });
        Ok(TenantId(id))
    }

    /// The tenant's registered name.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownTenant`] for a foreign id.
    pub fn tenant_name(&self, tenant: TenantId) -> Result<String, ServiceError> {
        let state = self.read();
        state
            .tenants
            .get(tenant.0 as usize)
            .map(|t| t.name.clone())
            .ok_or(ServiceError::UnknownTenant)
    }

    /// Compressed device bytes currently charged against the tenant.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownTenant`] for a foreign id.
    pub fn used_bytes(&self, tenant: TenantId) -> Result<u64, ServiceError> {
        let state = self.read();
        state
            .tenants
            .get(tenant.0 as usize)
            .map(|t| t.used_bytes)
            .ok_or(ServiceError::UnknownTenant)
    }

    /// Quota headroom remaining for the tenant, in compressed device bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownTenant`] for a foreign id.
    pub fn quota_headroom(&self, tenant: TenantId) -> Result<u64, ServiceError> {
        let state = self.read();
        state
            .tenants
            .get(tenant.0 as usize)
            .map(|t| t.quota_bytes.saturating_sub(t.used_bytes))
            .ok_or(ServiceError::UnknownTenant)
    }

    /// Traffic attributed to the tenant so far (exact once the tenant's
    /// operations are quiescent; see [`telemetry`] for the race contract).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownTenant`] for a foreign id.
    pub fn tenant_stats(&self, tenant: TenantId) -> Result<AccessStats, ServiceError> {
        let state = self.read();
        state
            .tenants
            .get(tenant.0 as usize)
            .map(|t| t.telemetry.stats())
            .ok_or(ServiceError::UnknownTenant)
    }

    /// The admission ladder for a request at `asked`: the asked target
    /// first, then every strictly more aggressive target (smaller device
    /// reservation) in decreasing-reservation order. Only consulted under
    /// the [`Demote`](AdmissionPolicy::Demote) policy past the first rung.
    fn admission_ladder(asked: TargetRatio) -> impl Iterator<Item = TargetRatio> {
        let asked_bytes = asked.device_bytes_per_entry();
        std::iter::once(asked).chain(
            TargetRatio::DESCENDING
                .into_iter()
                .rev()
                .filter(move |t| t.device_bytes_per_entry() < asked_bytes),
        )
    }

    /// Allocates `entries` 128 B memory-entries for `tenant`, admission-
    /// controlled against its quota and the pool's capacity.
    ///
    /// Admission charges `entries × device-bytes-per-entry(target)` of
    /// quota. On breach — or on pool-capacity failure — the tenant's
    /// [`AdmissionPolicy`] applies: `Reject` fails immediately, `Demote`
    /// retries down the target ladder and flags the grant
    /// ([`AllocGrant::demoted`]) if admitted below the asked target.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownTenant`] for a foreign tenant id;
    /// [`ServiceError::QuotaExceeded`] when quota (not pool capacity) is
    /// what stopped admission; [`ServiceError::Device`] for pool failures
    /// (capacity exhaustion, zero-entry or overflowing requests).
    pub fn alloc(
        &self,
        tenant: TenantId,
        name: &str,
        entries: u64,
        target: TargetRatio,
    ) -> Result<AllocGrant, ServiceError> {
        let mut state = self.write();
        let tenant_index = tenant.0 as usize;
        let t = state
            .tenants
            .get(tenant_index)
            .ok_or(ServiceError::UnknownTenant)?;
        let policy = t.policy;
        let headroom = t.quota_bytes.saturating_sub(t.used_bytes);
        let telemetry = Arc::clone(&t.telemetry);

        let asked_bytes = entry_bytes(entries, target)?;
        let mut quota_blocked = false;
        let mut pool_error: Option<DeviceError> = None;
        let mut granted: Option<(PoolAllocId, TargetRatio, u64)> = None;
        for candidate in Self::admission_ladder(target) {
            let candidate_bytes = entry_bytes(entries, candidate)?;
            if candidate_bytes > headroom {
                quota_blocked = true;
            } else {
                match self.pool.alloc(name, entries, candidate) {
                    Ok(pool_id) => {
                        granted = Some((pool_id, candidate, candidate_bytes));
                        break;
                    }
                    Err(e) if e.is_capacity() => pool_error = Some(e),
                    Err(e) => return Err(ServiceError::Device(e)),
                }
            }
            if policy == AdmissionPolicy::Reject {
                break;
            }
        }

        let Some((pool_id, granted_target, device_bytes)) = granted else {
            telemetry.rejections.incr();
            // Quota is the admission-layer verdict; a pool capacity error
            // surfaces only when quota never blocked any rung.
            return Err(if quota_blocked {
                ServiceError::QuotaExceeded {
                    requested: asked_bytes,
                    headroom,
                }
            } else {
                match pool_error {
                    Some(e) => ServiceError::Device(e),
                    None => ServiceError::QuotaExceeded {
                        requested: asked_bytes,
                        headroom,
                    },
                }
            });
        };

        let demoted = granted_target != target;
        let slot = match state.free_slots.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(state.slots.len()).map_err(|_| {
                    // Undo the pool allocation: the slot map is full (2^32
                    // live allocations — unreachable in practice, but the
                    // pool must not leak if it happens).
                    let _ = self.pool.free(pool_id);
                    ServiceError::Device(DeviceError::RequestOverflow)
                })?;
                state.slots.push(ServiceSlot {
                    generation: 0,
                    alloc: None,
                });
                slot
            }
        };
        let alloc = ServiceAlloc {
            owner: tenant.0,
            pool_id,
            device_bytes,
            entries,
            target: granted_target,
        };
        state.slots[slot as usize].alloc = Some(alloc);
        let generation = state.slots[slot as usize].generation;
        let t = &mut state.tenants[tenant_index];
        t.used_bytes += device_bytes;
        telemetry.allocs.incr();
        if demoted {
            telemetry.demotions.incr();
        }
        telemetry.used_bytes.set(t.used_bytes);
        telemetry
            .logical_bytes
            .set(telemetry.logical_bytes.get() + entries * ENTRY_BYTES as u64);
        telemetry.allocations.set(telemetry.allocations.get() + 1);
        Ok(AllocGrant {
            id: ServiceAllocId { slot, generation },
            target: granted_target,
            demoted,
        })
    }

    /// Resolves a handle to its live allocation, checking generation and
    /// ownership. Returns the allocation's bookkeeping copy.
    fn resolve(
        state: &ServiceState,
        tenant: TenantId,
        id: ServiceAllocId,
    ) -> Result<ServiceAlloc, ServiceError> {
        if state.tenants.get(tenant.0 as usize).is_none() {
            return Err(ServiceError::UnknownTenant);
        }
        let slot = state
            .slots
            .get(id.slot as usize)
            .ok_or(ServiceError::BadHandle)?;
        if slot.generation != id.generation {
            return Err(ServiceError::BadHandle);
        }
        let alloc = slot.alloc.ok_or(ServiceError::BadHandle)?;
        if alloc.owner != tenant.0 {
            // Denials are charged to the *caller*: they are the tenant
            // whose behaviour (or bug) the counter should expose.
            state.tenants[tenant.0 as usize]
                .telemetry
                .cross_tenant_denials
                .incr();
            return Err(ServiceError::CrossTenant {
                owner: TenantId(alloc.owner),
                caller: tenant,
            });
        }
        Ok(alloc)
    }

    /// Releases an allocation and refunds its quota charge.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadHandle`] for stale handles,
    /// [`ServiceError::CrossTenant`] when `tenant` is not the owner.
    pub fn free(&self, tenant: TenantId, id: ServiceAllocId) -> Result<(), ServiceError> {
        let mut state = self.write();
        let alloc = Self::resolve(&state, tenant, id)?;
        self.pool.free(alloc.pool_id)?;
        let slot = &mut state.slots[id.slot as usize];
        slot.generation += 1;
        slot.alloc = None;
        state.free_slots.push(id.slot);
        let t = &mut state.tenants[tenant.0 as usize];
        t.used_bytes = t.used_bytes.saturating_sub(alloc.device_bytes);
        t.telemetry.frees.incr();
        t.telemetry.used_bytes.set(t.used_bytes);
        t.telemetry.logical_bytes.set(
            t.telemetry
                .logical_bytes
                .get()
                .saturating_sub(alloc.entries * ENTRY_BYTES as u64),
        );
        t.telemetry
            .allocations
            .set(t.telemetry.allocations.get().saturating_sub(1));
        Ok(())
    }

    /// Writes a contiguous run of entries
    /// ([`BuddyPool::write_entries`] semantics), attributing the batch's
    /// traffic to `tenant`.
    ///
    /// # Errors
    ///
    /// Ownership/staleness errors as [`free`](Self::free); I/O errors as
    /// [`BuddyPool::write_entries`].
    pub fn write_entries(
        &self,
        tenant: TenantId,
        id: ServiceAllocId,
        start: u64,
        entries: &[Entry],
    ) -> Result<(), ServiceError> {
        let (pool_id, telemetry) = {
            let state = self.read();
            let alloc = Self::resolve(&state, tenant, id)?;
            let telemetry = Arc::clone(&state.tenants[tenant.0 as usize].telemetry);
            (alloc.pool_id, telemetry)
        };
        // The pool call runs outside the service lock; a racing free is
        // caught by the pool's generational id.
        let delta = self.pool.write_entries_collect(pool_id, start, entries)?;
        telemetry.record_stats(&delta);
        Ok(())
    }

    /// Reads a contiguous run of entries
    /// ([`BuddyPool::read_entries`] semantics), attributing the batch's
    /// traffic to `tenant`.
    ///
    /// # Errors
    ///
    /// Ownership/staleness errors as [`free`](Self::free); I/O errors as
    /// [`BuddyPool::read_entries`].
    pub fn read_entries(
        &self,
        tenant: TenantId,
        id: ServiceAllocId,
        start: u64,
        out: &mut [Entry],
    ) -> Result<(), ServiceError> {
        let (pool_id, telemetry) = {
            let state = self.read();
            let alloc = Self::resolve(&state, tenant, id)?;
            let telemetry = Arc::clone(&state.tenants[tenant.0 as usize].telemetry);
            (alloc.pool_id, telemetry)
        };
        let delta = self.pool.read_entries_collect(pool_id, start, out)?;
        telemetry.record_stats(&delta);
        Ok(())
    }

    /// Migrates an allocation to a new target ratio
    /// ([`BuddyPool::retarget`] semantics), re-charging the quota to the
    /// new reservation. A retarget that would *grow* the charge past the
    /// quota is rejected up front (no demotion search — the caller asked
    /// for a specific target), leaving the allocation unchanged.
    ///
    /// # Errors
    ///
    /// Ownership/staleness errors as [`free`](Self::free);
    /// [`ServiceError::QuotaExceeded`] when the new reservation does not
    /// fit; migration errors as [`BuddyPool::retarget`].
    pub fn retarget(
        &self,
        tenant: TenantId,
        id: ServiceAllocId,
        new_target: TargetRatio,
    ) -> Result<RetargetReport, ServiceError> {
        let mut state = self.write();
        let alloc = Self::resolve(&state, tenant, id)?;
        let new_bytes = entry_bytes(alloc.entries, new_target)?;
        let t = &state.tenants[tenant.0 as usize];
        let headroom = t.quota_bytes.saturating_sub(t.used_bytes);
        if new_bytes > alloc.device_bytes && new_bytes - alloc.device_bytes > headroom {
            t.telemetry.rejections.incr();
            return Err(ServiceError::QuotaExceeded {
                requested: new_bytes - alloc.device_bytes,
                headroom,
            });
        }
        let report = self.pool.retarget(alloc.pool_id, new_target)?;
        let slot = &mut state.slots[id.slot as usize];
        if let Some(a) = slot.alloc.as_mut() {
            a.target = new_target;
            a.device_bytes = new_bytes;
        }
        let t = &mut state.tenants[tenant.0 as usize];
        t.used_bytes = t.used_bytes.saturating_sub(alloc.device_bytes) + new_bytes;
        t.telemetry.used_bytes.set(t.used_bytes);
        t.telemetry.retargets.incr();
        t.telemetry.moved_sectors.add(report.moved_sectors);
        Ok(report)
    }

    /// Transfers ownership of an allocation from `from` to `to`,
    /// re-charging the quota (the recipient admits under **Reject** terms —
    /// a transfer never demotes) and invalidating the old handle: the
    /// returned id is the only live handle afterwards, so pins of
    /// stale-id-after-transfer hold by construction.
    ///
    /// # Errors
    ///
    /// Ownership/staleness errors as [`free`](Self::free);
    /// [`ServiceError::QuotaExceeded`] when the allocation does not fit
    /// the recipient's headroom (the transfer does not happen).
    pub fn transfer(
        &self,
        from: TenantId,
        id: ServiceAllocId,
        to: TenantId,
    ) -> Result<ServiceAllocId, ServiceError> {
        let mut state = self.write();
        let alloc = Self::resolve(&state, from, id)?;
        let recipient = state
            .tenants
            .get(to.0 as usize)
            .ok_or(ServiceError::UnknownTenant)?;
        let headroom = recipient.quota_bytes.saturating_sub(recipient.used_bytes);
        if alloc.device_bytes > headroom {
            recipient.telemetry.rejections.incr();
            return Err(ServiceError::QuotaExceeded {
                requested: alloc.device_bytes,
                headroom,
            });
        }
        let logical = alloc.entries * ENTRY_BYTES as u64;
        let slot = &mut state.slots[id.slot as usize];
        slot.generation += 1;
        let new_id = ServiceAllocId {
            slot: id.slot,
            generation: slot.generation,
        };
        if let Some(a) = slot.alloc.as_mut() {
            a.owner = to.0;
        }
        let f = &mut state.tenants[from.0 as usize];
        f.used_bytes = f.used_bytes.saturating_sub(alloc.device_bytes);
        f.telemetry.transfers.incr();
        f.telemetry.used_bytes.set(f.used_bytes);
        f.telemetry
            .logical_bytes
            .set(f.telemetry.logical_bytes.get().saturating_sub(logical));
        f.telemetry
            .allocations
            .set(f.telemetry.allocations.get().saturating_sub(1));
        let r = &mut state.tenants[to.0 as usize];
        r.used_bytes += alloc.device_bytes;
        r.telemetry.transfers.incr();
        r.telemetry.used_bytes.set(r.used_bytes);
        r.telemetry
            .logical_bytes
            .set(r.telemetry.logical_bytes.get() + logical);
        r.telemetry
            .allocations
            .set(r.telemetry.allocations.get() + 1);
        Ok(new_id)
    }
}

/// `entries × device-bytes-per-entry(target)`, checked.
fn entry_bytes(entries: u64, target: TargetRatio) -> Result<u64, ServiceError> {
    entries
        .checked_mul(target.device_bytes_per_entry() as u64)
        .ok_or(ServiceError::Device(DeviceError::RequestOverflow))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service(device_capacity: u64) -> BuddyService {
        BuddyService::new(PoolConfig {
            shards: 2,
            shard_config: DeviceConfig {
                device_capacity,
                carve_out_factor: 3,
            },
            codec: CodecKind::Bpc,
        })
    }

    #[test]
    fn quota_rejects_with_typed_error() {
        let s = service(1 << 20);
        let quota = 256 * TargetRatio::R2.device_bytes_per_entry() as u64;
        let t = s
            .register_tenant("t", quota, AdmissionPolicy::Reject)
            .unwrap();
        s.alloc(t, "a", 256, TargetRatio::R2).unwrap();
        let err = s.alloc(t, "b", 1, TargetRatio::R2).unwrap_err();
        assert_eq!(
            err,
            ServiceError::QuotaExceeded {
                requested: 64,
                headroom: 0
            }
        );
        assert_eq!(s.telemetry().snapshot()[0].rejections, 1);
    }

    #[test]
    fn demote_admits_at_a_lower_target() {
        let s = service(1 << 20);
        // Quota fits 256 entries at R4 (32 B) but not at R2 (64 B).
        let quota = 256 * 32;
        let t = s
            .register_tenant("t", quota, AdmissionPolicy::Demote)
            .unwrap();
        let grant = s.alloc(t, "a", 256, TargetRatio::R2).unwrap();
        assert!(grant.demoted);
        assert_eq!(grant.target, TargetRatio::R4);
        assert_eq!(s.used_bytes(t).unwrap(), quota);
        let rows = s.telemetry().snapshot();
        assert_eq!(rows[0].demotions, 1);
        assert_eq!(rows[0].rejections, 0);
        // Even ZeroPage16 does not fit zero headroom: now it rejects.
        let err = s.alloc(t, "b", 256, TargetRatio::R2).unwrap_err();
        assert!(matches!(err, ServiceError::QuotaExceeded { .. }));
    }

    #[test]
    fn cross_tenant_operations_are_denied() {
        let s = service(1 << 20);
        let a = s
            .register_tenant("a", u64::MAX, AdmissionPolicy::Reject)
            .unwrap();
        let b = s
            .register_tenant("b", u64::MAX, AdmissionPolicy::Reject)
            .unwrap();
        let grant = s.alloc(a, "data", 64, TargetRatio::R2).unwrap();
        let entry = [1u8; ENTRY_BYTES];
        assert!(matches!(
            s.free(b, grant.id),
            Err(ServiceError::CrossTenant { .. })
        ));
        assert!(matches!(
            s.write_entries(b, grant.id, 0, &[entry]),
            Err(ServiceError::CrossTenant { .. })
        ));
        let mut out = [[0u8; ENTRY_BYTES]; 1];
        assert!(matches!(
            s.read_entries(b, grant.id, 0, &mut out),
            Err(ServiceError::CrossTenant { .. })
        ));
        assert_eq!(s.telemetry().snapshot()[1].cross_tenant_denials, 3);
        // The owner is unaffected.
        s.write_entries(a, grant.id, 0, &[entry]).unwrap();
        s.free(a, grant.id).unwrap();
    }

    #[test]
    fn freed_handles_are_generationally_dead() {
        let s = service(1 << 20);
        let t = s
            .register_tenant("t", u64::MAX, AdmissionPolicy::Reject)
            .unwrap();
        let grant = s.alloc(t, "a", 64, TargetRatio::R2).unwrap();
        s.free(t, grant.id).unwrap();
        assert_eq!(s.free(t, grant.id), Err(ServiceError::BadHandle));
        // Slot reuse cannot resurrect the stale handle.
        let again = s.alloc(t, "b", 64, TargetRatio::R2).unwrap();
        assert_eq!(again.id.slot, grant.id.slot, "slot is recycled");
        assert_eq!(s.free(t, grant.id), Err(ServiceError::BadHandle));
        s.free(t, again.id).unwrap();
    }

    #[test]
    fn transfer_moves_the_charge_and_kills_the_old_handle() {
        let s = service(1 << 20);
        let a = s
            .register_tenant("a", u64::MAX, AdmissionPolicy::Reject)
            .unwrap();
        let b = s
            .register_tenant("b", u64::MAX, AdmissionPolicy::Reject)
            .unwrap();
        let grant = s.alloc(a, "model", 128, TargetRatio::R2).unwrap();
        let charged = s.used_bytes(a).unwrap();
        let new_id = s.transfer(a, grant.id, b).unwrap();
        assert_eq!(s.used_bytes(a).unwrap(), 0);
        assert_eq!(s.used_bytes(b).unwrap(), charged);
        // The old handle is dead on every path, for both tenants.
        assert_eq!(s.free(a, grant.id), Err(ServiceError::BadHandle));
        assert_eq!(s.free(b, grant.id), Err(ServiceError::BadHandle));
        // The new owner operates through the new handle; the old owner
        // is now a foreign tenant.
        assert!(matches!(
            s.free(a, new_id),
            Err(ServiceError::CrossTenant { .. })
        ));
        s.free(b, new_id).unwrap();
    }

    #[test]
    fn transfer_respects_the_recipient_quota() {
        let s = service(1 << 20);
        let a = s
            .register_tenant("a", u64::MAX, AdmissionPolicy::Reject)
            .unwrap();
        let b = s.register_tenant("b", 64, AdmissionPolicy::Demote).unwrap();
        let grant = s.alloc(a, "big", 128, TargetRatio::R2).unwrap();
        let err = s.transfer(a, grant.id, b).unwrap_err();
        assert!(matches!(err, ServiceError::QuotaExceeded { .. }));
        // Nothing moved: the original owner still owns and can free.
        s.free(a, grant.id).unwrap();
    }

    #[test]
    fn retarget_recharges_quota_and_enforces_it() {
        let s = service(1 << 20);
        let quota = 64 * TargetRatio::R2.device_bytes_per_entry() as u64;
        let t = s
            .register_tenant("t", quota, AdmissionPolicy::Reject)
            .unwrap();
        let grant = s.alloc(t, "a", 64, TargetRatio::R2).unwrap();
        // Shrinking the reservation refunds quota...
        s.retarget(t, grant.id, TargetRatio::R4).unwrap();
        assert_eq!(s.used_bytes(t).unwrap(), 64 * 32);
        // ...growing it back within quota is fine...
        s.retarget(t, grant.id, TargetRatio::R2).unwrap();
        assert_eq!(s.used_bytes(t).unwrap(), quota);
        // ...but growing past the quota is rejected and changes nothing.
        let err = s.retarget(t, grant.id, TargetRatio::R1).unwrap_err();
        assert!(matches!(err, ServiceError::QuotaExceeded { .. }));
        assert_eq!(s.used_bytes(t).unwrap(), quota);
        s.free(t, grant.id).unwrap();
        assert_eq!(s.used_bytes(t).unwrap(), 0);
    }

    #[test]
    fn io_is_attributed_to_the_issuing_tenant() {
        let s = service(1 << 20);
        let a = s
            .register_tenant("a", u64::MAX, AdmissionPolicy::Reject)
            .unwrap();
        let b = s
            .register_tenant("b", u64::MAX, AdmissionPolicy::Reject)
            .unwrap();
        let ga = s.alloc(a, "a", 64, TargetRatio::R2).unwrap();
        let gb = s.alloc(b, "b", 64, TargetRatio::R2).unwrap();
        let batch = [[7u8; ENTRY_BYTES]; 16];
        s.write_entries(a, ga.id, 0, &batch).unwrap();
        s.write_entries(a, ga.id, 16, &batch).unwrap();
        s.write_entries(b, gb.id, 0, &batch).unwrap();
        let sa = s.tenant_stats(a).unwrap();
        let sb = s.tenant_stats(b).unwrap();
        assert_eq!(sa.total_accesses(), 32);
        assert_eq!(sb.total_accesses(), 16);
        // Attribution is exhaustive: tenant stats sum to the pool's.
        let mut merged = AccessStats::default();
        merged.merge(&sa);
        merged.merge(&sb);
        assert_eq!(merged, s.pool().drain());
    }

    #[test]
    fn duplicate_and_unknown_tenants_are_rejected() {
        let s = service(1 << 20);
        let t = s
            .register_tenant("t", u64::MAX, AdmissionPolicy::Reject)
            .unwrap();
        assert_eq!(
            s.register_tenant("t", 0, AdmissionPolicy::Reject),
            Err(ServiceError::DuplicateTenant)
        );
        let ghost = TenantId(42);
        assert_eq!(
            s.alloc(ghost, "x", 1, TargetRatio::R2).unwrap_err(),
            ServiceError::UnknownTenant
        );
        let grant = s.alloc(t, "a", 16, TargetRatio::R2).unwrap();
        assert_eq!(s.free(ghost, grant.id), Err(ServiceError::UnknownTenant));
    }

    #[test]
    fn capacity_errors_pass_through_for_unlimited_quota() {
        let s = service(4096);
        let t = s
            .register_tenant("t", u64::MAX, AdmissionPolicy::Reject)
            .unwrap();
        let err = s.alloc(t, "huge", 1 << 20, TargetRatio::R1).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Device(DeviceError::OutOfDeviceMemory { .. })
        ));
        assert_eq!(s.telemetry().snapshot()[0].rejections, 1);
    }

    #[test]
    fn demote_also_rescues_pool_capacity_pressure() {
        // Pool too small for 512 entries at R1 (128 B each per shard) but
        // fine at a more aggressive target; quota is unlimited, so the
        // ladder walk is driven purely by pool capacity.
        let s = BuddyService::new(PoolConfig {
            shards: 1,
            shard_config: DeviceConfig {
                device_capacity: 48 * 1024,
                carve_out_factor: 3,
            },
            codec: CodecKind::Bpc,
        });
        let t = s
            .register_tenant("t", u64::MAX, AdmissionPolicy::Demote)
            .unwrap();
        let grant = s.alloc(t, "a", 512, TargetRatio::R1).unwrap();
        assert!(grant.demoted);
        assert!(grant.target.device_bytes_per_entry() < 128);
    }
}
