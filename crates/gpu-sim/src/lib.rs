//! Dependency-driven GPU memory-hierarchy performance simulator.
//!
//! This crate is the performance substrate of the Buddy Compression
//! reproduction. The original paper evaluates on a proprietary NVIDIA
//! trace-driven simulator (§4.1, Figure 10); this is a from-scratch
//! equivalent with the paper's Table 2 configuration:
//!
//! * P100-class machine: 56 SMs at 1.3 GHz, sectored 4 MB / 32-slice L2
//!   with 128 B lines and 32 B sectors ([`GpuConfig`]),
//! * 32 HBM2 channels totalling 900 GB/s, modeled as bandwidth-latency
//!   queues,
//! * an NVLink2-class interconnect (150 GB/s full-duplex, sweepable),
//! * per-slice 4 KB metadata caches and an 11-cycle (de)compression
//!   pipeline for the Buddy configurations.
//!
//! Execution follows the paper's dependency-driven approach: warps are
//! modeled as *lanes* — bounded streams of dependent memory requests — and
//! all timing emerges from queueing at the shared resources. Three memory
//! modes reproduce the Figure 11 configurations: the ideal uncompressed
//! baseline, bandwidth-only compression, and full Buddy Compression.
//!
//! A [`Fidelity::Detailed`] mode adds sector-granular DRAM bank timing and
//! stands in for the cycle-accurate reference simulator in the Figure 10
//! correlation study (the real study correlated against V100 silicon, which
//! is unavailable here; see DESIGN.md §3).
//!
//! # Example
//!
//! ```
//! use gpu_sim::{
//!     Engine, ExecConfig, Fidelity, GpuConfig, MemRequest, MemoryMode,
//!     EntryPlacement, UniformLayout,
//! };
//!
//! let layout = UniformLayout { entries: 1 << 16, placement: EntryPlacement::device(2) };
//! let cfg = GpuConfig::p100();
//! let exec = ExecConfig { lanes: 256, compute_cycles: 20.0, accesses: 10_000 };
//! let mut trace = (0..).map(|i| MemRequest {
//!     entry: i % (1 << 16),
//!     sector_mask: 0b1111,
//!     write: false,
//!     to_host: false,
//! });
//! let stats = Engine::new(cfg, exec, MemoryMode::Buddy, Fidelity::Fast, &layout)
//!     .run(&mut trace);
//! assert_eq!(stats.accesses, 10_000);
//! assert!(stats.cycles > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod engine;
pub mod layout;
pub mod stats;

pub use cache::{Eviction, Lookup, SectoredCache};
pub use config::GpuConfig;
pub use engine::{Engine, ExecConfig, Fidelity, MemRequest, MemoryMode};
pub use layout::{EntryPlacement, FnLayout, MemoryLayout, UniformLayout};
pub use stats::SimStats;
