//! The lint rule registry: every repo-specific invariant the driver
//! enforces, with its severity and path scope.
//!
//! Rules are text-level scans over the scrubbed source model (comments and
//! literal contents removed, unit-test modules excluded where a rule says
//! so). Each rule documents *why* the pattern is forbidden here — these are
//! invariants no off-the-shelf tool knows about, distilled from the bugs
//! the equivalence suites in PRs 3–5 were built to catch.

use crate::source::{SourceFile, Token, TokenKind};
use std::collections::BTreeSet;
use std::fmt;

/// How a finding affects the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Unwaived findings fail the run (CI gate).
    Deny,
    /// Reported but never fails the run — for incubating rules.
    Warn,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Deny => write!(f, "deny"),
            Severity::Warn => write!(f, "warn"),
        }
    }
}

/// One finding produced by a rule, before waiver resolution.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what to do instead.
    pub message: String,
}

/// A registered lint rule.
pub struct Rule {
    /// Stable id used in `lint-allow(<id>)` waivers and JSON output.
    pub id: &'static str,
    /// Gate behaviour of unwaived findings.
    pub severity: Severity,
    /// One-line description for `--help`-ish listings and docs.
    pub summary: &'static str,
    /// Path scope, over the root-relative path (forward slashes).
    pub applies: fn(&str) -> bool,
    /// The scan itself.
    pub check: fn(&SourceFile, &mut Vec<RawFinding>),
}

/// Every rule the driver knows, in reporting order.
pub fn registry() -> Vec<Rule> {
    vec![
        Rule {
            id: "no-unwrap",
            severity: Severity::Deny,
            summary: "no unwrap()/expect()/panic! in non-test library code",
            applies: |p| is_library_source(p),
            check: check_no_unwrap,
        },
        Rule {
            id: "lossy-cast",
            severity: Severity::Deny,
            summary: "no lossy `as` integer casts in core/pool hot paths (use try_from or a checked helper)",
            applies: |p| p.starts_with("crates/core/src/") || p.starts_with("crates/pool/src/"),
            check: check_lossy_cast,
        },
        Rule {
            id: "nested-lock",
            severity: Severity::Deny,
            summary: "no shard-lock acquisition while another shard guard is held (deadlock risk)",
            applies: |p| p.starts_with("crates/pool/src/"),
            check: check_nested_lock,
        },
        Rule {
            id: "read-path-lock",
            severity: Severity::Deny,
            summary: "pool read-path functions must not acquire a shard lock — reads resolve \
                      against epoch-published snapshots",
            applies: |p| p.starts_with("crates/pool/src/"),
            check: check_read_path_lock,
        },
        Rule {
            id: "relaxed-ordering",
            severity: Severity::Deny,
            summary: "every Ordering::Relaxed needs an adjacent `Relaxed: ...` justification comment",
            applies: |p| is_library_source(p),
            check: check_relaxed_ordering,
        },
        Rule {
            id: "wallclock-in-replay",
            severity: Severity::Deny,
            summary: "no Instant/SystemTime inside deterministic trace/replay code (workloads)",
            applies: |p| p.starts_with("crates/workloads/src/"),
            check: check_wallclock,
        },
        Rule {
            id: "crate-hygiene",
            severity: Severity::Deny,
            summary: "every crate root carries #![forbid(unsafe_code)] and crate-level docs",
            applies: is_crate_root,
            check: check_crate_hygiene,
        },
        Rule {
            id: "raw-atomic-metric",
            severity: Severity::Deny,
            summary: "no ad-hoc atomic counters in library code — metric primitives live in \
                      buddy_obs",
            applies: |p| is_library_source(p) && !p.starts_with("crates/obs/src/"),
            check: check_raw_atomic_metric,
        },
        Rule {
            id: "sync-facade",
            severity: Severity::Deny,
            summary: "no direct std::sync atomics or Mutex in library code — import them from \
                      the core::sync facade so model-checked builds can swap the primitives",
            applies: |p| {
                is_library_source(p)
                    && p != "crates/core/src/sync.rs"
                    && !p.starts_with("crates/obs/src/")
                    && !p.starts_with("crates/check/src/")
            },
            check: check_sync_facade,
        },
        Rule {
            id: "seqlock-discipline",
            severity: Severity::Deny,
            summary: "seqlock sequence words are touched only through the named core::sync \
                      helpers (seq_acquire/seq_revalidate/seq_open/seq_release)",
            applies: |p| p == "crates/core/src/shared.rs",
            check: check_seqlock_discipline,
        },
    ]
}

/// Summaries for the driver's own waiver-hygiene findings, which have no
/// registered [`Rule`]. Feeds the JSON `description` field.
pub fn pseudo_summary(id: &str) -> &'static str {
    match id {
        "unknown-waiver" => "a waiver names a rule the registry does not know",
        "waiver-without-reason" => "every waiver must carry a reason after the colon",
        "misplaced-file-waiver" => {
            "file-scoped waivers must sit in the leading comment block, before any code"
        }
        _ => "",
    }
}

/// True when the token texts starting at `toks[i]` equal `pat` exactly.
fn tokens_match(toks: &[Token], i: usize, pat: &[&str]) -> bool {
    pat.iter()
        .enumerate()
        .all(|(k, p)| toks.get(i + k).is_some_and(|t| t.text == *p))
}

/// The non-test token stream of a file — what the token-level rules scan.
fn library_tokens(file: &SourceFile) -> Vec<Token> {
    file.tokens().into_iter().filter(|t| !t.in_test).collect()
}

/// Library sources: crate `src/` trees (never `tests/`, `benches/` or
/// `examples/`, which the walker does not visit anyway).
fn is_library_source(path: &str) -> bool {
    path.ends_with(".rs")
}

/// Crate roots whose attributes the hygiene rule inspects.
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs"
        || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
        || (path.starts_with("crates/") && path.ends_with("/src/main.rs"))
}

fn check_no_unwrap(file: &SourceFile, out: &mut Vec<RawFinding>) {
    // Token matching (not substring): `.unwrap()` is the sequence
    // `. unwrap ( )`, so `unwrap_or(..)` and prose in strings never match,
    // and a call split across lines still does.
    let toks = library_tokens(file);
    let mut seen = BTreeSet::new();
    for i in 0..toks.len() {
        let (name, at, advice) = if tokens_match(&toks, i, &[".", "unwrap", "(", ")"]) {
            (
                "unwrap()",
                i + 1,
                "return a Result or use a checked alternative",
            )
        } else if tokens_match(&toks, i, &[".", "expect", "("]) {
            (
                "expect",
                i + 1,
                "return a Result, or waive with the invariant that makes it unreachable",
            )
        } else if tokens_match(&toks, i, &["panic", "!", "("]) {
            (
                "panic!",
                i,
                "return an error; panics in library code abort whole shard threads",
            )
        } else {
            continue;
        };
        let line = toks[at].line;
        if seen.insert((line, name)) {
            out.push(RawFinding {
                line,
                message: format!("`{name}` in non-test library code — {advice}"),
            });
        }
    }
}

const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

fn check_lossy_cast(file: &SourceFile, out: &mut Vec<RawFinding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let mut search = 0usize;
        while let Some(pos) = code[search..].find(" as ") {
            let after = &code[search + pos + 4..];
            let target: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if NARROW_INTS.contains(&target.as_str()) {
                out.push(RawFinding {
                    line: idx + 1,
                    message: format!(
                        "lossy `as {target}` cast in a hot path — use `{target}::try_from` \
                         or a bounds-asserted helper, or waive with the range invariant"
                    ),
                });
            }
            search += pos + 4;
        }
    }
}

/// Tokens whose evaluation acquires a shard lock in `buddy-pool`.
const LOCK_TOKENS: [&str; 3] = [".lock()", "self.shard(", "self.guard_of("];

fn acquires_lock(code: &str) -> bool {
    LOCK_TOKENS.iter().any(|t| code.contains(t))
}

/// True when a `let` binds the *guard* rather than a value computed
/// through it: the lock call is the last call in the expression
/// (`let g = self.shard(i);`, `let g = self.guard_of(id)?;`). When a
/// further method is chained (`let r = self.shard(i).alloc(..);`) the
/// guard is a temporary that dies at the end of the statement.
fn binds_guard(code: &str) -> bool {
    LOCK_TOKENS
        .iter()
        .filter_map(|t| code.rfind(t).map(|p| p + t.len()))
        .max()
        .is_some_and(|end| !code[end..].contains('.'))
}

fn check_nested_lock(file: &SourceFile, out: &mut Vec<RawFinding>) {
    // Scoped heuristic: a `let`-bound acquisition holds its guard until the
    // enclosing block closes; any further acquisition while one is held is
    // a nested-lock hazard (the shard mutexes have no global order except
    // in `drain`, which must stay the only multi-lock path).
    let mut depth: i64 = 0;
    let mut held: Vec<i64> = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = line.code.trim();
        if acquires_lock(code) {
            if !held.is_empty() {
                out.push(RawFinding {
                    line: idx + 1,
                    message: "lock acquisition while a shard guard from an enclosing scope is \
                              still held — nested shard locks have no global order and can \
                              deadlock; restructure or waive with the ordering argument"
                        .to_string(),
                });
            }
            // Only `let`-bound guards are *held* past the statement; a
            // temporary guard dies at the end of its own expression. A
            // binding inside a single-line block (`{ let g = ...; ... }`)
            // dies on its own line, so it is never pushed either.
            if code.starts_with("let ") && !code.contains('}') && binds_guard(code) {
                held.push(depth);
            }
        }
        for c in line.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    while held.last().is_some_and(|&d| d > depth) {
                        held.pop();
                    }
                }
                _ => {}
            }
        }
    }
}

/// Signatures of the pool's lock-free read path. The trailing `(` is part
/// of the needle, so `fn read_entries_collect(` does *not* match the
/// explicitly-locked baseline `fn read_entries_collect_locked(`.
const READ_PATH_FNS: [&str; 5] = [
    "fn read_entry(",
    "fn read_entries(",
    "fn read_entries_collect(",
    "fn entry_state(",
    "fn state_window(",
];

/// Tokens whose presence inside a read-path body means a shard lock was
/// taken: the probe helpers that return a guard, and a guard type spelled
/// out in a binding.
const READ_PATH_LOCK_TOKENS: [&str; 3] = ["self.shard(", "self.guard_of(", "MutexGuard"];

fn check_read_path_lock(file: &SourceFile, out: &mut Vec<RawFinding>) {
    // The lock-free invariant from the epoch-snapshot redesign: the read
    // path (`read_entry` / `read_entries` / `read_entries_collect` /
    // `entry_state` / `state_window`) resolves against published snapshots
    // via `handle_of`, never through the shard mutex. A future refactor
    // that quietly reintroduces a guard would still pass every functional
    // test — only the scaling collapses — so the invariant is pinned here.
    // The explicitly-locked baseline keeps its own `_locked` name and is
    // out of scope by construction.
    let mut depth: i64 = 0;
    // Some((floor, opened)): inside a read-path fn; the body is every line
    // until depth returns to `floor` after having exceeded it.
    let mut body: Option<(i64, bool)> = None;
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        if body.is_none() && READ_PATH_FNS.iter().any(|sig| code.contains(sig)) {
            body = Some((depth, false));
        }
        if body.is_some() {
            for token in READ_PATH_LOCK_TOKENS {
                if code.contains(token) {
                    out.push(RawFinding {
                        line: idx + 1,
                        message: format!(
                            "`{token}` on the pool read path — reads must resolve through the \
                             epoch-published snapshot (`handle_of`), never a shard guard; use \
                             an explicitly `_locked`-suffixed baseline or waive with why this \
                             lock cannot serialize readers"
                        ),
                    });
                }
            }
        }
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some((floor, opened)) = &mut body {
                        if depth > *floor {
                            *opened = true;
                        }
                    }
                }
                '}' => {
                    depth -= 1;
                    if let Some((floor, opened)) = body {
                        if opened && depth <= floor {
                            body = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

fn check_relaxed_ordering(file: &SourceFile, out: &mut Vec<RawFinding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if line.code.contains("Ordering::Relaxed") && !file.has_adjacent_comment(idx + 1, "Relaxed")
        {
            out.push(RawFinding {
                line: idx + 1,
                message: "Ordering::Relaxed without a justification — add an adjacent comment \
                          starting `Relaxed: ...` explaining why no ordering is required"
                    .to_string(),
            });
        }
    }
}

fn check_wallclock(file: &SourceFile, out: &mut Vec<RawFinding>) {
    // An identifier token IS a word boundary match — `instants` and
    // `Instantly` are different tokens, not near-misses to special-case.
    let mut seen = BTreeSet::new();
    for t in library_tokens(file) {
        if t.kind != TokenKind::Ident || (t.text != "Instant" && t.text != "SystemTime") {
            continue;
        }
        if seen.insert((t.line, t.text.clone())) {
            out.push(RawFinding {
                line: t.line,
                message: format!(
                    "`{}` in deterministic trace/replay code — replay must be \
                     reproducible from seeds alone; thread timing through the caller \
                     or waive with why this cannot perturb a trace",
                    t.text
                ),
            });
        }
    }
}

/// The `std::sync` names library code must take from the facade instead:
/// the whole `atomic` module, and the mutex pair. `Arc`, `mpsc`, `RwLock`
/// and `OnceLock` stay allowed — the model checker does not intercept
/// them, so routing them through the facade would only add indirection.
const FACADE_ONLY: [&str; 3] = ["atomic", "Mutex", "MutexGuard"];

fn check_sync_facade(file: &SourceFile, out: &mut Vec<RawFinding>) {
    // Why a facade: `cargo test --features model-sync` reruns the suite
    // with every atomic/fence/mutex op turned into a model-checker
    // scheduling point. That only works if library code never names the
    // std primitives directly. Token matching catches imports
    // (`use std::sync::atomic::..`, `use std::sync::{Arc, Mutex}`) and
    // qualified paths (`std::sync::atomic::fence(..)`) in one pass,
    // however they are spaced or line-broken.
    let toks = library_tokens(file);
    let mut seen = BTreeSet::new();
    let mut flag = |t: &Token, out: &mut Vec<RawFinding>| {
        if t.kind == TokenKind::Ident
            && FACADE_ONLY.contains(&t.text.as_str())
            && seen.insert((t.line, t.text.clone()))
        {
            out.push(RawFinding {
                line: t.line,
                message: format!(
                    "`std::sync::{}` named directly in library code — import it from the \
                     `core::sync` facade (`buddy_core::sync` outside core) so model-checked \
                     builds can swap in the checker shims",
                    if t.text == "atomic" {
                        "atomic::*".to_string()
                    } else {
                        t.text.clone()
                    }
                ),
            });
        }
    };
    for i in 0..toks.len() {
        if !tokens_match(&toks, i, &["std", "::", "sync", "::"]) {
            continue;
        }
        match toks.get(i + 4) {
            Some(t) if t.text == "{" => {
                // Scan the use-tree group (nesting included) for the
                // forbidden names.
                let mut depth = 1usize;
                let mut j = i + 5;
                while j < toks.len() && depth > 0 {
                    match toks[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        _ => flag(&toks[j], out),
                    }
                    j += 1;
                }
            }
            Some(t) => flag(t, out),
            None => {}
        }
    }
}

/// Atomic method names whose receiver must not be a bare `seq` word.
const SEQ_METHODS: [&str; 9] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
];

fn check_seqlock_discipline(file: &SourceFile, out: &mut Vec<RawFinding>) {
    // The seqlock's correctness is concentrated in four ordering choices
    // (open, close, first read, re-validation), each proven by a mutation
    // in `buddy-check` (SkipOddBump, CloseRelaxed, NoReaderFence,
    // NoWriterFence). Those proofs only cover code that goes through the
    // named helpers — a raw `seq.load(..)` re-opens the whole argument, so
    // the sequence word may only be touched via
    // `seq_acquire`/`seq_revalidate`/`seq_open`/`seq_release`.
    let toks = library_tokens(file);
    let mut seen = BTreeSet::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokenKind::Ident && toks[i].text == "seq") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.text == ".") {
            continue;
        }
        let Some(method) = toks.get(i + 2) else {
            continue;
        };
        if SEQ_METHODS.contains(&method.text.as_str()) && seen.insert(method.line) {
            out.push(RawFinding {
                line: method.line,
                message: format!(
                    "raw `seq.{}(..)` on a seqlock sequence word — use the `crate::sync` \
                     helpers (`seq_acquire`/`seq_revalidate` to read, `seq_open`/\
                     `seq_release` to write) whose orderings carry model-checker evidence",
                    method.text
                ),
            });
        }
    }
}

/// Atomic integer types whose ad-hoc declaration in service/pool library
/// code the `raw-atomic-metric` rule rejects.
const RAW_ATOMICS: [&str; 4] = ["AtomicU64", "AtomicU32", "AtomicUsize", "AtomicI64"];

/// True when `code` *declares* (`field: AtomicU64`) or *constructs*
/// (`AtomicU64::new(...)`) a raw atomic of type `ty`. Imports
/// (`use ...::AtomicU64`) and references (`&AtomicU64`) deliberately do not
/// match: borrowing or naming a counter is fine, owning a new one is what
/// fragments the metric surface.
fn declares_or_constructs(code: &str, ty: &str) -> bool {
    if code.contains(&format!("{ty}::new(")) {
        return true;
    }
    let needle = format!(": {ty}");
    let mut search = 0usize;
    while let Some(pos) = code[search..].find(&needle) {
        let after = search + pos + needle.len();
        let boundary = !code[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if boundary {
            return true;
        }
        search = after;
    }
    false
}

fn check_raw_atomic_metric(file: &SourceFile, out: &mut Vec<RawFinding>) {
    // Scattered per-module atomics are how a telemetry surface decays: each
    // one invents its own reset/snapshot story and the report rows silently
    // go stale. All metrics must go through `buddy_obs`'s `Counter` /
    // `Gauge` / `Histogram` (the one crate that owns the memory-order and
    // snapshot contracts — `crates/obs/src/` is exempt from this rule); an
    // atomic that is *not* a metric (e.g. an id source) is waived with that
    // argument.
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for ty in RAW_ATOMICS {
            if declares_or_constructs(&line.code, ty) {
                out.push(RawFinding {
                    line: idx + 1,
                    message: format!(
                        "ad-hoc `{ty}` in library code — route metrics through `buddy_obs` \
                         (`Counter`/`Gauge`/`Histogram`), or waive with why this atomic is \
                         not a metric"
                    ),
                });
            }
        }
    }
}

fn check_crate_hygiene(file: &SourceFile, out: &mut Vec<RawFinding>) {
    let has_forbid = file
        .lines
        .iter()
        .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
    if !has_forbid {
        out.push(RawFinding {
            line: 1,
            message: "crate root lacks `#![forbid(unsafe_code)]` — every crate in this \
                      workspace is a forbid-unsafe crate"
                .to_string(),
        });
    }
    let has_docs = file
        .lines
        .iter()
        .any(|l| l.raw.trim_start().starts_with("//!"));
    if !has_docs {
        out.push(RawFinding {
            line: 1,
            message: "crate root lacks crate-level `//!` documentation".to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rule_id: &str, text: &str) -> Vec<RawFinding> {
        let file = SourceFile::parse(text);
        let mut out = Vec::new();
        let rules = registry();
        let rule = rules
            .iter()
            .find(|r| r.id == rule_id)
            .unwrap_or_else(|| panic!("rule {rule_id} registered"));
        (rule.check)(&file, &mut out);
        out
    }

    #[test]
    fn registry_ids_are_unique() {
        let rules = registry();
        for (i, a) in rules.iter().enumerate() {
            for b in &rules[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }

    #[test]
    fn unwrap_in_strings_comments_and_tests_is_ignored() {
        let text = "let s = \"don't .unwrap() me\"; // .unwrap() here is prose\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }";
        assert!(run("no-unwrap", text).is_empty());
        assert_eq!(run("no-unwrap", "x.unwrap();").len(), 1);
        assert_eq!(run("no-unwrap", "x.expect(\"reason\");").len(), 1);
        assert_eq!(run("no-unwrap", "panic!(\"boom\");").len(), 1);
        assert!(run("no-unwrap", "x.unwrap_or(0); x.unwrap_or_else(f);").is_empty());
    }

    #[test]
    fn lossy_casts_flag_narrowing_only() {
        assert_eq!(run("lossy-cast", "let x = big as u32;").len(), 1);
        assert_eq!(run("lossy-cast", "let x = (a + b) as u8;").len(), 1);
        assert!(run("lossy-cast", "let x = small as u64;").is_empty());
        assert!(run("lossy-cast", "let x = small as usize;").is_empty());
        assert!(run("lossy-cast", "let x = small as f64;").is_empty());
        // `u32::try_from` is the required replacement, and is not flagged.
        assert!(run("lossy-cast", "let x = u32::try_from(big)?;").is_empty());
    }

    #[test]
    fn nested_locks_are_flagged_sequential_locks_are_not() {
        let nested = "fn f(&self) {\n    let a = self.shard(0);\n    let b = self.shard(1);\n}";
        assert_eq!(run("nested-lock", nested).len(), 1);
        let nested_temp =
            "fn f(&self) {\n    let a = self.shard(0);\n    self.shard(1).stats();\n}";
        assert_eq!(run("nested-lock", nested_temp).len(), 1);
        let sequential =
            "fn f(&self) {\n    {\n        let a = self.shard(0);\n    }\n    let b = self.shard(1);\n}";
        assert!(run("nested-lock", sequential).is_empty());
        let loop_body =
            "fn f(&self) {\n    for i in 0..4 {\n        let g = self.shard(i);\n    }\n}";
        assert!(run("nested-lock", loop_body).is_empty());
        let temporaries =
            "fn f(&self) {\n    self.shard(0).stats();\n    self.shard(1).stats();\n}";
        assert!(run("nested-lock", temporaries).is_empty());
        // Binding the *result* of a call through the guard leaves nothing
        // held: the guard temporary dies at the end of the statement.
        let result_bound =
            "fn f(&self) {\n    let r = self.shard(0).alloc(n);\n    let g = self.shard(1);\n}";
        assert!(run("nested-lock", result_bound).is_empty());
        let guard_via_try =
            "fn f(&self) {\n    let g = self.guard_of(id)?;\n    self.shard(0).stats();\n}";
        assert_eq!(run("nested-lock", guard_via_try).len(), 1);
    }

    #[test]
    fn read_path_lock_flags_guards_only_inside_read_fns() {
        let shard_guard =
            "impl P {\n    fn read_entry(&self) -> u64 {\n        let g = self.shard(0);\n        g.read()\n    }\n}";
        assert_eq!(run("read-path-lock", shard_guard).len(), 1);
        let guard_of = "fn read_entries(&self) -> u64 {\n    self.guard_of(id)?.read()\n}";
        assert_eq!(run("read-path-lock", guard_of).len(), 1);
        let spelled_guard =
            "fn entry_state(&self) {\n    let g: MutexGuard<'_, D> = self.inner.lock();\n}";
        assert_eq!(run("read-path-lock", spelled_guard).len(), 1);
        // The snapshot path is the required shape and is clean.
        let snapshot = "fn read_entries(&self) -> u64 {\n    self.handle_of(id)?.read()\n}";
        assert!(run("read-path-lock", snapshot).is_empty());
        // The explicitly-locked baseline keeps its `_locked` name and is
        // out of scope: the trailing `(` in the needle refuses the match.
        let locked_baseline =
            "fn read_entries_collect_locked(&self) -> u64 {\n    self.guard_of(id)?.read()\n}";
        assert!(run("read-path-lock", locked_baseline).is_empty());
        // Structural operations may lock all they like.
        let structural = "fn alloc(&self) -> u64 {\n    let g = self.shard(0);\n    g.alloc()\n}";
        assert!(run("read-path-lock", structural).is_empty());
        // A multi-line signature still anchors the body scan.
        let multiline = "pub fn read_entries(\n    &self,\n    id: AllocId,\n) -> u64 {\n    self.shard(0).read()\n}";
        assert_eq!(run("read-path-lock", multiline).len(), 1);
        // The body ends at its closing brace: a lock in the *next* fn is fine.
        let after_body = "impl P {\n    fn read_entry(&self) -> u64 {\n        self.handle_of(id)?.read()\n    }\n    fn free(&self) {\n        let g = self.shard(0);\n    }\n}";
        assert!(run("read-path-lock", after_body).is_empty());
    }

    #[test]
    fn read_path_lock_scope_is_the_pool_crate() {
        let rules = registry();
        let rule = rules
            .iter()
            .find(|r| r.id == "read-path-lock")
            .expect("rule registered");
        assert!((rule.applies)("crates/pool/src/lib.rs"));
        assert!((rule.applies)("crates/pool/src/loadgen.rs"));
        // Core and service define their own read fns against different
        // locking disciplines; the invariant is the *pool's*.
        assert!(!(rule.applies)("crates/core/src/device.rs"));
        assert!(!(rule.applies)("crates/service/src/lib.rs"));
    }

    #[test]
    fn relaxed_needs_a_justification_comment() {
        assert_eq!(
            run("relaxed-ordering", "c.fetch_add(1, Ordering::Relaxed);").len(),
            1
        );
        let justified =
            "// Relaxed: counter only needs atomicity.\nc.fetch_add(1, Ordering::Relaxed);";
        assert!(run("relaxed-ordering", justified).is_empty());
        let same_line = "c.fetch_add(1, Ordering::Relaxed); // Relaxed: id uniqueness only";
        assert!(run("relaxed-ordering", same_line).is_empty());
    }

    #[test]
    fn wallclock_flags_word_boundaries() {
        assert_eq!(
            run("wallclock-in-replay", "let t = Instant::now();").len(),
            1
        );
        assert_eq!(
            run("wallclock-in-replay", "use std::time::SystemTime;").len(),
            1
        );
        assert!(run("wallclock-in-replay", "let instants = 3;").is_empty());
        assert!(run("wallclock-in-replay", "use std::time::Duration;").is_empty());
    }

    #[test]
    fn raw_atomic_flags_declarations_and_constructions_only() {
        assert_eq!(run("raw-atomic-metric", "hits: AtomicU64,").len(), 1);
        assert_eq!(
            run("raw-atomic-metric", "let c = AtomicU64::new(0);").len(),
            1
        );
        assert_eq!(
            run(
                "raw-atomic-metric",
                "static N: AtomicUsize = AtomicUsize::new(0);"
            )
            .len(),
            1
        );
        // Imports, references, and unrelated identifiers are not ownership.
        assert!(run(
            "raw-atomic-metric",
            "use std::sync::atomic::{AtomicU64, Ordering};"
        )
        .is_empty());
        assert!(run("raw-atomic-metric", "fn observe(c: &AtomicU64) -> u64 {").is_empty());
        assert!(run("raw-atomic-metric", "hits: AtomicU64Ext,").is_empty());
        // Test modules may use whatever bookkeeping they like.
        let in_test = "#[cfg(test)]\nmod tests { static N: AtomicU64 = AtomicU64::new(0); }";
        assert!(run("raw-atomic-metric", in_test).is_empty());
    }

    #[test]
    fn raw_atomic_scope_exempts_only_the_obs_crate() {
        let rules = registry();
        let rule = rules
            .iter()
            .find(|r| r.id == "raw-atomic-metric")
            .expect("rule registered");
        // Everything is in scope now that the primitives live in buddy_obs —
        // including service::telemetry (which re-exports, no longer owns,
        // the atomics) and the core crate.
        assert!((rule.applies)("crates/service/src/lib.rs"));
        assert!((rule.applies)("crates/service/src/telemetry.rs"));
        assert!((rule.applies)("crates/service/src/loadgen.rs"));
        assert!((rule.applies)("crates/pool/src/lib.rs"));
        assert!((rule.applies)("crates/core/src/device.rs"));
        assert!((rule.applies)("src/lib.rs"));
        // The one home raw metric atomics are allowed: the obs crate itself.
        assert!(!(rule.applies)("crates/obs/src/hist.rs"));
        assert!(!(rule.applies)("crates/obs/src/metrics.rs"));
        assert!(!(rule.applies)("crates/obs/src/trace.rs"));
    }

    #[test]
    fn sync_facade_flags_imports_and_qualified_paths() {
        assert_eq!(
            run(
                "sync-facade",
                "use std::sync::atomic::{AtomicU64, Ordering};"
            )
            .len(),
            1
        );
        assert_eq!(run("sync-facade", "use std::sync::{Arc, Mutex};").len(), 1);
        assert_eq!(run("sync-facade", "use std::sync::MutexGuard;").len(), 1);
        assert_eq!(
            run("sync-facade", "std::sync::atomic::fence(Ordering::SeqCst);").len(),
            1
        );
        // Odd spacing and line breaks normalize to the same token stream.
        assert_eq!(
            run("sync-facade", "use std :: sync ::\n    atomic::AtomicU8;").len(),
            1
        );
        // Nested use-trees are searched through.
        assert_eq!(
            run(
                "sync-facade",
                "use std::sync::{atomic::{AtomicU64, Ordering}, Arc};"
            )
            .len(),
            1
        );
        // The allowed std::sync names, the facade itself, and prose/tests
        // are all clean.
        assert!(run("sync-facade", "use std::sync::Arc;").is_empty());
        assert!(run("sync-facade", "use std::sync::{Arc, OnceLock};").is_empty());
        assert!(run("sync-facade", "use std::sync::mpsc::sync_channel;").is_empty());
        assert!(run(
            "sync-facade",
            "use buddy_core::sync::{AtomicU64, Mutex, Ordering};"
        )
        .is_empty());
        assert!(run("sync-facade", "// use std::sync::Mutex in a comment").is_empty());
        assert!(run(
            "sync-facade",
            "#[cfg(test)]\nmod tests { use std::sync::Mutex; }"
        )
        .is_empty());
    }

    #[test]
    fn sync_facade_scope_exempts_the_facade_and_the_checker() {
        let rules = registry();
        let rule = rules
            .iter()
            .find(|r| r.id == "sync-facade")
            .expect("rule registered");
        assert!((rule.applies)("crates/core/src/shared.rs"));
        assert!((rule.applies)("crates/pool/src/lib.rs"));
        assert!((rule.applies)("crates/service/src/telemetry.rs"));
        // The three legitimate homes of raw std::sync: the facade itself,
        // the obs metric primitives, and the checker shims.
        assert!(!(rule.applies)("crates/core/src/sync.rs"));
        assert!(!(rule.applies)("crates/obs/src/metrics.rs"));
        assert!(!(rule.applies)("crates/check/src/shim.rs"));
    }

    #[test]
    fn seqlock_discipline_flags_raw_seq_atomics_only() {
        assert_eq!(
            run(
                "seqlock-discipline",
                "let s = self.seq.load(Ordering::Acquire);"
            )
            .len(),
            1
        );
        assert_eq!(
            run(
                "seqlock-discipline",
                "cell.seq.fetch_add(1, Ordering::Release);"
            )
            .len(),
            1
        );
        assert_eq!(
            run(
                "seqlock-discipline",
                "self.seq\n    .store(n, Ordering::Release);"
            )
            .len(),
            1
        );
        // The helpers themselves, other fields, and longer identifiers are
        // out of scope.
        assert!(run("seqlock-discipline", "let s = seq_acquire(&self.seq);").is_empty());
        assert!(run("seqlock-discipline", "seq_open(&cell.seq);").is_empty());
        assert!(run(
            "seqlock-discipline",
            "self.generation.load(Ordering::Acquire);"
        )
        .is_empty());
        assert!(run("seqlock-discipline", "sequence.load(Ordering::Acquire);").is_empty());
    }

    #[test]
    fn seqlock_discipline_scope_is_exactly_the_shared_module() {
        let rules = registry();
        let rule = rules
            .iter()
            .find(|r| r.id == "seqlock-discipline")
            .expect("rule registered");
        assert!((rule.applies)("crates/core/src/shared.rs"));
        assert!(!(rule.applies)("crates/core/src/sync.rs"));
        assert!(!(rule.applies)("crates/pool/src/lib.rs"));
    }

    #[test]
    fn no_unwrap_matches_across_line_breaks() {
        // The substring engine this rule replaced could not see a call
        // split across lines; the token stream can.
        assert_eq!(run("no-unwrap", "opt\n    .unwrap()").len(), 1);
        assert!(run("no-unwrap", "opt.unwrap_or_default()").is_empty());
    }

    #[test]
    fn crate_hygiene_requires_docs_and_forbid() {
        assert_eq!(run("crate-hygiene", "fn main() {}").len(), 2);
        assert!(run(
            "crate-hygiene",
            "//! Docs.\n#![forbid(unsafe_code)]\nfn main() {}"
        )
        .is_empty());
    }
}
