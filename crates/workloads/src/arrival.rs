//! Deterministic open-loop arrival schedules.
//!
//! Closed-loop load generation (the `buddy-pool` loadgen) lets the system
//! under test set the pace: a slow server simply slows its clients down,
//! and overload never shows up as anything worse than reduced throughput.
//! An **open-loop** generator instead fixes the *offered* arrival rate in
//! advance — requests arrive when the schedule says they arrive, whether
//! or not the server has kept up — so overload manifests honestly as
//! queueing delay and shed load (the regime the multi-tenant service
//! harness measures; DESIGN.md §11).
//!
//! The schedule itself is pure virtual time: a Poisson process with
//! exponential inter-arrival gaps drawn from splitmix64, yielding absolute
//! arrival offsets in nanoseconds. Nothing here reads a clock — replaying
//! a schedule is the *caller's* job (the service loadgen paces real
//! threads against it), so two runs with one seed offer byte-identical
//! arrival sequences no matter what the machine was doing.

use crate::entry_gen::{mix, splitmix64, unit_from_hash};

/// A deterministic Poisson arrival schedule: an infinite iterator of
/// absolute arrival times in **virtual nanoseconds** since the schedule's
/// origin, with exponentially distributed inter-arrival gaps.
///
/// # Example
///
/// ```
/// use workloads::arrival::ArrivalSchedule;
///
/// let times: Vec<u64> = ArrivalSchedule::new(1_000_000.0, 7).take(3).collect();
/// let again: Vec<u64> = ArrivalSchedule::new(1_000_000.0, 7).take(3).collect();
/// assert_eq!(times, again, "schedules replay exactly");
/// assert!(times.windows(2).all(|w| w[0] <= w[1]), "time moves forward");
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalSchedule {
    /// Mean inter-arrival gap in nanoseconds (1e9 / rate).
    mean_gap_ns: f64,
    /// Diffused RNG state.
    state: u64,
    /// Current absolute virtual time in nanoseconds.
    now_ns: u64,
}

impl ArrivalSchedule {
    /// Creates a schedule offering `rate_per_sec` arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not strictly positive and finite.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive and finite, got {rate_per_sec}"
        );
        Self {
            mean_gap_ns: 1e9 / rate_per_sec,
            state: splitmix64(seed),
            now_ns: 0,
        }
    }

    /// The schedule of one tenant in a multi-tenant run: the same offered
    /// rate, driven by a seed derived deterministically from
    /// `(seed, tenant)` — distinct tenants draw statistically independent
    /// processes, and a fixed master seed replays every one of them.
    pub fn per_tenant(rate_per_sec: f64, seed: u64, tenant: u64) -> Self {
        // A fixed salt keeps tenant streams disjoint from the direct
        // `new(rate, seed)` stream even for tenant 0.
        Self::new(rate_per_sec, mix(&[seed, 0xA221_7E00, tenant]))
    }

    /// The configured mean inter-arrival gap in nanoseconds.
    pub fn mean_gap_ns(&self) -> f64 {
        self.mean_gap_ns
    }
}

impl Iterator for ArrivalSchedule {
    /// Absolute arrival offset in virtual nanoseconds.
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        self.state = splitmix64(self.state);
        // Exponential inverse-CDF; `unit_from_hash` is in [0, 1), so the
        // complement is in (0, 1] and the log is finite.
        let u = 1.0 - unit_from_hash(self.state);
        let gap = (-u.ln() * self.mean_gap_ns).max(0.0);
        // Saturate rather than wrap: a schedule that has consumed 2^64 ns
        // (584 years of virtual time) pins to the horizon instead of
        // jumping back to zero.
        self.now_ns = self.now_ns.saturating_add(gap as u64);
        Some(self.now_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_monotonic() {
        let a: Vec<u64> = ArrivalSchedule::new(10_000.0, 42).take(1000).collect();
        let b: Vec<u64> = ArrivalSchedule::new(10_000.0, 42).take(1000).collect();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn mean_gap_matches_the_offered_rate() {
        // 10k arrivals at 1M/s should span ~10 ms of virtual time; the
        // exponential mean converges within a few percent at this count.
        let n = 10_000usize;
        let last = ArrivalSchedule::new(1_000_000.0, 9)
            .take(n)
            .last()
            .expect("schedule is infinite");
        let mean_gap = last as f64 / n as f64;
        assert!(
            (mean_gap - 1_000.0).abs() < 50.0,
            "mean gap {mean_gap} ns should approximate 1000 ns"
        );
    }

    #[test]
    fn gaps_are_dispersed_not_constant() {
        // A Poisson process has gap variance ≈ mean²; a uniform pacing bug
        // would collapse it. Check the coefficient of variation is near 1.
        let times: Vec<u64> = ArrivalSchedule::new(100_000.0, 3).take(5000).collect();
        let gaps: Vec<f64> = times.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let n = gaps.len() as f64;
        let mean = gaps.iter().sum::<f64>() / n;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n;
        let cv = var.sqrt() / mean;
        assert!(
            (cv - 1.0).abs() < 0.1,
            "coefficient of variation {cv} should be ~1 for exponential gaps"
        );
    }

    #[test]
    fn per_tenant_schedules_are_distinct_and_reproducible() {
        let t0: Vec<u64> = ArrivalSchedule::per_tenant(50_000.0, 7, 0)
            .take(100)
            .collect();
        let t0_again: Vec<u64> = ArrivalSchedule::per_tenant(50_000.0, 7, 0)
            .take(100)
            .collect();
        let t1: Vec<u64> = ArrivalSchedule::per_tenant(50_000.0, 7, 1)
            .take(100)
            .collect();
        let direct: Vec<u64> = ArrivalSchedule::new(50_000.0, 7).take(100).collect();
        assert_eq!(t0, t0_again);
        assert_ne!(t0, t1, "tenants must draw independent processes");
        assert_ne!(
            t0, direct,
            "tenant streams are salted away from direct ones"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        ArrivalSchedule::new(0.0, 1);
    }
}
