//! Deterministic generators for 128-byte memory-entries with controllable
//! Bit-Plane-Compression compressibility.
//!
//! The paper's evaluation runs BPC over real memory dumps of 16 GPU
//! benchmarks. Those dumps are not available, so we synthesize entries whose
//! *measured* BPC size class is predictable: a constant base word plus
//! `noise_bits` of white noise per word lands in a known [`SizeClass`]
//! (verified by tests in this module). Benchmarks are then described as
//! mixtures over target size classes — the data is still real bytes pushed
//! through the real compressor.

use bpc::{Entry, SizeClass, ENTRY_BYTES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// SplitMix64: cheap, high-quality hash used to derive per-entry seeds.
///
/// Every entry of every allocation is generated from
/// `splitmix64(alloc_seed ^ entry_index ...)`, which makes snapshots
/// reproducible, order-independent and cheap to sample.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combines several seed components into one.
pub fn mix(parts: &[u64]) -> u64 {
    let mut h = 0x243F_6A88_85A3_08D3u64;
    for &p in parts {
        h = splitmix64(h ^ p);
    }
    h
}

/// A family of 128-byte entry values with a characteristic BPC size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryClass {
    /// All-zero entry (tracked-zero; [`SizeClass::B0`]).
    Zero,
    /// A constant random base word with `noise_bits` of independent white
    /// noise added to each word. `noise_bits == 0` is a constant block.
    Noisy {
        /// Number of low-order noise bits per 32-bit word (0–31).
        noise_bits: u8,
    },
    /// A linear ramp `base + i * stride`; deltas are constant, so this is
    /// nearly as compressible as a constant block regardless of stride.
    Ramp {
        /// Number of bits in the random stride (1–24).
        stride_bits: u8,
    },
    /// Uniformly random words — incompressible under every algorithm.
    Random,
}

impl EntryClass {
    /// A representative generator whose measured BPC size class is `class`.
    ///
    /// The `noise_bits` choices are verified by the `class_targets_are_met`
    /// test below: BPC on a constant base plus `m`-bit noise costs roughly
    /// `42 + 32 (m + 1)` bits, which quantizes into the desired class.
    pub fn for_target(class: SizeClass) -> Self {
        match class {
            SizeClass::B0 => EntryClass::Zero,
            SizeClass::B8 => EntryClass::Noisy { noise_bits: 0 },
            SizeClass::B16 => EntryClass::Noisy { noise_bits: 1 },
            SizeClass::B32 => EntryClass::Noisy { noise_bits: 4 },
            SizeClass::B64 => EntryClass::Noisy { noise_bits: 10 },
            SizeClass::B80 => EntryClass::Noisy { noise_bits: 15 },
            SizeClass::B96 => EntryClass::Noisy { noise_bits: 19 },
            SizeClass::B128 => EntryClass::Random,
        }
    }

    /// The size class this generator is designed to land in, without
    /// running the compressor (used by the performance simulator, which
    /// needs per-entry sector counts on every cache miss).
    ///
    /// `class_targets_are_met` verifies ≥90% of generated entries measure
    /// exactly this class under real BPC.
    pub fn nominal_size_class(self) -> SizeClass {
        match self {
            EntryClass::Zero => SizeClass::B0,
            EntryClass::Ramp { .. } => SizeClass::B8,
            EntryClass::Random => SizeClass::B128,
            // A constant block costs base (33) + one run code (8) = 41 bits;
            // m-bit noise adds m raw planes plus the sign-boundary plane.
            EntryClass::Noisy { noise_bits: 0 } => SizeClass::for_bits(41),
            EntryClass::Noisy { noise_bits } => {
                let bits = 42 + 32 * (noise_bits as usize + 1);
                SizeClass::for_bits(bits)
            }
        }
    }

    /// Generates the entry for this class from a per-entry seed.
    pub fn generate(self, seed: u64) -> Entry {
        let mut rng = SmallRng::seed_from_u64(splitmix64(seed));
        let mut entry = [0u8; ENTRY_BYTES];
        match self {
            EntryClass::Zero => {}
            EntryClass::Noisy { noise_bits } => {
                let noise_bits = noise_bits.min(31);
                // Keep the base away from wrap-around so deltas stay small.
                let base: u32 = rng.gen_range(1u32 << 28..1u32 << 30);
                let mask = if noise_bits == 0 {
                    0
                } else {
                    (1u32 << noise_bits) - 1
                };
                for chunk in entry.chunks_exact_mut(4) {
                    let v = base.wrapping_add(rng.gen::<u32>() & mask);
                    chunk.copy_from_slice(&v.to_le_bytes());
                }
            }
            EntryClass::Ramp { stride_bits } => {
                let stride_bits = stride_bits.clamp(1, 24);
                let base: u32 = rng.gen_range(0..1u32 << 28);
                let stride: u32 = rng.gen_range(1..1u32 << stride_bits);
                for (i, chunk) in entry.chunks_exact_mut(4).enumerate() {
                    let v = base.wrapping_add(stride.wrapping_mul(i as u32));
                    chunk.copy_from_slice(&v.to_le_bytes());
                }
            }
            EntryClass::Random => {
                rng.fill(&mut entry[..]);
            }
        }
        entry
    }
}

/// A weighted mixture of entry classes describing one allocation's data.
///
/// Weights need not sum to one; they are normalized internally.
#[derive(Debug, Clone, PartialEq)]
pub struct MixtureProfile {
    components: Vec<(f64, EntryClass)>,
}

impl MixtureProfile {
    /// Builds a mixture from `(weight, class)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or any weight is negative or all
    /// weights are zero.
    pub fn new(components: Vec<(f64, EntryClass)>) -> Self {
        assert!(
            !components.is_empty(),
            "mixture needs at least one component"
        );
        assert!(
            components.iter().all(|(w, _)| *w >= 0.0),
            "mixture weights must be non-negative"
        );
        let total: f64 = components.iter().map(|(w, _)| w).sum();
        assert!(total > 0.0, "mixture weights must not all be zero");
        Self { components }
    }

    /// Builds a mixture directly from target size-class weights.
    pub fn from_class_weights(weights: &[(SizeClass, f64)]) -> Self {
        Self::new(
            weights
                .iter()
                .map(|&(class, w)| (w, EntryClass::for_target(class)))
                .collect(),
        )
    }

    /// A mixture that is a single class.
    pub fn uniform(class: EntryClass) -> Self {
        Self::new(vec![(1.0, class)])
    }

    /// The mixture components (weight, class), unnormalized.
    pub fn components(&self) -> &[(f64, EntryClass)] {
        &self.components
    }

    /// Picks a component deterministically from `u` in `[0, 1)`.
    pub fn pick(&self, u: f64) -> EntryClass {
        let total: f64 = self.components.iter().map(|(w, _)| w).sum();
        let mut acc = 0.0;
        for &(w, class) in &self.components {
            acc += w / total;
            if u < acc {
                return class;
            }
        }
        self.components.last().expect("non-empty mixture").1 // lint-allow(no-unwrap): mixtures are constructed non-empty
    }

    /// Picks a component by stripe position: weights are interpreted as
    /// relative stripe widths within a repeating period (used to model
    /// FF_HPGMG's array-of-structs pattern).
    pub fn pick_striped(&self, position_in_period: f64) -> EntryClass {
        self.pick(position_in_period)
    }

    /// Expected compressed bytes per entry if every component hit its
    /// nominal target class exactly (zero entries charged the 8 B zero-page
    /// granule). Used for spec-design sanity checks, not for results.
    pub fn nominal_bytes_per_entry(&self) -> f64 {
        let total: f64 = self.components.iter().map(|(w, _)| w).sum();
        self.components
            .iter()
            .map(|&(w, class)| {
                let bytes = match class {
                    EntryClass::Zero => 8.0,
                    EntryClass::Noisy { noise_bits } => {
                        let bits = 42.0 + 32.0 * (noise_bits as f64 + 1.0);
                        SizeClass::for_bits(bits as usize).bytes() as f64
                    }
                    EntryClass::Ramp { .. } => 8.0,
                    EntryClass::Random => 128.0,
                };
                w / total * bytes
            })
            .sum()
    }

    /// Nominal compression ratio of this mixture (`128 / nominal bytes`).
    pub fn nominal_ratio(&self) -> f64 {
        ENTRY_BYTES as f64 / self.nominal_bytes_per_entry()
    }
}

/// Uniform `[0, 1)` value derived from a hash.
pub fn unit_from_hash(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpc::{Codec, CodecKind, CompressedBuf};

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        assert_ne!(mix(&[1, 2]), mix(&[2, 1]));
    }

    #[test]
    fn class_targets_are_met() {
        // The generators target *BPC* size classes (the paper's profiler);
        // classification runs the zero-allocation path the samplers use.
        let codec = CodecKind::Bpc;
        let mut scratch = CompressedBuf::new();
        for target in SizeClass::ALL {
            let class = EntryClass::for_target(target);
            let mut hits = 0;
            let samples = 200;
            for i in 0..samples {
                let entry = class.generate(mix(&[0xC0FFEE, i]));
                let measured = codec.size_class_into(&entry, &mut scratch);
                if measured == target {
                    hits += 1;
                }
            }
            assert!(
                hits * 10 >= samples * 9,
                "{target}: only {hits}/{samples} samples hit the target class"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let class = EntryClass::Noisy { noise_bits: 8 };
        assert_eq!(class.generate(42), class.generate(42));
        assert_ne!(class.generate(42), class.generate(43));
    }

    #[test]
    fn ramp_is_highly_compressible_even_with_large_stride() {
        // A constant delta produces at most ~20 all-ones plane codes (5 bits
        // each) plus run codes — always within one sector.
        let codec = CodecKind::Bpc;
        let mut scratch = CompressedBuf::new();
        for seed in 0..50 {
            let entry = EntryClass::Ramp { stride_bits: 20 }.generate(seed);
            codec.compress_into(&entry, &mut scratch);
            let bits = scratch.bits();
            assert!(bits <= 32 * 8, "ramp compressed to {bits} bits");
        }
    }

    #[test]
    fn mixture_pick_respects_weights() {
        let m = MixtureProfile::new(vec![(3.0, EntryClass::Zero), (1.0, EntryClass::Random)]);
        assert_eq!(m.pick(0.0), EntryClass::Zero);
        assert_eq!(m.pick(0.74), EntryClass::Zero);
        assert_eq!(m.pick(0.76), EntryClass::Random);
        assert_eq!(m.pick(0.999), EntryClass::Random);
    }

    #[test]
    fn mixture_nominal_ratio() {
        let m = MixtureProfile::from_class_weights(&[(SizeClass::B64, 1.0)]);
        assert!((m.nominal_ratio() - 2.0).abs() < 1e-9);
        let m = MixtureProfile::from_class_weights(&[(SizeClass::B128, 1.0)]);
        assert!((m.nominal_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_mixture_panics() {
        MixtureProfile::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        MixtureProfile::new(vec![(-1.0, EntryClass::Zero)]);
    }

    #[test]
    fn unit_from_hash_in_range() {
        for i in 0..1000 {
            let u = unit_from_hash(splitmix64(i));
            assert!((0.0..1.0).contains(&u));
        }
    }
}
