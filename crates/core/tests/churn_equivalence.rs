//! The allocation lifecycle under churn (DESIGN.md §9).
//!
//! Three guarantees pin the free-list allocator and the generational ids:
//!
//! 1. **Leak freedom.** After any interleaving of alloc/free (including
//!    N full alloc-everything/free-everything cycles), a device with no
//!    live allocations is indistinguishable from a fresh one:
//!    `device_used() == buddy_used() == 0`, fragmentation `0`, and a
//!    subsequent full-capacity allocation succeeds — which is only
//!    possible if freed neighbours coalesced back into one run.
//! 2. **Observation equivalence.** However a live working set was reached
//!    — allocations created, freed, re-allocated into the holes,
//!    re-written, re-targeted — the surviving allocations are observably
//!    identical (bytes, per-entry states, occupancy, read-side traffic,
//!    state windows) to the same allocations created directly on a fresh
//!    device.
//! 3. **Stale ids stay dead.** Every id invalidated by a `free` returns
//!    `BadAllocation` on every path forever, even after its slot has been
//!    recycled by later allocations (generational ids).

use bpc::{CodecKind, ENTRY_BYTES};
use buddy_core::{AllocId, BuddyDevice, DeviceConfig, DeviceError, TargetRatio};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

type Entry = [u8; ENTRY_BYTES];

const CONFIG: DeviceConfig = DeviceConfig {
    device_capacity: 64 << 10,
    carve_out_factor: 3,
};

/// Entries spanning the compressibility spectrum (zero / constant /
/// small-noise / random), as in the sibling equivalence suites.
fn entry_of_kind(kind: u8, seed: u64) -> Entry {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut entry = [0u8; ENTRY_BYTES];
    match kind % 4 {
        0 => {}
        1 => {
            let w: u32 = rng.gen();
            for c in entry.chunks_exact_mut(4) {
                c.copy_from_slice(&w.to_le_bytes());
            }
        }
        2 => {
            let base: u32 = rng.gen_range(1 << 28..1 << 29);
            for c in entry.chunks_exact_mut(4) {
                let v = base + rng.gen_range(0u32..1 << 10);
                c.copy_from_slice(&v.to_le_bytes());
            }
        }
        _ => rng.fill(&mut entry[..]),
    }
    entry
}

/// The shadow model of one live allocation.
struct Shadow {
    id: AllocId,
    name: String,
    target: TargetRatio,
    contents: Vec<Entry>,
}

/// Occupancy fingerprint compared across devices.
fn occupancy(dev: &BuddyDevice) -> (u64, u64, u64, String) {
    (
        dev.device_used(),
        dev.buddy_used(),
        dev.logical_bytes(),
        format!("{:.12}", dev.effective_ratio()),
    )
}

/// Asserts that a handle is dead on every path.
fn assert_stale(dev: &mut BuddyDevice, id: AllocId) {
    assert_eq!(dev.read_entry(id, 0), Err(DeviceError::BadAllocation));
    assert_eq!(
        dev.write_entry(id, 0, &[1u8; ENTRY_BYTES]),
        Err(DeviceError::BadAllocation)
    );
    assert_eq!(
        dev.retarget(id, TargetRatio::R1),
        Err(DeviceError::BadAllocation)
    );
    assert_eq!(dev.state_window(id), Err(DeviceError::BadAllocation));
    assert_eq!(dev.free(id), Err(DeviceError::BadAllocation));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline property: any alloc/free/write/retarget interleaving
    /// leaves the surviving working set observation-equivalent to a fresh
    /// device, stale ids dead, and — once everything is freed — the
    /// device fully reclaimed.
    #[test]
    fn churn_is_observation_equivalent_and_leak_free(
        ops in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u8>()), 1..100),
        codec_idx in 0usize..4,
    ) {
        let codec = CodecKind::ALL[codec_idx];
        let mut dev = BuddyDevice::with_codec(CONFIG, codec);
        let mut live: Vec<Shadow> = Vec::new();
        let mut stale: Vec<AllocId> = Vec::new();
        let mut next_name = 0u64;

        for &(a, b, kind) in &ops {
            match a % 5 {
                // Allocate (twice as likely as each other op).
                0 | 1 => {
                    let entries = b % 24 + 1;
                    let target = TargetRatio::DESCENDING[(b / 24 % 5) as usize];
                    let name = format!("a{next_name}");
                    next_name += 1;
                    match dev.alloc(&name, entries, target) {
                        Ok(id) => live.push(Shadow {
                            id,
                            name,
                            target,
                            contents: vec![[0u8; ENTRY_BYTES]; entries as usize],
                        }),
                        Err(e) => prop_assert!(
                            matches!(
                                e,
                                DeviceError::OutOfDeviceMemory { .. }
                                    | DeviceError::OutOfBuddyMemory { .. }
                            ),
                            "alloc may only fail for capacity: {e:?}"
                        ),
                    }
                }
                // Free a random live allocation.
                2 if !live.is_empty() => {
                    let shadow = live.swap_remove((b % live.len() as u64) as usize);
                    dev.free(shadow.id).unwrap();
                    stale.push(shadow.id);
                }
                // Write one entry of a random live allocation.
                3 if !live.is_empty() => {
                    let pick = (b % live.len() as u64) as usize;
                    let shadow = &mut live[pick];
                    let index = (b / 7) % shadow.contents.len() as u64;
                    let entry = entry_of_kind(kind, b ^ a);
                    dev.write_entry(shadow.id, index, &entry).unwrap();
                    shadow.contents[index as usize] = entry;
                }
                // Re-target a random live allocation.
                4 if !live.is_empty() => {
                    let pick = (b % live.len() as u64) as usize;
                    let shadow = &mut live[pick];
                    let new_target = TargetRatio::DESCENDING[(kind % 5) as usize];
                    match dev.retarget(shadow.id, new_target) {
                        Ok(_) => shadow.target = new_target,
                        Err(e) => prop_assert!(
                            matches!(
                                e,
                                DeviceError::OutOfDeviceMemory { .. }
                                    | DeviceError::OutOfBuddyMemory { .. }
                            ),
                            "retarget may only fail for capacity: {e:?}"
                        ),
                    }
                }
                _ => {}
            }
        }

        // (3) Stale ids are dead, even though later allocations may have
        // recycled their slots and their storage.
        for &id in &stale {
            assert_stale(&mut dev, id);
        }

        // (2) The survivors are observation-equivalent to the same working
        // set created directly on a fresh device (same creation order,
        // final targets, final contents).
        let mut fresh = BuddyDevice::with_codec(CONFIG, codec);
        let mut fresh_ids = Vec::new();
        for shadow in &live {
            let id = fresh
                .alloc(&shadow.name, shadow.contents.len() as u64, shadow.target)
                .expect("fresh device holds the churned survivors");
            fresh.write_entries(id, 0, &shadow.contents).unwrap();
            fresh_ids.push(id);
        }
        prop_assert_eq!(dev.allocation_count(), live.len());
        prop_assert_eq!(occupancy(&dev), occupancy(&fresh), "occupancy");
        dev.reset_stats();
        fresh.reset_stats();
        for (shadow, &fresh_id) in live.iter().zip(fresh_ids.iter()) {
            let n = shadow.contents.len();
            let mut from_churned = vec![[9u8; ENTRY_BYTES]; n];
            dev.read_entries(shadow.id, 0, &mut from_churned).unwrap();
            prop_assert_eq!(&from_churned, &shadow.contents, "{}: bytes", &shadow.name);
            for i in 0..n as u64 {
                prop_assert_eq!(
                    dev.entry_state(shadow.id, i).unwrap(),
                    fresh.entry_state(fresh_id, i).unwrap(),
                    "{}: state of entry {}", &shadow.name, i
                );
            }
            let mut sink = vec![[0u8; ENTRY_BYTES]; n];
            fresh.read_entries(fresh_id, 0, &mut sink).unwrap();
            prop_assert_eq!(
                dev.state_window(shadow.id).unwrap(),
                fresh.state_window(fresh_id).unwrap(),
                "{}: state window", &shadow.name
            );
        }
        prop_assert_eq!(dev.stats(), fresh.stats(), "read-side traffic");

        // (1) Leak freedom: free the survivors and the device must be
        // fully reclaimed — one coalesced run hosting a full-capacity
        // allocation.
        for shadow in live.drain(..) {
            dev.free(shadow.id).unwrap();
        }
        prop_assert_eq!(dev.device_used(), 0);
        prop_assert_eq!(dev.buddy_used(), 0);
        prop_assert_eq!(dev.allocation_count(), 0);
        prop_assert_eq!(dev.fragmentation(), 0.0);
        prop_assert_eq!(dev.largest_free_region(), CONFIG.device_capacity);
        let entries = CONFIG.device_capacity / ENTRY_BYTES as u64;
        let big = dev.alloc("big", entries, TargetRatio::R1).unwrap();
        prop_assert_eq!(dev.device_used(), CONFIG.device_capacity);
        prop_assert_eq!(dev.read_entry(big, entries - 1).unwrap(), [0u8; ENTRY_BYTES]);
    }

    /// Free-then-realloc into the holes round-trips bytes even when the
    /// replacement overlaps several freed regions (coalescing in action).
    #[test]
    fn reallocation_into_coalesced_holes_round_trips(
        kinds in proptest::collection::vec((0u8..8, any::<u64>()), 4..16),
        codec_idx in 0usize..4,
    ) {
        let codec = CodecKind::ALL[codec_idx];
        let mut dev = BuddyDevice::with_codec(CONFIG, codec);
        // Carpet the device with equal allocations...
        let per_alloc = 16u64;
        let count = CONFIG.device_capacity / (per_alloc * 64); // all R2
        let ids: Vec<AllocId> = (0..count)
            .map(|i| dev.alloc(&format!("c{i}"), per_alloc, TargetRatio::R2).unwrap())
            .collect();
        // ...free every second one, then every first one, so the arena is
        // rebuilt from interleaved holes.
        for (i, &id) in ids.iter().enumerate() {
            if i % 2 == 1 {
                dev.free(id).unwrap();
            }
        }
        for (i, &id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                dev.free(id).unwrap();
            }
        }
        prop_assert_eq!(dev.device_used(), 0);
        // The whole arena is one hole again: a maximal R2 allocation fits.
        let entries = CONFIG.device_capacity / 64;
        let big = dev.alloc("big", entries, TargetRatio::R2).unwrap();
        let contents: Vec<Entry> = (0..entries as usize)
            .map(|i| {
                let (kind, seed) = kinds[i % kinds.len()];
                entry_of_kind(kind, seed ^ i as u64)
            })
            .collect();
        dev.write_entries(big, 0, &contents).unwrap();
        let mut out = vec![[0u8; ENTRY_BYTES]; entries as usize];
        dev.read_entries(big, 0, &mut out).unwrap();
        prop_assert_eq!(out, contents);
    }
}

/// The acceptance-criteria loop, deterministic: N interleaved alloc/free
/// cycles return the device to `device_used() == 0` with a working
/// full-capacity allocation (coalescing), with no drift in any counter.
#[test]
fn n_cycles_of_churn_return_to_empty() {
    let mut dev = BuddyDevice::new(CONFIG);
    let targets = TargetRatio::DESCENDING;
    for cycle in 0u64..50 {
        let mut ids = Vec::new();
        // A cycle allocates a mixed working set...
        for k in 0..12u64 {
            let entries = (cycle * 7 + k * 13) % 40 + 1;
            let target = targets[((cycle + k) % 5) as usize];
            let id = dev
                .alloc(&format!("c{cycle}-{k}"), entries, target)
                .expect("working set fits");
            dev.write_entry(id, 0, &[cycle as u8 + 1; ENTRY_BYTES])
                .unwrap();
            ids.push(id);
        }
        // ...frees half of it in creation order, allocates replacements
        // into the holes, then frees everything (reverse order for odd
        // cycles, so both free orders coalesce).
        for &id in ids.iter().take(6) {
            dev.free(id).unwrap();
        }
        for k in 0..6u64 {
            ids.push(
                dev.alloc(
                    &format!("r{cycle}-{k}"),
                    (k * 11) % 32 + 1,
                    targets[(k % 5) as usize],
                )
                .expect("replacements fit the holes"),
            );
        }
        let survivors = ids.split_off(6);
        if cycle % 2 == 0 {
            for &id in &survivors {
                dev.free(id).unwrap();
            }
        } else {
            for &id in survivors.iter().rev() {
                dev.free(id).unwrap();
            }
        }
        assert_eq!(dev.device_used(), 0, "cycle {cycle}: device leak");
        assert_eq!(dev.buddy_used(), 0, "cycle {cycle}: buddy leak");
        assert_eq!(dev.allocation_count(), 0, "cycle {cycle}");
        assert_eq!(dev.fragmentation(), 0.0, "cycle {cycle}: holes left");
    }
    // After 50 cycles the device still hosts a full-capacity allocation.
    let entries = CONFIG.device_capacity / ENTRY_BYTES as u64;
    dev.alloc("full", entries, TargetRatio::R1).unwrap();
    assert_eq!(dev.device_used(), CONFIG.device_capacity);
}
