//! Compression metadata: the 4-bit per-entry state array, the Global Buddy
//! Base-address Register (GBBR), and the page-table extension accounting.
//!
//! §3.2: "To know the actual compressed size of each 128B memory-entry,
//! there are 4 bits of metadata per cache block, stored in a dedicated
//! region of device memory, amounting to a 0.4% overhead in storage." The
//! page table carries 24 extra bits per PTE (compressed flag, target ratio,
//! buddy-page offset), and a single GBBR holds the base of the carve-out.

use std::fmt;

/// Decoded 4-bit per-entry metadata state.
///
/// The encoding covers everything the memory controller needs on an access:
/// how many device sectors hold the entry, whether the buddy slot is in use,
/// and the two zero-page sub-states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryState {
    /// The entry is all zeros — no data sectors need to be read at all.
    Zero,
    /// The entry is stored compressed in `sectors` (1–4) sectors, starting
    /// in device memory and spilling to the buddy slot beyond the target.
    Compressed {
        /// Total 32 B sectors occupied (1–4).
        sectors: u8,
    },
    /// Zero-page-mode entry that fits its 8 B device granule.
    ZeroPageFit,
    /// Zero-page-mode entry that overflowed: the full 128 B raw entry lives
    /// in the buddy slot.
    ZeroPageOverflow,
}

impl EntryState {
    /// Encodes into the 4-bit on-chip representation.
    pub fn encode(self) -> u8 {
        match self {
            EntryState::Zero => 0,
            EntryState::Compressed { sectors } => {
                debug_assert!((1..=4).contains(&sectors));
                sectors
            }
            EntryState::ZeroPageFit => 5,
            EntryState::ZeroPageOverflow => 6,
        }
    }

    /// Decodes the 4-bit representation.
    ///
    /// Returns `None` for the reserved encodings 7–15.
    pub fn decode(nibble: u8) -> Option<Self> {
        match nibble {
            0 => Some(EntryState::Zero),
            s @ 1..=4 => Some(EntryState::Compressed { sectors: s }),
            5 => Some(EntryState::ZeroPageFit),
            6 => Some(EntryState::ZeroPageOverflow),
            _ => None,
        }
    }
}

impl fmt::Display for EntryState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryState::Zero => write!(f, "zero"),
            EntryState::Compressed { sectors } => write!(f, "{sectors}s"),
            EntryState::ZeroPageFit => write!(f, "zp-fit"),
            EntryState::ZeroPageOverflow => write!(f, "zp-ovf"),
        }
    }
}

/// The dedicated device-memory region holding 4 bits per 128 B entry.
///
/// Packed two entries per byte. One 32 B metadata cache line covers 64
/// consecutive entries (8 KB of data) — the prefetch granularity §3.2
/// describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetadataStore {
    nibbles: Vec<u8>,
    entries: u64,
}

/// Number of 128 B entries covered by one 32 B metadata line.
pub const ENTRIES_PER_METADATA_LINE: u64 = 64;

impl MetadataStore {
    /// Creates metadata for `entries` memory-entries, all initially zero.
    pub fn new(entries: u64) -> Self {
        Self {
            nibbles: vec![0u8; entries.div_ceil(2) as usize],
            entries,
        }
    }

    /// Number of entries tracked.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Size of the metadata region in bytes (the 0.4% overhead).
    pub fn storage_bytes(&self) -> u64 {
        self.nibbles.len() as u64
    }

    /// Reads the state of entry `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or holds a reserved encoding
    /// (impossible through [`set`](Self::set)).
    pub fn get(&self, index: u64) -> EntryState {
        assert!(index < self.entries, "metadata index {index} out of range");
        let byte = self.nibbles[(index / 2) as usize];
        let nibble = if index % 2 == 0 {
            byte & 0x0F
        } else {
            byte >> 4
        };
        EntryState::decode(nibble).expect("stored nibble is always valid") // lint-allow(no-unwrap): set() stores only encoded nibbles, so decode cannot fail
    }

    /// Writes the state of entry `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set(&mut self, index: u64, state: EntryState) {
        assert!(index < self.entries, "metadata index {index} out of range");
        let slot = &mut self.nibbles[(index / 2) as usize];
        let nibble = state.encode();
        if index % 2 == 0 {
            *slot = (*slot & 0xF0) | nibble;
        } else {
            *slot = (*slot & 0x0F) | (nibble << 4);
        }
    }

    /// Extends the store to cover `new_entries` entries; the added tail
    /// reads as [`EntryState::Zero`]. Existing states are untouched (no
    /// copy — the nibble array is extended in place).
    ///
    /// # Panics
    ///
    /// Panics if `new_entries` is smaller than the current size.
    pub fn grow(&mut self, new_entries: u64) {
        assert!(
            new_entries >= self.entries,
            "metadata grow cannot shrink ({} -> {new_entries})",
            self.entries
        );
        self.nibbles.resize(new_entries.div_ceil(2) as usize, 0);
        self.entries = new_entries;
    }

    /// Resets `[start, start + len)` to [`EntryState::Zero`] — the state
    /// of a fresh allocation. Byte-aligned interior nibble pairs are
    /// cleared with a fill; the unaligned edges nibble-by-nibble.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the tracked entries.
    pub fn clear_range(&mut self, start: u64, len: u64) {
        let end = start.checked_add(len).expect("range end overflows"); // lint-allow(no-unwrap): the overflow panic is this method's documented contract
        assert!(
            end <= self.entries,
            "metadata range {start}+{len} out of range"
        );
        let mut i = start;
        while i < end && i % 2 == 1 {
            self.set(i, EntryState::Zero);
            i += 1;
        }
        let aligned_end = end - end % 2;
        if i < aligned_end {
            self.nibbles[(i / 2) as usize..(aligned_end / 2) as usize].fill(0);
            i = aligned_end;
        }
        while i < end {
            self.set(i, EntryState::Zero);
            i += 1;
        }
    }

    /// The metadata line index covering entry `index` (the unit cached by
    /// the metadata cache).
    pub fn line_of(index: u64) -> u64 {
        index / ENTRIES_PER_METADATA_LINE
    }
}

/// The Global Buddy Base-address Register: base physical address of this
/// GPU's carve-out in the buddy memory (§3.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Gbbr(pub u64);

impl Gbbr {
    /// Translates a buddy-page offset (from the extended PTE) plus an
    /// in-page byte offset into a buddy physical address — the paper's
    /// "simple GBBR-offset based addressing".
    pub fn translate(self, buddy_page_offset: u64, byte_in_region: u64) -> u64 {
        self.0 + buddy_page_offset + byte_in_region
    }
}

/// Extra bits Buddy Compression adds to each page-table entry: compressed
/// flag (1), target ratio (3, covering the 16× encoding §3.4 adds), and
/// buddy-page offset (20) — "a total overhead of 24 bits per page-table
/// entry" (§3.2).
pub const PTE_EXTENSION_BITS: u32 = 24;

/// Metadata storage overhead as a fraction of data storage: 4 bits per
/// 128 B entry.
pub const METADATA_OVERHEAD: f64 = 4.0 / (128.0 * 8.0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn states_round_trip_through_nibbles() {
        let states = [
            EntryState::Zero,
            EntryState::Compressed { sectors: 1 },
            EntryState::Compressed { sectors: 2 },
            EntryState::Compressed { sectors: 3 },
            EntryState::Compressed { sectors: 4 },
            EntryState::ZeroPageFit,
            EntryState::ZeroPageOverflow,
        ];
        for s in states {
            assert_eq!(EntryState::decode(s.encode()), Some(s));
        }
        for reserved in 7..=15u8 {
            assert_eq!(EntryState::decode(reserved), None);
        }
    }

    #[test]
    fn store_set_get_adjacent_nibbles() {
        let mut store = MetadataStore::new(10);
        store.set(0, EntryState::Compressed { sectors: 3 });
        store.set(1, EntryState::ZeroPageOverflow);
        assert_eq!(store.get(0), EntryState::Compressed { sectors: 3 });
        assert_eq!(store.get(1), EntryState::ZeroPageOverflow);
        // Overwrite one half; the other is untouched.
        store.set(0, EntryState::Zero);
        assert_eq!(store.get(0), EntryState::Zero);
        assert_eq!(store.get(1), EntryState::ZeroPageOverflow);
    }

    #[test]
    fn overhead_is_0_4_percent() {
        let store = MetadataStore::new(1 << 20);
        let data_bytes = (1u64 << 20) * 128;
        let overhead = store.storage_bytes() as f64 / data_bytes as f64;
        assert!((overhead - 0.00390625).abs() < 1e-9);
        assert!((METADATA_OVERHEAD - overhead).abs() < 1e-9);
    }

    #[test]
    fn line_covers_64_entries() {
        assert_eq!(MetadataStore::line_of(0), 0);
        assert_eq!(MetadataStore::line_of(63), 0);
        assert_eq!(MetadataStore::line_of(64), 1);
        assert_eq!(ENTRIES_PER_METADATA_LINE * 4 / 8, 32); // 32 B per line
    }

    #[test]
    fn grow_preserves_states_and_zeroes_the_tail() {
        let mut store = MetadataStore::new(5);
        store.set(0, EntryState::Compressed { sectors: 4 });
        store.set(4, EntryState::ZeroPageFit);
        store.grow(12);
        assert_eq!(store.entries(), 12);
        assert_eq!(store.get(0), EntryState::Compressed { sectors: 4 });
        assert_eq!(store.get(4), EntryState::ZeroPageFit);
        for i in 5..12 {
            assert_eq!(store.get(i), EntryState::Zero, "entry {i}");
        }
    }

    #[test]
    fn clear_range_resets_only_the_range() {
        let mut store = MetadataStore::new(16);
        for i in 0..16 {
            store.set(i, EntryState::Compressed { sectors: 2 });
        }
        // Odd start, odd end: exercises both unaligned edges and the
        // byte-aligned interior fill.
        store.clear_range(3, 7);
        for i in 0..16 {
            let expect = if (3..10).contains(&i) {
                EntryState::Zero
            } else {
                EntryState::Compressed { sectors: 2 }
            };
            assert_eq!(store.get(i), expect, "entry {i}");
        }
        // Zero-length clears are no-ops, even at the end.
        store.clear_range(16, 0);
    }

    #[test]
    fn gbbr_translation_is_offset_based() {
        let gbbr = Gbbr(0x1_0000_0000);
        assert_eq!(gbbr.translate(0x2000, 96), 0x1_0000_2060);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        MetadataStore::new(4).get(4);
    }

    #[test]
    fn display_forms() {
        assert_eq!(EntryState::Zero.to_string(), "zero");
        assert_eq!(EntryState::Compressed { sectors: 2 }.to_string(), "2s");
        assert_eq!(EntryState::ZeroPageFit.to_string(), "zp-fit");
        assert_eq!(EntryState::ZeroPageOverflow.to_string(), "zp-ovf");
    }
}
