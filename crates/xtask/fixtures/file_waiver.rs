//! Known-bad corpus for file-scoped waivers: a well-placed, reasoned
//! `lint-allow-file` suppresses every finding of its rule in the file; a
//! reasonless, unknown-rule or mid-file one suppresses nothing and is a
//! deny finding itself.
// lint-allow-file(no-unwrap): fixture demonstrates one file waiver covering many findings
// lint-allow-file(lossy-cast)
// lint-allow-file(not-a-rule): typo'd ids must never silently waive anything
#![forbid(unsafe_code)]

// The two malformed leading waivers above, and the misplaced one below:
// expect-file(waiver-without-reason)
// expect-file(unknown-waiver)
// expect-file(misplaced-file-waiver)

fn covered_once(opt: Option<u32>) -> u32 {
    opt.unwrap()
}

fn covered_again(opt: Option<u32>) -> u32 {
    opt.expect("the file waiver absorbs this one too")
}

fn reasonless_file_waivers_do_not_suppress(x: u64) -> u8 {
    x as u8 // expect(lossy-cast)
}

// lint-allow-file(no-unwrap): arriving after code has started, this is misplaced
fn misplaced_file_waivers_do_not_suppress_either(opt: Option<u32>) -> u32 {
    match opt {
        Some(v) => v,
        None => 0,
    }
}
