//! The functional model of a Buddy-Compression GPU device: real compressed
//! storage split between device memory and the buddy carve-out.
//!
//! This module implements the data path of Figures 1 and 4. Every 128 B
//! memory-entry of an allocation with target ratio *r* owns
//! `128/r` bytes of device memory and a fixed, pre-reserved slot in the
//! buddy carve-out. Writes recompress the entry and update only that entry's
//! own storage — the design's central invariant is that compressibility
//! changes never move any *other* data (§3.3, "No Page-Faulting Expense"),
//! which `tests/no_movement.rs` verifies.

use crate::adapt::StateWindow;
use crate::metadata::{EntryState, Gbbr};
use crate::region::RegionAllocator;
use crate::shared::{self, AllocView, RawSlot, SharedState};
use crate::target::TargetRatio;
use bpc::{CodecKind, CompressedBuf, Entry, ENTRY_BYTES};
use buddy_obs::{trace, SpanKind};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// An entry's storage fingerprint: its `(offset, length)` byte range in
/// device memory and in the buddy carve-out.
pub type StorageRanges = ((u64, u64), (u64, u64));

/// Errors returned by allocation and access operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The requested allocation does not fit in the remaining device memory.
    OutOfDeviceMemory {
        /// Bytes requested from device memory.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// The requested allocation does not fit in the remaining carve-out.
    OutOfBuddyMemory {
        /// Bytes requested from buddy memory.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// An allocation id that was never returned by `alloc`.
    BadAllocation,
    /// An entry index beyond the allocation size.
    BadIndex {
        /// Offending index.
        index: u64,
        /// Entries in the allocation.
        entries: u64,
    },
    /// An allocation of zero entries was requested. Zero-entry allocations
    /// are rejected uniformly across every path (`alloc` on devices and
    /// pools alike): they would be unaddressable (every access out of
    /// range) and un-retargetable (no states to observe), so the request
    /// is pinned to an explicit error instead of behaving differently per
    /// layer.
    EmptyAllocation,
    /// The request's byte accounting (`entries × bytes-per-entry`)
    /// overflows `u64`. Pinned to an explicit error so an absurd request
    /// fails cleanly on every build instead of panicking in debug and
    /// wrapping silently in release.
    RequestOverflow,
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfDeviceMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "out of device memory: need {requested} B, {available} B free"
                )
            }
            DeviceError::OutOfBuddyMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "out of buddy memory: need {requested} B, {available} B free"
                )
            }
            DeviceError::BadAllocation => write!(f, "unknown allocation id"),
            DeviceError::BadIndex { index, entries } => {
                write!(
                    f,
                    "entry index {index} out of range (allocation has {entries})"
                )
            }
            DeviceError::EmptyAllocation => {
                write!(f, "allocations must contain at least one entry")
            }
            DeviceError::RequestOverflow => {
                write!(f, "request size arithmetic overflows u64")
            }
        }
    }
}

impl DeviceError {
    /// Whether this error reports *capacity exhaustion* (device or buddy
    /// memory) rather than a caller mistake (bad handle, bad index, bad
    /// request shape).
    ///
    /// The distinction matters to admission control: a capacity error is
    /// eligible for demotion to a lower target ratio or for shedding, while
    /// a validation error must surface to the caller unchanged.
    pub fn is_capacity(&self) -> bool {
        matches!(
            self,
            DeviceError::OutOfDeviceMemory { .. } | DeviceError::OutOfBuddyMemory { .. }
        )
    }
}

impl Error for DeviceError {}

/// Handle to one compressed allocation.
///
/// Ids are **generational**: [`free`](BuddyDevice::free) bumps the
/// generation of the slot it vacates, so a handle kept across a `free` is
/// permanently dead — every use returns
/// [`DeviceError::BadAllocation`] even after the slot has been reused by a
/// newer allocation. A stale id can never silently alias live data
/// (generations are 64-bit, so a slot cannot wrap back to a retained
/// stale generation within any physically reachable churn volume).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocId {
    pub(crate) slot: u32,
    pub(crate) generation: u64,
}

/// Traffic counters for one device (sector granularity, matching the HBM2
/// access unit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Entry reads served entirely from device memory.
    pub reads_device_only: u64,
    /// Entry reads that needed the buddy memory.
    pub reads_with_buddy: u64,
    /// Entry writes contained in device memory.
    pub writes_device_only: u64,
    /// Entry writes that spilled to buddy memory.
    pub writes_with_buddy: u64,
    /// 32 B sectors moved to/from device DRAM.
    pub device_sectors: u64,
    /// 32 B sectors moved over the interconnect to/from buddy memory.
    pub buddy_sectors: u64,
    /// Completed [`retarget`](BuddyDevice::retarget) migrations.
    pub retargets: u64,
    /// 32 B sectors rewritten by migrations: exactly the re-encoded
    /// entries of the retargeted allocation — no other allocation is ever
    /// relocated. Kept separate from `device_sectors`/`buddy_sectors` so
    /// migration overhead is visible on its own and entry-access
    /// accounting ([`total_accesses`](Self::total_accesses),
    /// [`buddy_access_fraction`](Self::buddy_access_fraction)) is
    /// unaffected.
    pub moved_sectors: u64,
}

impl AccessStats {
    /// Merges another counter set into this one (used by the batched entry
    /// I/O paths, which accumulate locally and fold in once per batch).
    pub fn merge(&mut self, other: &AccessStats) {
        self.reads_device_only += other.reads_device_only;
        self.reads_with_buddy += other.reads_with_buddy;
        self.writes_device_only += other.writes_device_only;
        self.writes_with_buddy += other.writes_with_buddy;
        self.device_sectors += other.device_sectors;
        self.buddy_sectors += other.buddy_sectors;
        self.retargets += other.retargets;
        self.moved_sectors += other.moved_sectors;
    }

    /// Fraction of entry accesses that touched the buddy memory — the
    /// quantity plotted in Figures 7, 8 and 9.
    pub fn buddy_access_fraction(&self) -> f64 {
        let total = self.reads_device_only
            + self.reads_with_buddy
            + self.writes_device_only
            + self.writes_with_buddy;
        if total == 0 {
            return 0.0;
        }
        (self.reads_with_buddy + self.writes_with_buddy) as f64 / total as f64
    }

    /// Total entry accesses recorded.
    pub fn total_accesses(&self) -> u64 {
        self.reads_device_only
            + self.reads_with_buddy
            + self.writes_device_only
            + self.writes_with_buddy
    }

    /// The counters in a fixed field order, for the shared atomic mirror.
    pub(crate) fn to_array(self) -> [u64; 8] {
        [
            self.reads_device_only,
            self.reads_with_buddy,
            self.writes_device_only,
            self.writes_with_buddy,
            self.device_sectors,
            self.buddy_sectors,
            self.retargets,
            self.moved_sectors,
        ]
    }

    /// Inverse of [`to_array`](Self::to_array).
    pub(crate) fn from_array(a: [u64; 8]) -> Self {
        Self {
            reads_device_only: a[0],
            reads_with_buddy: a[1],
            writes_device_only: a[2],
            writes_with_buddy: a[3],
            device_sectors: a[4],
            buddy_sectors: a[5],
            retargets: a[6],
            moved_sectors: a[7],
        }
    }
}

/// Outcome of one online re-targeting migration
/// (see [`BuddyDevice::retarget`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetargetReport {
    /// Target ratio the allocation migrated away from.
    pub old_target: TargetRatio,
    /// Target ratio the allocation now holds.
    pub new_target: TargetRatio,
    /// Entries re-encoded.
    pub entries: u64,
    /// 32 B sectors physically rewritten by this migration (the
    /// re-encoded entry storage of this allocation alone); also
    /// accumulated into [`AccessStats::moved_sectors`].
    pub moved_sectors: u64,
    /// Change in this allocation's device-memory reservation, in bytes
    /// (negative when the migration reclaims device memory).
    pub device_bytes_delta: i64,
    /// Change in this allocation's buddy carve-out reservation, in bytes.
    pub buddy_bytes_delta: i64,
}

/// Internal bookkeeping for one allocation: the display name, the POD
/// addressing fields, and the creation sequence number (the `*_by_name`
/// paths address the most recently *created* allocation under a name,
/// which slot reuse would otherwise scramble).
#[derive(Debug, Clone)]
struct Allocation {
    name: String,
    seq: u64,
    view: AllocView,
}

/// One entry of the allocation slot map: the current generation plus the
/// resident allocation (`None` while the slot is on the free-slot stack).
#[derive(Debug, Clone)]
struct Slot {
    generation: u64,
    alloc: Option<Allocation>,
}

/// Configuration of a Buddy-Compression device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Usable device memory in bytes.
    pub device_capacity: u64,
    /// Carve-out size as a multiple of device capacity. The paper uses 3×,
    /// "to support a 4× maximum compression ratio" (§3.5).
    pub carve_out_factor: u64,
}

impl DeviceConfig {
    /// Buddy carve-out size in bytes (`device_capacity × carve_out_factor`),
    /// or `None` when the product overflows `u64` — the construction paths
    /// check this instead of performing an unchecked multiply.
    pub fn buddy_capacity(&self) -> Option<u64> {
        self.device_capacity.checked_mul(self.carve_out_factor)
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        // A scaled-down GPU for tests and harnesses; figure binaries size
        // this from the workload instead.
        Self {
            device_capacity: 64 << 20,
            carve_out_factor: 3,
        }
    }
}

/// A GPU device with Buddy Compression enabled.
///
/// Storage is modeled functionally: compressed bitstreams really live in a
/// device byte array and overflow really lives in a buddy byte array, so
/// read-after-write returns exactly the written entry (property-tested).
///
/// The device is codec-agnostic: it defaults to BPC (the paper's choice,
/// §2.4) but accepts any registered [`CodecKind`] via
/// [`with_codec`](Self::with_codec), so the ablation harness can measure
/// end-to-end buddy traffic under BDI or FPC through the same data path.
/// Stored streams are always decoded by the codec that wrote them.
///
/// # Example
///
/// ```
/// use buddy_core::{BuddyDevice, DeviceConfig, TargetRatio};
/// use bpc::CodecKind;
///
/// let config = DeviceConfig { device_capacity: 1 << 20, carve_out_factor: 3 };
/// let mut dev = BuddyDevice::with_codec(config, CodecKind::Bdi);
/// let alloc = dev.alloc("tensor", 1024, TargetRatio::R2)?;
/// let entry = [7u8; 128];
/// dev.write_entries(alloc, 0, &[entry, entry])?;
/// let mut out = [[0u8; 128]; 2];
/// dev.read_entries(alloc, 0, &mut out)?;
/// assert_eq!(out, [entry, entry]);
/// # Ok::<(), buddy_core::DeviceError>(())
/// ```
#[derive(Debug)]
pub struct BuddyDevice {
    /// Reusable compression scratch: the write paths encode into this, so
    /// steady-state entry writes perform no heap allocation.
    scratch: CompressedBuf,
    config: DeviceConfig,
    /// The epoch-published half: storage bytes, metadata nibbles and the
    /// per-slot addressing seqlocks, shared with every [`DeviceHandle`].
    /// The `&mut self` paths and the lock-free handle paths run the same
    /// engine against this state, so the two are equivalent by
    /// construction.
    shared: Arc<SharedState>,
    gbbr: Gbbr,
    /// Allocation slot map; freed slots are recycled through `free_slots`
    /// with their generation bumped, so stale [`AllocId`]s stay dead.
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    /// Monotonic creation counter feeding `Allocation::seq`.
    alloc_seq: u64,
    /// Region allocators for the three storage regions (bytes for the two
    /// data arrays, entries for metadata). First-fit with coalescing — the
    /// full allocation lifecycle runs on these.
    device_region: RegionAllocator,
    buddy_region: RegionAllocator,
    metadata_region: RegionAllocator,
    /// Shadow-state mirror (`--features audit`): independently tracks every
    /// reservation and revalidates structural invariants after each
    /// mutating operation, aborting at the mutation that diverges.
    #[cfg(feature = "audit")]
    auditor: crate::audit::DeviceAuditor,
}

/// A lock-free entry-I/O handle onto one device's published state.
///
/// Cloned from [`BuddyDevice::handle`] and freely shareable across
/// threads, a handle performs entry reads and writes, state scans and
/// traffic accounting against the device's epoch-published allocation
/// table **without ever taking the device's (or, in a pool, the shard's)
/// lock**. Structural operations — `alloc`/`free`/`retarget` — still
/// require `&mut BuddyDevice` and publish a new epoch; a handle racing
/// such an operation observes the old epoch in full, the new epoch in
/// full, or [`DeviceError::BadAllocation`] for a freed slot — never a
/// blend (the per-slot seqlock forces a retry instead).
///
/// Entry *writes* through a handle serialize per allocation on the slot's
/// write lock; writes to different allocations proceed in parallel.
#[derive(Debug, Clone)]
pub struct DeviceHandle {
    shared: Arc<SharedState>,
}

// The device owns its mutable bookkeeping (plain `Vec`s and POD fields)
// and shares the published half through `Arc<SharedState>` (atomics +
// per-slot seqlocks), so both it and its handles can move across worker
// threads — the `buddy-pool` crate shards exactly this way. Checked at
// compile time so a future field cannot silently cost the pool its
// thread-safety.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BuddyDevice>();
    assert_send_sync::<DeviceHandle>();
    assert_send_sync::<AccessStats>();
    assert_send_sync::<DeviceError>();
    assert_send_sync::<AllocId>();
};

impl BuddyDevice {
    /// Creates a device with the given configuration and the default BPC
    /// codec.
    ///
    /// # Panics
    ///
    /// As [`with_codec`](Self::with_codec).
    pub fn new(config: DeviceConfig) -> Self {
        Self::with_codec(config, CodecKind::Bpc)
    }

    /// Creates a device that compresses every entry with `codec`.
    ///
    /// # Panics
    ///
    /// Panics if `device_capacity × carve_out_factor` overflows `u64`
    /// (checked explicitly — such a carve-out cannot be backed anyway).
    pub fn with_codec(config: DeviceConfig, codec: CodecKind) -> Self {
        let buddy_capacity = config
            .buddy_capacity()
            .expect("device_capacity x carve_out_factor overflows u64"); // lint-allow(no-unwrap): the overflow check is this constructor's documented panic contract
        let metadata_entries = config.device_capacity / 8; // worst case: 16x entries
        Self {
            scratch: CompressedBuf::with_capacity(ENTRY_BYTES + ENTRY_BYTES / 4),
            config,
            shared: Arc::new(SharedState::new(
                codec,
                config.device_capacity,
                buddy_capacity,
                metadata_entries,
            )),
            gbbr: Gbbr(0),
            slots: Vec::new(),
            free_slots: Vec::new(),
            alloc_seq: 0,
            device_region: RegionAllocator::new(config.device_capacity),
            buddy_region: RegionAllocator::new(buddy_capacity),
            metadata_region: RegionAllocator::new(metadata_entries),
            #[cfg(feature = "audit")]
            auditor: crate::audit::DeviceAuditor::new(),
        }
    }

    /// A lock-free [`DeviceHandle`] onto this device's published state.
    /// Handles stay valid for the device's lifetime (operations on
    /// allocations freed later return [`DeviceError::BadAllocation`]).
    pub fn handle(&self) -> DeviceHandle {
        DeviceHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until every [`DeviceHandle`] operation that was in flight
    /// when this call started has completed — the quiescence barrier the
    /// pool's `drain()` extends over lock-free snapshot readers.
    pub fn quiesce_handles(&self) {
        self.shared.wait_quiescent();
    }

    /// Revalidates the shadow mirror against all three region allocators.
    #[cfg(feature = "audit")]
    fn audit_check(&self) {
        self.auditor.validate(
            &self.device_region,
            &self.buddy_region,
            &self.metadata_region,
        );
    }

    /// The codec this device compresses with.
    pub fn codec(&self) -> CodecKind {
        self.shared.codec()
    }

    /// The device configuration.
    pub fn config(&self) -> DeviceConfig {
        self.config
    }

    /// The Global Buddy Base-address Register.
    pub fn gbbr(&self) -> Gbbr {
        self.gbbr
    }

    /// Device bytes consumed by live allocations.
    pub fn device_used(&self) -> u64 {
        self.device_region.used()
    }

    /// Buddy carve-out bytes reserved by live allocations.
    pub fn buddy_used(&self) -> u64 {
        self.buddy_region.used()
    }

    /// Device bytes currently free (across all holes).
    pub fn device_free(&self) -> u64 {
        self.device_region.free_total()
    }

    /// Buddy carve-out bytes currently free.
    pub fn buddy_free(&self) -> u64 {
        self.buddy_region.free_total()
    }

    /// Largest contiguous free run of device memory — the biggest
    /// allocation (in device bytes) that can currently succeed.
    pub fn largest_free_region(&self) -> u64 {
        self.device_region.largest_free()
    }

    /// External fragmentation of device memory in `[0, 1)`: the fraction
    /// of free device bytes not reachable by one maximal allocation
    /// (`1 − largest_free_region / device_free`; `0` when nothing is
    /// free). The churn harness plots this at steady state.
    pub fn fragmentation(&self) -> f64 {
        self.device_region.fragmentation()
    }

    /// Number of live allocations.
    pub fn allocation_count(&self) -> usize {
        self.slots.len() - self.free_slots.len()
    }

    /// Uncompressed bytes represented by all live allocations.
    pub fn logical_bytes(&self) -> u64 {
        self.live_allocations()
            .map(|(_, a)| a.view.entries * ENTRY_BYTES as u64)
            .sum()
    }

    /// Effective device compression ratio achieved by the current
    /// allocations (logical bytes / device bytes).
    pub fn effective_ratio(&self) -> f64 {
        let used = self.device_region.used();
        if used == 0 {
            return 1.0;
        }
        self.logical_bytes() as f64 / used as f64
    }

    /// Iterates the live slots as `(slot index, allocation)`.
    fn live_allocations(&self) -> impl Iterator<Item = (u32, &Allocation)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.alloc.as_ref().map(|a| (i as u32, a))) // lint-allow(lossy-cast): slot indices are created as u32, so slots.len() never exceeds u32::MAX
    }

    /// Resolves a name to the most recently created live allocation.
    fn find_by_name(&self, name: &str) -> Option<AllocId> {
        self.live_allocations()
            .filter(|(_, a)| a.name == name)
            .max_by_key(|(_, a)| a.seq)
            .map(|(slot, _)| AllocId {
                slot,
                generation: self.slots[slot as usize].generation,
            })
    }

    /// Traffic counters accumulated since the last [`reset_stats`].
    ///
    /// [`reset_stats`]: Self::reset_stats
    pub fn stats(&self) -> AccessStats {
        self.shared.stats.snapshot()
    }

    /// Clears the traffic counters.
    pub fn reset_stats(&mut self) {
        self.shared.stats.reset();
    }

    /// Allocates `entries` 128 B memory-entries with the given target ratio.
    ///
    /// Device memory is charged `entries × 128/r` bytes; the buddy carve-out
    /// is charged the complementary slot space. All entries start as zero.
    /// Regions come from a first-fit free-list allocator, so space returned
    /// by [`free`](Self::free) is reused (coalesced with free neighbours).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::EmptyAllocation`] for a zero-entry request,
    /// [`DeviceError::RequestOverflow`] if the byte accounting overflows
    /// `u64`, and [`DeviceError::OutOfDeviceMemory`] /
    /// [`DeviceError::OutOfBuddyMemory`] if no contiguous free run can
    /// host the reservation (`available` reports the largest run).
    pub fn alloc(
        &mut self,
        name: &str,
        entries: u64,
        target: TargetRatio,
    ) -> Result<AllocId, DeviceError> {
        if entries == 0 {
            return Err(DeviceError::EmptyAllocation);
        }
        // All three products are checked up front: an overflow-sized
        // request must fail cleanly, not wrap in release builds.
        let device_need = entries
            .checked_mul(target.device_bytes_per_entry() as u64)
            .ok_or(DeviceError::RequestOverflow)?;
        let buddy_need = entries
            .checked_mul(target.buddy_bytes_per_entry() as u64)
            .ok_or(DeviceError::RequestOverflow)?;
        entries
            .checked_mul(ENTRY_BYTES as u64)
            .ok_or(DeviceError::RequestOverflow)?;
        // Placement + slot bookkeeping; drops on every exit path.
        let _span = trace::span(SpanKind::RegionAlloc);
        let device_base =
            self.device_region
                .alloc(device_need)
                .ok_or(DeviceError::OutOfDeviceMemory {
                    requested: device_need,
                    available: self.device_region.largest_free(),
                })?;
        let Some(buddy_base) = self.buddy_region.alloc(buddy_need) else {
            self.device_region.free(device_base, device_need);
            return Err(DeviceError::OutOfBuddyMemory {
                requested: buddy_need,
                available: self.buddy_region.largest_free(),
            });
        };
        let metadata_base = self.alloc_metadata(entries);
        // A recycled metadata range may hold a dead allocation's states;
        // fresh entries must read as zero.
        self.shared.metadata.clear_range(metadata_base, entries);

        let slot = match self.free_slots.pop() {
            Some(slot) => slot,
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    alloc: None,
                });
                (self.slots.len() - 1) as u32 // lint-allow(lossy-cast): 2^32 live slots would need a 32 GiB device of 8 B zero-page entries first
            }
        };
        let seq = self.alloc_seq;
        self.alloc_seq += 1;
        let view = AllocView {
            target,
            entries,
            device_base,
            buddy_base,
            metadata_base,
        };
        self.slots[slot as usize].alloc = Some(Allocation {
            name: name.to_owned(),
            seq,
            view,
        });
        let generation = self.slots[slot as usize].generation;
        // Publish the new epoch: from here on lock-free handles resolve
        // this id against the freshly-cleared regions.
        self.shared.slots.ensure(slot);
        self.shared
            .publish(slot, RawSlot::from_view(generation, &view));
        #[cfg(feature = "audit")]
        {
            self.auditor.record_alloc(
                slot,
                crate::audit::ShadowAlloc {
                    generation,
                    target,
                    entries,
                    device_base,
                    buddy_base,
                    metadata_base,
                },
            );
            self.audit_check();
        }
        Ok(AllocId { slot, generation })
    }

    /// Releases an allocation: its device, buddy and metadata reservations
    /// return to the free lists (coalescing with adjacent free runs) and
    /// the id's slot generation is bumped, so `id` — and every copy of it —
    /// is dead from here on: any further use returns
    /// [`DeviceError::BadAllocation`], even after the slot is reused.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadAllocation`] for unknown, stale or
    /// already-freed handles.
    pub fn free(&mut self, id: AllocId) -> Result<(), DeviceError> {
        let view = self.view(id)?;
        let slot = &mut self.slots[id.slot as usize];
        slot.alloc = None;
        slot.generation = slot.generation.wrapping_add(1);
        let new_generation = slot.generation;
        self.free_slots.push(id.slot);
        // Publish the tombstone epoch *before* the regions return to the
        // free lists: a lock-free reader that raced this free either fails
        // its final sequence check (and retries into `BadAllocation`) or
        // started after the publication and never resolves the id — so
        // reused bytes can never reach a caller under the stale handle.
        self.shared.publish(id.slot, RawSlot::dead(new_generation));
        self.device_region
            .free(view.device_base, view.entries * view.device_stride());
        self.buddy_region
            .free(view.buddy_base, view.entries * view.buddy_stride());
        self.metadata_region.free(view.metadata_base, view.entries);
        #[cfg(feature = "audit")]
        {
            self.auditor.record_free(id.slot, id.generation);
            self.audit_check();
        }
        Ok(())
    }

    /// Places `entries` metadata entries, growing the metadata region (and
    /// publishing the matching nibble chunks) when the current capacity
    /// cannot host them. Growth is additive — published chunks never move,
    /// so concurrent snapshot readers are unaffected.
    fn alloc_metadata(&mut self, entries: u64) -> u64 {
        match self.metadata_region.alloc(entries) {
            Some(base) => base,
            None => {
                // Grow the metadata region (functional model only; the 0.4%
                // overhead accounting is reported separately).
                let grown = (self.metadata_region.capacity() + entries).next_power_of_two();
                self.shared.metadata.ensure(grown);
                self.metadata_region.grow(grown);
                self.metadata_region
                    .alloc(entries)
                    .expect("grown metadata region hosts the request") // lint-allow(no-unwrap): the region was just grown past the request
            }
        }
    }

    /// [`free`](Self::free) addressed by allocation name (the most recently
    /// created live allocation wins if a name was reused).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadAllocation`] for a name with no live
    /// allocation.
    pub fn free_by_name(&mut self, name: &str) -> Result<(), DeviceError> {
        let id = self.find_by_name(name).ok_or(DeviceError::BadAllocation)?;
        self.free(id)
    }

    /// Resolves a generational id to its live allocation — the single
    /// validation path every handle-taking method goes through (slot in
    /// range, generation matches, allocation resident).
    fn resolve(&self, id: AllocId) -> Result<&Allocation, DeviceError> {
        self.slots
            .get(id.slot as usize)
            .filter(|s| s.generation == id.generation)
            .and_then(|s| s.alloc.as_ref())
            .ok_or(DeviceError::BadAllocation)
    }

    /// Copies the POD addressing fields of an allocation — no `String`
    /// clone on the access paths. Validates the generational id.
    fn view(&self, id: AllocId) -> Result<AllocView, DeviceError> {
        self.resolve(id).map(|a| a.view)
    }

    /// Name and target of an allocation (for reports).
    pub fn allocation_info(&self, id: AllocId) -> Result<(&str, TargetRatio, u64), DeviceError> {
        let a = self.resolve(id)?;
        Ok((&a.name, a.view.target, a.view.entries))
    }

    /// Writes one 128 B entry, compressing it and updating only this entry's
    /// device bytes, buddy slot and metadata nibble.
    ///
    /// Returns the [`EntryState`] recorded in metadata.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadAllocation`] / [`DeviceError::BadIndex`]
    /// for invalid handles.
    pub fn write_entry(
        &mut self,
        id: AllocId,
        index: u64,
        entry: &Entry,
    ) -> Result<EntryState, DeviceError> {
        self.shared
            .write_single(id, index, entry, &mut self.scratch)
    }

    /// Writes a contiguous run of entries starting at `start`, reusing one
    /// compression buffer across the whole batch and folding the traffic
    /// counters in with a single stats update.
    ///
    /// Semantically identical to calling [`write_entry`](Self::write_entry)
    /// per element, but without the per-call bookkeeping — the figure
    /// harnesses push millions of entries through this path.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadAllocation`] / [`DeviceError::BadIndex`]
    /// (the latter if the run extends past the allocation); on error no
    /// entry is written.
    pub fn write_entries(
        &mut self,
        id: AllocId,
        start: u64,
        entries: &[Entry],
    ) -> Result<(), DeviceError> {
        self.write_entries_collect(id, start, entries).map(|_| ())
    }

    /// [`write_entries`](Self::write_entries), additionally returning the
    /// traffic this batch generated (the same delta that is merged into the
    /// device-wide [`stats`](Self::stats)).
    ///
    /// The multi-tenant service layer uses the returned delta for per-tenant
    /// accounting: the batch already computes it locally, so attribution
    /// costs nothing extra on the hot path.
    ///
    /// # Errors
    ///
    /// Same contract as [`write_entries`](Self::write_entries).
    pub fn write_entries_collect(
        &mut self,
        id: AllocId,
        start: u64,
        entries: &[Entry],
    ) -> Result<AccessStats, DeviceError> {
        let stats = self
            .shared
            .write_batch(id, start, entries, &mut self.scratch)?;
        // Entry writes must never move reservations — the design's fixed
        // buddy-offset invariant — so the mirror needs no update, only a
        // revalidation.
        #[cfg(feature = "audit")]
        self.audit_check();
        Ok(stats)
    }

    /// Reads one 128 B entry, decompressing from device and (if the entry
    /// overflowed its target) buddy memory.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadAllocation`] / [`DeviceError::BadIndex`]
    /// for invalid handles.
    pub fn read_entry(&mut self, id: AllocId, index: u64) -> Result<Entry, DeviceError> {
        let mut out = [0u8; ENTRY_BYTES];
        self.shared
            .read_batch(id, index, std::slice::from_mut(&mut out))?;
        Ok(out)
    }

    /// Reads a contiguous run of entries starting at `start` into `out`,
    /// folding the traffic counters in with a single stats update.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadAllocation`] / [`DeviceError::BadIndex`]
    /// (the latter if the run extends past the allocation); on error `out`
    /// is untouched.
    pub fn read_entries(
        &mut self,
        id: AllocId,
        start: u64,
        out: &mut [Entry],
    ) -> Result<(), DeviceError> {
        self.read_entries_collect(id, start, out).map(|_| ())
    }

    /// [`read_entries`](Self::read_entries), additionally returning the
    /// traffic this batch generated (the same delta that is merged into the
    /// device-wide [`stats`](Self::stats)). See
    /// [`write_entries_collect`](Self::write_entries_collect).
    ///
    /// # Errors
    ///
    /// Same contract as [`read_entries`](Self::read_entries).
    pub fn read_entries_collect(
        &mut self,
        id: AllocId,
        start: u64,
        out: &mut [Entry],
    ) -> Result<AccessStats, DeviceError> {
        self.shared.read_batch(id, start, out)
    }

    /// Per-entry state without touching traffic counters (for analysis).
    pub fn entry_state(&self, id: AllocId, index: u64) -> Result<EntryState, DeviceError> {
        self.shared.entry_state(id, index)
    }

    /// Raw storage fingerprint of an entry: the device and buddy byte ranges
    /// it owns. Used by tests to prove that writes never move other entries.
    pub fn storage_ranges(&self, id: AllocId, index: u64) -> Result<StorageRanges, DeviceError> {
        let view = self.view(id)?;
        shared::check_index(&view, index)?;
        Ok((
            (view.device_offset(index), view.device_stride()),
            (view.buddy_offset(index), view.buddy_stride()),
        ))
    }

    /// Migrates an allocation to a new target ratio by re-encoding it onto
    /// fresh regions: the new device/buddy reservations are allocated, the
    /// preserved bytes are re-encoded into them, and the old reservations
    /// are freed back to the allocator (alloc-new / re-encode / free-old).
    /// **No other allocation is touched** — the old tail-`memmove`
    /// relocation of every later allocation is gone, so migration cost is
    /// proportional to the migrated allocation alone. This is the online
    /// escape hatch from a stale profiling decision (the paper picks
    /// targets once, §3.5; see DESIGN.md §8 and the
    /// [`adapt`](crate::adapt) policy that drives it).
    ///
    /// Migration is **observation-equivalent**: after `retarget`, every
    /// read returns the same bytes, every invalid access the same error,
    /// and occupancy/traffic accounting matches a device whose allocation
    /// was created at `new_target` in the first place
    /// (`tests/retarget_equivalence.rs` proves this across every codec ×
    /// target × target combination). The handle stays valid (migration is
    /// not a `free`), and on a tight device the old reservation is
    /// released before the new one is placed, so any migration whose
    /// steady-state footprint fits will succeed unless the free space is
    /// too fragmented to host it contiguously.
    ///
    /// The cost is accounted in [`AccessStats::retargets`] /
    /// [`AccessStats::moved_sectors`] and in the returned
    /// [`RetargetReport`] — not in the entry-access counters, which keep
    /// their read/write meaning. `moved_sectors` now prices exactly the
    /// re-encoded allocation's stored sectors (no relocated neighbours
    /// exist any more). Re-targeting to the current target is a free
    /// no-op.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadAllocation`] for an unknown or stale
    /// handle, [`DeviceError::RequestOverflow`] if the new byte accounting
    /// overflows, and [`DeviceError::OutOfDeviceMemory`] /
    /// [`DeviceError::OutOfBuddyMemory`] if no contiguous free run can
    /// host the new reservation even with the old one released — in which
    /// case the device is left completely unchanged (the old reservation
    /// is restored at its exact offsets).
    pub fn retarget(
        &mut self,
        id: AllocId,
        new_target: TargetRatio,
    ) -> Result<RetargetReport, DeviceError> {
        let view = self.view(id)?;
        let old_target = view.target;
        let entries = view.entries;
        if old_target == new_target {
            return Ok(RetargetReport {
                old_target,
                new_target,
                entries,
                moved_sectors: 0,
                device_bytes_delta: 0,
                buddy_bytes_delta: 0,
            });
        }
        // The free same-target no-op above records no migration span.
        let _span = trace::span(SpanKind::RetargetMigrate);
        let old_device = entries * old_target.device_bytes_per_entry() as u64;
        let old_buddy = entries * old_target.buddy_bytes_per_entry() as u64;
        let new_device = entries
            .checked_mul(new_target.device_bytes_per_entry() as u64)
            .ok_or(DeviceError::RequestOverflow)?;
        let new_buddy = entries
            .checked_mul(new_target.buddy_bytes_per_entry() as u64)
            .ok_or(DeviceError::RequestOverflow)?;

        // The whole migration runs inside the slot's publication window
        // (`SharedState::republish`): entry writers are parked on the slot
        // write lock and concurrent snapshot readers spin until the new
        // epoch is published — required because on a tight device the new
        // regions may overlap the old bytes, so the old epoch stops being
        // readable the moment re-encoding starts.
        let published = Arc::clone(&self.shared);
        let (moved_sectors, new_view) = published.republish(id.slot, || {
            // 1. Decode the allocation's live contents through the old
            //    layout. (Functional model: the real design would stream
            //    this through the compression pipeline sector by sector.)
            //    No entry-access traffic is recorded — migration cost is
            //    `moved_sectors`. Nothing is mutated yet: a failed
            //    placement below leaves the device byte-for-byte as it was.
            let mut contents = vec![[0u8; ENTRY_BYTES]; entries as usize];
            for (i, slot) in contents.iter_mut().enumerate() {
                if published.read_one(&view, i as u64, slot).is_err() {
                    unreachable!("own streams decode: entry writers are parked on the write lock");
                }
            }

            // 2. Place the new reservations on the allocator, plus a fresh
            //    metadata range — the published metadata base moves with
            //    the epoch, so a failed placement leaves the old nibbles
            //    untouched.
            let (device_base, buddy_base) = self.place_retarget_regions(
                &view,
                (old_device, old_buddy),
                (new_device, new_buddy),
            )?;
            let metadata_base = self.alloc_metadata(entries);
            published.metadata.clear_range(metadata_base, entries);
            let new_view = AllocView {
                target: new_target,
                entries,
                device_base,
                buddy_base,
                metadata_base,
            };

            // 3. Re-encode every entry under the new target.
            let mut moved_sectors = 0u64;
            for (i, entry) in contents.iter().enumerate() {
                let state = published.write_one(&new_view, i as u64, entry, &mut self.scratch);
                moved_sectors += shared::device_sectors_of(new_target, state)
                    + shared::buddy_sectors_of(new_target, state);
            }

            // 4. Update the mutable half and hand the new epoch back for
            //    publication.
            self.metadata_region.free(view.metadata_base, entries);
            let alloc = self.slots[id.slot as usize]
                .alloc
                .as_mut()
                .expect("validated live slot"); // lint-allow(no-unwrap): slot liveness was validated at the top of retarget
            alloc.view = new_view;
            Ok((
                RawSlot::from_view(id.generation, &new_view),
                (moved_sectors, new_view),
            ))
        })?;

        self.shared.stats.add(&AccessStats {
            retargets: 1,
            moved_sectors,
            ..AccessStats::default()
        });
        #[cfg(feature = "audit")]
        {
            self.auditor.record_retarget(
                id.slot,
                crate::audit::ShadowAlloc {
                    generation: id.generation,
                    target: new_target,
                    entries,
                    device_base: new_view.device_base,
                    buddy_base: new_view.buddy_base,
                    metadata_base: new_view.metadata_base,
                },
            );
            self.audit_check();
        }
        #[cfg(not(feature = "audit"))]
        let _ = new_view;
        Ok(RetargetReport {
            old_target,
            new_target,
            entries,
            moved_sectors,
            device_bytes_delta: new_device as i64 - old_device as i64,
            buddy_bytes_delta: new_buddy as i64 - old_buddy as i64,
        })
    }

    /// Allocates the new device/buddy regions for a migration and frees
    /// the old ones. Tries alloc-new-first (old reservation still held, no
    /// transient hole); on a tight device it releases the old reservation
    /// before placing the new one, restoring the old regions at their
    /// exact offsets if placement still fails — so an error leaves the
    /// allocator state identical.
    fn place_retarget_regions(
        &mut self,
        view: &AllocView,
        (old_device, old_buddy): (u64, u64),
        (new_device, new_buddy): (u64, u64),
    ) -> Result<(u64, u64), DeviceError> {
        let _span = trace::span(SpanKind::RegionAlloc);
        if let Some(device_base) = self.device_region.alloc(new_device) {
            if let Some(buddy_base) = self.buddy_region.alloc(new_buddy) {
                self.device_region.free(view.device_base, old_device);
                self.buddy_region.free(view.buddy_base, old_buddy);
                return Ok((device_base, buddy_base));
            }
            self.device_region.free(device_base, new_device);
        }
        // Tight fit: the steady-state footprint may still fit once the old
        // reservation is released.
        self.device_region.free(view.device_base, old_device);
        self.buddy_region.free(view.buddy_base, old_buddy);
        let restore = |dev: &mut Self| {
            let ok = dev.device_region.reserve_at(view.device_base, old_device)
                && dev.buddy_region.reserve_at(view.buddy_base, old_buddy);
            debug_assert!(ok, "just-freed regions must be restorable");
        };
        let Some(device_base) = self.device_region.alloc(new_device) else {
            restore(self);
            return Err(DeviceError::OutOfDeviceMemory {
                requested: new_device,
                available: self.device_region.largest_free(),
            });
        };
        let Some(buddy_base) = self.buddy_region.alloc(new_buddy) else {
            self.device_region.free(device_base, new_device);
            restore(self);
            return Err(DeviceError::OutOfBuddyMemory {
                requested: new_buddy,
                available: self.buddy_region.largest_free(),
            });
        };
        Ok((device_base, buddy_base))
    }

    /// [`retarget`](Self::retarget) addressed by allocation name (the most
    /// recently created live allocation wins if a name was reused).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadAllocation`] for an unknown name — pinned
    /// alongside the zero-entry `alloc` behaviour so every invalid
    /// re-target request fails the same way on every path — plus the
    /// capacity errors of [`retarget`](Self::retarget).
    pub fn retarget_by_name(
        &mut self,
        name: &str,
        new_target: TargetRatio,
    ) -> Result<RetargetReport, DeviceError> {
        let id = self.find_by_name(name).ok_or(DeviceError::BadAllocation)?;
        self.retarget(id, new_target)
    }

    /// Summarizes the live metadata states of an allocation into a
    /// [`StateWindow`] for the [`adapt`](crate::adapt) policy. A pure
    /// metadata scan: records no traffic (4 bits per entry — the
    /// information the memory controller already holds).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadAllocation`] for invalid handles.
    pub fn state_window(&self, id: AllocId) -> Result<StateWindow, DeviceError> {
        self.shared.state_window(id)
    }

    /// Handles of every live allocation, in creation order (for policy
    /// sweeps over a whole device). Freed allocations do not appear.
    pub fn allocation_ids(&self) -> Vec<AllocId> {
        let mut live: Vec<(u64, AllocId)> = self
            .live_allocations()
            .map(|(slot, a)| {
                (
                    a.seq,
                    AllocId {
                        slot,
                        generation: self.slots[slot as usize].generation,
                    },
                )
            })
            .collect();
        live.sort_unstable_by_key(|&(seq, _)| seq);
        live.into_iter().map(|(_, id)| id).collect()
    }
}

impl DeviceHandle {
    /// The codec the shared device compresses with.
    pub fn codec(&self) -> CodecKind {
        self.shared.codec()
    }

    /// The device's publication epoch: one tick per structural operation
    /// (`alloc`/`free`/`retarget`) published since the device was created.
    /// Monotonic; useful for asserting that a batch of reads landed inside
    /// one epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch()
    }

    /// Lock-free [`BuddyDevice::read_entry`]: resolves `id` against the
    /// current published epoch without taking any device-wide lock.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadAllocation`] / [`DeviceError::BadIndex`]
    /// for invalid handles; a handle racing a `free` observes
    /// [`DeviceError::BadAllocation`] once the tombstone epoch publishes.
    pub fn read_entry(&self, id: AllocId, index: u64) -> Result<Entry, DeviceError> {
        let _op = self.shared.enter_op();
        let mut out = [0u8; ENTRY_BYTES];
        self.shared
            .read_batch(id, index, std::slice::from_mut(&mut out))?;
        Ok(out)
    }

    /// Lock-free [`BuddyDevice::read_entries`]: the whole batch resolves
    /// against one consistent epoch (old or new around any racing
    /// structural operation, never a blend).
    ///
    /// # Errors
    ///
    /// As [`read_entry`](Self::read_entry); on error `out` may hold
    /// partially-read bytes from an abandoned attempt, but the call
    /// reports the failure.
    pub fn read_entries(
        &self,
        id: AllocId,
        start: u64,
        out: &mut [Entry],
    ) -> Result<(), DeviceError> {
        self.read_entries_collect(id, start, out).map(|_| ())
    }

    /// [`read_entries`](Self::read_entries), additionally returning the
    /// traffic this batch generated (also folded into the shared
    /// [`BuddyDevice::stats`] counters).
    ///
    /// # Errors
    ///
    /// Same contract as [`read_entries`](Self::read_entries).
    pub fn read_entries_collect(
        &self,
        id: AllocId,
        start: u64,
        out: &mut [Entry],
    ) -> Result<AccessStats, DeviceError> {
        let _op = self.shared.enter_op();
        self.shared.read_batch(id, start, out)
    }

    /// [`BuddyDevice::write_entry`] through the handle: serializes on the
    /// allocation's write lock only — writes to other allocations and all
    /// reads proceed concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadAllocation`] / [`DeviceError::BadIndex`]
    /// for invalid handles.
    pub fn write_entry(
        &self,
        id: AllocId,
        index: u64,
        entry: &Entry,
    ) -> Result<EntryState, DeviceError> {
        let _op = self.shared.enter_op();
        let mut scratch = CompressedBuf::with_capacity(ENTRY_BYTES + ENTRY_BYTES / 4);
        self.shared.write_single(id, index, entry, &mut scratch)
    }

    /// [`BuddyDevice::write_entries`] through the handle (one compression
    /// buffer per batch; per-allocation write lock, no device-wide lock).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadAllocation`] / [`DeviceError::BadIndex`]
    /// (the latter if the run extends past the allocation); on error no
    /// entry is written.
    pub fn write_entries(
        &self,
        id: AllocId,
        start: u64,
        entries: &[Entry],
    ) -> Result<(), DeviceError> {
        self.write_entries_collect(id, start, entries).map(|_| ())
    }

    /// [`write_entries`](Self::write_entries), additionally returning the
    /// traffic this batch generated.
    ///
    /// # Errors
    ///
    /// Same contract as [`write_entries`](Self::write_entries).
    pub fn write_entries_collect(
        &self,
        id: AllocId,
        start: u64,
        entries: &[Entry],
    ) -> Result<AccessStats, DeviceError> {
        let _op = self.shared.enter_op();
        let mut scratch = CompressedBuf::with_capacity(ENTRY_BYTES + ENTRY_BYTES / 4);
        self.shared.write_batch(id, start, entries, &mut scratch)
    }

    /// Lock-free [`BuddyDevice::entry_state`].
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadAllocation`] / [`DeviceError::BadIndex`]
    /// for invalid handles.
    pub fn entry_state(&self, id: AllocId, index: u64) -> Result<EntryState, DeviceError> {
        let _op = self.shared.enter_op();
        self.shared.entry_state(id, index)
    }

    /// Lock-free [`BuddyDevice::state_window`]: the scan observes one
    /// consistent epoch.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadAllocation`] for invalid handles.
    pub fn state_window(&self, id: AllocId) -> Result<StateWindow, DeviceError> {
        let _op = self.shared.enter_op();
        self.shared.state_window(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_of_words(mut f: impl FnMut(usize) -> u32) -> Entry {
        let mut e = [0u8; ENTRY_BYTES];
        for (i, c) in e.chunks_exact_mut(4).enumerate() {
            c.copy_from_slice(&f(i).to_le_bytes());
        }
        e
    }

    fn small_device() -> BuddyDevice {
        BuddyDevice::new(DeviceConfig {
            device_capacity: 1 << 20,
            carve_out_factor: 3,
        })
    }

    #[test]
    fn zero_entries_cost_nothing_to_read() {
        let mut dev = small_device();
        let a = dev.alloc("a", 16, TargetRatio::R2).unwrap();
        dev.write_entry(a, 3, &[0u8; 128]).unwrap();
        dev.reset_stats();
        assert_eq!(dev.read_entry(a, 3).unwrap(), [0u8; 128]);
        let s = dev.stats();
        assert_eq!(s.device_sectors, 0);
        assert_eq!(s.buddy_sectors, 0);
        assert_eq!(s.reads_device_only, 1);
    }

    #[test]
    fn compressible_entry_stays_in_device() {
        let mut dev = small_device();
        let a = dev.alloc("a", 16, TargetRatio::R2).unwrap();
        let entry = entry_of_words(|i| 1000 + i as u32); // ramp → 1 sector
        let state = dev.write_entry(a, 0, &entry).unwrap();
        assert_eq!(state, EntryState::Compressed { sectors: 1 });
        dev.reset_stats();
        assert_eq!(dev.read_entry(a, 0).unwrap(), entry);
        assert_eq!(dev.stats().buddy_sectors, 0);
    }

    #[test]
    fn incompressible_entry_overflows_to_buddy() {
        let mut dev = small_device();
        let a = dev.alloc("a", 16, TargetRatio::R2).unwrap();
        let mut state = 1u64;
        let entry = entry_of_words(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 32) as u32
        });
        let st = dev.write_entry(a, 5, &entry).unwrap();
        assert_eq!(st, EntryState::Compressed { sectors: 4 });
        dev.reset_stats();
        assert_eq!(dev.read_entry(a, 5).unwrap(), entry);
        let s = dev.stats();
        assert_eq!(s.device_sectors, 2); // target 2x keeps 2 sectors local
        assert_eq!(s.buddy_sectors, 2); // and 2 come over the link
        assert_eq!(s.reads_with_buddy, 1);
        assert!((s.buddy_access_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rewrite_changes_only_own_slot() {
        let mut dev = small_device();
        let a = dev.alloc("a", 8, TargetRatio::R2).unwrap();
        let ramp = entry_of_words(|i| 7 * i as u32);
        for i in 0..8 {
            dev.write_entry(a, i, &ramp).unwrap();
        }
        // Make entry 4 incompressible; neighbours must read back unchanged.
        let mut x = 99u64;
        let noisy = entry_of_words(|_| {
            x = x
                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                .wrapping_add(0x14057B7EF767814F);
            (x >> 30) as u32
        });
        dev.write_entry(a, 4, &noisy).unwrap();
        for i in 0..8 {
            let expect = if i == 4 { noisy } else { ramp };
            assert_eq!(dev.read_entry(a, i).unwrap(), expect, "entry {i}");
        }
    }

    #[test]
    fn zero_page_mode_fit_and_overflow() {
        let mut dev = small_device();
        let a = dev.alloc("zp", 8, TargetRatio::ZeroPage16).unwrap();
        // Constant entry: 41 bits → 6 bytes → fits the 8 B granule.
        let constant = entry_of_words(|_| 0xABCD_1234);
        assert_eq!(
            dev.write_entry(a, 0, &constant).unwrap(),
            EntryState::ZeroPageFit
        );
        assert_eq!(dev.read_entry(a, 0).unwrap(), constant);
        // A ramp costs more than 8 B? No — still tiny. Use noisy data.
        let mut x = 3u64;
        let noisy = entry_of_words(|_| {
            x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(13);
            (x >> 24) as u32
        });
        assert_eq!(
            dev.write_entry(a, 1, &noisy).unwrap(),
            EntryState::ZeroPageOverflow
        );
        assert_eq!(dev.read_entry(a, 1).unwrap(), noisy);
        // Overflow reads are pure buddy traffic.
        dev.reset_stats();
        dev.read_entry(a, 1).unwrap();
        assert_eq!(dev.stats().buddy_sectors, 4);
        assert_eq!(dev.stats().device_sectors, 0);
    }

    #[test]
    fn empty_device_reports_neutral_stats() {
        // No allocations: every ratio/fraction must be a defined, neutral
        // value rather than the result of a 0/0 float division.
        let dev = small_device();
        assert_eq!(dev.device_used(), 0);
        assert_eq!(dev.buddy_used(), 0);
        assert_eq!(dev.logical_bytes(), 0);
        assert_eq!(dev.effective_ratio(), 1.0);
        let s = dev.stats();
        assert_eq!(s.total_accesses(), 0);
        assert_eq!(s.buddy_access_fraction(), 0.0);
    }

    #[test]
    fn zero_entry_requests_are_pinned_to_an_explicit_error() {
        // Zero-entry allocations are rejected uniformly: every target,
        // every path, the same explicit variant — not a silent success
        // here and a panic in a harness there.
        let mut dev = small_device();
        for target in TargetRatio::DESCENDING {
            assert_eq!(
                dev.alloc("empty", 0, target),
                Err(DeviceError::EmptyAllocation),
                "{target}"
            );
        }
        assert_eq!(dev.allocation_count(), 0);
        assert_eq!(dev.device_used(), 0);
        // Re-targeting an unknown name fails the same pinned way every
        // invalid handle does.
        assert_eq!(
            dev.retarget_by_name("never-allocated", TargetRatio::R2),
            Err(DeviceError::BadAllocation)
        );
        assert_eq!(
            dev.retarget(
                AllocId {
                    slot: 3,
                    generation: 0
                },
                TargetRatio::R2
            ),
            Err(DeviceError::BadAllocation)
        );
        assert_eq!(
            DeviceError::EmptyAllocation.to_string(),
            "allocations must contain at least one entry"
        );
    }

    #[test]
    fn capacity_accounting() {
        let mut dev = BuddyDevice::new(DeviceConfig {
            device_capacity: 4096,
            carve_out_factor: 3,
        });
        // 2x target: 64 B device per entry → 64 entries max.
        let a = dev.alloc("a", 32, TargetRatio::R2).unwrap();
        assert_eq!(dev.device_used(), 32 * 64);
        assert_eq!(dev.buddy_used(), 32 * 64);
        assert_eq!(dev.logical_bytes(), 32 * 128);
        assert!((dev.effective_ratio() - 2.0).abs() < 1e-12);
        let err = dev.alloc("too-big", 1000, TargetRatio::R1).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfDeviceMemory { .. }));
        let _ = a;
    }

    #[test]
    fn buddy_exhaustion_detected() {
        // Carve-out factor 0: no buddy at all — only 1x allocations succeed.
        let mut dev = BuddyDevice::new(DeviceConfig {
            device_capacity: 4096,
            carve_out_factor: 0,
        });
        assert!(dev.alloc("plain", 4, TargetRatio::R1).is_ok());
        let err = dev.alloc("compressed", 4, TargetRatio::R2).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfBuddyMemory { .. }));
    }

    #[test]
    fn bad_handles_are_rejected() {
        let mut dev = small_device();
        let a = dev.alloc("a", 4, TargetRatio::R1).unwrap();
        assert!(matches!(
            dev.read_entry(
                AllocId {
                    slot: 7,
                    generation: 0
                },
                0
            ),
            Err(DeviceError::BadAllocation)
        ));
        assert!(matches!(
            dev.read_entry(a, 4),
            Err(DeviceError::BadIndex {
                index: 4,
                entries: 4
            })
        ));
    }

    #[test]
    fn fresh_allocation_reads_zero() {
        let mut dev = small_device();
        let a = dev.alloc("a", 4, TargetRatio::R4).unwrap();
        assert_eq!(dev.read_entry(a, 2).unwrap(), [0u8; 128]);
    }

    #[test]
    fn allocation_info() {
        let mut dev = small_device();
        let a = dev.alloc("weights", 10, TargetRatio::R1_33).unwrap();
        let (name, target, entries) = dev.allocation_info(a).unwrap();
        assert_eq!(name, "weights");
        assert_eq!(target, TargetRatio::R1_33);
        assert_eq!(entries, 10);
    }

    #[test]
    fn error_display() {
        let e = DeviceError::OutOfDeviceMemory {
            requested: 10,
            available: 5,
        };
        assert_eq!(e.to_string(), "out of device memory: need 10 B, 5 B free");
    }

    #[test]
    fn with_codec_round_trips_under_every_algorithm() {
        let entries: Vec<Entry> = (0..12)
            .map(|i| entry_of_words(|j| i * 31 + j as u32))
            .collect();
        for codec in bpc::CodecKind::ALL {
            let mut dev = BuddyDevice::with_codec(
                DeviceConfig {
                    device_capacity: 1 << 20,
                    carve_out_factor: 3,
                },
                codec,
            );
            assert_eq!(dev.codec(), codec);
            let a = dev.alloc("c", 12, TargetRatio::R2).unwrap();
            dev.write_entries(a, 0, &entries).unwrap();
            let mut out = vec![[0u8; ENTRY_BYTES]; 12];
            dev.read_entries(a, 0, &mut out).unwrap();
            assert_eq!(out, entries, "{codec}: batched round-trip");
        }
    }

    #[test]
    fn batched_io_matches_per_entry_io() {
        let entries: Vec<Entry> = (0..16)
            .map(|i| match i % 3 {
                0 => [0u8; ENTRY_BYTES],
                1 => entry_of_words(|j| 500 + j as u32),
                _ => {
                    let mut s = i as u64 + 1;
                    entry_of_words(|_| {
                        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                        (s >> 32) as u32
                    })
                }
            })
            .collect();

        let mut batched = small_device();
        let a = batched.alloc("a", 16, TargetRatio::R2).unwrap();
        batched.write_entries(a, 0, &entries).unwrap();
        let mut out = vec![[0u8; ENTRY_BYTES]; 16];
        batched.read_entries(a, 0, &mut out).unwrap();
        assert_eq!(out, entries);

        let mut single = small_device();
        let b = single.alloc("a", 16, TargetRatio::R2).unwrap();
        for (i, e) in entries.iter().enumerate() {
            single.write_entry(b, i as u64, e).unwrap();
        }
        for i in 0..16u64 {
            assert_eq!(single.read_entry(b, i).unwrap(), entries[i as usize]);
        }
        assert_eq!(
            batched.stats(),
            single.stats(),
            "batched stats must equal the per-entry accounting"
        );
    }

    #[test]
    fn retarget_preserves_bytes_and_resizes_reservations() {
        let mut dev = small_device();
        let a = dev.alloc("t", 32, TargetRatio::R2).unwrap();
        let entries: Vec<Entry> = (0..32)
            .map(|i| {
                if i % 3 == 0 {
                    [0u8; ENTRY_BYTES]
                } else {
                    entry_of_words(|j| 40 + i * 17 + j as u32)
                }
            })
            .collect();
        dev.write_entries(a, 0, &entries).unwrap();
        let report = dev.retarget(a, TargetRatio::R4).unwrap();
        assert_eq!(report.old_target, TargetRatio::R2);
        assert_eq!(report.new_target, TargetRatio::R4);
        assert_eq!(report.entries, 32);
        assert_eq!(report.device_bytes_delta, -(32 * 32));
        assert_eq!(report.buddy_bytes_delta, 32 * 32);
        assert!(report.moved_sectors > 0);
        assert_eq!(dev.device_used(), 32 * 32);
        assert_eq!(dev.buddy_used(), 32 * 96);
        let mut out = vec![[0u8; ENTRY_BYTES]; 32];
        dev.read_entries(a, 0, &mut out).unwrap();
        assert_eq!(out, entries, "migration must preserve every byte");
        let (_, target, _) = dev.allocation_info(a).unwrap();
        assert_eq!(target, TargetRatio::R4);
        let s = dev.stats();
        assert_eq!(s.retargets, 1);
        assert_eq!(s.moved_sectors, report.moved_sectors);
    }

    #[test]
    fn retarget_to_same_target_is_a_free_noop() {
        let mut dev = small_device();
        let a = dev.alloc("t", 8, TargetRatio::R2).unwrap();
        dev.write_entries(a, 0, &[entry_of_words(|j| j as u32); 8])
            .unwrap();
        let before = dev.stats();
        let report = dev.retarget(a, TargetRatio::R2).unwrap();
        assert_eq!(report.moved_sectors, 0);
        assert_eq!(report.device_bytes_delta, 0);
        assert_eq!(dev.stats(), before, "no-op must not move counters");
        assert_eq!(dev.stats().retargets, 0);
    }

    #[test]
    fn retarget_never_disturbs_other_allocations() {
        // Three allocations; the *middle* one migrates both ways. The
        // neighbours' regions are never touched (migration is alloc-new /
        // re-encode / free-old) and their contents must survive
        // byte-for-byte.
        let mut dev = small_device();
        let a = dev.alloc("first", 16, TargetRatio::R4).unwrap();
        let b = dev.alloc("middle", 16, TargetRatio::R2).unwrap();
        let c = dev.alloc("last", 16, TargetRatio::ZeroPage16).unwrap();
        let data = |salt: u32| -> Vec<Entry> {
            (0..16)
                .map(|i| entry_of_words(|j| salt + i * 13 + j as u32))
                .collect()
        };
        let (da, db, dc) = (data(1000), data(2000), data(3000));
        dev.write_entries(a, 0, &da).unwrap();
        dev.write_entries(b, 0, &db).unwrap();
        dev.write_entries(c, 0, &dc).unwrap();
        for new_target in [TargetRatio::R1, TargetRatio::ZeroPage16, TargetRatio::R4] {
            dev.retarget(b, new_target).unwrap();
            for (id, expect, name) in [(a, &da, "first"), (b, &db, "middle"), (c, &dc, "last")] {
                let mut out = vec![[0u8; ENTRY_BYTES]; 16];
                dev.read_entries(id, 0, &mut out).unwrap();
                assert_eq!(&out, expect, "{name} after middle -> {new_target}");
            }
        }
        assert_eq!(dev.stats().retargets, 3);
        // Reservations account for the final targets exactly.
        assert_eq!(dev.device_used(), 16 * (32 + 32 + 8));
        assert_eq!(dev.buddy_used(), 16 * (96 + 96 + 128));
    }

    #[test]
    fn retarget_capacity_failure_leaves_device_untouched() {
        // Device sized so the 2x allocation fits but 1x does not.
        let mut dev = BuddyDevice::new(DeviceConfig {
            device_capacity: 64 * 64 + 16,
            carve_out_factor: 3,
        });
        let a = dev.alloc("tight", 64, TargetRatio::R2).unwrap();
        let entries: Vec<Entry> = (0..64).map(|i| entry_of_words(|j| i + j as u32)).collect();
        dev.write_entries(a, 0, &entries).unwrap();
        let stats_before = dev.stats();
        let err = dev.retarget(a, TargetRatio::R1).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfDeviceMemory { .. }));
        assert_eq!(dev.stats(), stats_before, "failed retarget must not count");
        assert_eq!(dev.device_used(), 64 * 64);
        let (_, target, _) = dev.allocation_info(a).unwrap();
        assert_eq!(target, TargetRatio::R2, "target must be unchanged");
        let mut out = vec![[0u8; ENTRY_BYTES]; 64];
        dev.read_entries(a, 0, &mut out).unwrap();
        assert_eq!(out, entries);

        // Buddy exhaustion is detected the same way (no carve-out at all).
        let mut dev = BuddyDevice::new(DeviceConfig {
            device_capacity: 4096,
            carve_out_factor: 0,
        });
        let a = dev.alloc("plain", 16, TargetRatio::R1).unwrap();
        assert!(matches!(
            dev.retarget(a, TargetRatio::R2),
            Err(DeviceError::OutOfBuddyMemory { .. })
        ));
    }

    #[test]
    fn retarget_by_name_addresses_the_latest_allocation() {
        let mut dev = small_device();
        let first = dev.alloc("tensor", 8, TargetRatio::R2).unwrap();
        let second = dev.alloc("tensor", 8, TargetRatio::R2).unwrap();
        dev.retarget_by_name("tensor", TargetRatio::R4).unwrap();
        assert_eq!(dev.allocation_info(first).unwrap().1, TargetRatio::R2);
        assert_eq!(dev.allocation_info(second).unwrap().1, TargetRatio::R4);
    }

    #[test]
    fn state_window_reflects_metadata_without_traffic() {
        let mut dev = small_device();
        let a = dev.alloc("w", 16, TargetRatio::R2).unwrap();
        // 8 zeros (untouched), 4 one-sector ramps, 4 incompressible.
        for i in 0..4u64 {
            dev.write_entry(a, i, &entry_of_words(|j| 500 + j as u32))
                .unwrap();
        }
        let mut s = 1u64;
        let noisy = entry_of_words(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 32) as u32
        });
        for i in 4..8u64 {
            dev.write_entry(a, i, &noisy).unwrap();
        }
        let before = dev.stats();
        let window = dev.state_window(a).unwrap();
        assert_eq!(dev.stats(), before, "window scans must be traffic-free");
        assert_eq!(window.total(), 16);
        assert!((window.zero_fraction() - 0.5).abs() < 1e-12);
        assert!((window.overflow_fraction(TargetRatio::R2) - 0.25).abs() < 1e-12);
        assert_eq!(dev.allocation_ids(), vec![a]);
    }

    #[test]
    fn free_reclaims_all_three_regions() {
        let mut dev = small_device();
        let data = entry_of_words(|j| 31 * j as u32);
        let ids: Vec<AllocId> = (0..8)
            .map(|i| dev.alloc(&format!("a{i}"), 64, TargetRatio::R2).unwrap())
            .collect();
        for &id in &ids {
            dev.write_entry(id, 0, &data).unwrap();
        }
        assert_eq!(dev.device_used(), 8 * 64 * 64);
        for &id in &ids {
            dev.free(id).unwrap();
        }
        assert_eq!(dev.device_used(), 0);
        assert_eq!(dev.buddy_used(), 0);
        assert_eq!(dev.allocation_count(), 0);
        assert_eq!(dev.logical_bytes(), 0);
        assert_eq!(dev.fragmentation(), 0.0, "full coalesce after churn");
        // The reclaimed space hosts a full-capacity allocation again.
        let entries = dev.config().device_capacity / 128;
        let big = dev.alloc("big", entries, TargetRatio::R1).unwrap();
        assert_eq!(dev.device_used(), dev.config().device_capacity);
        // Recycled storage reads as zero despite the earlier writes.
        assert_eq!(dev.read_entry(big, 0).unwrap(), [0u8; ENTRY_BYTES]);
    }

    #[test]
    fn stale_ids_are_dead_even_after_slot_reuse() {
        let mut dev = small_device();
        let a = dev.alloc("a", 16, TargetRatio::R2).unwrap();
        dev.free(a).unwrap();
        // The slot is recycled by the next allocation; the stale handle
        // must not alias it.
        let b = dev.alloc("b", 16, TargetRatio::R2).unwrap();
        assert_ne!(a, b, "generation must distinguish reused slots");
        assert_eq!(dev.read_entry(a, 0), Err(DeviceError::BadAllocation));
        assert_eq!(
            dev.write_entry(a, 0, &[1u8; ENTRY_BYTES]),
            Err(DeviceError::BadAllocation)
        );
        assert_eq!(
            dev.retarget(a, TargetRatio::R4),
            Err(DeviceError::BadAllocation)
        );
        assert_eq!(dev.state_window(a), Err(DeviceError::BadAllocation));
        assert_eq!(dev.free(a), Err(DeviceError::BadAllocation), "double free");
        // The live handle still works.
        assert_eq!(dev.read_entry(b, 0).unwrap(), [0u8; ENTRY_BYTES]);
        assert_eq!(dev.allocation_ids(), vec![b]);
    }

    #[test]
    fn free_by_name_releases_the_latest_creation() {
        let mut dev = small_device();
        let first = dev.alloc("tensor", 8, TargetRatio::R2).unwrap();
        let second = dev.alloc("tensor", 8, TargetRatio::R2).unwrap();
        dev.free_by_name("tensor").unwrap();
        assert_eq!(dev.read_entry(second, 0), Err(DeviceError::BadAllocation));
        assert!(dev.read_entry(first, 0).is_ok());
        dev.free_by_name("tensor").unwrap();
        assert_eq!(
            dev.free_by_name("tensor"),
            Err(DeviceError::BadAllocation),
            "no live allocation left under the name"
        );
    }

    #[test]
    fn freed_holes_are_reused_first_fit() {
        // Device sized for exactly four 64-entry R2 allocations.
        let mut dev = BuddyDevice::new(DeviceConfig {
            device_capacity: 4 * 64 * 64,
            carve_out_factor: 3,
        });
        let ids: Vec<AllocId> = (0..4)
            .map(|i| dev.alloc(&format!("a{i}"), 64, TargetRatio::R2).unwrap())
            .collect();
        assert!(dev.alloc("extra", 64, TargetRatio::R2).is_err());
        // Free the two middle allocations: adjacent holes coalesce into
        // one 8 KiB run that hosts a double-size allocation.
        dev.free(ids[1]).unwrap();
        dev.free(ids[2]).unwrap();
        assert_eq!(dev.device_free(), 2 * 64 * 64);
        assert_eq!(dev.largest_free_region(), 2 * 64 * 64);
        assert_eq!(dev.fragmentation(), 0.0);
        let big = dev.alloc("big", 128, TargetRatio::R2).unwrap();
        assert_eq!(dev.device_used(), dev.config().device_capacity);
        let data = entry_of_words(|j| 5 + j as u32);
        dev.write_entry(big, 127, &data).unwrap();
        assert_eq!(dev.read_entry(big, 127).unwrap(), data);
        // Neighbours at the edges were never touched.
        assert!(dev.read_entry(ids[0], 0).is_ok());
        assert!(dev.read_entry(ids[3], 0).is_ok());
    }

    #[test]
    fn fragmentation_is_observable() {
        // Three allocations, free the first and third: two disjoint holes.
        let mut dev = BuddyDevice::new(DeviceConfig {
            device_capacity: 3 * 64 * 64,
            carve_out_factor: 3,
        });
        let a = dev.alloc("a", 64, TargetRatio::R2).unwrap();
        let b = dev.alloc("b", 64, TargetRatio::R2).unwrap();
        let c = dev.alloc("c", 64, TargetRatio::R2).unwrap();
        dev.free(a).unwrap();
        dev.free(c).unwrap();
        assert_eq!(dev.device_free(), 2 * 64 * 64);
        assert_eq!(dev.largest_free_region(), 64 * 64);
        assert!((dev.fragmentation() - 0.5).abs() < 1e-12);
        // A request larger than the largest hole fails despite enough
        // total free bytes, and reports the largest contiguous run.
        let err = dev.alloc("big", 128, TargetRatio::R2).unwrap_err();
        assert_eq!(
            err,
            DeviceError::OutOfDeviceMemory {
                requested: 128 * 64,
                available: 64 * 64,
            }
        );
        let _ = b;
    }

    #[test]
    fn overflow_sized_requests_fail_cleanly() {
        let mut dev = small_device();
        for target in TargetRatio::DESCENDING {
            assert_eq!(
                dev.alloc("huge", u64::MAX / 2, target),
                Err(DeviceError::RequestOverflow),
                "{target}"
            );
        }
        assert_eq!(dev.allocation_count(), 0);
        assert_eq!(dev.device_used(), 0);
        assert_eq!(
            DeviceError::RequestOverflow.to_string(),
            "request size arithmetic overflows u64"
        );
        // The config product is checked, not wrapped.
        let absurd = DeviceConfig {
            device_capacity: u64::MAX,
            carve_out_factor: 3,
        };
        assert_eq!(absurd.buddy_capacity(), None);
        assert_eq!(
            DeviceConfig::default().buddy_capacity(),
            Some(3 * (64 << 20))
        );
    }

    #[test]
    fn retarget_succeeds_on_a_completely_full_device() {
        // Every device byte is reserved: the alloc-new-first path cannot
        // place the new region, so the migration must fall back to
        // releasing the old reservation first — and still succeed.
        let mut dev = BuddyDevice::new(DeviceConfig {
            device_capacity: 64 * 128,
            carve_out_factor: 3,
        });
        let a = dev.alloc("full", 64, TargetRatio::R1).unwrap();
        assert_eq!(dev.device_free(), 0);
        let entries: Vec<Entry> = (0..64).map(|i| entry_of_words(|j| i + j as u32)).collect();
        dev.write_entries(a, 0, &entries).unwrap();
        let report = dev.retarget(a, TargetRatio::R2).unwrap();
        assert_eq!(report.device_bytes_delta, -(64 * 64));
        let mut out = vec![[0u8; ENTRY_BYTES]; 64];
        dev.read_entries(a, 0, &mut out).unwrap();
        assert_eq!(out, entries);
        assert_eq!(dev.device_used(), 64 * 64);
    }

    #[test]
    fn batched_range_checks() {
        let mut dev = small_device();
        let a = dev.alloc("a", 8, TargetRatio::R2).unwrap();
        let chunk = [[1u8; ENTRY_BYTES]; 4];
        // In-range at the tail is fine; one past is rejected atomically.
        dev.write_entries(a, 4, &chunk).unwrap();
        assert!(matches!(
            dev.write_entries(a, 5, &chunk),
            Err(DeviceError::BadIndex {
                index: 8,
                entries: 8
            })
        ));
        let mut out = [[0u8; ENTRY_BYTES]; 4];
        assert!(matches!(
            dev.read_entries(a, 6, &mut out),
            Err(DeviceError::BadIndex { .. })
        ));
        // Empty batches are no-ops, even at the end of the allocation.
        dev.write_entries(a, 8, &[]).unwrap();
        dev.read_entries(a, 8, &mut []).unwrap();
    }
}
