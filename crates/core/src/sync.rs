//! The synchronization facade: every atomic, fence, and mutex in library
//! code goes through this module instead of `std::sync` directly (the
//! xtask `sync-facade` lint enforces it).
//!
//! In default builds the re-exports below are the `std::sync` types
//! themselves — zero cost, no wrappers. With `--features model-sync`
//! they swap to `buddy_check::shim`'s model-aware types, which behave
//! exactly like `std` outside a checker run and route every operation
//! through `buddy-check`'s controlled scheduler inside one. That switch
//! is how the `core::shared` seqlock/epoch protocol is model-checked
//! against the real import graph rather than a hand-copied model: the
//! only behavioral difference between the two builds is the import path.
//!
//! # Seqlock helpers
//!
//! The `seq_*` helpers below name the four ordering roles of the seqlock
//! protocol (`shared.rs` must use them for every access to a `seq` word —
//! the `seqlock-discipline` lint denies raw orderings there). The
//! orderings are the canonical seqlock set (Boehm, *Can seqlocks get
//! along with programming language memory models?*, MSPC '12), and each
//! is backed by model-checker evidence in `crates/check/tests/protocol.rs`:
//! the unmutated `seqlock` model passes exhaustively, and downgrading or
//! removing any one helper's ordering is a seeded mutation with a
//! counterexample schedule. See DESIGN.md §13.

#[cfg(feature = "model-sync")]
pub use buddy_check::shim::{fence, AtomicU64, AtomicU8, Mutex, MutexGuard, OnceLock};
#[cfg(not(feature = "model-sync"))]
pub use std::sync::atomic::{fence, AtomicU64, AtomicU8};
#[cfg(not(feature = "model-sync"))]
pub use std::sync::{Mutex, MutexGuard, OnceLock};

pub use std::sync::atomic::Ordering;

/// Reader entry: loads the sequence word with `Acquire`.
///
/// Pairs with [`seq_release`]: a reader that observes a closed (even)
/// sequence inherits every store made inside that window, so the
/// `Relaxed` field loads that follow cannot see values older than the
/// observed epoch. Model evidence: `SeqlockMutation::CloseRelaxed`
/// (breaking the pairing) yields a counterexample.
#[inline]
pub fn seq_acquire(seq: &AtomicU64) -> u64 {
    seq.load(Ordering::Acquire)
}

/// Reader re-validation: an `Acquire` fence, then a `Relaxed` re-load of
/// the sequence word.
///
/// The fence upgrades the `Relaxed` data loads made since
/// [`seq_acquire`]: any data value written inside a later window drags
/// the writer's odd sequence into view, so the re-load cannot confirm
/// the old sequence and the reader retries. Model evidence:
/// `SeqlockMutation::NoReaderFence` (dropping the fence) lets stale data
/// slip past validation.
#[inline]
pub fn seq_revalidate(seq: &AtomicU64) -> u64 {
    fence(Ordering::Acquire);
    // Relaxed: the fence above supplies the ordering; see the doc comment.
    seq.load(Ordering::Relaxed)
}

/// Writer open: bumps the sequence to odd (`Relaxed`), then a `Release`
/// fence.
///
/// The fence attaches the odd sequence to every store made inside the
/// window, which is what forces a concurrent reader's re-validation to
/// fail if it saw any of them. Model evidence:
/// `SeqlockMutation::SkipOddBump` and `SeqlockMutation::NoWriterFence`
/// each yield a counterexample.
#[inline]
pub fn seq_open(seq: &AtomicU64) {
    // Relaxed: `write_lock` serializes writers, so the bump itself needs no
    // ordering; the fence below is what publishes the odd value's meaning.
    seq.fetch_add(1, Ordering::Relaxed);
    fence(Ordering::Release);
}

/// Writer close: bumps the sequence back to even with `Release`.
///
/// Publishes everything stored inside the window to the next
/// [`seq_acquire`] that observes the new even value. Model evidence:
/// `SeqlockMutation::CloseRelaxed` yields a counterexample.
#[inline]
pub fn seq_release(seq: &AtomicU64) {
    seq.fetch_add(1, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_helpers_implement_the_odd_even_discipline() {
        let seq = AtomicU64::new(0);
        assert_eq!(seq_acquire(&seq), 0);
        seq_open(&seq);
        assert_eq!(seq_revalidate(&seq), 1, "open window is odd");
        seq_release(&seq);
        assert_eq!(seq_acquire(&seq), 2, "closed window is even again");
        assert_eq!(seq_revalidate(&seq), 2);
    }
}
