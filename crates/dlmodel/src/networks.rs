//! The six DL training workloads of the paper (Table 1 / §4.1): AlexNet,
//! Inception v2, SqueezeNet v1.1, VGG16, ResNet50 (Caffe + ImageNet), and
//! BigLSTM (2-layer, 8192 hidden + 1024 projection, English LM).
//!
//! Architectures are written out at the block level (branches of an
//! inception module or a residual block are summed into equivalent layers —
//! exact per-branch shapes do not change footprint/FLOP totals
//! meaningfully). Each network's `overhead_bytes` is calibrated so its
//! footprint at the paper's reference batch size reproduces the Table 1
//! footprint; the calibration is asserted by tests.

use crate::layers::{LayerKind, Network, NetworkBuilder};

/// Fractional GiB to bytes.
fn gib(x: f64) -> u64 {
    (x * (1u64 << 30) as f64) as u64
}

fn conv(out_ch: u64, kernel: u64, stride: u64, pad: u64) -> LayerKind {
    LayerKind::Conv {
        out_ch,
        kernel,
        stride,
        pad,
    }
}

fn pool(kernel: u64, stride: u64) -> LayerKind {
    LayerKind::Pool { kernel, stride }
}

fn fc(outputs: u64) -> LayerKind {
    LayerKind::Fc { outputs }
}

/// AlexNet (Krizhevsky et al., 2012). Reference batch 512 → 8.85 GB.
pub fn alexnet() -> Network {
    NetworkBuilder::image_input("AlexNet", 3, 227)
        .layer("conv1", conv(96, 11, 4, 0))
        .layer("pool1", pool(3, 2))
        .layer("conv2", conv(256, 5, 1, 2))
        .layer("pool2", pool(3, 2))
        .layer("conv3", conv(384, 3, 1, 1))
        .layer("conv4", conv(384, 3, 1, 1))
        .layer("conv5", conv(256, 3, 1, 1))
        .layer("pool5", pool(3, 2))
        .layer("fc6", fc(4096))
        .layer("fc7", fc(4096))
        .layer("fc8", fc(1000))
        .build_calibrated(gib(8.85), 512)
}

/// VGG16 (Simonyan & Zisserman, 2014). Reference batch 64 → 11.08 GB.
pub fn vgg16() -> Network {
    NetworkBuilder::image_input("VGG16", 3, 224)
        .layer("conv1_1", conv(64, 3, 1, 1))
        .layer("conv1_2", conv(64, 3, 1, 1))
        .layer("pool1", pool(2, 2))
        .layer("conv2_1", conv(128, 3, 1, 1))
        .layer("conv2_2", conv(128, 3, 1, 1))
        .layer("pool2", pool(2, 2))
        .layer("conv3_1", conv(256, 3, 1, 1))
        .layer("conv3_2", conv(256, 3, 1, 1))
        .layer("conv3_3", conv(256, 3, 1, 1))
        .layer("pool3", pool(2, 2))
        .layer("conv4_1", conv(512, 3, 1, 1))
        .layer("conv4_2", conv(512, 3, 1, 1))
        .layer("conv4_3", conv(512, 3, 1, 1))
        .layer("pool4", pool(2, 2))
        .layer("conv5_1", conv(512, 3, 1, 1))
        .layer("conv5_2", conv(512, 3, 1, 1))
        .layer("conv5_3", conv(512, 3, 1, 1))
        .layer("pool5", pool(2, 2))
        .layer("fc6", fc(4096))
        .layer("fc7", fc(4096))
        .layer("fc8", fc(1000))
        .build_calibrated(gib(11.08), 64)
}

/// ResNet50 (He et al., 2016), bottleneck blocks summed per stage.
/// Reference batch 32 → 4.50 GB.
pub fn resnet50() -> Network {
    let mut b = NetworkBuilder::image_input("ResNet50", 3, 224)
        .layer("conv1", conv(64, 7, 2, 3))
        .layer("pool1", pool(3, 2));
    // Stage (out_ch of the bottleneck 1x1-3x3-1x1 triple), blocks, stride.
    let stages: [(u64, u64, u64, u64); 4] = [
        (64, 256, 3, 1),
        (128, 512, 4, 2),
        (256, 1024, 6, 2),
        (512, 2048, 3, 2),
    ];
    for (stage_idx, (mid, out, blocks, stride)) in stages.into_iter().enumerate() {
        for block in 0..blocks {
            let s = if block == 0 { stride } else { 1 };
            let name = format!("res{}_{}", stage_idx + 2, block);
            b = b
                .layer(&format!("{name}_1x1a"), conv(mid, 1, s, 0))
                .layer(&format!("{name}_3x3"), conv(mid, 3, 1, 1))
                .layer(&format!("{name}_1x1b"), conv(out, 1, 1, 0));
        }
    }
    b.layer("pool5", pool(7, 7))
        .layer("fc", fc(1000))
        .build_calibrated(gib(4.50), 32)
}

/// Inception v2 (Szegedy et al., 2016), modules summed into equivalent
/// convolutions. Reference batch 32 → 3.21 GB.
pub fn inception_v2() -> Network {
    NetworkBuilder::image_input("Inception_V2", 3, 224)
        .layer("conv1", conv(64, 7, 2, 3))
        .layer("pool1", pool(3, 2))
        .layer("conv2", conv(192, 3, 1, 1))
        .layer("pool2", pool(3, 2))
        // 3 inception modules at 28x28 (equivalent channel sums).
        .layer("inc3a", conv(256, 3, 1, 1))
        .layer("inc3b", conv(320, 3, 1, 1))
        .layer("inc3c", conv(576, 3, 2, 1))
        // 5 modules at 14x14.
        .layer("inc4a", conv(576, 3, 1, 1))
        .layer("inc4b", conv(576, 3, 1, 1))
        .layer("inc4c", conv(608, 3, 1, 1))
        .layer("inc4d", conv(608, 3, 1, 1))
        .layer("inc4e", conv(1056, 3, 2, 1))
        // 2 modules at 7x7.
        .layer("inc5a", conv(1024, 3, 1, 1))
        .layer("inc5b", conv(1024, 3, 1, 1))
        .layer("pool5", pool(7, 7))
        .layer("fc", fc(1000))
        .build_calibrated(gib(3.21), 32)
}

/// SqueezeNet v1.1 (Iandola et al., 2016), fire modules summed.
/// Reference batch 32 → 2.03 GB.
pub fn squeezenet() -> Network {
    NetworkBuilder::image_input("SqueezeNet", 3, 227)
        .layer("conv1", conv(64, 3, 2, 0))
        .layer("pool1", pool(3, 2))
        .layer("fire2", conv(128, 3, 1, 1))
        .layer("fire3", conv(128, 3, 1, 1))
        .layer("pool3", pool(3, 2))
        .layer("fire4", conv(256, 3, 1, 1))
        .layer("fire5", conv(256, 3, 1, 1))
        .layer("pool5", pool(3, 2))
        .layer("fire6", conv(384, 3, 1, 1))
        .layer("fire7", conv(384, 3, 1, 1))
        .layer("fire8", conv(512, 3, 1, 1))
        .layer("fire9", conv(512, 3, 1, 1))
        .layer("conv10", conv(1000, 1, 1, 0))
        .layer("pool10", pool(13, 13))
        .build_calibrated(gib(2.03), 32)
}

/// BigLSTM (Jozefowicz et al., 2016): 2-layer LSTM with 8192 hidden units
/// and a 1024-dimensional recurrent projection.
///
/// The full model shards its 800k-word softmax across GPUs; we model the
/// per-GPU partition (10k words) with a long unroll (256 steps), which
/// makes BigLSTM capacity-limited at small batches — the property §4.4
/// relies on ("unable to fit the mini-batch size of 64"). Reference batch
/// 4 → 2.71 GB (Table 1); the layer model alone slightly exceeds Table 1,
/// so the calibrated overhead clamps to zero (documented in DESIGN.md §4).
pub fn biglstm() -> Network {
    NetworkBuilder::flat_input("BigLSTM", 1024)
        .layer(
            "embedding",
            LayerKind::Embedding {
                vocab: 10_000,
                dim: 1024,
                steps: 256,
            },
        )
        .layer(
            "lstm1",
            LayerKind::Lstm {
                hidden: 8192,
                proj: 1024,
                steps: 256,
            },
        )
        .layer(
            "lstm2",
            LayerKind::Lstm {
                hidden: 8192,
                proj: 1024,
                steps: 256,
            },
        )
        .layer(
            "softmax",
            LayerKind::SoftmaxLm {
                vocab: 10_000,
                proj: 1024,
                steps: 256,
            },
        )
        .build_calibrated(gib(2.71), 4)
}

/// All six DL networks with their Table 1 footprints and reference batches.
pub fn all_networks() -> Vec<(Network, u64, f64)> {
    vec![
        (biglstm(), 4, 2.71),
        (alexnet(), 512, 8.85),
        (inception_v2(), 32, 3.21),
        (squeezenet(), 32, 2.03),
        (vgg16(), 64, 11.08),
        (resnet50(), 32, 4.50),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_match_literature() {
        // Well-known totals (±5% for the block-summed approximations).
        let alex = alexnet().params() as f64;
        assert!((alex - 61e6).abs() / 61e6 < 0.05, "AlexNet params {alex}");
        let vgg = vgg16().params() as f64;
        assert!((vgg - 138e6).abs() / 138e6 < 0.05, "VGG16 params {vgg}");
        let res = resnet50().params() as f64;
        assert!((15e6..40e6).contains(&res), "ResNet50 params {res}");
    }

    #[test]
    fn footprints_match_table_1_at_reference_batch() {
        for (net, batch, table1_gb) in all_networks() {
            let gb = net.footprint_bytes(batch) as f64 / (1u64 << 30) as f64;
            let rel = (gb - table1_gb).abs() / table1_gb;
            assert!(
                rel < 0.15,
                "{}: footprint {gb:.2} GB at batch {batch} vs Table 1 {table1_gb} GB",
                net.name
            );
        }
    }

    #[test]
    fn alexnet_transition_is_late_vgg_early() {
        // Figure 13a: AlexNet's parameters dominate until batch ~96; VGG16
        // and the rest become activation-dominated by batch 32.
        let alex = alexnet();
        let weights_fraction =
            |n: &Network, b: u64| 3.0 * n.params() as f64 * 4.0 / n.footprint_bytes(b) as f64;
        assert!(
            weights_fraction(&alex, 64) > 0.20,
            "AlexNet is parameter-heavy"
        );
        let vgg = vgg16();
        assert!(
            weights_fraction(&vgg, 64) < weights_fraction(&alex, 64),
            "VGG16 is more activation-dominated than AlexNet"
        );
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = all_networks().iter().map(|(n, _, _)| n.name).collect();
        assert_eq!(
            names,
            [
                "BigLSTM",
                "AlexNet",
                "Inception_V2",
                "SqueezeNet",
                "VGG16",
                "ResNet50"
            ]
        );
    }

    #[test]
    fn flops_are_plausible() {
        // VGG16 forward ≈ 15.5 GFLOPs/image; AlexNet ≈ 0.7; ResNet50 ≈ 4.
        let vgg = vgg16().flops_per_sample() as f64 / 1e9;
        assert!((10.0..40.0).contains(&vgg), "VGG16 {vgg:.1} GFLOPs");
        let alex = alexnet().flops_per_sample() as f64 / 1e9;
        assert!((0.5..3.0).contains(&alex), "AlexNet {alex:.1} GFLOPs");
    }
}
