//! Quickstart: the full Buddy Compression flow on one allocation.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! This walks the paper's §3.5 pipeline end to end on the functional model:
//! compress real data with BPC, profile it, pick a target ratio under the
//! Buddy Threshold, allocate a compressed region, and verify that reads
//! return exactly what was written while most traffic stays in device
//! memory.

use buddy_compression::bpc::{Codec, CodecKind, CompressedBuf, SizeHistogram, ENTRY_BYTES};
use buddy_compression::buddy_core::{
    choose_targets, AllocationProfile, BuddyDevice, DeviceConfig, ProfileConfig,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. An application buffer: mostly smooth floats, some noise. ---
    let entries = 4096u64;
    let mut rng = SmallRng::seed_from_u64(42);
    let data: Vec<[u8; ENTRY_BYTES]> = (0..entries)
        .map(|i| {
            let mut e = [0u8; ENTRY_BYTES];
            if i % 10 == 0 {
                rng.fill(&mut e[..]); // 10% incompressible
            } else {
                let base = 1.0f32 + (i as f32) * 1e-3;
                for (j, c) in e.chunks_exact_mut(4).enumerate() {
                    let v = base + j as f32 * 1e-5;
                    c.copy_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            e
        })
        .collect();

    // --- 2. Profiling pass: compress every entry, build the histogram.
    // (Zero-allocation path: one scratch buffer for the whole scan.) ---
    let codec = CodecKind::Bpc;
    let mut scratch = CompressedBuf::new();
    let histogram: SizeHistogram = data
        .iter()
        .map(|e| codec.size_class_into(e, &mut scratch))
        .collect();
    println!(
        "profiled {} entries: optimistic compression {:.2}x",
        histogram.total(),
        histogram.compression_ratio()
    );

    // --- 3. Pick a target ratio under the 30% Buddy Threshold. ---
    let profiles = vec![AllocationProfile {
        name: "field".into(),
        entries,
        histogram,
    }];
    let outcome = choose_targets(&profiles, &ProfileConfig::default());
    println!("profiler chose:\n{outcome}");

    // --- 4. Allocate and run against the functional device. ---
    let mut device = BuddyDevice::new(DeviceConfig {
        device_capacity: 1 << 20,
        carve_out_factor: 3,
    });
    let target = outcome.choices[0].target;
    let alloc = device.alloc("field", entries, target)?;
    device.write_entries(alloc, 0, &data)?;
    let mut readback = vec![[0u8; ENTRY_BYTES]; entries as usize];
    device.read_entries(alloc, 0, &mut readback)?;
    assert_eq!(readback, data, "lossless read-back");

    let stats = device.stats();
    println!(
        "device ratio {:.2}x; {} of {} accesses touched buddy memory ({:.1}%)",
        device.effective_ratio(),
        stats.reads_with_buddy + stats.writes_with_buddy,
        stats.total_accesses(),
        100.0 * stats.buddy_access_fraction()
    );
    println!(
        "sectors moved: {} from device DRAM, {} over the interconnect",
        stats.device_sectors, stats.buddy_sectors
    );
    Ok(())
}
