//! Property-based round-trip tests for every compressor in the crate.
//!
//! The central invariant of a lossless hardware compressor is
//! `decompress(compress(e)) == e` for *every* 128-byte entry. We drive each
//! codec with several adversarial distributions: uniformly random bytes,
//! structured numeric data (where the codecs actually compress), and
//! boundary patterns.

use bpc::{
    BaseDeltaImmediate, BitPlane, BlockCompressor, Compressed, FrequentPattern, SizeClass, ZeroRle,
    ENTRY_BYTES,
};
use proptest::prelude::*;

fn assert_round_trip<C: BlockCompressor>(codec: &C, entry: &[u8; ENTRY_BYTES]) {
    let compressed = codec.compress(entry);
    let restored = codec
        .decompress(&compressed)
        .unwrap_or_else(|e| panic!("{} failed to decode its own output: {e}", codec.name()));
    assert_eq!(&restored, entry, "{} round-trip mismatch", codec.name());
}

fn entry_strategy() -> impl Strategy<Value = [u8; ENTRY_BYTES]> {
    proptest::array::uniform32(any::<u32>()).prop_map(|words| {
        let mut entry = [0u8; ENTRY_BYTES];
        for (chunk, w) in entry.chunks_exact_mut(4).zip(words.iter()) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        entry
    })
}

/// Structured data: base + small noise, the regime where BPC/BDI shine.
fn structured_strategy() -> impl Strategy<Value = [u8; ENTRY_BYTES]> {
    (
        any::<u32>(),
        0u32..1024,
        proptest::array::uniform32(0u32..256),
    )
        .prop_map(|(base, stride, noise)| {
            let mut entry = [0u8; ENTRY_BYTES];
            for (i, chunk) in entry.chunks_exact_mut(4).enumerate() {
                let v = base
                    .wrapping_add(stride.wrapping_mul(i as u32))
                    .wrapping_add(noise[i]);
                chunk.copy_from_slice(&v.to_le_bytes());
            }
            entry
        })
}

/// Floating-point-like data: a smooth f32 ramp.
fn float_strategy() -> impl Strategy<Value = [u8; ENTRY_BYTES]> {
    (-1e6f32..1e6f32, -1.0f32..1.0f32).prop_map(|(start, step)| {
        let mut entry = [0u8; ENTRY_BYTES];
        for (i, chunk) in entry.chunks_exact_mut(4).enumerate() {
            let v = start + step * i as f32;
            chunk.copy_from_slice(&v.to_bits().to_le_bytes());
        }
        entry
    })
}

/// Sparse data: mostly zero with a few random words.
fn sparse_strategy() -> impl Strategy<Value = [u8; ENTRY_BYTES]> {
    (proptest::collection::vec((0usize..32, any::<u32>()), 0..6)).prop_map(|spikes| {
        let mut entry = [0u8; ENTRY_BYTES];
        for (pos, val) in spikes {
            entry[pos * 4..pos * 4 + 4].copy_from_slice(&val.to_le_bytes());
        }
        entry
    })
}

macro_rules! round_trip_suite {
    ($name:ident, $codec:expr) => {
        mod $name {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(256))]

                #[test]
                fn random(entry in entry_strategy()) {
                    assert_round_trip(&$codec, &entry);
                }

                #[test]
                fn structured(entry in structured_strategy()) {
                    assert_round_trip(&$codec, &entry);
                }

                #[test]
                fn floats(entry in float_strategy()) {
                    assert_round_trip(&$codec, &entry);
                }

                #[test]
                fn sparse(entry in sparse_strategy()) {
                    assert_round_trip(&$codec, &entry);
                }

                #[test]
                fn size_class_is_monotone_bound(entry in entry_strategy()) {
                    let codec = $codec;
                    let compressed = codec.compress(&entry);
                    let class = compressed.size_class();
                    // The class always holds the payload...
                    prop_assert!(class.bytes() * 8 >= compressed.bits() || class == SizeClass::B128);
                    // ...and sectors follow the class.
                    prop_assert_eq!(compressed.sectors(), class.sectors().max(1));
                }
            }
        }
    };
}

round_trip_suite!(bitplane, BitPlane::new());
round_trip_suite!(bdi, BaseDeltaImmediate::new());
round_trip_suite!(fpc, FrequentPattern::new());
round_trip_suite!(zero_rle, ZeroRle::new());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Decoders must never panic on arbitrary bitstreams — they either decode
    /// or report a structured error.
    #[test]
    fn bpc_decoder_total_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..160), bits in 0usize..1300) {
        let c = Compressed::new("bpc", bits.min(data.len() * 8), data);
        let _ = BitPlane::new().decompress(&c);
    }

    #[test]
    fn bdi_decoder_total_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..160), bits in 0usize..1300) {
        let c = Compressed::new("bdi", bits.min(data.len() * 8), data);
        let _ = BaseDeltaImmediate::new().decompress(&c);
    }

    #[test]
    fn fpc_decoder_total_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..160), bits in 0usize..1300) {
        let c = Compressed::new("fpc", bits.min(data.len() * 8), data);
        let _ = FrequentPattern::new().decompress(&c);
    }

    /// BPC never reports fewer than 9 bits (base flag + minimal plane code)
    /// and is the best of the four algorithms on smooth numeric ramps.
    #[test]
    fn bpc_beats_fpc_on_smooth_ramps(start in 0u32..1_000_000, step in 1u32..64) {
        let mut entry = [0u8; ENTRY_BYTES];
        for (i, chunk) in entry.chunks_exact_mut(4).enumerate() {
            chunk.copy_from_slice(&start.wrapping_add(step * i as u32).to_le_bytes());
        }
        let bpc_bits = BitPlane::new().compress(&entry).bits();
        let fpc_bits = FrequentPattern::new().compress(&entry).bits();
        prop_assert!(bpc_bits >= 9);
        prop_assert!(bpc_bits <= fpc_bits,
            "BPC ({bpc_bits}) should beat FPC ({fpc_bits}) on ramps");
    }
}
