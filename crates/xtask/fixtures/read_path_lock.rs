//! Known-bad corpus for the `read-path-lock` rule: the pool read path
//! (`read_entry` / `read_entries` / `read_entries_collect` / `entry_state`
//! / `state_window`) must resolve against epoch-published snapshots via
//! `handle_of`; shard guards inside those bodies must be flagged. The
//! explicitly-locked baseline (`*_locked`) and structural operations may
//! still lock.
#![forbid(unsafe_code)]

impl Pool {
    fn read_entry(&self, id: AllocId, index: u64) -> Result<Entry, Error> {
        let device = self.shard(id.shard()); // expect(read-path-lock)
        device.read_entry(id, index)
    }

    fn read_entries(&self, id: AllocId, start: u64, out: &mut [Entry]) -> Result<(), Error> {
        self.guard_of(id)?.read_entries(id, start, out) // expect(read-path-lock)
    }

    fn entry_state(&self, id: AllocId, index: u64) -> Result<EntryState, Error> {
        let guard: MutexGuard<'_, Device> = self.inner.lock(); // expect(read-path-lock)
        guard.entry_state(id, index)
    }

    fn state_window(&self, id: AllocId, start: u64, len: u64) -> Result<Window, Error> {
        self.handle_of(id)?.state_window(start, len)
    }

    fn read_entries_collect(&self, id: AllocId, start: u64, n: u64) -> Result<Stats, Error> {
        // lint-allow(read-path-lock): fixture proof that the waiver channel suppresses
        self.guard_of(id)?.read_entries_collect(start, n)
    }

    fn read_entries_collect_locked(&self, id: AllocId, start: u64, n: u64) -> Result<Stats, Error> {
        self.guard_of(id)?.read_entries_collect(start, n)
    }

    fn alloc(&self, entries: u64) -> Result<AllocId, Error> {
        self.shard(0).alloc(entries)
    }
}
