//! The 16-benchmark evaluation suite of the paper (Table 1): eight SpecAccel
//! benchmarks, two DOE FastForward benchmarks, and six deep-learning
//! training workloads.
//!
//! Each benchmark is described by its Table 1 footprint, a set of
//! `cudaMalloc`-style allocations whose data mixtures reproduce the
//! compression ratios of Figure 3 and the spatial patterns of Figure 6, and
//! an [`AccessProfile`] reproducing the access behaviour the paper reports
//! in §4.2 (coalesced DL streams, random sparse access in 354.cg and
//! 360.ilbdc, latency-sensitive FF_Lulesh, native host traffic in
//! FF_HPGMG).
//!
//! `paper_fig3_ratio` values are visual digitizations of Figure 3 (the paper
//! provides no table); they are calibration *targets* — the `fig03`
//! harness prints measured-vs-paper for each (see DESIGN.md §5).

use crate::entry_gen::MixtureProfile;
use crate::spec::{AllocationSpec, SpatialPattern, TemporalDrift};
use crate::trace::{AccessProfile, TraceGenerator};
use bpc::{SizeClass, ENTRY_BYTES};

/// Which suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC ACCEL (OpenACC) HPC benchmarks.
    SpecAccel,
    /// DOE FastForward HPC proxy applications.
    FastForward,
    /// Deep-learning training workloads (Caffe + BigLSTM).
    DlTraining,
}

impl Suite {
    /// Whether this suite counts toward the paper's HPC geometric mean.
    pub fn is_hpc(self) -> bool {
        matches!(self, Suite::SpecAccel | Suite::FastForward)
    }
}

/// Footprint scaling policy: full-scale (multi-GB) images are divided by
/// `divisor` but never below `floor_bytes` (or the true footprint, if that
/// is smaller). Compression statistics are scale-invariant because the
/// generators are stationary within each allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Footprint divisor.
    pub divisor: f64,
    /// Minimum simulated footprint in bytes.
    pub floor_bytes: u64,
}

impl Scale {
    /// Default evaluation scale: 1/64 with an 8 MB floor.
    pub fn default_eval() -> Self {
        Self {
            divisor: 64.0,
            floor_bytes: 8 << 20,
        }
    }

    /// Smaller scale for fast unit tests: 1/512 with a 2 MB floor.
    pub fn test() -> Self {
        Self {
            divisor: 512.0,
            floor_bytes: 2 << 20,
        }
    }

    /// No scaling (use the Table 1 footprint as-is).
    pub fn unit() -> Self {
        Self {
            divisor: 1.0,
            floor_bytes: 0,
        }
    }

    /// Simulated footprint for a benchmark with the given true footprint.
    pub fn apply(&self, footprint_bytes: u64) -> u64 {
        let scaled = (footprint_bytes as f64 / self.divisor) as u64;
        scaled.max(self.floor_bytes.min(footprint_bytes))
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::default_eval()
    }
}

/// One benchmark of the evaluation suite.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// Benchmark name as it appears in the paper (e.g. `"351.palm"`).
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Full-scale memory footprint from Table 1, in bytes.
    pub footprint_bytes: u64,
    /// Footprint scaling used for simulation.
    pub scale: Scale,
    /// Allocation specifications (fractions are normalized internally).
    pub allocations: Vec<AllocationSpec>,
    /// Memory access behaviour.
    pub access: AccessProfile,
    /// Figure 3 compression ratio digitized from the paper, for comparison.
    pub paper_fig3_ratio: f64,
}

impl Benchmark {
    /// Simulated footprint in bytes after scaling.
    pub fn sim_footprint_bytes(&self) -> u64 {
        self.scale.apply(self.footprint_bytes)
    }

    /// Total simulated 128 B entries.
    pub fn total_entries(&self) -> u64 {
        self.allocation_layout().iter().map(|(_, n)| n).sum()
    }

    /// The scaled entry count of every allocation, in order.
    ///
    /// Fractions are normalized; every allocation gets at least one 8 KB
    /// page worth of entries.
    pub fn allocation_layout(&self) -> Vec<(&AllocationSpec, u64)> {
        let total_frac: f64 = self.allocations.iter().map(|a| a.footprint_frac).sum();
        let entries_total = self.sim_footprint_bytes() / ENTRY_BYTES as u64;
        self.allocations
            .iter()
            .map(|a| {
                let n = (entries_total as f64 * a.footprint_frac / total_frac) as u64;
                (a, n.max(64))
            })
            .collect()
    }

    /// Nominal (design-target) compression ratio at `phase`, from the
    /// mixture specifications alone. Measured ratios from real BPC runs
    /// should land close to this; tests enforce it.
    pub fn nominal_ratio(&self, phase: f64) -> f64 {
        let total_frac: f64 = self.allocations.iter().map(|a| a.footprint_frac).sum();
        let avg_bytes: f64 = self
            .allocations
            .iter()
            .map(|a| {
                let body = a.profile.nominal_bytes_per_entry();
                let bytes = match a.drift {
                    TemporalDrift::ZeroFill {
                        start_zero,
                        end_zero,
                    } => {
                        let zf = start_zero + (end_zero - start_zero) * phase.clamp(0.0, 1.0);
                        zf * 8.0 + (1.0 - zf) * body
                    }
                    _ => body,
                };
                a.footprint_frac / total_frac * bytes
            })
            .sum();
        ENTRY_BYTES as f64 / avg_bytes
    }

    /// Builds an access-trace generator over this benchmark's footprint.
    ///
    /// For multi-client replays, split the footprint into per-client
    /// slices and build one [`TraceGenerator::per_client`] per slice, as
    /// the `buddy-pool` load generator does.
    pub fn trace(&self, seed: u64) -> TraceGenerator {
        TraceGenerator::new(self.access, self.total_entries(), seed)
    }
}

/// Geometric mean helper used for suite-level aggregates.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (sum / n as f64).exp()
    }
}

fn mix_of(weights: &[(SizeClass, f64)]) -> MixtureProfile {
    MixtureProfile::from_class_weights(weights)
}

fn gb(x: f64) -> u64 {
    (x * (1u64 << 30) as f64) as u64
}

fn mb(x: f64) -> u64 {
    (x * (1u64 << 20) as f64) as u64
}

use SizeClass::{B0, B128, B16, B32, B64, B8, B96};

fn palm() -> Benchmark {
    Benchmark {
        name: "351.palm",
        suite: Suite::SpecAccel,
        footprint_bytes: gb(2.89),
        scale: Scale::default(),
        allocations: vec![
            AllocationSpec::blocked("atm_state", 0.40, mix_of(&[(B16, 0.5), (B32, 0.5)])),
            AllocationSpec::blocked("turbulence", 0.25, mix_of(&[(B64, 0.7), (B32, 0.3)])),
            AllocationSpec::blocked("boundary_flux", 0.15, mix_of(&[(B16, 1.0)])),
            AllocationSpec::blocked("spectral_work", 0.20, mix_of(&[(B128, 0.5), (B96, 0.5)])),
        ],
        // Weather model: regular sweeps over a huge grid, but the working
        // set is spread wide — the paper singles out 351.palm for its low
        // metadata-cache hit rate (Fig. 5b / §4.2).
        access: AccessProfile {
            coalesced_frac: 0.60,
            two_sector_frac: 0.20,
            write_frac: 0.35,
            stream_frac: 0.45,
            hot_footprint_frac: 0.50,
            hot_access_frac: 0.30,
            mlp: 6,
            compute_per_access: 30,
            host_traffic_frac: 0.0,
            cold_tail_frac: 0.0,
        },
        paper_fig3_ratio: 2.7,
    }
}

fn ep() -> Benchmark {
    Benchmark {
        name: "352.ep",
        suite: Suite::SpecAccel,
        footprint_bytes: gb(2.75),
        scale: Scale::default(),
        allocations: vec![
            AllocationSpec::blocked("rng_tables", 0.15, mix_of(&[(B32, 1.0)])),
            AllocationSpec::blocked("scratch", 0.10, mix_of(&[(B128, 0.5), (B64, 0.5)])),
            AllocationSpec::blocked("results_zero", 0.75, mix_of(&[(B0, 0.95), (B8, 0.05)])),
        ],
        // Embarrassingly parallel: streaming, bandwidth-hungry. The huge
        // zero-filled result region is written only at the end of the run —
        // a cold tail for the dominant kernel.
        access: AccessProfile {
            coalesced_frac: 0.85,
            two_sector_frac: 0.10,
            write_frac: 0.25,
            stream_frac: 0.90,
            hot_footprint_frac: 0.40,
            hot_access_frac: 0.60,
            mlp: 7,
            compute_per_access: 36,
            host_traffic_frac: 0.0,
            cold_tail_frac: 0.75,
        },
        paper_fig3_ratio: 6.0,
    }
}

fn cg() -> Benchmark {
    Benchmark {
        name: "354.cg",
        suite: Suite::SpecAccel,
        footprint_bytes: gb(1.23),
        scale: Scale::default(),
        allocations: vec![
            AllocationSpec::blocked("matrix_vals", 0.55, mix_of(&[(B128, 0.95), (B96, 0.05)])),
            AllocationSpec::blocked("col_idx", 0.30, mix_of(&[(B128, 0.8), (B96, 0.2)])),
            AllocationSpec::blocked("vectors", 0.15, mix_of(&[(B32, 0.6), (B64, 0.4)])),
        ],
        // Sparse CG: random, irregular single-sector gathers (§4.2 notes
        // 354.cg slows down under bandwidth compression because of this).
        access: AccessProfile::random_sparse(),
        paper_fig3_ratio: 1.1,
    }
}

fn seismic() -> Benchmark {
    Benchmark {
        name: "355.seismic",
        suite: Suite::SpecAccel,
        footprint_bytes: gb(2.83),
        scale: Scale::default(),
        allocations: vec![
            AllocationSpec {
                name: "wavefield",
                footprint_frac: 0.75,
                profile: mix_of(&[(B64, 1.0)]),
                pattern: SpatialPattern::Blocked { run_entries: 1024 },
                // §3.1: "begins with many zero values but slowly asymptotes
                // to a 2x compression ratio over its execution".
                drift: TemporalDrift::ZeroFill {
                    start_zero: 0.85,
                    end_zero: 0.05,
                },
            },
            AllocationSpec::blocked("velocity_model", 0.17, mix_of(&[(B16, 1.0)])),
            AllocationSpec::blocked("fft_scratch", 0.08, mix_of(&[(B128, 1.0)])),
        ],
        // Wave propagation: streaming but wide working set (low metadata
        // cache hit rate per Fig. 5b) and bandwidth-sensitive (§4.2).
        access: AccessProfile {
            coalesced_frac: 0.70,
            two_sector_frac: 0.15,
            write_frac: 0.40,
            stream_frac: 0.50,
            hot_footprint_frac: 0.60,
            hot_access_frac: 0.25,
            mlp: 6,
            compute_per_access: 34,
            host_traffic_frac: 0.0,
            cold_tail_frac: 0.0,
        },
        paper_fig3_ratio: 3.5,
    }
}

fn sp() -> Benchmark {
    Benchmark {
        name: "356.sp",
        suite: Suite::SpecAccel,
        footprint_bytes: gb(2.83),
        scale: Scale::default(),
        allocations: vec![
            AllocationSpec::blocked("solution", 0.45, mix_of(&[(B16, 0.4), (B32, 0.6)])),
            AllocationSpec::blocked("rhs", 0.25, mix_of(&[(B32, 1.0)])),
            AllocationSpec::blocked("fluxes", 0.20, mix_of(&[(B64, 0.6), (B32, 0.4)])),
            AllocationSpec::blocked("workspace", 0.10, mix_of(&[(B128, 1.0)])),
        ],
        access: AccessProfile::stencil(),
        paper_fig3_ratio: 3.0,
    }
}

fn csp() -> Benchmark {
    Benchmark {
        name: "357.csp",
        suite: Suite::SpecAccel,
        footprint_bytes: gb(1.44),
        scale: Scale::default(),
        allocations: vec![
            AllocationSpec::blocked("solution", 0.45, mix_of(&[(B16, 0.3), (B32, 0.7)])),
            AllocationSpec::blocked("rhs", 0.25, mix_of(&[(B32, 1.0)])),
            AllocationSpec::blocked("fluxes", 0.20, mix_of(&[(B64, 0.7), (B32, 0.3)])),
            AllocationSpec::blocked("workspace", 0.10, mix_of(&[(B128, 1.0)])),
        ],
        access: AccessProfile::stencil(),
        paper_fig3_ratio: 2.9,
    }
}

fn ilbdc() -> Benchmark {
    Benchmark {
        name: "360.ilbdc",
        suite: Suite::SpecAccel,
        footprint_bytes: gb(1.94),
        scale: Scale::default(),
        allocations: vec![
            AllocationSpec::blocked("pdf_arrays", 0.75, mix_of(&[(B64, 0.9), (B32, 0.1)])),
            AllocationSpec::blocked("geometry_idx", 0.15, mix_of(&[(B128, 0.7), (B96, 0.3)])),
            AllocationSpec::blocked("params", 0.10, mix_of(&[(B8, 1.0)])),
        ],
        // Lattice Boltzmann with indirect addressing: partially structured
        // sweeps with irregular single-sector gathers (§4.2 pairs it with
        // 354.cg for bandwidth-compression slowdowns).
        access: AccessProfile {
            coalesced_frac: 0.40,
            two_sector_frac: 0.25,
            write_frac: 0.35,
            stream_frac: 0.50,
            hot_footprint_frac: 0.08,
            hot_access_frac: 0.45,
            mlp: 4,
            compute_per_access: 45,
            host_traffic_frac: 0.0,
            cold_tail_frac: 0.0,
        },
        paper_fig3_ratio: 2.1,
    }
}

fn bt() -> Benchmark {
    Benchmark {
        name: "370.bt",
        suite: Suite::SpecAccel,
        footprint_bytes: mb(1.21),
        scale: Scale::default(),
        allocations: vec![
            AllocationSpec::blocked("blocks", 0.75, mix_of(&[(B128, 0.8), (B96, 0.2)])),
            AllocationSpec::blocked("coeffs", 0.25, mix_of(&[(B16, 1.0)])),
        ],
        access: AccessProfile::stencil(),
        paper_fig3_ratio: 1.35,
    }
}

fn hpgmg() -> Benchmark {
    Benchmark {
        name: "FF_HPGMG",
        suite: Suite::FastForward,
        footprint_bytes: gb(2.32),
        scale: Scale::default(),
        allocations: vec![
            AllocationSpec {
                name: "level_structs",
                footprint_frac: 0.60,
                profile: mix_of(&[(B16, 0.5), (B128, 0.5)]),
                // Arrays of heterogeneous structs produce the striped
                // compressibility pattern of Figure 6 (§3.4: needs >80%
                // Buddy Threshold to capture).
                pattern: SpatialPattern::Striped { period: 8 },
                drift: TemporalDrift::Stable,
            },
            AllocationSpec::blocked("ghost_zones", 0.20, mix_of(&[(B16, 1.0)])),
            AllocationSpec::blocked("smoother_tmp", 0.20, mix_of(&[(B64, 1.0)])),
        ],
        // Multigrid with synchronous host copies in its native form (§4.2).
        access: AccessProfile {
            coalesced_frac: 0.60,
            two_sector_frac: 0.20,
            write_frac: 0.35,
            stream_frac: 0.70,
            hot_footprint_frac: 0.15,
            hot_access_frac: 0.50,
            mlp: 6,
            compute_per_access: 30,
            host_traffic_frac: 0.08,
            cold_tail_frac: 0.0,
        },
        paper_fig3_ratio: 2.2,
    }
}

fn lulesh() -> Benchmark {
    Benchmark {
        name: "FF_Lulesh",
        suite: Suite::FastForward,
        footprint_bytes: gb(1.59),
        scale: Scale::default(),
        allocations: vec![
            AllocationSpec::blocked("nodal", 0.40, mix_of(&[(B32, 0.7), (B16, 0.3)])),
            AllocationSpec::blocked("element", 0.35, mix_of(&[(B64, 0.5), (B32, 0.5)])),
            AllocationSpec::blocked("connectivity", 0.15, mix_of(&[(B128, 0.8), (B96, 0.2)])),
            AllocationSpec::blocked("constants", 0.10, mix_of(&[(B8, 1.0)])),
        ],
        // Shock hydrodynamics: regular accesses but long dependence chains —
        // the paper finds FF_Lulesh slows down under bandwidth compression
        // purely from (de)compression latency (§4.2). Low MLP models that.
        access: AccessProfile {
            coalesced_frac: 0.80,
            two_sector_frac: 0.12,
            write_frac: 0.35,
            stream_frac: 0.75,
            hot_footprint_frac: 0.10,
            hot_access_frac: 0.55,
            mlp: 2,
            compute_per_access: 10,
            host_traffic_frac: 0.0,
            cold_tail_frac: 0.0,
        },
        paper_fig3_ratio: 2.7,
    }
}

fn dl_drift() -> TemporalDrift {
    // DL frameworks pool and reuse memory; individual entries churn while
    // the aggregate mixture stays stationary (Fig. 8).
    TemporalDrift::Churn { rate: 0.25 }
}

fn dl_alloc(
    name: &'static str,
    frac: f64,
    weights: &[(SizeClass, f64)],
    churn: bool,
) -> AllocationSpec {
    AllocationSpec {
        name,
        footprint_frac: frac,
        profile: mix_of(weights),
        pattern: SpatialPattern::Speckled,
        drift: if churn {
            dl_drift()
        } else {
            TemporalDrift::Stable
        },
    }
}

fn biglstm() -> Benchmark {
    Benchmark {
        name: "BigLSTM",
        suite: Suite::DlTraining,
        footprint_bytes: gb(2.71),
        scale: Scale::default(),
        allocations: vec![
            dl_alloc(
                "activations",
                0.25,
                &[(B16, 0.3), (B32, 0.25), (B64, 0.25), (B128, 0.2)],
                true,
            ),
            dl_alloc("gradients", 0.15, &[(B64, 0.6), (B32, 0.4)], true),
            dl_alloc(
                "lstm_weights",
                0.25,
                &[(B96, 0.4), (B64, 0.4), (B128, 0.2)],
                false,
            ),
            dl_alloc(
                "embedding",
                0.35,
                &[(B128, 0.5), (B96, 0.25), (B64, 0.25)],
                false,
            ),
        ],
        access: AccessProfile::streaming_dl(),
        paper_fig3_ratio: 1.7,
    }
}

fn alexnet() -> Benchmark {
    Benchmark {
        name: "AlexNet",
        suite: Suite::DlTraining,
        footprint_bytes: gb(8.85),
        scale: Scale::default(),
        allocations: vec![
            dl_alloc(
                "activations",
                0.30,
                &[(B0, 0.3), (B16, 0.2), (B64, 0.25), (B128, 0.25)],
                true,
            ),
            dl_alloc("gradients", 0.15, &[(B32, 0.4), (B64, 0.6)], true),
            dl_alloc("conv_weights", 0.10, &[(B32, 1.0)], false),
            dl_alloc(
                "fc_weights",
                0.45,
                &[(B96, 0.3), (B128, 0.35), (B64, 0.35)],
                false,
            ),
        ],
        access: AccessProfile::streaming_dl(),
        paper_fig3_ratio: 1.9,
    }
}

fn inception() -> Benchmark {
    Benchmark {
        name: "Inception_V2",
        suite: Suite::DlTraining,
        footprint_bytes: gb(3.21),
        scale: Scale::default(),
        allocations: vec![
            dl_alloc(
                "activations",
                0.45,
                &[(B0, 0.25), (B32, 0.25), (B64, 0.3), (B128, 0.2)],
                true,
            ),
            dl_alloc("gradients", 0.15, &[(B32, 0.5), (B64, 0.5)], true),
            dl_alloc("workspace", 0.10, &[(B128, 0.7), (B64, 0.3)], true),
            dl_alloc("conv_weights", 0.30, &[(B64, 0.88), (B96, 0.12)], false),
        ],
        access: AccessProfile::streaming_dl(),
        paper_fig3_ratio: 2.0,
    }
}

fn squeezenet() -> Benchmark {
    Benchmark {
        name: "SqueezeNet",
        suite: Suite::DlTraining,
        footprint_bytes: gb(2.03),
        scale: Scale::default(),
        allocations: vec![
            dl_alloc(
                "activations",
                0.50,
                &[(B64, 0.45), (B128, 0.25), (B32, 0.3)],
                true,
            ),
            dl_alloc("gradients", 0.25, &[(B64, 0.5), (B96, 0.5)], true),
            dl_alloc(
                "weights",
                0.25,
                &[(B128, 0.4), (B96, 0.4), (B64, 0.2)],
                false,
            ),
        ],
        access: AccessProfile::streaming_dl(),
        paper_fig3_ratio: 1.55,
    }
}

fn vgg16() -> Benchmark {
    Benchmark {
        name: "VGG16",
        suite: Suite::DlTraining,
        footprint_bytes: gb(11.08),
        scale: Scale::default(),
        allocations: vec![
            dl_alloc(
                "activations",
                0.15,
                &[(B32, 0.35), (B64, 0.4), (B128, 0.25)],
                true,
            ),
            dl_alloc("gradients", 0.15, &[(B32, 0.5), (B64, 0.5)], true),
            dl_alloc(
                "fc_weights",
                0.30,
                &[(B64, 0.6), (B96, 0.3), (B128, 0.1)],
                false,
            ),
            dl_alloc("conv_weights", 0.15, &[(B64, 0.8), (B32, 0.2)], false),
            // §3.4: VGG16 has "large highly-compressible regions" that the
            // 16× zero-page optimization captures; the framework pools them
            // in their own allocation (region boundaries overlap
            // cudaMalloc boundaries, §3.4). The pooled zeros are rarely
            // touched by the dominant kernels (cold tail).
            dl_alloc("act_zero_pool", 0.25, &[(B0, 0.97), (B8, 0.03)], false),
        ],
        access: AccessProfile {
            cold_tail_frac: 0.25,
            ..AccessProfile::streaming_dl()
        },
        paper_fig3_ratio: 2.4,
    }
}

fn resnet50() -> Benchmark {
    Benchmark {
        name: "ResNet50",
        suite: Suite::DlTraining,
        footprint_bytes: gb(4.50),
        scale: Scale::default(),
        allocations: vec![
            dl_alloc(
                "activations",
                0.40,
                &[(B0, 0.1), (B32, 0.3), (B64, 0.35), (B128, 0.25)],
                true,
            ),
            dl_alloc("gradients", 0.20, &[(B64, 0.85), (B96, 0.15)], true),
            dl_alloc("bn_stats", 0.10, &[(B16, 0.5), (B32, 0.5)], true),
            dl_alloc(
                "conv_weights",
                0.30,
                &[(B96, 0.4), (B128, 0.3), (B64, 0.3)],
                false,
            ),
        ],
        access: AccessProfile::streaming_dl(),
        paper_fig3_ratio: 1.75,
    }
}

/// All 16 benchmarks in paper order (Table 1 / Figure 3).
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        palm(),
        ep(),
        cg(),
        seismic(),
        sp(),
        csp(),
        ilbdc(),
        bt(),
        hpgmg(),
        lulesh(),
        biglstm(),
        alexnet(),
        inception(),
        squeezenet(),
        vgg16(),
        resnet50(),
    ]
}

/// The ten HPC benchmarks (SpecAccel + FastForward).
pub fn hpc_benchmarks() -> Vec<Benchmark> {
    all_benchmarks()
        .into_iter()
        .filter(|b| b.suite.is_hpc())
        .collect()
}

/// The six DL training benchmarks.
pub fn dl_benchmarks() -> Vec<Benchmark> {
    all_benchmarks()
        .into_iter()
        .filter(|b| b.suite == Suite::DlTraining)
        .collect()
}

/// Finds a benchmark by its paper name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_sixteen_benchmarks() {
        assert_eq!(all_benchmarks().len(), 16);
        assert_eq!(hpc_benchmarks().len(), 10);
        assert_eq!(dl_benchmarks().len(), 6);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all_benchmarks().iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn table1_footprints() {
        // Table 1 of the paper.
        let expect = [
            ("351.palm", gb(2.89)),
            ("352.ep", gb(2.75)),
            ("354.cg", gb(1.23)),
            ("355.seismic", gb(2.83)),
            ("356.sp", gb(2.83)),
            ("357.csp", gb(1.44)),
            ("360.ilbdc", gb(1.94)),
            ("370.bt", mb(1.21)),
            ("FF_HPGMG", gb(2.32)),
            ("FF_Lulesh", gb(1.59)),
            ("BigLSTM", gb(2.71)),
            ("AlexNet", gb(8.85)),
            ("Inception_V2", gb(3.21)),
            ("SqueezeNet", gb(2.03)),
            ("VGG16", gb(11.08)),
            ("ResNet50", gb(4.50)),
        ];
        for (name, bytes) in expect {
            let b = by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(b.footprint_bytes, bytes, "{name} footprint");
        }
    }

    #[test]
    fn scaling_respects_floor_and_divisor() {
        let s = Scale::default_eval();
        assert_eq!(s.apply(gb(2.89)), (gb(2.89) as f64 / 64.0) as u64);
        // Tiny benchmark: kept at full size (below the floor).
        assert_eq!(s.apply(mb(1.21)), mb(1.21));
        // Mid-size: clamped up to the floor.
        assert_eq!(s.apply(mb(100.0)), 8 << 20);
        assert_eq!(Scale::unit().apply(12345), 12345);
    }

    #[test]
    fn nominal_ratios_near_paper_fig3() {
        // The mixture designs should land within 20% of the digitized
        // Figure 3 values (the fig03 harness prints measured-vs-paper).
        for b in all_benchmarks() {
            // Average the nominal ratio over the ten snapshot phases, since
            // Figure 3 reports whole-run averages.
            let phases = crate::snapshot::ten_phases();
            let mean_bytes: f64 = phases
                .iter()
                .map(|&p| ENTRY_BYTES as f64 / b.nominal_ratio(p))
                .sum::<f64>()
                / phases.len() as f64;
            let nominal = ENTRY_BYTES as f64 / mean_bytes;
            let rel = (nominal - b.paper_fig3_ratio).abs() / b.paper_fig3_ratio;
            assert!(
                rel < 0.20,
                "{}: nominal {nominal:.2} vs paper {:.2}",
                b.name,
                b.paper_fig3_ratio
            );
        }
    }

    #[test]
    fn suite_geomeans_near_paper() {
        // §3.1: GMEAN 2.51 for HPC, 1.85 for DL (optimistic capacity ratios).
        let hpc = geomean(hpc_benchmarks().iter().map(|b| {
            let phases = crate::snapshot::ten_phases();
            let mean_bytes: f64 = phases
                .iter()
                .map(|&p| ENTRY_BYTES as f64 / b.nominal_ratio(p))
                .sum::<f64>()
                / phases.len() as f64;
            ENTRY_BYTES as f64 / mean_bytes
        }));
        let dl = geomean(dl_benchmarks().iter().map(|b| b.nominal_ratio(0.5)));
        assert!(
            (hpc - 2.51).abs() < 0.35,
            "HPC geomean {hpc:.2} vs paper 2.51"
        );
        assert!((dl - 1.85).abs() < 0.25, "DL geomean {dl:.2} vs paper 1.85");
    }

    #[test]
    fn layout_covers_footprint() {
        for b in all_benchmarks() {
            let layout = b.allocation_layout();
            assert_eq!(layout.len(), b.allocations.len());
            let entries: u64 = layout.iter().map(|(_, n)| n).sum();
            let expect = b.sim_footprint_bytes() / ENTRY_BYTES as u64;
            let diff = (entries as i64 - expect as i64).unsigned_abs();
            assert!(
                diff <= 64 * b.allocations.len() as u64 + 4,
                "{} layout",
                b.name
            );
        }
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean([]), 1.0);
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn trace_builds_for_every_benchmark() {
        for b in all_benchmarks() {
            let mut t = b.trace(1);
            let access = t.next().expect("trace yields accesses");
            assert!(access.entry < b.total_entries());
        }
    }

    #[test]
    fn per_client_split_of_a_benchmark_stays_in_slice() {
        let mut b = by_name("356.sp").unwrap();
        b.scale = Scale::test();
        let per_client = b.total_entries() / 4;
        for c in 0..4 {
            let t = TraceGenerator::per_client(b.access, per_client, 9, c);
            assert_eq!(t.footprint_entries(), per_client, "client {c} slice");
            for access in t.take(500) {
                assert!(access.entry < per_client, "client {c} stays in slice");
            }
        }
    }
}
