//! Trivial zero-detection "compression", the lower bound among the compared
//! algorithms: an entry is either entirely zero (1-bit code) or stored raw.
//!
//! The paper notes that many discarded benchmarks "seemed to have large
//! portions of their working sets be zero" (§2.1); this codec quantifies how
//! much of a workload's compressibility is explained by zeros alone, which
//! the ablation benches use to contextualize BPC's advantage.

use crate::bits::BitReader;
use crate::{Codec, CompressedBuf, DecodeError, Entry, ENTRY_BYTES};

/// The zero-run codec: 1 bit for an all-zero entry, `1 + 1024` bits otherwise.
///
/// # Example
///
/// ```
/// use bpc::{ZeroRle, BlockCompressor};
///
/// let codec = ZeroRle::new();
/// assert_eq!(codec.compress(&[0u8; 128]).bits(), 1);
/// assert_eq!(codec.compress(&[1u8; 128]).bits(), 1 + 1024);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZeroRle;

impl ZeroRle {
    /// Algorithm name used in [`crate::Compressed::algorithm`].
    pub const NAME: &'static str = "zero";

    /// Creates the codec.
    pub fn new() -> Self {
        Self
    }
}

impl Codec for ZeroRle {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn compress_into(&self, entry: &Entry, out: &mut CompressedBuf) {
        let mut w = out.begin();
        if entry.iter().all(|&b| b == 0) {
            w.push_bit(false);
        } else {
            w.push_bit(true);
            for &b in entry.iter() {
                w.push_bits(b as u64, 8);
            }
        }
        out.finish(Self::NAME, w);
    }

    fn decompress_into(
        &self,
        data: &[u8],
        bits: usize,
        out: &mut Entry,
    ) -> Result<(), DecodeError> {
        let mut r = BitReader::new(data, bits);
        *out = [0u8; ENTRY_BYTES];
        if r.read_bit()? {
            for b in out.iter_mut() {
                *b = r.read_bits(8)? as u8;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockCompressor, Compressed};

    #[test]
    fn zero_round_trip() {
        let codec = ZeroRle::new();
        let c = codec.compress(&[0u8; 128]);
        assert_eq!(c.bits(), 1);
        assert_eq!(codec.decompress(&c).unwrap(), [0u8; 128]);
    }

    #[test]
    fn nonzero_round_trip() {
        let codec = ZeroRle::new();
        let mut entry = [0u8; 128];
        entry[127] = 1;
        let c = codec.compress(&entry);
        assert_eq!(c.bits(), 1025);
        assert_eq!(codec.decompress(&c).unwrap(), entry);
    }

    #[test]
    fn wrong_algorithm_rejected() {
        let c = Compressed::new("bpc", 1, vec![0]);
        assert!(matches!(
            ZeroRle::new().decompress(&c),
            Err(DecodeError::WrongAlgorithm { .. })
        ));
    }

    #[test]
    fn truncated_rejected() {
        let c = Compressed::new(ZeroRle::NAME, 0, vec![]);
        assert!(matches!(
            ZeroRle::new().decompress(&c),
            Err(DecodeError::Truncated)
        ));
    }
}
