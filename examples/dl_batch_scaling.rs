//! DL training scenario: how much larger a mini-batch fits with Buddy
//! Compression, and what that is worth (the paper's §4.4 case study).
//!
//! Run with `cargo run --release --example dl_batch_scaling`.

use buddy_compression::buddy_core::{choose_targets, ProfileConfig};
use buddy_compression::dl_model::{capacity_speedup, networks, throughput, GpuPerf};
use buddy_compression::profile_benchmark;
use buddy_compression::workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpu = GpuPerf::default();

    println!("network        footprint@b64   max batch (12GB)  with Buddy  speedup");
    let mut speedups = Vec::new();
    for (net, _, _) in networks::all_networks() {
        // Measure this network's Buddy compression ratio on its synthetic
        // memory image (same pipeline as Figure 7).
        let ratio = by_name(net.name)
            .map(|mut bench| {
                bench.scale = Scale::test();
                let profiles = profile_benchmark(&bench, 2048, 11);
                choose_targets(&profiles, &ProfileConfig::default()).device_compression_ratio()
            })
            .unwrap_or(1.5);
        let cs = capacity_speedup(&net, &gpu, ratio, 0.022, 1024);
        speedups.push(cs.speedup());
        println!(
            "{:<14} {:>9.2} GB   {:>14}  {:>10}  {:>6.1}%",
            net.name,
            net.footprint_bytes(64) as f64 / (1u64 << 30) as f64,
            cs.baseline_batch,
            cs.buddy_batch,
            100.0 * (cs.speedup() - 1.0),
        );
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!(
        "\naverage speedup from Buddy-enabled batches: {:.1}%",
        100.0 * (avg - 1.0)
    );
    println!("paper reports 14% average, with BigLSTM +28% and VGG16 +30% (§4.4)");

    // Show the throughput curve that makes larger batches valuable.
    let vgg = networks::vgg16();
    println!("\nVGG16 images/s by batch size (why capacity matters):");
    for b in [8u64, 16, 32, 64, 128, 256] {
        println!("  batch {b:>4}: {:>7.1} img/s", throughput(&vgg, b, &gpu));
    }
    Ok(())
}
