//! Frequent Pattern Compression (FPC) after Alameldeen and Wood,
//! *"Frequent Pattern Compression: A Significance-Based Compression Scheme
//! for L2 Caches"*, UW-Madison CS TR 1500, 2004.
//!
//! FPC scans the block as 32-bit words and encodes each with a 3-bit prefix
//! selecting one of eight patterns:
//!
//! | prefix | pattern                                   | payload bits |
//! |--------|-------------------------------------------|--------------|
//! | 000    | run of 1–8 all-zero words                 | 3 (run−1)    |
//! | 001    | 4-bit sign-extended                       | 4            |
//! | 010    | 8-bit sign-extended                       | 8            |
//! | 011    | 16-bit sign-extended                      | 16           |
//! | 100    | 16-bit padded with zeros (low half zero)  | 16           |
//! | 101    | two half-words, each a sign-extended byte | 16           |
//! | 110    | word of four repeated bytes               | 8            |
//! | 111    | uncompressed word                         | 32           |

use crate::bits::BitReader;
use crate::{from_symbols, to_symbols, Codec, CompressedBuf, DecodeError, Entry};

/// The Frequent Pattern Compression codec.
///
/// # Example
///
/// ```
/// use bpc::{FrequentPattern, BlockCompressor};
///
/// let codec = FrequentPattern::new();
/// let entry = [0u8; 128];
/// let compressed = codec.compress(&entry);
/// // 32 zero words collapse into 4 zero-run codes of 8 words each.
/// assert_eq!(compressed.bits(), 4 * 6);
/// assert_eq!(codec.decompress(&compressed).unwrap(), entry);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrequentPattern;

fn fits_signed(v: u32, bits: u32) -> bool {
    let s = v as i32;
    let bound = 1i64 << (bits - 1);
    ((s as i64) >= -bound) && ((s as i64) < bound)
}

impl FrequentPattern {
    /// Algorithm name used in [`crate::Compressed::algorithm`].
    pub const NAME: &'static str = "fpc";

    /// Creates the codec.
    pub fn new() -> Self {
        Self
    }
}

impl Codec for FrequentPattern {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn compress_into(&self, entry: &Entry, out: &mut CompressedBuf) {
        let words = to_symbols(entry);
        let mut w = out.begin();
        let mut i = 0;
        while i < words.len() {
            let word = words[i];
            if word == 0 {
                let mut run = 1;
                while i + run < words.len() && words[i + run] == 0 && run < 8 {
                    run += 1;
                }
                w.push_bits(0b000, 3);
                w.push_bits(run as u64 - 1, 3);
                i += run;
                continue;
            }
            if fits_signed(word, 4) {
                w.push_bits(0b001, 3);
                w.push_bits((word & 0xF) as u64, 4);
            } else if fits_signed(word, 8) {
                w.push_bits(0b010, 3);
                w.push_bits((word & 0xFF) as u64, 8);
            } else if fits_signed(word, 16) {
                w.push_bits(0b011, 3);
                w.push_bits((word & 0xFFFF) as u64, 16);
            } else if word & 0xFFFF == 0 {
                w.push_bits(0b100, 3);
                w.push_bits((word >> 16) as u64, 16);
            } else if fits_signed(word & 0xFFFF, 8) && fits_signed(word >> 16, 8) {
                w.push_bits(0b101, 3);
                w.push_bits(((word >> 16) & 0xFF) as u64, 8);
                w.push_bits((word & 0xFF) as u64, 8);
            } else if word
                .to_le_bytes()
                .iter()
                .all(|&b| b == word.to_le_bytes()[0])
            {
                w.push_bits(0b110, 3);
                w.push_bits((word & 0xFF) as u64, 8);
            } else {
                w.push_bits(0b111, 3);
                w.push_bits(word as u64, 32);
            }
            i += 1;
        }
        out.finish(Self::NAME, w);
    }

    fn decompress_into(
        &self,
        data: &[u8],
        bits: usize,
        out: &mut Entry,
    ) -> Result<(), DecodeError> {
        let mut r = BitReader::new(data, bits);
        let mut words = [0u32; 32];
        let mut i = 0;
        while i < words.len() {
            let prefix = r.read_bits(3)?;
            match prefix {
                0b000 => {
                    let run = r.read_bits(3)? as usize + 1;
                    if i + run > words.len() {
                        return Err(DecodeError::InvalidCode {
                            bit_offset: r.bit_offset(),
                        });
                    }
                    i += run;
                    continue;
                }
                0b001 => {
                    let v = r.read_bits(4)? as u32;
                    words[i] = ((v << 28) as i32 >> 28) as u32;
                }
                0b010 => {
                    let v = r.read_bits(8)? as u32;
                    words[i] = ((v << 24) as i32 >> 24) as u32;
                }
                0b011 => {
                    let v = r.read_bits(16)? as u32;
                    words[i] = ((v << 16) as i32 >> 16) as u32;
                }
                0b100 => {
                    let v = r.read_bits(16)? as u32;
                    words[i] = v << 16;
                }
                0b101 => {
                    let hi = r.read_bits(8)? as u32;
                    let lo = r.read_bits(8)? as u32;
                    let hi = ((hi << 24) as i32 >> 24) as u32 & 0xFFFF;
                    let lo = ((lo << 24) as i32 >> 24) as u32 & 0xFFFF;
                    words[i] = (hi << 16) | lo;
                }
                0b110 => {
                    let b = r.read_bits(8)? as u32;
                    words[i] = b * 0x0101_0101;
                }
                _ => {
                    words[i] = r.read_bits(32)? as u32;
                }
            }
            i += 1;
        }
        *out = from_symbols(&words);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWriter;
    use crate::{BlockCompressor, Compressed};

    fn entry_from_words(f: impl Fn(usize) -> u32) -> Entry {
        let mut words = [0u32; 32];
        for (i, w) in words.iter_mut().enumerate() {
            *w = f(i);
        }
        from_symbols(&words)
    }

    fn round_trip(entry: &Entry) -> usize {
        let codec = FrequentPattern::new();
        let c = codec.compress(entry);
        assert_eq!(&codec.decompress(&c).unwrap(), entry);
        c.bits()
    }

    #[test]
    fn zeros() {
        assert_eq!(round_trip(&[0u8; 128]), 24);
    }

    #[test]
    fn small_positive_and_negative_ints() {
        let entry = entry_from_words(|i| if i % 2 == 0 { 3 } else { (-4i32) as u32 });
        assert_eq!(round_trip(&entry), 32 * 7); // all 4-bit sign-extended
    }

    #[test]
    fn eight_bit_values() {
        let entry = entry_from_words(|i| 90 + i as u32); // 90..121 all fit signed 8 bits
        assert_eq!(round_trip(&entry), 32 * 11);
    }

    #[test]
    fn sixteen_bit_values() {
        let entry = entry_from_words(|i| 30_000 + i as u32);
        assert_eq!(round_trip(&entry), 32 * 19);
    }

    #[test]
    fn high_half_words() {
        let entry = entry_from_words(|i| (0x4000 + i as u32) << 16);
        assert_eq!(round_trip(&entry), 32 * 19);
    }

    #[test]
    fn halfword_pairs() {
        // i == 0 yields 0x30 (an 8-bit immediate, 11 bits); the remaining 31
        // words are genuine half-word pairs (19 bits each).
        let entry = entry_from_words(|i| ((i as u32 & 0x7F) << 16) | 0x30);
        assert_eq!(round_trip(&entry), 11 + 31 * 19);
    }

    #[test]
    fn repeated_bytes() {
        let entry = entry_from_words(|_| 0xABAB_ABAB);
        assert_eq!(round_trip(&entry), 32 * 11);
    }

    #[test]
    fn incompressible_words() {
        let entry = entry_from_words(|i| 0x1234_5601 + (i as u32) * 0x0101_0733);
        let bits = round_trip(&entry);
        assert!(
            bits >= 32 * 32,
            "random-ish words should mostly be raw: {bits}"
        );
    }

    #[test]
    fn mixed_patterns_round_trip() {
        let entry = entry_from_words(|i| match i % 5 {
            0 => 0,
            1 => 7,
            2 => 0xFFFF_FF00,
            3 => 0x7F31_0000,
            _ => 0xDEAD_BEEF,
        });
        round_trip(&entry);
    }

    #[test]
    fn zero_run_overflow_rejected() {
        // Five zero-run codes of 7 words each claim 35 > 32 words; the fifth
        // code overruns the block.
        let mut w = BitWriter::new();
        for _ in 0..5 {
            w.push_bits(0b000, 3);
            w.push_bits(6, 3);
        }
        let (data, bits) = w.into_parts();
        let c = Compressed::new(FrequentPattern::NAME, bits, data);
        assert!(matches!(
            FrequentPattern::new().decompress(&c),
            Err(DecodeError::InvalidCode { .. })
        ));
    }
}
