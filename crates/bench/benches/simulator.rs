//! Criterion micro-benchmarks for the performance simulator: simulated
//! accesses per wall-clock second in fast and detailed fidelity (the
//! Figure 10 speed claim, as a tracked regression metric).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::{
    Engine, EntryPlacement, ExecConfig, Fidelity, GpuConfig, MemRequest, MemoryMode, UniformLayout,
};

fn trace(entries: u64) -> impl Iterator<Item = MemRequest> {
    (0..).map(move |i| MemRequest {
        entry: (i * 17) % entries,
        sector_mask: 0b1111,
        write: i % 4 == 0,
        to_host: false,
    })
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    let accesses = 20_000u64;
    group.throughput(Throughput::Elements(accesses));
    let entries = 512 * 1024;
    let layout = UniformLayout {
        entries,
        placement: EntryPlacement {
            device_sectors: 2,
            buddy_sectors: 1,
        },
    };
    for (fidelity, name) in [(Fidelity::Fast, "fast"), (Fidelity::Detailed, "detailed")] {
        group.bench_with_input(BenchmarkId::new("buddy", name), &fidelity, |b, &f| {
            b.iter(|| {
                let cfg = GpuConfig::p100();
                let exec = ExecConfig {
                    lanes: 1792,
                    compute_cycles: 30.0,
                    accesses,
                };
                Engine::new(cfg, exec, MemoryMode::Buddy, f, &layout).run(&mut trace(entries))
            })
        });
    }
    group.bench_function("uncompressed/fast", |b| {
        b.iter(|| {
            let cfg = GpuConfig::p100();
            let exec = ExecConfig {
                lanes: 1792,
                compute_cycles: 30.0,
                accesses,
            };
            Engine::new(cfg, exec, MemoryMode::Uncompressed, Fidelity::Fast, &layout)
                .run(&mut trace(entries))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine
}
criterion_main!(benches);
