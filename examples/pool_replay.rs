//! Multi-tenant replay: four concurrent clients drive a sharded
//! [`BuddyPool`] with a workload's access trace and the pool reports
//! merged traffic, per-shard occupancy and throughput.
//!
//! Run with `cargo run --example pool_replay`.

use buddy_compression::buddy_core::{DeviceConfig, TargetRatio};
use buddy_compression::buddy_pool::loadgen::{replay, LoadgenConfig};
use buddy_compression::buddy_pool::{BuddyPool, CodecKind, PoolConfig};
use buddy_compression::workloads::by_name;

fn main() {
    let bench = by_name("356.sp").expect("356.sp is in the suite");
    let pool = BuddyPool::new(PoolConfig {
        shards: 4,
        shard_config: DeviceConfig {
            device_capacity: 4 << 20,
            carve_out_factor: 3,
        },
        codec: CodecKind::Bpc,
    });

    let cfg = LoadgenConfig {
        clients: 4,
        batches_per_client: 128,
        batch_entries: 32,
        entries_per_client: 1024,
        target: TargetRatio::R2,
        seed: 0xB0DD7,
        // Between-batch adaptive re-targeting sweep (0 disables); see the
        // adaptive_retarget example for the single-device walkthrough.
        retarget_every: 32,
        // Alloc/free churn every 64 batches: each client turns its whole
        // footprint over mid-replay (see the churn_lifecycle example).
        churn_every: 64,
        // Take the read/write mix from the trace and serve reads on the
        // default lock-free snapshot path.
        read_pct: None,
        locked_reads: false,
    };
    let report = replay(&pool, bench.access, &cfg).expect("pool hosts all clients");

    println!(
        "replayed {} entries in {} batches from {} clients over {} shards",
        report.entries_processed, report.batches, report.clients, report.shards
    );
    println!(
        "throughput {:.0} entries/s ({:.3} logical GB/s); batch latency p50 {:.1} us, p99 {:.1} us",
        report.entries_per_sec,
        report.logical_gb_per_sec,
        report.latency.p50_us,
        report.latency.p99_us
    );
    println!(
        "merged traffic: {} accesses, buddy fraction {:.2}%",
        report.stats.total_accesses(),
        100.0 * report.stats.buddy_access_fraction()
    );
    for shard in pool.occupancy() {
        println!(
            "  shard {}: {} allocations, {} B device used, ratio {:.2}",
            shard.shard, shard.allocations, shard.device_used, shard.effective_ratio
        );
    }
}
