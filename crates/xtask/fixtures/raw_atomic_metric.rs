//! Known-bad corpus for the `raw-atomic-metric` rule: owning a raw atomic
//! (field declaration or construction) outside the `buddy_obs` metric
//! primitives must be flagged; imports, references and test-module
//! bookkeeping must not.
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, AtomicUsize}; // expect(sync-facade)

struct AdHocMetrics {
    hits: AtomicU64, // expect(raw-atomic-metric)
    misses: AtomicU32, // expect(raw-atomic-metric)
}

impl AdHocMetrics {
    fn new() -> Self {
        Self {
            hits: AtomicU64::new(0), // expect(raw-atomic-metric)
            misses: AtomicU32::new(0), // expect(raw-atomic-metric)
        }
    }

    fn observe(counter: &AtomicU64) -> u64 {
        counter.load(std::sync::atomic::Ordering::Acquire) // expect(sync-facade)
    }
}

struct RequestRouter {
    // lint-allow(raw-atomic-metric): round-robin routing cursor, not a metric
    next_backend: AtomicUsize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_bookkeeping_atomics_are_fine() {
        static CALLS: AtomicU64 = AtomicU64::new(0);
        let _ = CALLS.load(std::sync::atomic::Ordering::Acquire);
    }
}
