//! Allocation-churn traces: deterministic alloc/free lifetime streams.
//!
//! The paper's operating regime is a long-running process whose working
//! set turns over constantly — DL training allocates activations on the
//! forward pass and releases them during the backward pass *every
//! iteration* (§4.2; the Compressing-DMA-Engine line of work is built
//! entirely around that activation-lifetime churn), and HPC solvers cycle
//! scratch buffers per timestep. This module synthesizes that lifetime
//! structure: a [`ChurnTrace`] is an infinite, seeded, deterministic
//! stream of [`ChurnOp`]s — allocate a keyed region of a drawn size, or
//! free a previously allocated key — with the lifetime *distribution*
//! configurable per workload style.
//!
//! The consumer owns the mapping from keys to device handles (and the
//! choice of target ratios); the trace only fixes *when* regions appear
//! and disappear and *how large* they are, which is what drives allocator
//! fragmentation and steady-state occupancy.

use crate::entry_gen::{mix, unit_from_hash};

/// Lifetime structure of the churned allocations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lifetime {
    /// Lifetimes drawn uniformly from `[min_ops, max_ops]` operations —
    /// mixed-tenancy churn where short- and long-lived regions interleave
    /// (the worst case for fragmentation).
    Uniform {
        /// Shortest lifetime, in emitted operations.
        min_ops: u64,
        /// Longest lifetime, in emitted operations.
        max_ops: u64,
    },
    /// Memoryless (exponential) lifetimes with the given mean — steady
    /// background churn with a long tail of survivors.
    Exponential {
        /// Mean lifetime, in emitted operations.
        mean_ops: f64,
    },
    /// DL-iteration activation turnover: each iteration allocates one
    /// activation per layer in forward order, then frees them all in
    /// reverse (backward-pass) order — last-allocated, first-freed, the
    /// pattern of Figure 13's training loop. Per-layer sizes are stable
    /// across iterations, like real activation tensors.
    Iteration {
        /// Layers per training iteration.
        layers: usize,
    },
}

/// Configuration of one churn trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Steady-state number of live allocations the trace maintains (for
    /// [`Lifetime::Iteration`] the layer count takes this role instead).
    pub live_target: usize,
    /// Smallest allocation size, in 128 B entries.
    pub min_entries: u64,
    /// Largest allocation size, in 128 B entries.
    pub max_entries: u64,
    /// Lifetime distribution.
    pub lifetime: Lifetime,
    /// Master seed; the whole stream derives from it.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            live_target: 64,
            min_entries: 16,
            max_entries: 512,
            lifetime: Lifetime::Uniform {
                min_ops: 16,
                max_ops: 256,
            },
            seed: 0xC402,
        }
    }
}

/// One operation of a churn trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// Allocate a region of `entries` 128 B entries under `key`.
    Alloc {
        /// Trace-unique key identifying this region until it is freed.
        key: u64,
        /// Region size in 128 B entries.
        entries: u64,
    },
    /// Free the region previously allocated under `key`.
    Free {
        /// Key of a currently live region.
        key: u64,
    },
}

/// Deterministic, infinite alloc/free stream implementing [`ChurnConfig`].
///
/// Warm-up allocates until `live_target` regions are live; from then on
/// the stream frees the live region whose drawn lifetime expires first and
/// replaces it, holding the live count at steady state while the lifetime
/// distribution shapes the *order* holes open up in — which is exactly
/// what stresses a coalescing allocator.
#[derive(Debug, Clone)]
pub struct ChurnTrace {
    cfg: ChurnConfig,
    /// Live regions as `(death_time, key)`.
    live: Vec<(u64, u64)>,
    next_key: u64,
    clock: u64,
    /// `Iteration` mode: the backward-pass free stack.
    backward: Vec<u64>,
    /// `Iteration` mode: whether the current ops drain the backward stack.
    draining: bool,
}

impl ChurnTrace {
    /// Creates the trace for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate: a zero live target (or
    /// zero layers), `min_entries` zero or above `max_entries`.
    pub fn new(cfg: ChurnConfig) -> Self {
        let live_target = match cfg.lifetime {
            Lifetime::Iteration { layers } => layers,
            _ => cfg.live_target,
        };
        assert!(live_target > 0, "churn needs a positive live target");
        assert!(
            cfg.min_entries > 0 && cfg.min_entries <= cfg.max_entries,
            "entry range must be 1..=max ({}..={})",
            cfg.min_entries,
            cfg.max_entries
        );
        Self {
            cfg,
            live: Vec::new(),
            next_key: 0,
            clock: 0,
            backward: Vec::new(),
            draining: false,
        }
    }

    /// Number of regions live after the operations emitted so far.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The configuration driving this trace.
    pub fn config(&self) -> &ChurnConfig {
        &self.cfg
    }

    /// Allocation size for `key` (stable per key; in `Iteration` mode,
    /// stable per *layer* so sizes repeat every iteration).
    fn entries_for(&self, key: u64) -> u64 {
        let tag = match self.cfg.lifetime {
            Lifetime::Iteration { layers } => key % layers as u64,
            _ => key,
        };
        let span = self.cfg.max_entries - self.cfg.min_entries + 1;
        self.cfg.min_entries + mix(&[self.cfg.seed, 0xA110C, tag]) % span
    }

    /// Lifetime draw for `key`, in emitted operations from now.
    fn lifetime_for(&self, key: u64) -> u64 {
        let u = unit_from_hash(mix(&[self.cfg.seed, 0x11FE, key]));
        match self.cfg.lifetime {
            Lifetime::Uniform { min_ops, max_ops } => {
                let span = max_ops.saturating_sub(min_ops) + 1;
                min_ops + (u * span as f64) as u64
            }
            Lifetime::Exponential { mean_ops } => {
                // Inverse-CDF sample, clamped away from u = 1.
                let draw = -mean_ops * (1.0 - u.min(0.999_999)).ln();
                (draw.ceil() as u64).max(1)
            }
            Lifetime::Iteration { .. } => unreachable!("iteration mode frees by stack order"),
        }
    }

    fn alloc_op(&mut self, death: u64) -> ChurnOp {
        let key = self.next_key;
        self.next_key += 1;
        self.live.push((death, key));
        ChurnOp::Alloc {
            key,
            entries: self.entries_for(key),
        }
    }
}

impl Iterator for ChurnTrace {
    type Item = ChurnOp;

    fn next(&mut self) -> Option<ChurnOp> {
        self.clock += 1;
        let op = match self.cfg.lifetime {
            Lifetime::Iteration { layers } => {
                if self.draining {
                    // Backward pass: free the stacked activations in
                    // reverse (last-allocated, first-freed).
                    let key = self.backward.pop().expect("draining stack is non-empty"); // lint-allow(no-unwrap): draining only starts with a non-empty backward stack
                    if self.backward.is_empty() {
                        self.draining = false;
                    }
                    self.live.retain(|&(_, k)| k != key);
                    ChurnOp::Free { key }
                } else {
                    // Forward pass: allocate the next layer's activation;
                    // once every layer is live, the backward pass starts.
                    let op = self.alloc_op(u64::MAX);
                    if let ChurnOp::Alloc { key, .. } = op {
                        self.backward.push(key);
                    }
                    if self.backward.len() == layers {
                        self.draining = true;
                    }
                    op
                }
            }
            _ => {
                if self.live.len() < self.cfg.live_target {
                    let key = self.next_key;
                    let death = self.clock + self.lifetime_for(key);
                    self.alloc_op(death)
                } else {
                    // Steady state: retire the earliest-expiring region.
                    let idx = self
                        .live
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(death, key))| (death, key))
                        .map(|(i, _)| i)
                        .expect("live target is positive"); // lint-allow(no-unwrap): live_target > 0 guarantees a retirement candidate
                    let (_, key) = self.live.swap_remove(idx);
                    ChurnOp::Free { key }
                }
            }
        };
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn uniform_cfg() -> ChurnConfig {
        ChurnConfig {
            live_target: 8,
            min_entries: 4,
            max_entries: 64,
            lifetime: Lifetime::Uniform {
                min_ops: 4,
                max_ops: 32,
            },
            seed: 7,
        }
    }

    /// Replays a trace, checking the alloc/free protocol (no double
    /// allocs, frees only of live keys) and returning the live-count
    /// history.
    fn replay(cfg: ChurnConfig, ops: usize) -> Vec<usize> {
        let mut live: HashSet<u64> = HashSet::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut history = Vec::with_capacity(ops);
        for op in ChurnTrace::new(cfg).take(ops) {
            match op {
                ChurnOp::Alloc { key, entries } => {
                    assert!(seen.insert(key), "key {key} allocated twice");
                    assert!(live.insert(key));
                    assert!(
                        (cfg.min_entries..=cfg.max_entries).contains(&entries),
                        "entries {entries} out of range"
                    );
                }
                ChurnOp::Free { key } => {
                    assert!(live.remove(&key), "free of dead key {key}");
                }
            }
            history.push(live.len());
        }
        history
    }

    #[test]
    fn uniform_trace_holds_the_live_target() {
        let cfg = uniform_cfg();
        let history = replay(cfg, 2000);
        // After warm-up the live count stays pinned at target or one
        // below (free and replace alternate).
        for (i, &n) in history.iter().enumerate().skip(64) {
            assert!(
                n == cfg.live_target || n == cfg.live_target - 1,
                "op {i}: live {n} escaped steady state"
            );
        }
    }

    #[test]
    fn exponential_trace_is_valid_and_steady() {
        let cfg = ChurnConfig {
            lifetime: Lifetime::Exponential { mean_ops: 24.0 },
            ..uniform_cfg()
        };
        let history = replay(cfg, 2000);
        assert_eq!(history[1999], cfg.live_target);
    }

    #[test]
    fn traces_are_deterministic_and_seed_sensitive() {
        let a: Vec<ChurnOp> = ChurnTrace::new(uniform_cfg()).take(500).collect();
        let b: Vec<ChurnOp> = ChurnTrace::new(uniform_cfg()).take(500).collect();
        assert_eq!(a, b, "same seed must replay identically");
        let other = ChurnConfig {
            seed: 8,
            ..uniform_cfg()
        };
        let c: Vec<ChurnOp> = ChurnTrace::new(other).take(500).collect();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn iteration_mode_frees_in_reverse_layer_order() {
        let cfg = ChurnConfig {
            lifetime: Lifetime::Iteration { layers: 5 },
            ..uniform_cfg()
        };
        let ops: Vec<ChurnOp> = ChurnTrace::new(cfg).take(30).collect();
        // Three full iterations of 5 allocs + 5 frees.
        for iter in 0..3 {
            let base = iter * 10;
            let keys: Vec<u64> = (0..5).map(|l| (iter * 5 + l) as u64).collect();
            for l in 0..5 {
                assert!(
                    matches!(ops[base + l], ChurnOp::Alloc { key, .. } if key == keys[l]),
                    "iteration {iter}, forward layer {l}: {:?}",
                    ops[base + l]
                );
            }
            for (i, &key) in keys.iter().rev().enumerate() {
                assert_eq!(
                    ops[base + 5 + i],
                    ChurnOp::Free { key },
                    "iteration {iter}: backward pass must free LIFO"
                );
            }
        }
        // Per-layer sizes repeat across iterations (stable activations).
        let size_of = |op: &ChurnOp| match *op {
            ChurnOp::Alloc { entries, .. } => entries,
            _ => unreachable!(),
        };
        for l in 0..5 {
            assert_eq!(size_of(&ops[l]), size_of(&ops[10 + l]), "layer {l} size");
        }
    }

    #[test]
    fn live_count_tracks_the_stream() {
        let mut trace = ChurnTrace::new(uniform_cfg());
        assert_eq!(trace.live_count(), 0);
        for _ in 0..100 {
            trace.next();
        }
        assert!(trace.live_count() <= trace.config().live_target);
        assert!(trace.live_count() >= trace.config().live_target - 1);
    }

    #[test]
    #[should_panic(expected = "entry range")]
    fn degenerate_entry_range_panics() {
        ChurnTrace::new(ChurnConfig {
            min_entries: 10,
            max_entries: 5,
            ..uniform_cfg()
        });
    }

    #[test]
    #[should_panic(expected = "positive live target")]
    fn zero_layers_panics() {
        ChurnTrace::new(ChurnConfig {
            lifetime: Lifetime::Iteration { layers: 0 },
            ..uniform_cfg()
        });
    }
}
