//! Hardware memory-compression algorithms for 128-byte GPU memory-entries.
//!
//! This crate implements the compression substrate of the *Buddy Compression*
//! reproduction (Choukse et al., ISCA 2020):
//!
//! * [`BitPlane`] — Bit-Plane Compression (BPC) after Kim, Sullivan, Choukse
//!   and Erez (ISCA 2016). This is the algorithm the paper selects for Buddy
//!   Compression after "comparing several algorithms" (§2.4).
//! * [`BaseDeltaImmediate`] — BDI after Pekhimenko et al. (PACT 2012), one of
//!   the compared baselines.
//! * [`FrequentPattern`] — FPC after Alameldeen and Wood (UW-Madison TR 1500),
//!   another compared baseline.
//! * [`ZeroRle`] — the trivial all-zero detector, a lower bound used for
//!   ablation.
//!
//! All algorithms operate on one 128 B *memory-entry* — the compression
//! granularity the paper chooses for GPUs (§2.4) — and round-trip losslessly.
//! Compressed sizes are quantized by [`SizeClass`] into the eight capacity
//! classes the paper's Figure 3 assumes (0, 8, 16, 32, 64, 80, 96, 128 bytes)
//! and into 32 B *sectors*, the GPU DRAM access granularity that Buddy
//! Compression stripes entries by (Figure 4).
//!
//! Every algorithm is exposed through two interfaces: the object-safe,
//! zero-allocation [`Codec`] API ([`Codec::compress_into`] encoding into a
//! reusable [`CompressedBuf`], with the [`CodecKind`]/[`codec_by_name`]
//! registry for runtime selection), and the allocating [`BlockCompressor`]
//! compatibility shim layered on top of it.
//!
//! # Example
//!
//! ```
//! use bpc::{BitPlane, BlockCompressor, SizeClass, ENTRY_BYTES};
//!
//! // A smooth ramp of 32-bit integers compresses extremely well under BPC.
//! let mut entry = [0u8; ENTRY_BYTES];
//! for (i, w) in entry.chunks_exact_mut(4).enumerate() {
//!     w.copy_from_slice(&(1000u32 + 3 * i as u32).to_le_bytes());
//! }
//! let codec = BitPlane::new();
//! let compressed = codec.compress(&entry);
//! assert!(compressed.bits() < 8 * ENTRY_BYTES);
//! assert_eq!(codec.decompress(&compressed).unwrap(), entry);
//!
//! let class = SizeClass::for_bits(compressed.bits());
//! assert!(class.bytes() <= 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bdi;
pub mod bitplane;
pub mod bits;
pub mod codec;
pub mod fpc;
pub mod size_class;
pub mod zero;

pub use bdi::BaseDeltaImmediate;
pub use bitplane::BitPlane;
pub use codec::{codec_by_name, Codec, CodecKind, CompressedBuf};
pub use fpc::FrequentPattern;
pub use size_class::{SizeClass, SizeHistogram};
pub use zero::ZeroRle;

use std::error::Error;
use std::fmt;

/// Size in bytes of one memory-entry, the compression granularity.
///
/// The paper fixes this to 128 B following the micro-benchmark study of Jia
/// et al. and the GPU cache-line size (§2.4).
pub const ENTRY_BYTES: usize = 128;

/// Size in bytes of one sector, the GPU DRAM access granularity.
///
/// 32 B matches GDDR5/GDDR5X/GDDR6/HBM2 access granularity (§3.2).
pub const SECTOR_BYTES: usize = 32;

/// Number of sectors per memory-entry (4).
pub const SECTORS_PER_ENTRY: usize = ENTRY_BYTES / SECTOR_BYTES;

/// One uncompressed 128-byte memory-entry.
pub type Entry = [u8; ENTRY_BYTES];

/// The result of compressing one [`Entry`].
///
/// Holds the encoded bitstream and its exact length in bits. The bitstream is
/// only meaningful to the algorithm that produced it; capacity accounting via
/// [`SizeClass`] is algorithm-independent.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Compressed {
    algorithm: &'static str,
    bits: usize,
    data: Vec<u8>,
}

impl Compressed {
    /// Creates a compressed block from raw encoder output.
    ///
    /// # Panics
    ///
    /// Panics if `data` holds fewer than `bits` bits. A block that declares
    /// more payload than it carries would make every downstream consumer
    /// unsound — decoders would mistake the truncation for in-band data and
    /// capacity accounting would charge phantom bytes — so the invariant is
    /// enforced in release builds too, not just debug.
    pub fn new(algorithm: &'static str, bits: usize, data: Vec<u8>) -> Self {
        assert!(
            data.len() * 8 >= bits,
            "bitstream shorter than declared: {} bytes cannot hold {bits} bits",
            data.len()
        );
        Self {
            algorithm,
            bits,
            data,
        }
    }

    /// Name of the algorithm that produced this block.
    pub fn algorithm(&self) -> &'static str {
        self.algorithm
    }

    /// Exact compressed size in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Compressed size rounded up to whole bytes.
    pub fn bytes(&self) -> usize {
        self.bits.div_ceil(8)
    }

    /// The encoded bitstream (MSB-first within each byte).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The capacity size class this block falls into.
    pub fn size_class(&self) -> SizeClass {
        SizeClass::for_bits(self.bits)
    }

    /// Number of 32 B sectors needed to store this block, between 1 and 4.
    ///
    /// Incompressible blocks (more than 96 B) are stored raw and occupy all
    /// four sectors.
    pub fn sectors(&self) -> u8 {
        self.size_class().sectors().max(1)
    }
}

impl fmt::Display for Compressed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} bits ({})",
            self.algorithm,
            self.bits,
            self.size_class()
        )
    }
}

/// Error returned when a compressed bitstream cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The bitstream ended before the decoder finished.
    Truncated,
    /// The bitstream contained an invalid code word.
    InvalidCode {
        /// Bit offset at which the invalid code was encountered.
        bit_offset: usize,
    },
    /// The block was compressed by a different algorithm.
    WrongAlgorithm {
        /// Algorithm that produced the block.
        found: &'static str,
        /// Algorithm attempting the decode.
        expected: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "bitstream ended before decoding finished"),
            DecodeError::InvalidCode { bit_offset } => {
                write!(f, "invalid code word at bit offset {bit_offset}")
            }
            DecodeError::WrongAlgorithm { found, expected } => {
                write!(f, "block was compressed with {found}, not {expected}")
            }
        }
    }
}

impl Error for DecodeError {}

/// A lossless compressor for 128-byte memory-entries (allocating API).
///
/// Implementations must satisfy `decompress(compress(e)) == e` for every
/// entry `e`; this invariant is property-tested for every algorithm in this
/// crate.
///
/// This trait is now a **compatibility shim** over the zero-allocation
/// [`Codec`] interface: every `Codec` gets a `BlockCompressor`
/// implementation via the blanket impl in [`codec`], so existing call sites
/// keep working while hot paths migrate to [`Codec::compress_into`]. Do not
/// implement `BlockCompressor` directly for new algorithms — implement
/// [`Codec`] instead.
pub trait BlockCompressor {
    /// Short stable name of the algorithm (used in reports and metadata).
    fn name(&self) -> &'static str;

    /// Compresses one memory-entry into a bitstream.
    fn compress(&self, entry: &Entry) -> Compressed;

    /// Decompresses a bitstream produced by [`compress`](Self::compress).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the block was produced by a different
    /// algorithm or the bitstream is malformed.
    fn decompress(&self, compressed: &Compressed) -> Result<Entry, DecodeError>;

    /// Convenience: the exact compressed size of `entry` in bits.
    fn compressed_bits(&self, entry: &Entry) -> usize {
        self.compress(entry).bits()
    }

    /// Convenience: the capacity size class of `entry` under this algorithm.
    ///
    /// All-zero entries map to [`SizeClass::B0`]: the paper's capacity study
    /// (Figure 3) counts tracked-zero entries as occupying no data storage.
    fn size_class_of(&self, entry: &Entry) -> SizeClass {
        if entry.iter().all(|&b| b == 0) {
            SizeClass::B0
        } else {
            SizeClass::for_bits(self.compressed_bits(entry))
        }
    }
}

/// Interprets a 128-byte entry as 32 little-endian 32-bit symbols.
pub(crate) fn to_symbols(entry: &Entry) -> [u32; 32] {
    let mut symbols = [0u32; 32];
    for (symbol, chunk) in symbols.iter_mut().zip(entry.chunks_exact(4)) {
        *symbol = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk")); // lint-allow(no-unwrap): chunks_exact(4) yields exactly 4-byte slices
    }
    symbols
}

/// Reassembles 32 little-endian 32-bit symbols into a 128-byte entry.
pub(crate) fn from_symbols(symbols: &[u32; 32]) -> Entry {
    let mut entry = [0u8; ENTRY_BYTES];
    for (chunk, symbol) in entry.chunks_exact_mut(4).zip(symbols.iter()) {
        chunk.copy_from_slice(&symbol.to_le_bytes());
    }
    entry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_round_trip() {
        let mut entry = [0u8; ENTRY_BYTES];
        for (i, byte) in entry.iter_mut().enumerate() {
            *byte = (i * 7 + 3) as u8;
        }
        assert_eq!(from_symbols(&to_symbols(&entry)), entry);
    }

    #[test]
    fn compressed_accessors() {
        let c = Compressed::new("test", 12, vec![0xAB, 0xC0]);
        assert_eq!(c.algorithm(), "test");
        assert_eq!(c.bits(), 12);
        assert_eq!(c.bytes(), 2);
        assert_eq!(c.size_class(), SizeClass::B8);
        assert_eq!(c.sectors(), 1);
        assert_eq!(c.to_string(), "test: 12 bits (8B)");
    }

    #[test]
    #[should_panic(expected = "bitstream shorter than declared")]
    fn over_declared_bits_are_rejected() {
        // Two bytes can hold at most 16 bits; declaring 17 must panic in
        // release builds too (the invariant is a real assert, not debug).
        let _ = Compressed::new("test", 17, vec![0xAB, 0xC0]);
    }

    #[test]
    fn decode_error_display() {
        assert_eq!(
            DecodeError::Truncated.to_string(),
            "bitstream ended before decoding finished"
        );
        assert_eq!(
            DecodeError::InvalidCode { bit_offset: 5 }.to_string(),
            "invalid code word at bit offset 5"
        );
        assert_eq!(
            DecodeError::WrongAlgorithm {
                found: "a",
                expected: "b"
            }
            .to_string(),
            "block was compressed with a, not b"
        );
    }
}
