//! A first-fit free-list region allocator with neighbour coalescing.
//!
//! The device's three storage regions (device memory, the buddy carve-out
//! and the per-entry metadata array) all hand out contiguous runs that are
//! later returned by [`BuddyDevice::free`](crate::BuddyDevice::free). A
//! bump cursor cannot reclaim anything, so each region is managed by one of
//! these allocators instead: allocation is a first-fit scan of the sorted
//! free list, and freeing merges the returned run with adjacent free
//! neighbours immediately — after every live run is freed, the free list
//! collapses back to one capacity-sized region, which the churn suite pins
//! as the leak-freedom property.
//!
//! Offsets and lengths are plain `u64`s in whatever unit the caller uses
//! (bytes for the storage arrays, entries for metadata), so the same code
//! backs all three regions.

/// One contiguous free run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FreeRun {
    offset: u64,
    len: u64,
}

/// First-fit free-list allocator over a `[0, capacity)` range.
///
/// Invariants maintained by every operation: the free list is sorted by
/// offset, runs never overlap, and no two runs are adjacent (coalescing is
/// eager). `used() + free_bytes() == capacity()` always holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionAllocator {
    capacity: u64,
    free: Vec<FreeRun>,
    used: u64,
}

impl RegionAllocator {
    /// An allocator over `[0, capacity)`, initially fully free.
    pub fn new(capacity: u64) -> Self {
        let free = if capacity > 0 {
            vec![FreeRun {
                offset: 0,
                len: capacity,
            }]
        } else {
            Vec::new()
        };
        Self {
            capacity,
            free,
            used: 0,
        }
    }

    /// Total managed range.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Units currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Units currently free (across all runs).
    pub fn free_total(&self) -> u64 {
        self.capacity - self.used
    }

    /// Length of the largest contiguous free run — the biggest single
    /// allocation that can currently succeed.
    pub fn largest_free(&self) -> u64 {
        self.free.iter().map(|r| r.len).max().unwrap_or(0)
    }

    /// The free list as `(offset, len)` pairs, in offset order. Exposed for
    /// the shadow-state auditor, which revalidates the canonical-free-list
    /// invariants from the outside.
    #[cfg(feature = "audit")]
    pub fn free_runs(&self) -> Vec<(u64, u64)> {
        self.free.iter().map(|r| (r.offset, r.len)).collect()
    }

    /// External fragmentation in `[0, 1)`: the fraction of free space that
    /// is *not* reachable by one maximal allocation
    /// (`1 − largest_free / free_total`; `0` when nothing is free).
    pub fn fragmentation(&self) -> f64 {
        let free = self.free_total();
        if free == 0 {
            return 0.0;
        }
        1.0 - self.largest_free() as f64 / free as f64
    }

    /// Allocates a contiguous run of `len` units, first-fit. Returns its
    /// offset, or `None` if no free run is large enough. Zero-length
    /// requests always succeed at offset 0 without reserving anything.
    pub fn alloc(&mut self, len: u64) -> Option<u64> {
        if len == 0 {
            return Some(0);
        }
        let slot = self.free.iter().position(|r| r.len >= len)?;
        let run = &mut self.free[slot];
        let offset = run.offset;
        if run.len == len {
            self.free.remove(slot);
        } else {
            run.offset += len;
            run.len -= len;
        }
        self.used += len;
        Some(offset)
    }

    /// Carves the exact run `[offset, offset + len)` out of the free list
    /// (used to restore a just-freed reservation when a migration fails
    /// mid-way). Returns `false` — changing nothing — unless the entire
    /// range is currently free.
    pub fn reserve_at(&mut self, offset: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let Some(slot) = self
            .free
            .iter()
            .position(|r| r.offset <= offset && offset + len <= r.offset + r.len)
        else {
            return false;
        };
        let run = self.free[slot];
        let before = FreeRun {
            offset: run.offset,
            len: offset - run.offset,
        };
        let after = FreeRun {
            offset: offset + len,
            len: (run.offset + run.len) - (offset + len),
        };
        match (before.len > 0, after.len > 0) {
            (false, false) => {
                self.free.remove(slot);
            }
            (true, false) => self.free[slot] = before,
            (false, true) => self.free[slot] = after,
            (true, true) => {
                self.free[slot] = before;
                self.free.insert(slot + 1, after);
            }
        }
        self.used += len;
        true
    }

    /// Returns the run `[offset, offset + len)` to the free list, merging
    /// with adjacent free neighbours. Freeing a zero-length run is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if the run extends past capacity or overlaps a free run —
    /// both indicate a double free or a corrupted reservation, which must
    /// never be absorbed silently.
    pub fn free(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        assert!(
            offset
                .checked_add(len)
                .is_some_and(|end| end <= self.capacity),
            "free of [{offset}, +{len}) past capacity {}",
            self.capacity
        );
        // Insertion point: first free run at or after the returned range.
        let slot = self.free.partition_point(|r| r.offset < offset);
        if let Some(prev) = slot.checked_sub(1).map(|i| self.free[i]) {
            assert!(
                prev.offset + prev.len <= offset,
                "free of [{offset}, +{len}) overlaps free run [{}, +{})",
                prev.offset,
                prev.len
            );
        }
        if let Some(next) = self.free.get(slot) {
            assert!(
                offset + len <= next.offset,
                "free of [{offset}, +{len}) overlaps free run [{}, +{})",
                next.offset,
                next.len
            );
        }
        let merges_prev = slot
            .checked_sub(1)
            .is_some_and(|i| self.free[i].offset + self.free[i].len == offset);
        let merges_next = self
            .free
            .get(slot)
            .is_some_and(|next| offset + len == next.offset);
        match (merges_prev, merges_next) {
            (true, true) => {
                let next_len = self.free[slot].len;
                self.free[slot - 1].len += len + next_len;
                self.free.remove(slot);
            }
            (true, false) => self.free[slot - 1].len += len,
            (false, true) => {
                self.free[slot].offset = offset;
                self.free[slot].len += len;
            }
            (false, false) => self.free.insert(slot, FreeRun { offset, len }),
        }
        self.used -= len;
    }

    /// Extends the managed range to `new_capacity` (metadata growth). The
    /// added tail is free and coalesces with a trailing free run.
    pub fn grow(&mut self, new_capacity: u64) {
        assert!(
            new_capacity >= self.capacity,
            "grow cannot shrink ({} -> {new_capacity})",
            self.capacity
        );
        let added = new_capacity - self.capacity;
        if added == 0 {
            return;
        }
        let old_capacity = self.capacity;
        self.capacity = new_capacity;
        match self.free.last_mut() {
            Some(last) if last.offset + last.len == old_capacity => last.len += added,
            _ => self.free.push(FreeRun {
                offset: old_capacity,
                len: added,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks the structural invariants after every mutation in the tests.
    fn check(r: &RegionAllocator) {
        let mut free = 0;
        for w in r.free.windows(2) {
            assert!(
                w[0].offset + w[0].len < w[1].offset,
                "free list must stay sorted, disjoint and coalesced: {:?}",
                r.free
            );
        }
        for run in &r.free {
            assert!(run.len > 0, "no empty runs");
            assert!(run.offset + run.len <= r.capacity);
            free += run.len;
        }
        assert_eq!(free, r.free_total());
        assert_eq!(r.used() + r.free_total(), r.capacity());
    }

    #[test]
    fn first_fit_and_exhaustion() {
        let mut r = RegionAllocator::new(100);
        assert_eq!(r.alloc(40), Some(0));
        assert_eq!(r.alloc(60), Some(40));
        assert_eq!(r.alloc(1), None);
        assert_eq!(r.used(), 100);
        assert_eq!(r.largest_free(), 0);
        check(&r);
    }

    #[test]
    fn free_coalesces_with_both_neighbours() {
        let mut r = RegionAllocator::new(120);
        let a = r.alloc(40).unwrap();
        let b = r.alloc(40).unwrap();
        let c = r.alloc(40).unwrap();
        r.free(a, 40);
        r.free(c, 40);
        check(&r);
        assert_eq!(r.largest_free(), 40, "two separate 40-unit holes");
        assert!(r.fragmentation() > 0.0);
        // Freeing the middle run merges everything back into one region.
        r.free(b, 40);
        check(&r);
        assert_eq!(r.used(), 0);
        assert_eq!(r.largest_free(), 120);
        assert_eq!(r.fragmentation(), 0.0);
        assert_eq!(r.alloc(120), Some(0), "full-capacity alloc after churn");
    }

    #[test]
    fn holes_are_reused_first_fit() {
        let mut r = RegionAllocator::new(100);
        let a = r.alloc(30).unwrap();
        let _b = r.alloc(30).unwrap();
        r.free(a, 30);
        // 30-unit hole at 0, 40 free at the tail: a 20-unit request takes
        // the hole (first fit), not the tail.
        assert_eq!(r.alloc(20), Some(0));
        // A 35-unit request skips the remaining 10-unit hole.
        assert_eq!(r.alloc(35), Some(60));
        check(&r);
    }

    #[test]
    fn zero_length_requests_are_free() {
        let mut r = RegionAllocator::new(10);
        assert_eq!(r.alloc(0), Some(0));
        assert_eq!(r.used(), 0);
        r.free(0, 0);
        assert!(r.reserve_at(5, 0));
        check(&r);
    }

    #[test]
    fn reserve_at_restores_an_exact_range() {
        let mut r = RegionAllocator::new(100);
        let a = r.alloc(60).unwrap();
        r.free(a, 60);
        // Middle of the free run: splits it in two.
        assert!(r.reserve_at(20, 10));
        check(&r);
        assert_eq!(r.used(), 10);
        assert_eq!(r.alloc(20), Some(0), "head fragment is allocatable");
        // A range that is partially allocated cannot be reserved.
        assert!(!r.reserve_at(25, 10));
        assert!(!r.reserve_at(90, 20), "past capacity");
        check(&r);
    }

    #[test]
    fn grow_extends_and_coalesces_the_tail() {
        let mut r = RegionAllocator::new(50);
        let a = r.alloc(50).unwrap();
        r.grow(80);
        check(&r);
        assert_eq!(r.capacity(), 80);
        assert_eq!(r.alloc(30), Some(50));
        r.free(a, 50);
        r.grow(100);
        check(&r);
        // Tail extension merges with the trailing free run created above?
        // [0,50) free, [50,80) used, [80,100) free — two runs.
        assert_eq!(r.largest_free(), 50);
        r.free(50, 30);
        check(&r);
        assert_eq!(r.largest_free(), 100, "full coalesce across the grow seam");
    }

    #[test]
    #[should_panic(expected = "overlaps free run")]
    fn double_free_panics() {
        let mut r = RegionAllocator::new(10);
        let a = r.alloc(4).unwrap();
        r.free(a, 4);
        r.free(a, 4);
    }

    #[test]
    #[should_panic(expected = "past capacity")]
    fn out_of_range_free_panics() {
        let mut r = RegionAllocator::new(10);
        r.free(8, 4);
    }

    #[test]
    fn interleaved_churn_always_returns_to_empty() {
        // Deterministic pseudo-random alloc/free churn; every allocation is
        // eventually freed and the allocator must collapse to one run.
        let mut r = RegionAllocator::new(1 << 16);
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..4000 {
            if step() % 3 != 0 || live.is_empty() {
                let len = step() % 512 + 1;
                if let Some(off) = r.alloc(len) {
                    live.push((off, len));
                }
            } else {
                let idx = (step() % live.len() as u64) as usize;
                let (off, len) = live.swap_remove(idx);
                r.free(off, len);
            }
            check(&r);
        }
        for (off, len) in live.drain(..) {
            r.free(off, len);
        }
        check(&r);
        assert_eq!(r.used(), 0);
        assert_eq!(r.fragmentation(), 0.0);
        assert_eq!(r.alloc(1 << 16), Some(0));
    }
}
