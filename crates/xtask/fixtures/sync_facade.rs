//! Known-bad corpus for the `sync-facade` rule: naming `std::sync::atomic`
//! or the std mutex pair directly in library code must be flagged — those
//! primitives come from the `core::sync` facade so that `model-sync`
//! builds can swap in the checker shims. `Arc`, `mpsc` and `OnceLock`
//! stay allowed (the checker does not intercept them), as does anything
//! in a test module.
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering}; // expect(sync-facade)
use std::sync::{Arc, Mutex}; // expect(sync-facade)
use std::sync::MutexGuard; // expect(sync-facade)

fn qualified_paths_are_caught() {
    std::sync::atomic::fence(Ordering::SeqCst); // expect(sync-facade)
}

fn split_over_lines_is_still_one_path() {
    let _ = std::sync::
        atomic::AtomicU8::new(0); // expect(sync-facade)
}

struct AllowedNames {
    shared: Arc<u64>,
    cell: std::sync::OnceLock<u64>,
}

fn allowed_imports_do_not_fire(tx: std::sync::mpsc::Sender<u64>) {
    drop(tx);
}

fn waived(v: u64) -> u64 {
    // lint-allow(sync-facade): fixture demonstrates that a reasoned waiver suppresses
    let gate = std::sync::Mutex::new(v);
    gate.into_inner().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    // Test code may reach for std directly; the model checker never runs
    // the test harness itself.
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[test]
    fn bookkeeping() {
        let n = AtomicU64::new(0);
        let _ = n.load(Ordering::Acquire);
        let _ = Mutex::new(0u64);
    }
}
