//! Synthetic memory access traces with per-benchmark characteristics.
//!
//! The paper drives its performance simulator with traces of 1–9 billion
//! warp instructions collected from real runs (§4.1). We cannot collect
//! those, so each benchmark carries an [`AccessProfile`] describing the
//! memory behaviour the paper reports — coalescing (DL workloads stream
//! full cache blocks; 354.cg and 360.ilbdc issue random single-sector
//! accesses), locality, read/write mix, memory-level parallelism, and native
//! host traffic (FF_HPGMG) — and the generator emits a deterministic access
//! stream with those statistics.

use crate::entry_gen::{mix, splitmix64, unit_from_hash};

/// Statistical description of a benchmark's memory access behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessProfile {
    /// Fraction of accesses that touch all four 32 B sectors (fully
    /// coalesced warp accesses, e.g. DL matrix multiplication).
    pub coalesced_frac: f64,
    /// Fraction of accesses that touch two adjacent sectors; the remainder
    /// touch a single random sector.
    pub two_sector_frac: f64,
    /// Fraction of accesses that are writes.
    pub write_frac: f64,
    /// Fraction of accesses that follow a sequential stream; the remainder
    /// jump to pseudo-random entries.
    pub stream_frac: f64,
    /// Fraction of the footprint that forms the hot set.
    pub hot_footprint_frac: f64,
    /// Fraction of *random* accesses directed at the hot set.
    pub hot_access_frac: f64,
    /// Outstanding memory requests each warp sustains (memory-level
    /// parallelism; low values make the benchmark latency-sensitive, as the
    /// paper observes for FF_Lulesh).
    pub mlp: u8,
    /// Compute cycles a warp spends between dependent memory accesses.
    pub compute_per_access: u32,
    /// Fraction of accesses that natively target host memory over the
    /// interconnect (FF_HPGMG's synchronous host copies, §4.2).
    pub host_traffic_frac: f64,
    /// Fraction of the footprint (at the end of the address space) that is
    /// effectively cold — allocated but rarely touched, like result buffers
    /// that stay zero until the end of the run (352.ep) or pooled zero
    /// regions (VGG16). Cold entries receive ~2% of accesses.
    pub cold_tail_frac: f64,
}

impl AccessProfile {
    /// A streaming, fully coalesced profile (DL training kernels).
    pub fn streaming_dl() -> Self {
        Self {
            coalesced_frac: 0.90,
            two_sector_frac: 0.06,
            write_frac: 0.30,
            stream_frac: 0.90,
            hot_footprint_frac: 0.08,
            hot_access_frac: 0.55,
            mlp: 6,
            compute_per_access: 70,
            host_traffic_frac: 0.0,
            cold_tail_frac: 0.0,
        }
    }

    /// A random, single-sector profile (sparse linear algebra).
    pub fn random_sparse() -> Self {
        Self {
            coalesced_frac: 0.10,
            two_sector_frac: 0.10,
            write_frac: 0.10,
            stream_frac: 0.15,
            hot_footprint_frac: 0.05,
            hot_access_frac: 0.40,
            mlp: 4,
            compute_per_access: 60,
            host_traffic_frac: 0.0,
            cold_tail_frac: 0.0,
        }
    }

    /// A regular stencil/grid profile.
    pub fn stencil() -> Self {
        Self {
            coalesced_frac: 0.75,
            two_sector_frac: 0.15,
            write_frac: 0.35,
            stream_frac: 0.80,
            hot_footprint_frac: 0.10,
            hot_access_frac: 0.50,
            mlp: 6,
            compute_per_access: 35,
            host_traffic_frac: 0.0,
            cold_tail_frac: 0.0,
        }
    }
}

/// One memory access in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Global 128 B entry index within the benchmark footprint.
    pub entry: u64,
    /// Bitmask of the 32 B sectors touched (bits 0–3).
    pub sector_mask: u8,
    /// Whether this is a store.
    pub write: bool,
    /// Whether the access natively targets host memory (bypasses device
    /// DRAM and rides the interconnect).
    pub to_host: bool,
}

impl Access {
    /// Number of sectors touched.
    pub fn sector_count(&self) -> u32 {
        self.sector_mask.count_ones()
    }
}

/// Deterministic access-stream generator implementing [`AccessProfile`].
///
/// The generator models `streams` independent warp streams round-robin, each
/// with its own sequential cursor, matching how SM warp schedulers interleave
/// many strided streams in real kernels.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: AccessProfile,
    footprint_entries: u64,
    active_entries: u64,
    seed: u64,
    cursors: Vec<u64>,
    next_stream: usize,
    issued: u64,
}

impl TraceGenerator {
    /// Number of interleaved sequential streams.
    pub const STREAMS: usize = 32;

    /// Creates a generator over `footprint_entries` 128 B entries.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_entries` is zero.
    pub fn new(profile: AccessProfile, footprint_entries: u64, seed: u64) -> Self {
        assert!(footprint_entries > 0, "footprint must be non-empty");
        let active_entries =
            ((footprint_entries as f64 * (1.0 - profile.cold_tail_frac.clamp(0.0, 0.99))) as u64)
                .max(1);
        let cursors = (0..Self::STREAMS as u64)
            .map(|s| splitmix64(mix(&[seed, s])) % active_entries)
            .collect();
        Self {
            profile,
            footprint_entries,
            active_entries,
            seed,
            cursors,
            next_stream: 0,
            issued: 0,
        }
    }

    /// Creates the trace of one client in an `N`-client replay of this
    /// profile: the same access statistics over a per-client footprint,
    /// driven by a seed derived deterministically from `(seed, client)`.
    ///
    /// Concurrent load harnesses (the `buddy-pool` loadgen) give each client
    /// thread its own generator this way: runs are reproducible for a fixed
    /// master seed and client count, while distinct clients explore
    /// statistically independent streams.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_entries` is zero.
    pub fn per_client(
        profile: AccessProfile,
        footprint_entries: u64,
        seed: u64,
        client: u64,
    ) -> Self {
        // A fixed salt keeps client streams disjoint from the direct
        // `new(profile, n, seed)` stream even for client 0.
        Self::new(
            profile,
            footprint_entries,
            mix(&[seed, 0xC11E_7001, client]),
        )
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &AccessProfile {
        &self.profile
    }

    /// Total entries addressable by this trace.
    pub fn footprint_entries(&self) -> u64 {
        self.footprint_entries
    }

    fn draw(&mut self, tag: u64) -> f64 {
        let h = mix(&[self.seed, self.issued, tag]);
        unit_from_hash(h)
    }
}

impl Iterator for TraceGenerator {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let p = self.profile;
        self.issued += 1;

        // Address: a rare cold-tail touch, a sequential stream, or a
        // random jump within the active region.
        let cold_span = self.footprint_entries - self.active_entries;
        let entry = if cold_span > 0 && self.draw(9) < 0.02 {
            self.active_entries + mix(&[self.seed, self.issued, 10]) % cold_span
        } else if self.draw(1) < p.stream_frac {
            let stream = self.next_stream;
            self.next_stream = (self.next_stream + 1) % Self::STREAMS;
            let e = self.cursors[stream];
            self.cursors[stream] = (e + 1) % self.active_entries;
            e
        } else {
            let hot_entries = ((self.active_entries as f64 * p.hot_footprint_frac) as u64).max(1);
            let h = mix(&[self.seed, self.issued, 2]);
            if self.draw(3) < p.hot_access_frac {
                h % hot_entries
            } else {
                h % self.active_entries
            }
        };

        // Sector footprint of the access.
        let shape = self.draw(4);
        let sector_mask = if shape < p.coalesced_frac {
            0b1111
        } else if shape < p.coalesced_frac + p.two_sector_frac {
            let start = (mix(&[self.seed, self.issued, 5]) % 3) as u8;
            0b11 << start
        } else {
            1 << (mix(&[self.seed, self.issued, 6]) % 4) as u8
        };

        let write = self.draw(7) < p.write_frac;
        let to_host = self.draw(8) < p.host_traffic_frac;

        Some(Access {
            entry,
            sector_mask,
            write,
            to_host,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(profile: AccessProfile, n: usize) -> (f64, f64, f64, f64) {
        let gen = TraceGenerator::new(profile, 100_000, 42);
        let accesses: Vec<Access> = gen.take(n).collect();
        let coalesced =
            accesses.iter().filter(|a| a.sector_mask == 0b1111).count() as f64 / n as f64;
        let writes = accesses.iter().filter(|a| a.write).count() as f64 / n as f64;
        let host = accesses.iter().filter(|a| a.to_host).count() as f64 / n as f64;
        let single = accesses.iter().filter(|a| a.sector_count() == 1).count() as f64 / n as f64;
        (coalesced, writes, host, single)
    }

    #[test]
    fn streaming_profile_statistics() {
        let (coalesced, writes, host, _) = stats(AccessProfile::streaming_dl(), 20_000);
        assert!((coalesced - 0.90).abs() < 0.02, "coalesced {coalesced}");
        assert!((writes - 0.30).abs() < 0.02, "writes {writes}");
        assert_eq!(host, 0.0);
    }

    #[test]
    fn sparse_profile_is_mostly_single_sector() {
        let (coalesced, _, _, single) = stats(AccessProfile::random_sparse(), 20_000);
        assert!(coalesced < 0.13, "coalesced {coalesced}");
        assert!(single > 0.7, "single {single}");
    }

    #[test]
    fn trace_is_deterministic() {
        let p = AccessProfile::stencil();
        let a: Vec<Access> = TraceGenerator::new(p, 1000, 7).take(500).collect();
        let b: Vec<Access> = TraceGenerator::new(p, 1000, 7).take(500).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn per_client_traces_are_deterministic_and_distinct() {
        let p = AccessProfile::stencil();
        let a: Vec<Access> = TraceGenerator::per_client(p, 1000, 7, 0)
            .take(200)
            .collect();
        let b: Vec<Access> = TraceGenerator::per_client(p, 1000, 7, 0)
            .take(200)
            .collect();
        assert_eq!(a, b, "same (seed, client) must replay identically");
        let c: Vec<Access> = TraceGenerator::per_client(p, 1000, 7, 1)
            .take(200)
            .collect();
        assert_ne!(a, c, "distinct clients must explore distinct streams");
        // Client streams are also disjoint from the direct seed stream.
        let direct: Vec<Access> = TraceGenerator::new(p, 1000, 7).take(200).collect();
        assert_ne!(a, direct);
        for access in &a {
            assert!(access.entry < 1000);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = AccessProfile::stencil();
        let a: Vec<Access> = TraceGenerator::new(p, 1000, 7).take(100).collect();
        let b: Vec<Access> = TraceGenerator::new(p, 1000, 8).take(100).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let p = AccessProfile::random_sparse();
        for access in TraceGenerator::new(p, 123, 9).take(5000) {
            assert!(access.entry < 123);
        }
    }

    #[test]
    fn streams_advance_sequentially() {
        let p = AccessProfile {
            stream_frac: 1.0,
            ..AccessProfile::streaming_dl()
        };
        let accesses: Vec<Access> = TraceGenerator::new(p, 1_000_000, 3)
            .take(TraceGenerator::STREAMS * 2)
            .collect();
        // The same stream is revisited after STREAMS accesses, one entry on.
        for i in 0..TraceGenerator::STREAMS {
            assert_eq!(
                accesses[i + TraceGenerator::STREAMS].entry,
                accesses[i].entry + 1
            );
        }
    }

    #[test]
    fn host_traffic_fraction_respected() {
        let p = AccessProfile {
            host_traffic_frac: 0.08,
            ..AccessProfile::stencil()
        };
        let gen = TraceGenerator::new(p, 10_000, 11);
        let n = 20_000;
        let host = gen.take(n).filter(|a| a.to_host).count() as f64 / n as f64;
        assert!((host - 0.08).abs() < 0.01, "host {host}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_footprint_panics() {
        TraceGenerator::new(AccessProfile::stencil(), 0, 1);
    }

    #[test]
    fn sector_masks_are_valid() {
        let p = AccessProfile {
            coalesced_frac: 0.3,
            two_sector_frac: 0.4,
            ..AccessProfile::stencil()
        };
        for access in TraceGenerator::new(p, 1000, 13).take(5000) {
            assert!(access.sector_mask != 0 && access.sector_mask <= 0b1111);
            let count = access.sector_count();
            assert!(count == 1 || count == 2 || count == 4);
        }
    }
}
