//! Layer-level arithmetic for the analytical DL training model.
//!
//! The paper's Figure 13 uses "an analytical model very similar to
//! [Paleo / DeLTA]" (§4.4). We implement the same style of model: each
//! network is a sequence of layers with closed-form parameter counts,
//! activation sizes and FLOP counts; training memory footprint and
//! iteration time follow from those.

/// Bytes per element (fp32 training).
pub const BYTES_PER_ELEM: u64 = 4;

/// One layer as specified by the architecture.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerKind {
    /// 2-D convolution (square kernels, same-style padding).
    Conv {
        /// Output channels.
        out_ch: u64,
        /// Kernel size (k × k).
        kernel: u64,
        /// Stride.
        stride: u64,
        /// Padding.
        pad: u64,
    },
    /// Max/avg pooling.
    Pool {
        /// Kernel size.
        kernel: u64,
        /// Stride.
        stride: u64,
    },
    /// Fully connected layer.
    Fc {
        /// Output features.
        outputs: u64,
    },
    /// Multi-layer LSTM with input/output projection (BigLSTM-style).
    Lstm {
        /// Hidden state width.
        hidden: u64,
        /// Projection width.
        proj: u64,
        /// Unrolled time steps per sample.
        steps: u64,
    },
    /// Embedding + sampled-softmax pair (language models).
    Embedding {
        /// Vocabulary size.
        vocab: u64,
        /// Embedding dimension.
        dim: u64,
        /// Tokens per sample.
        steps: u64,
    },
    /// Per-step output softmax of a language model over a (sharded)
    /// vocabulary partition: logits are produced and kept for every step.
    SoftmaxLm {
        /// Vocabulary partition size on this GPU.
        vocab: u64,
        /// Projection width feeding the softmax.
        proj: u64,
        /// Unrolled time steps per sample.
        steps: u64,
    },
}

/// Resolved per-layer accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerInfo {
    /// Layer name.
    pub name: String,
    /// Trainable parameters.
    pub params: u64,
    /// Output activation elements per sample.
    pub act_elems: u64,
    /// Forward FLOPs per sample.
    pub flops: u64,
}

/// A network: an input shape plus a layer stack.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    /// Network name as used in the paper.
    pub name: &'static str,
    /// Resolved layers.
    pub layers: Vec<LayerInfo>,
    /// Batch-independent framework overhead in bytes (CUDA context,
    /// allocator slack). Calibrated so the footprint at the paper's
    /// reference batch size reproduces Table 1 (see `build_calibrated`).
    pub overhead_bytes: u64,
    /// Per-sample convolution workspace elements (largest im2col buffer,
    /// capped at the cuDNN workspace-limit style bound).
    pub workspace_elems: u64,
}

/// Cap on the per-sample im2col workspace, mirroring cuDNN's bounded
/// workspace algorithms (4 M elements = 16 MB per sample).
pub const WORKSPACE_CAP_ELEMS: u64 = 4 << 20;

/// Builds a [`Network`] by threading spatial dimensions through the stack.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: &'static str,
    channels: u64,
    hw: u64,
    flat: u64,
    max_im2col: u64,
    layers: Vec<LayerInfo>,
}

impl NetworkBuilder {
    /// Starts a network with `channels × hw × hw` image input.
    pub fn image_input(name: &'static str, channels: u64, hw: u64) -> Self {
        Self {
            name,
            channels,
            hw,
            flat: 0,
            max_im2col: 0,
            layers: Vec::new(),
        }
    }

    /// Starts a network with flat vector input (RNNs).
    pub fn flat_input(name: &'static str, features: u64) -> Self {
        Self {
            name,
            channels: 0,
            hw: 0,
            flat: features,
            max_im2col: 0,
            layers: Vec::new(),
        }
    }

    /// Appends a layer.
    pub fn layer(mut self, name: &str, kind: LayerKind) -> Self {
        let info = match kind {
            LayerKind::Conv {
                out_ch,
                kernel,
                stride,
                pad,
            } => {
                let out_hw = (self.hw + 2 * pad - kernel) / stride + 1;
                let params = out_ch * self.channels * kernel * kernel + out_ch;
                let act = out_ch * out_hw * out_hw;
                let flops = 2 * kernel * kernel * self.channels * out_ch * out_hw * out_hw;
                let im2col = kernel * kernel * self.channels * out_hw * out_hw;
                self.max_im2col = self.max_im2col.max(im2col);
                self.channels = out_ch;
                self.hw = out_hw;
                LayerInfo {
                    name: name.to_owned(),
                    params,
                    act_elems: act,
                    flops,
                }
            }
            LayerKind::Pool { kernel, stride } => {
                let out_hw = (self.hw - kernel) / stride + 1;
                let act = self.channels * out_hw * out_hw;
                let flops = kernel * kernel * act;
                self.hw = out_hw;
                LayerInfo {
                    name: name.to_owned(),
                    params: 0,
                    act_elems: act,
                    flops,
                }
            }
            LayerKind::Fc { outputs } => {
                let inputs = if self.flat > 0 {
                    self.flat
                } else {
                    self.channels * self.hw * self.hw
                };
                let params = inputs * outputs + outputs;
                self.flat = outputs;
                self.channels = 0;
                self.hw = 0;
                LayerInfo {
                    name: name.to_owned(),
                    params,
                    act_elems: outputs,
                    flops: 2 * inputs * outputs,
                }
            }
            LayerKind::Lstm {
                hidden,
                proj,
                steps,
            } => {
                let input = self.flat;
                // Four gates, input + recurrent (projected) matrices.
                let params = 4 * hidden * (input + proj) + 4 * hidden + hidden * proj;
                // Training keeps the four gate pre-activations, the cell
                // state and the projected output at every step for backprop.
                let act = steps * (4 * hidden + hidden + proj);
                let flops = steps * 2 * (4 * hidden * (input + proj) + hidden * proj);
                self.flat = proj;
                LayerInfo {
                    name: name.to_owned(),
                    params,
                    act_elems: act,
                    flops,
                }
            }
            LayerKind::Embedding { vocab, dim, steps } => {
                let params = vocab * dim;
                let act = steps * dim;
                // Gather is bandwidth, not FLOPs; count the lookup scaling.
                let flops = steps * 2 * dim;
                self.flat = dim;
                LayerInfo {
                    name: name.to_owned(),
                    params,
                    act_elems: act,
                    flops,
                }
            }
            LayerKind::SoftmaxLm { vocab, proj, steps } => {
                let params = vocab * proj + vocab;
                let act = steps * vocab;
                let flops = steps * 2 * proj * vocab;
                LayerInfo {
                    name: name.to_owned(),
                    params,
                    act_elems: act,
                    flops,
                }
            }
        };
        self.layers.push(info);
        self
    }

    /// Finalizes the network with an explicit overhead term.
    pub fn build(self, overhead_bytes: u64) -> Network {
        Network {
            name: self.name,
            layers: self.layers,
            overhead_bytes,
            workspace_elems: self.max_im2col.min(WORKSPACE_CAP_ELEMS),
        }
    }

    /// Finalizes the network, calibrating the batch-independent overhead so
    /// the footprint at `ref_batch` equals the paper's Table 1 value.
    ///
    /// If the layer model alone already exceeds the Table 1 footprint the
    /// overhead clamps to zero (tests flag the discrepancy).
    pub fn build_calibrated(self, table1_bytes: u64, ref_batch: u64) -> Network {
        let mut net = self.build(0);
        let modeled = net.footprint_bytes(ref_batch);
        net.overhead_bytes = table1_bytes.saturating_sub(modeled);
        net
    }
}

impl Network {
    /// Total trainable parameters.
    pub fn params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Activation elements per sample (all layer outputs, which training
    /// must keep for the backward pass).
    pub fn act_elems_per_sample(&self) -> u64 {
        self.layers.iter().map(|l| l.act_elems).sum()
    }

    /// Forward FLOPs per sample.
    pub fn flops_per_sample(&self) -> u64 {
        self.layers.iter().map(|l| l.flops).sum()
    }

    /// Per-sample memory that scales with the batch: activations and their
    /// gradients plus the convolution workspace.
    pub fn per_sample_bytes(&self) -> u64 {
        (2 * self.act_elems_per_sample() + self.workspace_elems) * BYTES_PER_ELEM
    }

    /// Training memory footprint at the given mini-batch size (Figure 13a).
    ///
    /// Weights are stored three times (parameters, gradients, momentum);
    /// activations twice (forward values and their gradients) plus the
    /// im2col workspace, scaled by the batch; plus the calibrated
    /// batch-independent framework overhead.
    pub fn footprint_bytes(&self, batch: u64) -> u64 {
        let weights = 3 * self.params() * BYTES_PER_ELEM;
        weights + batch * self.per_sample_bytes() + self.overhead_bytes
    }

    /// Largest batch whose footprint fits in `capacity_bytes`.
    pub fn max_batch_within(&self, capacity_bytes: u64) -> u64 {
        let fixed = 3 * self.params() * BYTES_PER_ELEM + self.overhead_bytes;
        if capacity_bytes <= fixed {
            return 0;
        }
        (capacity_bytes - fixed) / self.per_sample_bytes().max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_math() {
        // 3→96 channels, 11x11 stride 4 on 227: AlexNet conv1.
        let net = NetworkBuilder::image_input("t", 3, 227)
            .layer(
                "conv1",
                LayerKind::Conv {
                    out_ch: 96,
                    kernel: 11,
                    stride: 4,
                    pad: 0,
                },
            )
            .build(0);
        let l = &net.layers[0];
        assert_eq!(l.params, 96 * 3 * 11 * 11 + 96);
        assert_eq!(l.act_elems, 96 * 55 * 55);
        assert_eq!(l.flops, 2 * 11 * 11 * 3 * 96 * 55 * 55);
    }

    #[test]
    fn fc_math_after_flatten() {
        let net = NetworkBuilder::image_input("t", 256, 6)
            .layer("fc", LayerKind::Fc { outputs: 4096 })
            .build(0);
        assert_eq!(net.layers[0].params, 256 * 36 * 4096 + 4096);
        assert_eq!(net.layers[0].flops, 2 * 256 * 36 * 4096);
    }

    #[test]
    fn footprint_grows_linearly_in_batch() {
        let net = NetworkBuilder::image_input("t", 3, 32)
            .layer(
                "c",
                LayerKind::Conv {
                    out_ch: 16,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
            )
            .build(1000);
        let f1 = net.footprint_bytes(1);
        let f2 = net.footprint_bytes(2);
        let f4 = net.footprint_bytes(4);
        assert_eq!(f4 - f2, 2 * (f2 - f1));
        assert!(f1 > 1000, "includes overhead and weights");
    }

    #[test]
    fn max_batch_inverts_footprint() {
        let net = NetworkBuilder::image_input("t", 3, 64)
            .layer(
                "c",
                LayerKind::Conv {
                    out_ch: 32,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
            )
            .build(0);
        let capacity = net.footprint_bytes(37);
        let max = net.max_batch_within(capacity);
        assert_eq!(max, 37);
        assert!(net.footprint_bytes(max) <= capacity);
        assert!(net.footprint_bytes(max + 1) > capacity);
    }

    #[test]
    fn capacity_below_weights_gives_zero_batch() {
        let net = NetworkBuilder::image_input("t", 3, 32)
            .layer("fc", LayerKind::Fc { outputs: 1 << 20 })
            .build(0);
        assert_eq!(net.max_batch_within(1024), 0);
    }

    #[test]
    fn pool_halves_spatial_dims() {
        let net = NetworkBuilder::image_input("t", 8, 32)
            .layer(
                "p",
                LayerKind::Pool {
                    kernel: 2,
                    stride: 2,
                },
            )
            .layer(
                "c",
                LayerKind::Conv {
                    out_ch: 8,
                    kernel: 1,
                    stride: 1,
                    pad: 0,
                },
            )
            .build(0);
        // After 2x2/2 pool on 32: 16x16.
        assert_eq!(net.layers[1].act_elems, 8 * 16 * 16);
    }

    #[test]
    fn lstm_and_embedding_accounting() {
        let net = NetworkBuilder::flat_input("lm", 512)
            .layer(
                "embed",
                LayerKind::Embedding {
                    vocab: 10_000,
                    dim: 512,
                    steps: 20,
                },
            )
            .layer(
                "lstm",
                LayerKind::Lstm {
                    hidden: 1024,
                    proj: 512,
                    steps: 20,
                },
            )
            .build(0);
        assert_eq!(net.layers[0].params, 10_000 * 512);
        let lstm = &net.layers[1];
        assert_eq!(lstm.params, 4 * 1024 * (512 + 512) + 4 * 1024 + 1024 * 512);
        assert_eq!(lstm.act_elems, 20 * (4 * 1024 + 1024 + 512));
    }

    #[test]
    fn softmax_lm_accounting() {
        let net = NetworkBuilder::flat_input("lm", 1024)
            .layer(
                "sm",
                LayerKind::SoftmaxLm {
                    vocab: 10_000,
                    proj: 1024,
                    steps: 8,
                },
            )
            .build(0);
        let l = &net.layers[0];
        assert_eq!(l.params, 10_000 * 1024 + 10_000);
        assert_eq!(l.act_elems, 8 * 10_000);
        assert_eq!(l.flops, 8 * 2 * 1024 * 10_000);
    }

    #[test]
    fn calibrated_build_hits_target() {
        let target = 1u64 << 30;
        let net = NetworkBuilder::image_input("t", 3, 64)
            .layer(
                "c",
                LayerKind::Conv {
                    out_ch: 32,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
            )
            .build_calibrated(target, 16);
        assert_eq!(net.footprint_bytes(16), target);
    }

    #[test]
    fn workspace_is_capped() {
        // A 3x3 conv over 512x512x64 has an enormous im2col buffer.
        let net = NetworkBuilder::image_input("t", 64, 512)
            .layer(
                "c",
                LayerKind::Conv {
                    out_ch: 64,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
            )
            .build(0);
        assert_eq!(net.workspace_elems, WORKSPACE_CAP_ELEMS);
    }
}
