//! Memory-layout oracles: how each 128 B entry is placed between device and
//! buddy memory.
//!
//! The engine is policy-free: it asks a [`MemoryLayout`] how many sectors an
//! entry occupies and where they live. The facade crate implements this
//! trait on top of the workload generators and the buddy-core profiler; the
//! simple implementations here serve tests and micro-benchmarks.

/// Placement of one compressed memory-entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryPlacement {
    /// Sectors fetched from device DRAM on a miss (0–4).
    pub device_sectors: u8,
    /// Sectors fetched from buddy memory over the interconnect (0–4).
    pub buddy_sectors: u8,
}

impl EntryPlacement {
    /// An entry fully resident in device memory.
    pub fn device(sectors: u8) -> Self {
        Self {
            device_sectors: sectors,
            buddy_sectors: 0,
        }
    }

    /// Total compressed sectors.
    pub fn total(&self) -> u8 {
        self.device_sectors + self.buddy_sectors
    }

    /// Whether this entry requires interconnect traffic.
    pub fn touches_buddy(&self) -> bool {
        self.buddy_sectors > 0
    }
}

/// Oracle describing the compressed placement of every entry.
///
/// Implementations must be deterministic: the engine may query the same
/// entry repeatedly (fills, evictions) and expects stable answers.
pub trait MemoryLayout {
    /// Number of 128 B entries in the footprint.
    fn total_entries(&self) -> u64;

    /// Placement of `entry` under the Buddy Compression configuration.
    fn placement(&self, entry: u64) -> EntryPlacement;

    /// Compressed sectors of `entry` for bandwidth-only compression (whole
    /// block from device memory, no buddy split). Defaults to the total of
    /// [`placement`](Self::placement), which is correct when the buddy
    /// split does not change the compressed size.
    fn compressed_sectors(&self, entry: u64) -> u8 {
        self.placement(entry).total()
    }
}

/// Every entry identical — the simplest layout, for tests and calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformLayout {
    /// Footprint in entries.
    pub entries: u64,
    /// Placement shared by every entry.
    pub placement: EntryPlacement,
}

impl MemoryLayout for UniformLayout {
    fn total_entries(&self) -> u64 {
        self.entries
    }

    fn placement(&self, _entry: u64) -> EntryPlacement {
        self.placement
    }
}

/// Layout backed by closures (the facade crate's bridge).
pub struct FnLayout<F> {
    entries: u64,
    f: F,
}

impl<F: Fn(u64) -> EntryPlacement> FnLayout<F> {
    /// Wraps `f` as the placement oracle for `entries` entries.
    pub fn new(entries: u64, f: F) -> Self {
        Self { entries, f }
    }
}

impl<F: Fn(u64) -> EntryPlacement> MemoryLayout for FnLayout<F> {
    fn total_entries(&self) -> u64 {
        self.entries
    }

    fn placement(&self, entry: u64) -> EntryPlacement {
        (self.f)(entry)
    }
}

impl<F> std::fmt::Debug for FnLayout<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnLayout")
            .field("entries", &self.entries)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_helpers() {
        let p = EntryPlacement::device(3);
        assert_eq!(p.total(), 3);
        assert!(!p.touches_buddy());
        let q = EntryPlacement {
            device_sectors: 2,
            buddy_sectors: 2,
        };
        assert_eq!(q.total(), 4);
        assert!(q.touches_buddy());
    }

    #[test]
    fn uniform_layout() {
        let l = UniformLayout {
            entries: 10,
            placement: EntryPlacement {
                device_sectors: 1,
                buddy_sectors: 0,
            },
        };
        assert_eq!(l.total_entries(), 10);
        assert_eq!(l.placement(7).device_sectors, 1);
        assert_eq!(l.compressed_sectors(7), 1);
    }

    #[test]
    fn fn_layout_dispatches() {
        let l = FnLayout::new(100, |e| {
            if e % 2 == 0 {
                EntryPlacement::device(1)
            } else {
                EntryPlacement {
                    device_sectors: 2,
                    buddy_sectors: 2,
                }
            }
        });
        assert_eq!(l.placement(0).total(), 1);
        assert_eq!(l.placement(1).total(), 4);
        assert!(l.placement(1).touches_buddy());
        assert!(format!("{l:?}").contains("100"));
    }
}
