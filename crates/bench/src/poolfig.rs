//! Pool throughput: multi-tenant scaling of the compressed data path.
//!
//! The paper's §5 performance model is about *aggregate* traffic — every SM
//! issues entry accesses concurrently. This harness measures that regime
//! directly: a sharded [`BuddyPool`] is driven by `N` concurrent client
//! threads replaying the same workload trace (same master seed, same
//! per-client splitting rule), sweeping shard count × client count × codec.
//! Each cell reports aggregate throughput (entries/s, logical GB/s) and
//! per-batch latency percentiles from the `pool::loadgen` replay harness,
//! plus the scaling factor against the 1-shard/1-client cell of the same
//! codec.
//!
//! Wall-clock scaling depends on the machine: with `P` hardware threads,
//! the `min(shards, clients, P)` parallel compression streams are where the
//! speedup comes from, so the summary prints the detected parallelism next
//! to the measured scaling factor.

use crate::obsfig::{breakdown_row, write_breakdown, MetricsEmitter};
use crate::report::{f3, pct, print_table, write_csv, RunConfig};
use buddy_compression::bpc::CodecKind;
use buddy_compression::buddy_core::{DeviceConfig, TargetRatio};
use buddy_compression::buddy_obs::trace;
use buddy_compression::buddy_pool::loadgen::{replay, LoadReport, LoadgenConfig};
use buddy_compression::buddy_pool::{BuddyPool, PoolConfig};
use buddy_compression::workloads::by_name;
use std::io;

/// The benchmark whose access profile drives the replay (a SpecAccel
/// stencil with a realistic read/write mix).
const TRACE_BENCH: &str = "356.sp";

/// Entries per batched operation.
const BATCH: usize = 64;

/// One measured cell of the sweep.
pub struct Cell {
    /// Codec under test.
    pub codec: CodecKind,
    /// Loadgen report for this (shards, clients) point.
    pub report: LoadReport,
    /// End-of-replay pool fragmentation (`BuddyPool::fragmentation`).
    pub fragmentation: f64,
    /// End-of-replay largest contiguous free device region, in bytes.
    pub largest_free_region: u64,
}

/// Runs one (codec, shards, clients) cell: builds a pool sized to the
/// clients' footprint and replays the trace through it. `churn_every` /
/// `retarget_every` (0 = off) forward to [`LoadgenConfig`] so churn and
/// migration activity show up in the measured columns.
#[allow(clippy::too_many_arguments)] // sweep axes, called from one grid loop
pub fn measure(
    codec: CodecKind,
    shards: usize,
    clients: usize,
    entries_per_client: u64,
    batches_per_client: u64,
    seed: u64,
    churn_every: u64,
    retarget_every: u64,
) -> Cell {
    let profile = by_name(TRACE_BENCH).expect("trace benchmark exists").access; // lint-allow(no-unwrap): the trace benchmark is compiled into the suite
                                                                                // Size shards to the replay footprint (with 2× headroom) instead of a
                                                                                // flat multi-MB capacity: the backing arrays are zero-initialized, and
                                                                                // across a 24-cell sweep a fixed large capacity would spend more time
                                                                                // in memset than in compression.
    let clients_per_shard = clients.div_ceil(shards) as u64;
    let target = TargetRatio::R2;
    let device_need =
        clients_per_shard * entries_per_client * target.device_bytes_per_entry() as u64;
    let pool = BuddyPool::new(PoolConfig {
        shards,
        shard_config: DeviceConfig {
            device_capacity: (device_need * 2).max(1 << 20),
            carve_out_factor: 3,
        },
        codec,
    });
    let cfg = LoadgenConfig {
        clients,
        batches_per_client,
        batch_entries: BATCH,
        entries_per_client,
        target,
        seed,
        retarget_every,
        churn_every,
    };
    let report = replay(&pool, profile, &cfg).expect("sized pool hosts every client"); // lint-allow(no-unwrap): the pool is sized with 2x headroom for every client
    Cell {
        codec,
        report,
        fragmentation: pool.fragmentation(),
        largest_free_region: pool.largest_free_region(),
    }
}

/// The (shards, clients, churn_every, retarget_every) grid of one sweep.
/// The final cell of each grid enables churn + retargeting so the
/// `churn_cycles` / `retargets` / `fragmentation` columns exercise nonzero
/// values in every run.
fn grid(quick: bool) -> Vec<(usize, usize, u64, u64)> {
    if quick {
        vec![(1, 1, 0, 0), (2, 2, 0, 0), (4, 4, 0, 0), (2, 2, 8, 4)]
    } else {
        vec![
            (1, 1, 0, 0),
            (1, 4, 0, 0),
            (2, 2, 0, 0),
            (4, 1, 0, 0),
            (4, 4, 0, 0),
            (8, 8, 0, 0),
            (4, 4, 8, 4),
        ]
    }
}

/// Runs the shard × client × codec throughput sweep (the `pool-throughput`
/// binary; also part of `reproduce-all`).
pub fn pool_throughput(cfg: &RunConfig) -> io::Result<()> {
    // Equal work per cell so entries/s columns are directly comparable.
    let total_entries = cfg.scaled(2_000_000);
    let entries_per_client = if cfg.quick { 1024 } else { 4096 };
    let codecs: Vec<CodecKind> = if cfg.quick {
        vec![cfg.codec]
    } else {
        CodecKind::ALL.to_vec()
    };

    let header = [
        "codec",
        "shards",
        "clients",
        "entries",
        "elapsed_ms",
        "entries_per_s",
        "logical_gb_per_s",
        "p50_us",
        "p95_us",
        "p99_us",
        "p999_us",
        "max_us",
        "buddy_access_frac",
        "churn_cycles",
        "retargets",
        "fragmentation",
        "largest_free_mb",
        "scaling_vs_1s1c",
    ];
    let emitter = MetricsEmitter::start(cfg);
    let entries_counter = emitter
        .registry()
        .counter("pool_entries_total", "entries moved across all sweep cells");
    let latency_metric = emitter.registry().histogram(
        "pool_batch_latency_ns",
        "per-batch replay latency across all sweep cells",
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut breakdown: Vec<Vec<String>> = Vec::new();
    let mut headline_scaling = None;
    for &codec in &codecs {
        let mut baseline = None;
        for &(shards, clients, churn_every, retarget_every) in &grid(cfg.quick) {
            let batches_per_client = (total_entries / (clients as u64 * BATCH as u64)).max(1);
            let span_before = trace::totals();
            let cell = measure(
                codec,
                shards,
                clients,
                entries_per_client,
                batches_per_client,
                cfg.seed,
                churn_every,
                retarget_every,
            );
            let span_delta = trace::totals().since(&span_before);
            breakdown.push(breakdown_row(
                "pool_throughput",
                &codec.to_string(),
                shards,
                clients,
                &span_delta,
            ));
            let r = &cell.report;
            entries_counter.add(r.entries_processed);
            latency_metric.absorb(&r.latency_hist);
            let baseline_eps = *baseline.get_or_insert(r.entries_per_sec);
            let scaling = r.entries_per_sec / baseline_eps;
            if codec == cfg.codec && shards >= 4 && clients >= 4 && churn_every == 0 {
                headline_scaling = Some(scaling);
            }
            rows.push(vec![
                codec.to_string(),
                shards.to_string(),
                clients.to_string(),
                r.entries_processed.to_string(),
                format!("{:.1}", r.elapsed.as_secs_f64() * 1e3),
                format!("{:.0}", r.entries_per_sec),
                f3(r.logical_gb_per_sec),
                f3(r.latency.p50_us),
                f3(r.latency.p95_us),
                f3(r.latency.p99_us),
                f3(r.latency.p999_us),
                f3(r.latency.max_us),
                pct(r.stats.buddy_access_fraction()),
                r.churn_cycles.to_string(),
                r.stats.retargets.to_string(),
                f3(cell.fragmentation),
                f3(cell.largest_free_region as f64 / (1 << 20) as f64),
                f3(scaling),
            ]);
        }
    }
    print_table(
        &format!("Pool throughput: shards × clients × codec ({TRACE_BENCH} trace)"),
        &header,
        &rows,
    );
    let parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    if let Some(scaling) = headline_scaling {
        println!(
            "  {} scaling 1 shard/1 client -> >=4 shards/>=4 clients: {scaling:.2}x \
             ({parallelism} hardware threads available)",
            cfg.codec
        );
        println!("  Parallel speedup tracks min(shards, clients, hardware threads); on a");
        println!("  single-core host the sweep still validates the concurrent data path.");
    }
    write_csv(
        &cfg.results_dir,
        &cfg.tagged("pool_throughput"),
        &header,
        &rows,
    )?;
    // Truncate-write: pool-throughput runs first in reproduce-all, so each
    // run starts the shared breakdown artifact fresh; later harnesses
    // append. With obs-trace off the rows are structurally identical but
    // all-zero (trace_enabled=false) — the artifact shape is stable.
    let breakdown_path = write_breakdown(cfg, &breakdown)?;
    if trace::is_enabled() {
        println!("  span breakdown (lock wait / codec / IO per cell) -> {breakdown_path:?}");
    } else {
        println!(
            "  span breakdown written with zeros ({breakdown_path:?}); rebuild with \
             --features obs-trace for real attribution"
        );
    }
    if let Some((prom, csv)) = emitter.finish()? {
        println!("  metrics -> {prom:?} and {csv:?}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_cell_is_consistent() {
        let cell = measure(CodecKind::Bpc, 2, 2, 256, 16, 11, 0, 0);
        let r = &cell.report;
        assert_eq!(r.shards, 2);
        assert_eq!(r.clients, 2);
        assert_eq!(r.entries_processed, 2 * 16 * BATCH as u64);
        assert_eq!(r.stats.total_accesses(), r.entries_processed);
        assert!(r.entries_per_sec > 0.0);
        assert_eq!(r.churn_cycles, 0);
        assert!((0.0..=1.0).contains(&cell.fragmentation));
        assert!(cell.largest_free_region > 0, "pool has 2x headroom free");
    }

    #[test]
    fn churn_and_retarget_activity_reaches_the_report() {
        // The grid's churn cell must produce nonzero churn/retarget columns;
        // this is the plumbing the CSV relies on.
        let cell = measure(CodecKind::Bpc, 2, 2, 256, 16, 11, 8, 4);
        let r = &cell.report;
        assert!(r.churn_cycles > 0, "churn_every=8 over 16 batches cycles");
        assert!(r.stats.retargets > 0, "retarget_every=4 migrates");
    }

    #[test]
    fn harness_writes_the_csv_artifact() {
        let dir = std::env::temp_dir().join("buddy-bench-poolfig");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RunConfig {
            quick: true,
            results_dir: dir.clone(),
            seed: 5,
            ..Default::default()
        };
        pool_throughput(&cfg).unwrap();
        let csv = std::fs::read_to_string(dir.join("pool_throughput.csv")).unwrap();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("codec,shards,clients,entries"));
        for col in ["churn_cycles", "retargets", "fragmentation"] {
            assert!(header.contains(col), "header is missing {col}");
        }
        // Quick grid: (1,1), (2,2), (4,4) plus the churn cell, default codec.
        assert_eq!(lines.count(), 4);
    }
}
