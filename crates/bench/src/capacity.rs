//! Compression-capacity figures: Figures 3, 6, 7, 8 and 9.
//!
//! All five harnesses honour `--codec <name>`: they capture, profile and
//! choose targets under the selected algorithm (BPC by default, matching
//! the paper's published numbers).

use crate::report::{f3, pct, print_table, write_csv, write_text, RunConfig};
use buddy_compression::buddy_core::{best_achievable, choose_naive, choose_targets, ProfileConfig};
use buddy_compression::workloads::snapshot::{capture, heatmap, ten_phases, SnapshotConfig};
use buddy_compression::workloads::{all_benchmarks, geomean, Benchmark};
use buddy_compression::{profile_benchmark_at_with, profile_benchmark_with};
use std::io;

fn sample_cap(cfg: &RunConfig) -> u64 {
    if cfg.quick {
        1024
    } else {
        8192
    }
}

/// Figure 3: optimistic BPC capacity compression ratio per benchmark over
/// ten snapshots. Paper: GMEAN ≈ 2.51 (HPC) and ≈ 1.85 (DL).
pub fn fig03(cfg: &RunConfig) -> io::Result<()> {
    let mut rows = Vec::new();
    let mut hpc = Vec::new();
    let mut dl = Vec::new();
    for bench in all_benchmarks() {
        let mut snapshot_bytes = Vec::new();
        for phase in ten_phases() {
            let stats = capture(
                &bench,
                SnapshotConfig {
                    phase,
                    seed: cfg.seed,
                    sample_cap: sample_cap(cfg),
                    codec: cfg.codec,
                },
            );
            snapshot_bytes.push(128.0 / stats.compression_ratio());
        }
        // Whole-run average: mean compressed size across snapshots.
        let mean_bytes = snapshot_bytes.iter().sum::<f64>() / snapshot_bytes.len() as f64;
        let mean_ratio = 128.0 / mean_bytes;
        if bench.suite.is_hpc() {
            hpc.push(mean_ratio);
        } else {
            dl.push(mean_ratio);
        }
        let mut row = vec![bench.name.to_string()];
        row.extend(snapshot_bytes.iter().map(|b| f3(128.0 / b)));
        row.push(f3(mean_ratio));
        row.push(f3(bench.paper_fig3_ratio));
        rows.push(row);
    }
    let gm_hpc = geomean(hpc);
    let gm_dl = geomean(dl);
    let mut header = vec!["benchmark"];
    let snapshot_names: Vec<String> = (1..=10).map(|i| format!("s{i}")).collect();
    header.extend(snapshot_names.iter().map(|s| s.as_str()));
    header.push("mean");
    header.push("paper");
    print_table(
        "Figure 3: BPC capacity compression per snapshot",
        &header,
        &rows,
    );
    println!("  GMEAN_HPC {gm_hpc:.2} (paper 2.51)   GMEAN_DL {gm_dl:.2} (paper 1.85)");
    write_csv(&cfg.results_dir, &cfg.tagged("fig03"), &header, &rows)?;
    Ok(())
}

/// Figure 6: spatial compressibility heat maps (PGM + sector distribution).
pub fn fig06(cfg: &RunConfig) -> io::Result<()> {
    let pages = if cfg.quick { 64 } else { 512 };
    let mut rows = Vec::new();
    for bench in all_benchmarks() {
        let map = heatmap(&bench, cfg.codec, cfg.seed, 0.5, pages);
        let file = cfg.tagged(&format!("fig06_{}", bench.name.replace('.', "_"))) + ".pgm";
        write_text(&cfg.results_dir, &file, &map.to_pgm())?;
        let dist = map.sector_distribution();
        let mut row = vec![bench.name.to_string()];
        row.extend(dist.iter().map(|d| pct(*d)));
        rows.push(row);
    }
    let header = [
        "benchmark",
        "0-sector",
        "1-sector",
        "2-sector",
        "3-sector",
        "4-sector",
    ];
    print_table(
        "Figure 6: compressibility distribution (heat maps in results/)",
        &header,
        &rows,
    );
    write_csv(
        &cfg.results_dir,
        &cfg.tagged("fig06_distribution"),
        &header,
        &rows,
    )?;
    Ok(())
}

/// One benchmark's Figure 7 data point.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    /// Benchmark name.
    pub name: String,
    /// Whether it counts into the HPC geomean.
    pub is_hpc: bool,
    /// (ratio, buddy fraction) for naive / per-allocation / final policies.
    pub naive: (f64, f64),
    /// Per-allocation targets without zero-page mode.
    pub per_alloc: (f64, f64),
    /// The final design (per-allocation + zero-page).
    pub final_design: (f64, f64),
}

/// Computes the Figure 7 policy comparison for every benchmark.
pub fn fig07_points(cfg: &RunConfig) -> Vec<Fig7Point> {
    let config = ProfileConfig::default();
    all_benchmarks()
        .iter()
        .map(|bench| {
            let profiles = profile_benchmark_with(bench, cfg.codec, sample_cap(cfg), cfg.seed);
            let naive = choose_naive(&profiles, &config);
            let per_alloc = choose_targets(&profiles, &ProfileConfig::per_allocation_only());
            let final_design = choose_targets(&profiles, &config);
            Fig7Point {
                name: bench.name.to_string(),
                is_hpc: bench.suite.is_hpc(),
                naive: (
                    naive.device_compression_ratio(),
                    naive.static_buddy_fraction(),
                ),
                per_alloc: (
                    per_alloc.device_compression_ratio(),
                    per_alloc.static_buddy_fraction(),
                ),
                final_design: (
                    final_design.device_compression_ratio(),
                    final_design.static_buddy_fraction(),
                ),
            }
        })
        .collect()
}

/// Figure 7: design-optimization sensitivity. Paper: naive 1.57×/1.18× with
/// 8%/32% buddy accesses (HPC/DL); final 1.9×/1.5× with 0.08%/4%.
pub fn fig07(cfg: &RunConfig) -> io::Result<Vec<Fig7Point>> {
    let points = fig07_points(cfg);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                f3(p.naive.0),
                pct(p.naive.1),
                f3(p.per_alloc.0),
                pct(p.per_alloc.1),
                f3(p.final_design.0),
                pct(p.final_design.1),
            ]
        })
        .collect();
    let header = [
        "benchmark",
        "naive_ratio",
        "naive_buddy",
        "peralloc_ratio",
        "peralloc_buddy",
        "final_ratio",
        "final_buddy",
    ];
    print_table("Figure 7: policy comparison", &header, &rows);
    for (label, pick) in [("naive", 0usize), ("per-alloc", 1), ("final", 2)] {
        let select = |p: &Fig7Point| match pick {
            0 => p.naive,
            1 => p.per_alloc,
            _ => p.final_design,
        };
        let hpc_r = geomean(points.iter().filter(|p| p.is_hpc).map(|p| select(p).0));
        let dl_r = geomean(points.iter().filter(|p| !p.is_hpc).map(|p| select(p).0));
        let hpc_b: f64 = points
            .iter()
            .filter(|p| p.is_hpc)
            .map(|p| select(p).1)
            .sum::<f64>()
            / points.iter().filter(|p| p.is_hpc).count() as f64;
        let dl_b: f64 = points
            .iter()
            .filter(|p| !p.is_hpc)
            .map(|p| select(p).1)
            .sum::<f64>()
            / points.iter().filter(|p| !p.is_hpc).count() as f64;
        println!(
            "  {label:<10} GMEAN ratio HPC {hpc_r:.2} DL {dl_r:.2}; mean buddy HPC {} DL {}",
            pct(hpc_b),
            pct(dl_b)
        );
    }
    println!("  paper: naive 1.57/1.18 @ 8%/32%; final 1.9/1.5 @ 0.08%/4%");
    write_csv(&cfg.results_dir, &cfg.tagged("fig07"), &header, &rows)?;
    Ok(points)
}

/// Figure 8: buddy-access fraction over one DL training iteration with
/// fixed targets. Paper: flat lines; ratios 1.49 (SqueezeNet), 1.64
/// (ResNet50).
pub fn fig08(cfg: &RunConfig) -> io::Result<()> {
    let mut rows = Vec::new();
    for name in ["SqueezeNet", "ResNet50"] {
        let bench = all_benchmarks()
            .into_iter()
            .find(|b| b.name == name)
            .expect("benchmark exists"); // lint-allow(no-unwrap): benchmark names are compiled into all_benchmarks()
                                         // Profile across the run (the paper's static targets), then measure
                                         // per-snapshot overflow with those targets held fixed.
        let profiles = profile_benchmark_with(&bench, cfg.codec, sample_cap(cfg), cfg.seed);
        let outcome = choose_targets(&profiles, &ProfileConfig::default());
        let mut row = vec![name.to_string(), f3(outcome.device_compression_ratio())];
        for phase in ten_phases() {
            let at_phase =
                profile_benchmark_at_with(&bench, cfg.codec, phase, sample_cap(cfg), cfg.seed);
            let mut weighted = 0.0;
            let mut total = 0.0;
            for (profile, choice) in at_phase.iter().zip(outcome.choices.iter()) {
                weighted += profile.entries as f64 * profile.overflow_fraction(choice.target);
                total += profile.entries as f64;
            }
            row.push(pct(weighted / total));
        }
        rows.push(row);
    }
    let mut header = vec!["benchmark", "ratio"];
    let names: Vec<String> = (1..=10).map(|i| format!("s{i}")).collect();
    header.extend(names.iter().map(|s| s.as_str()));
    print_table(
        "Figure 8: buddy accesses across a training iteration",
        &header,
        &rows,
    );
    println!("  paper: constant ratios 1.49 (SqueezeNet) / 1.64 (ResNet50), flat access lines");
    write_csv(&cfg.results_dir, &cfg.tagged("fig08"), &header, &rows)?;
    Ok(())
}

/// Figure 9: Buddy Threshold sensitivity (10–40%) plus the best-achievable
/// marker. Paper: 30% balances compression and buddy accesses.
pub fn fig09(cfg: &RunConfig) -> io::Result<()> {
    let thresholds = [0.10, 0.20, 0.30, 0.40];
    let mut rows = Vec::new();
    let benches: Vec<Benchmark> = all_benchmarks();
    for bench in &benches {
        let profiles = profile_benchmark_with(bench, cfg.codec, sample_cap(cfg), cfg.seed);
        let mut row = vec![bench.name.to_string()];
        for &t in &thresholds {
            let outcome = choose_targets(&profiles, &ProfileConfig::with_threshold(t));
            row.push(f3(outcome.device_compression_ratio()));
            row.push(pct(outcome.static_buddy_fraction()));
        }
        row.push(f3(best_achievable(&profiles)));
        rows.push(row);
    }
    let header = [
        "benchmark",
        "r@10%",
        "buddy@10%",
        "r@20%",
        "buddy@20%",
        "r@30%",
        "buddy@30%",
        "r@40%",
        "buddy@40%",
        "best_achievable",
    ];
    print_table("Figure 9: Buddy Threshold sensitivity", &header, &rows);
    write_csv(&cfg.results_dir, &cfg.tagged("fig09"), &header, &rows)?;

    // The one benchmark that cannot reach its best-achievable marker at 30%
    // should be FF_HPGMG (§3.4).
    let dl_30 = geomean(
        benches
            .iter()
            .zip(rows.iter())
            .filter(|(b, _)| !b.suite.is_hpc())
            .map(|(_, r)| r[5].parse::<f64>().unwrap_or(1.0)),
    );
    println!("  DL GMEAN at 30% threshold: {dl_30:.2} (paper chooses 30% as the balance)");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> RunConfig {
        RunConfig {
            quick: true,
            results_dir: std::env::temp_dir().join("buddy-bench-capacity"),
            seed: 9,
            ..Default::default()
        }
    }

    #[test]
    fn fig07_final_dominates_naive_at_suite_level() {
        let points = fig07_points(&quick_cfg());
        assert_eq!(points.len(), 16);
        // The paper's Figure 7 story: the final design achieves a better
        // suite-level ratio at a fraction of the buddy-memory traffic.
        for hpc in [true, false] {
            let subset: Vec<_> = points.iter().filter(|p| p.is_hpc == hpc).collect();
            let naive_r = geomean(subset.iter().map(|p| p.naive.0));
            let final_r = geomean(subset.iter().map(|p| p.final_design.0));
            let naive_b: f64 = subset.iter().map(|p| p.naive.1).sum::<f64>() / subset.len() as f64;
            let final_b: f64 =
                subset.iter().map(|p| p.final_design.1).sum::<f64>() / subset.len() as f64;
            assert!(
                final_r >= naive_r - 0.05,
                "hpc={hpc}: final ratio {final_r:.2} must not lose to naive {naive_r:.2}"
            );
            assert!(
                final_b < naive_b,
                "hpc={hpc}: final buddy {final_b:.3} must undercut naive {naive_b:.3}"
            );
        }
        // Suite-level shape: HPC ≈ 1.9, DL ≈ 1.5 (±0.4/0.3).
        let hpc = geomean(points.iter().filter(|p| p.is_hpc).map(|p| p.final_design.0));
        let dl = geomean(
            points
                .iter()
                .filter(|p| !p.is_hpc)
                .map(|p| p.final_design.0),
        );
        assert!(
            (hpc - 1.9).abs() < 0.4,
            "HPC final geomean {hpc:.2} vs paper 1.9"
        );
        assert!(
            (dl - 1.5).abs() < 0.3,
            "DL final geomean {dl:.2} vs paper 1.5"
        );
    }

    #[test]
    fn fig07_zero_page_helps_vgg_and_ep() {
        let points = fig07_points(&quick_cfg());
        // VGG16's pooled zero region gets the 16x target (§3.4).
        let vgg = points.iter().find(|p| p.name == "VGG16").unwrap();
        assert!(
            vgg.final_design.0 > vgg.per_alloc.0 + 0.05,
            "VGG16: zero-page should raise the ratio ({:.2} vs {:.2})",
            vgg.final_design.0,
            vgg.per_alloc.0
        );
        // 352.ep is dominated by zeros; its ratio presses against the 4x
        // carve-out bound ("the overall compression ratio is still under
        // 4x, limited by the buddy-memory carve-out region", §3.4).
        let ep = points.iter().find(|p| p.name == "352.ep").unwrap();
        assert!(
            ep.final_design.0 >= 3.0,
            "352.ep final {:.2}",
            ep.final_design.0
        );
        assert!(
            ep.final_design.0 <= 4.0 + 1e-9,
            "352.ep capped {:.2}",
            ep.final_design.0
        );
    }
}
