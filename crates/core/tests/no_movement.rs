//! Tests for the central design invariant of Buddy Compression (§3.3):
//! *"the compressibility of each memory-entry affects only its own
//! allocation, thereby never having to cause page movement."*
//!
//! We verify this at two levels: storage ranges are fixed functions of
//! (allocation, index) regardless of data, and rewriting any entry with
//! data of any compressibility leaves every other entry byte-identical on
//! read-back.
//!
//! The round-trip harness is codec-parameterized: every property runs under
//! all four registered codecs × all five target ratios, because the device
//! invariants must hold whichever algorithm backs the data path.

use bpc::{CodecKind, ENTRY_BYTES};
use buddy_core::{BuddyDevice, DeviceConfig, EntryState, TargetRatio};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

type Entry = [u8; ENTRY_BYTES];

/// Entries spanning the whole compressibility range.
fn entry_of_kind(kind: u8, seed: u64) -> Entry {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut entry = [0u8; ENTRY_BYTES];
    match kind % 4 {
        0 => {} // zero
        1 => {
            // constant word — highly compressible
            let w: u32 = rng.gen();
            for c in entry.chunks_exact_mut(4) {
                c.copy_from_slice(&w.to_le_bytes());
            }
        }
        2 => {
            // small-noise ints — mid compressibility
            let base: u32 = rng.gen_range(1 << 28..1 << 29);
            for c in entry.chunks_exact_mut(4) {
                let v = base + rng.gen_range(0u32..1 << 10);
                c.copy_from_slice(&v.to_le_bytes());
            }
        }
        _ => rng.fill(&mut entry[..]), // incompressible
    }
    entry
}

fn device() -> BuddyDevice {
    BuddyDevice::new(DeviceConfig {
        device_capacity: 1 << 20,
        carve_out_factor: 3,
    })
}

fn device_with(codec: CodecKind) -> BuddyDevice {
    BuddyDevice::with_codec(
        DeviceConfig {
            device_capacity: 1 << 20,
            carve_out_factor: 3,
        },
        codec,
    )
}

#[test]
fn storage_ranges_are_data_independent() {
    let mut dev = device();
    let a = dev.alloc("a", 64, TargetRatio::R2).unwrap();
    let before: Vec<_> = (0..64).map(|i| dev.storage_ranges(a, i).unwrap()).collect();
    // Write wildly different data everywhere.
    for i in 0..64 {
        dev.write_entry(a, i, &entry_of_kind(i as u8, i)).unwrap();
    }
    let after: Vec<_> = (0..64).map(|i| dev.storage_ranges(a, i).unwrap()).collect();
    assert_eq!(before, after, "storage mapping must not depend on data");
    // Ranges are disjoint and strided.
    for i in 1..64usize {
        let ((d_prev, d_len), (b_prev, b_len)) = before[i - 1];
        let ((d_cur, _), (b_cur, _)) = before[i];
        assert_eq!(d_cur, d_prev + d_len);
        assert_eq!(b_cur, b_prev + b_len);
    }
}

#[test]
fn compressibility_change_never_disturbs_neighbors() {
    for codec in CodecKind::ALL {
        for target in TargetRatio::DESCENDING {
            let mut dev = device_with(codec);
            let a = dev.alloc("a", 32, target).unwrap();
            let initial: Vec<Entry> = (0..32).map(|i| entry_of_kind(i as u8, 1000 + i)).collect();
            dev.write_entries(a, 0, &initial).unwrap();
            // Cycle entry 7 through every compressibility kind.
            for kind in 0..8u8 {
                let update = entry_of_kind(kind, 7777 + kind as u64);
                dev.write_entry(a, 7, &update).unwrap();
                for (i, e) in initial.iter().enumerate() {
                    if i == 7 {
                        assert_eq!(
                            dev.read_entry(a, 7).unwrap(),
                            update,
                            "{codec}/{target}: self"
                        );
                    } else {
                        assert_eq!(
                            dev.read_entry(a, i as u64).unwrap(),
                            *e,
                            "{codec}/{target}: entry {i}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn allocations_do_not_interfere() {
    let mut dev = device();
    let a = dev.alloc("a", 16, TargetRatio::R4).unwrap();
    let b = dev.alloc("b", 16, TargetRatio::R2).unwrap();
    let c = dev.alloc("c", 16, TargetRatio::ZeroPage16).unwrap();
    for i in 0..16u64 {
        dev.write_entry(a, i, &entry_of_kind(i as u8, i)).unwrap();
        dev.write_entry(b, i, &entry_of_kind((i + 1) as u8, 100 + i))
            .unwrap();
        dev.write_entry(c, i, &entry_of_kind((i + 2) as u8, 200 + i))
            .unwrap();
    }
    for i in 0..16u64 {
        assert_eq!(dev.read_entry(a, i).unwrap(), entry_of_kind(i as u8, i));
        assert_eq!(
            dev.read_entry(b, i).unwrap(),
            entry_of_kind((i + 1) as u8, 100 + i)
        );
        assert_eq!(
            dev.read_entry(c, i).unwrap(),
            entry_of_kind((i + 2) as u8, 200 + i)
        );
    }
}

#[test]
fn buddy_fraction_tracks_overflow_rate() {
    let mut dev = device();
    let a = dev.alloc("a", 100, TargetRatio::R4).unwrap();
    // Half the entries compress to one sector, half do not.
    for i in 0..100u64 {
        let kind = if i % 2 == 0 { 1 } else { 3 };
        dev.write_entry(a, i, &entry_of_kind(kind, i)).unwrap();
    }
    dev.reset_stats();
    for i in 0..100u64 {
        dev.read_entry(a, i).unwrap();
    }
    let frac = dev.stats().buddy_access_fraction();
    assert!(
        (frac - 0.5).abs() < 0.01,
        "expected ~50% buddy accesses, got {frac}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Read-after-write returns the written entry for every codec × target
    /// ratio and any mix of compressibilities, including repeated rewrites.
    /// This is the stored-stream-decode contract: whichever codec wrote an
    /// entry's bitstream is the one that decodes it on read.
    #[test]
    fn read_after_write_round_trips(
        codec_idx in 0usize..4,
        target_idx in 0usize..5,
        ops in proptest::collection::vec((0u64..24, 0u8..8, any::<u64>()), 1..80)
    ) {
        let codec = CodecKind::ALL[codec_idx];
        let target = TargetRatio::DESCENDING[target_idx];
        let mut dev = device_with(codec);
        let a = dev.alloc("pt", 24, target).unwrap();
        let mut shadow: Vec<Entry> = vec![[0u8; ENTRY_BYTES]; 24];
        for (idx, kind, seed) in ops {
            let entry = entry_of_kind(kind, seed);
            dev.write_entry(a, idx, &entry).unwrap();
            shadow[idx as usize] = entry;
        }
        for (i, expect) in shadow.iter().enumerate() {
            prop_assert_eq!(&dev.read_entry(a, i as u64).unwrap(), expect);
        }
    }

    /// The batched paths are equivalent to per-entry I/O under every codec
    /// × target: same read-back, same traffic counters, including when
    /// batches interleave with single-entry rewrites.
    #[test]
    fn batched_io_equals_per_entry_io(
        codec_idx in 0usize..4,
        target_idx in 0usize..5,
        start in 0u64..16,
        kinds in proptest::collection::vec((0u8..8, any::<u64>()), 1..16),
        rewrite in (0u64..24, 0u8..8, any::<u64>()),
    ) {
        let codec = CodecKind::ALL[codec_idx];
        let target = TargetRatio::DESCENDING[target_idx];
        let len = kinds.len().min((24 - start) as usize);
        let batch: Vec<Entry> = kinds[..len]
            .iter()
            .map(|&(kind, seed)| entry_of_kind(kind, seed))
            .collect();

        let mut batched = device_with(codec);
        let a = batched.alloc("b", 24, target).unwrap();
        batched.write_entries(a, start, &batch).unwrap();
        let (ri, rk, rs) = rewrite;
        batched.write_entry(a, ri, &entry_of_kind(rk, rs)).unwrap();
        let mut got = vec![[0u8; ENTRY_BYTES]; 24];
        batched.read_entries(a, 0, &mut got).unwrap();

        let mut single = device_with(codec);
        let b = single.alloc("b", 24, target).unwrap();
        for (i, e) in batch.iter().enumerate() {
            single.write_entry(b, start + i as u64, e).unwrap();
        }
        single.write_entry(b, ri, &entry_of_kind(rk, rs)).unwrap();
        for (i, slot) in got.iter().enumerate() {
            prop_assert_eq!(slot, &single.read_entry(b, i as u64).unwrap(),
                "{}/{}: entry {} diverges between batched and single I/O", codec, target, i);
        }
        prop_assert_eq!(batched.stats(), single.stats());
    }

    /// Batched I/O boundary behaviour under every codec: a batch is
    /// accepted iff `start + len <= entries` — zero-length batches are
    /// no-ops anywhere up to and including the end of the allocation, and
    /// out-of-range runs fail atomically (device bytes and traffic
    /// counters untouched).
    #[test]
    fn batched_range_edges_are_exact(
        codec_idx in 0usize..4,
        entries in 1u64..32,
        start in 0u64..40,
        len in 0usize..12,
    ) {
        let codec = CodecKind::ALL[codec_idx];
        let mut dev = device_with(codec);
        let a = dev.alloc("edge", entries, TargetRatio::R2).unwrap();
        let pattern = entry_of_kind(1, 42);
        dev.write_entries(a, 0, &vec![pattern; entries as usize]).unwrap();
        let stats_before = dev.stats();

        let batch = vec![entry_of_kind(3, 7); len];
        let mut out = vec![[0u8; ENTRY_BYTES]; len];
        let in_range = start.checked_add(len as u64).is_some_and(|end| end <= entries);
        let write_result = dev.write_entries(a, start, &batch);
        prop_assert_eq!(
            write_result.is_ok(),
            in_range,
            "{}: write_entries(start={}, len={}) on {} entries", codec, start, len, entries
        );
        if !in_range {
            // Failed batch: no stats movement, no data movement.
            prop_assert_eq!(dev.stats(), stats_before);
            let read_result = dev.read_entries(a, start, &mut out);
            prop_assert!(read_result.is_err());
            prop_assert_eq!(dev.stats(), stats_before);
            for i in 0..entries {
                prop_assert_eq!(&dev.read_entry(a, i).unwrap(), &pattern);
            }
        } else if len == 0 {
            // Zero-length batches never touch counters, even at the end.
            prop_assert_eq!(dev.stats(), stats_before);
            dev.read_entries(a, start, &mut out).unwrap();
            prop_assert_eq!(dev.stats(), stats_before);
        } else {
            dev.read_entries(a, start, &mut out).unwrap();
            for slot in &out {
                prop_assert_eq!(slot, &entry_of_kind(3, 7));
            }
        }
    }

    /// Metadata state is always consistent with what the entry needs.
    #[test]
    fn metadata_matches_fit(kind in 0u8..8, seed in any::<u64>()) {
        let mut dev = device();
        let a = dev.alloc("m", 4, TargetRatio::R2).unwrap();
        let entry = entry_of_kind(kind, seed);
        let state = dev.write_entry(a, 0, &entry).unwrap();
        prop_assert_eq!(dev.entry_state(a, 0).unwrap(), state);
        match state {
            EntryState::Zero => prop_assert!(entry.iter().all(|&b| b == 0)),
            EntryState::Compressed { sectors } => prop_assert!((1..=4).contains(&sectors)),
            _ => prop_assert!(false, "zero-page states impossible under R2"),
        }
    }
}
