//! Multi-tenant tenancy sweep: calibrates the machine's service capacity,
//! drives an open-loop overload sweep across the knee (queueing delay and
//! shed load vs offered-rate ratio), and demonstrates quota enforcement
//! against a noisy neighbour under both admission policies. Writes
//! `results/tenancy.csv`. Pass `--quick` for a reduced sweep and
//! `--metrics-out <base>` for `<base>.prom` / `<base>.csv` metric
//! artifacts. Appends its span-time row to `results/obs_breakdown.csv`.

fn main() -> std::io::Result<()> {
    let cfg = buddy_bench::RunConfig::from_args();
    buddy_bench::tenantfig::tenancy(&cfg)
}
