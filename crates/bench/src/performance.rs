//! Performance figures: Figures 5b, 10 and 11.

use crate::report::{correlation, f3, pct, print_table, write_csv, RunConfig};
use buddy_compression::buddy_core::{choose_targets, ProfileConfig};
use buddy_compression::gpu_sim::{
    Engine, EntryPlacement, ExecConfig, Fidelity, GpuConfig, Lookup, MemRequest, MemoryMode,
    SectoredCache, SimStats, UniformLayout,
};
use buddy_compression::workloads::{all_benchmarks, geomean};
use buddy_compression::{benchmark_requests, profile_benchmark, BenchmarkLayout};
use std::io;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Figure 5b: metadata cache hit rate as a function of total metadata
/// cache capacity. Paper: most benchmarks hit well; 351.palm and
/// 355.seismic are the stragglers.
pub fn fig05b(cfg: &RunConfig) -> io::Result<()> {
    let sizes_kb = [8u32, 16, 32, 64, 128, 256, 512];
    let accesses = cfg.scaled(400_000);
    let slices = 32u64;
    let mut rows = Vec::new();
    for bench in all_benchmarks() {
        let mut row = vec![bench.name.to_string()];
        for &size_kb in &sizes_kb {
            let lines_per_slice = ((size_kb as usize) << 10) / 32 / slices as usize;
            let ways = 4.min(lines_per_slice.max(1));
            let mut caches: Vec<SectoredCache> = (0..slices)
                .map(|_| SectoredCache::new(lines_per_slice.max(ways), ways))
                .collect();
            let mut hits = 0u64;
            let mut total = 0u64;
            for access in bench.trace(cfg.seed).take(accesses as usize) {
                let line = access.entry / 64;
                let slice = (splitmix64(line) % slices) as usize;
                total += 1;
                match caches[slice].lookup(line, 0b1111) {
                    Lookup::Hit => hits += 1,
                    _ => {
                        caches[slice].fill(line, 0b1111, false);
                    }
                }
            }
            row.push(pct(hits as f64 / total as f64));
        }
        rows.push(row);
    }
    let header = [
        "benchmark",
        "8KB",
        "16KB",
        "32KB",
        "64KB",
        "128KB",
        "256KB",
        "512KB",
    ];
    print_table(
        "Figure 5b: metadata cache hit rate vs total size",
        &header,
        &rows,
    );
    println!("  paper: high hit rates except 351.palm and 355.seismic; 64 KB chosen (§3.2)");
    write_csv(&cfg.results_dir, "fig05b", &header, &rows)?;
    Ok(())
}

/// Figure 10: fast-model-vs-reference correlation and simulation speed.
///
/// The paper correlates its dependency-driven simulator against V100
/// silicon (r = 0.989) and shows a two-orders-of-magnitude speed advantage
/// over GPGPU-Sim. Silicon is unavailable here, so we correlate the fast
/// block-granular model against the detailed sector/bank-granular mode
/// across a sweep of microbenchmark configurations (see DESIGN.md §3).
pub fn fig10(cfg: &RunConfig) -> io::Result<()> {
    let accesses = cfg.scaled(60_000);
    let mut fast_cycles = Vec::new();
    let mut detailed_cycles = Vec::new();
    let mut fast_wall = 0.0;
    let mut detailed_wall = 0.0;
    let mut rows = Vec::new();
    let gpu = GpuConfig::p100();

    // Microbenchmark grid: footprint × sector pattern × lanes × compression.
    let mut case = 0u64;
    for footprint in [1u64 << 14, 1 << 17, 1 << 20] {
        for mask in [0b1111u8, 0b0001] {
            for lanes in [448u32, 1792, 3584] {
                for device_sectors in [1u8, 2, 4] {
                    case += 1;
                    let layout = UniformLayout {
                        entries: footprint,
                        placement: EntryPlacement::device(device_sectors),
                    };
                    let exec = ExecConfig {
                        lanes,
                        compute_cycles: 24.0,
                        accesses,
                    };
                    let seed = cfg.seed ^ case;
                    let mut trace_a = micro_trace(footprint, mask, seed);
                    let fast = Engine::new(gpu, exec, MemoryMode::Buddy, Fidelity::Fast, &layout)
                        .run(&mut trace_a);
                    let mut trace_b = micro_trace(footprint, mask, seed);
                    let detailed =
                        Engine::new(gpu, exec, MemoryMode::Buddy, Fidelity::Detailed, &layout)
                            .run(&mut trace_b);
                    fast_wall += fast.wall_seconds;
                    detailed_wall += detailed.wall_seconds;
                    fast_cycles.push(fast.cycles.ln());
                    detailed_cycles.push(detailed.cycles.ln());
                    rows.push(vec![
                        case.to_string(),
                        footprint.to_string(),
                        format!("{mask:04b}"),
                        lanes.to_string(),
                        device_sectors.to_string(),
                        format!("{:.0}", fast.cycles),
                        format!("{:.0}", detailed.cycles),
                    ]);
                }
            }
        }
    }
    let r = correlation(&fast_cycles, &detailed_cycles);
    let header = [
        "case",
        "footprint",
        "mask",
        "lanes",
        "sectors",
        "fast_cycles",
        "detailed_cycles",
    ];
    print_table("Figure 10: fast vs detailed model", &header, &rows);
    println!(
        "  correlation (log cycles): r = {r:.3} over {} cases (paper: 0.989 vs silicon)",
        rows.len()
    );
    println!(
        "  speed: fast {:.2}s vs detailed {:.2}s wall ({:.1}x; paper reports ~100x vs GPGPU-Sim)",
        fast_wall,
        detailed_wall,
        detailed_wall / fast_wall.max(1e-9)
    );
    write_csv(&cfg.results_dir, "fig10", &header, &rows)?;
    Ok(())
}

fn micro_trace(entries: u64, mask: u8, seed: u64) -> impl Iterator<Item = MemRequest> {
    (0..).map(move |i| {
        let h = splitmix64(seed ^ i);
        let entry = if mask == 0b1111 {
            // streaming
            (seed.wrapping_add(i * 7)) % entries
        } else {
            h % entries
        };
        MemRequest {
            entry,
            sector_mask: mask,
            write: h % 5 == 0,
            to_host: false,
        }
    })
}

/// One benchmark's Figure 11 row.
#[derive(Debug, Clone)]
pub struct Fig11Point {
    /// Benchmark name.
    pub name: String,
    /// HPC or DL for the geomeans.
    pub is_hpc: bool,
    /// Bandwidth-only compression, normalized performance.
    pub bandwidth_only: f64,
    /// Buddy at 50/100/150/200 GB/s, normalized performance.
    pub buddy: [f64; 4],
}

/// Computes the Figure 11 sweep.
pub fn fig11_points(cfg: &RunConfig) -> Vec<Fig11Point> {
    // Trace length calibrated so the baseline sits near (not past) the DRAM
    // bandwidth wall, matching the paper's ideal-GPU operating point; much
    // longer synthetic traces drive every benchmark fully DRAM-bound and
    // inflate compression gains (see DESIGN.md §5 on calibration).
    let accesses = if cfg.quick { 25_000 } else { 60_000 };
    let link_sweep = [50.0, 100.0, 150.0, 200.0];
    let mut points = Vec::new();
    for bench in all_benchmarks() {
        let profiles = profile_benchmark(&bench, if cfg.quick { 1024 } else { 4096 }, cfg.seed);
        let outcome = choose_targets(&profiles, &ProfileConfig::default());
        let run = |mode: MemoryMode, link: f64| -> SimStats {
            let gpu = GpuConfig::p100().with_link_bandwidth(link);
            let exec = ExecConfig::from_profile(
                &gpu,
                bench.access.mlp,
                bench.access.compute_per_access as f64,
                accesses,
            );
            match mode {
                MemoryMode::Uncompressed => {
                    let layout = BenchmarkLayout::uncompressed(&bench);
                    Engine::new(gpu, exec, mode, Fidelity::Fast, &layout)
                        .run(&mut benchmark_requests(&bench, cfg.seed))
                }
                _ => {
                    // Steady-state window: the paper traces "the dominant
                    // kernel ... at a point in execution that exhibits the
                    // average compression ratio"; transient startup zeros
                    // (355.seismic) are mostly gone by then.
                    let layout = BenchmarkLayout::new(&bench, &outcome, 0.9, cfg.seed);
                    Engine::new(gpu, exec, mode, Fidelity::Fast, &layout)
                        .run(&mut benchmark_requests(&bench, cfg.seed))
                }
            }
        };
        // Baseline: ideal large-memory GPU with a 150 GB/s interconnect.
        let baseline = run(MemoryMode::Uncompressed, 150.0);
        let bandwidth_only = run(MemoryMode::BandwidthCompressed, 150.0).speedup_vs(&baseline);
        let buddy = link_sweep.map(|link| run(MemoryMode::Buddy, link).speedup_vs(&baseline));
        points.push(Fig11Point {
            name: bench.name.to_string(),
            is_hpc: bench.suite.is_hpc(),
            bandwidth_only,
            buddy,
        });
    }
    points
}

/// Figure 11: performance relative to the ideal large-capacity GPU.
/// Paper: bandwidth-only +5.5% average; Buddy within 1% (HPC) / 2.2% (DL)
/// at 150 GB/s; >20% average slowdown at 50 GB/s.
pub fn fig11(cfg: &RunConfig) -> io::Result<Vec<Fig11Point>> {
    let points = fig11_points(cfg);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                f3(p.bandwidth_only),
                f3(p.buddy[0]),
                f3(p.buddy[1]),
                f3(p.buddy[2]),
                f3(p.buddy[3]),
            ]
        })
        .collect();
    let header = [
        "benchmark",
        "bw_only@150",
        "buddy@50",
        "buddy@100",
        "buddy@150",
        "buddy@200",
    ];
    print_table(
        "Figure 11: performance vs ideal GPU (normalized)",
        &header,
        &rows,
    );
    let gm = |f: &dyn Fn(&Fig11Point) -> f64, hpc: Option<bool>| {
        geomean(
            points
                .iter()
                .filter(|p| hpc.map_or(true, |h| p.is_hpc == h))
                .map(f),
        )
    };
    println!(
        "  bandwidth-only GMEAN: {:.3} (paper ~1.055 overall)",
        gm(&|p| p.bandwidth_only, None)
    );
    println!(
        "  buddy@150 GMEAN: HPC {:.3} (paper ≥0.99) DL {:.3} (paper ≥0.978)",
        gm(&|p| p.buddy[2], Some(true)),
        gm(&|p| p.buddy[2], Some(false))
    );
    println!(
        "  buddy@50 GMEAN: {:.3} (paper <0.8); buddy@200 GMEAN: {:.3} (paper ~1.02)",
        gm(&|p| p.buddy[0], None),
        gm(&|p| p.buddy[3], None)
    );
    write_csv(&cfg.results_dir, "fig11", &header, &rows)?;
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use buddy_compression::workloads::Scale;

    #[test]
    fn microbenchmark_correlation_is_high() {
        // A reduced Figure 10 grid must correlate strongly.
        let gpu = GpuConfig::p100();
        let mut fast = Vec::new();
        let mut detailed = Vec::new();
        for (footprint, lanes) in [(1u64 << 14, 448u32), (1 << 18, 1792), (1 << 18, 3584)] {
            let layout = UniformLayout {
                entries: footprint,
                placement: EntryPlacement::device(2),
            };
            let exec = ExecConfig {
                lanes,
                compute_cycles: 24.0,
                accesses: 20_000,
            };
            let f = Engine::new(gpu, exec, MemoryMode::Buddy, Fidelity::Fast, &layout)
                .run(&mut micro_trace(footprint, 0b1111, 1));
            let d = Engine::new(gpu, exec, MemoryMode::Buddy, Fidelity::Detailed, &layout)
                .run(&mut micro_trace(footprint, 0b1111, 1));
            fast.push(f.cycles.ln());
            detailed.push(d.cycles.ln());
        }
        assert!(
            correlation(&fast, &detailed) > 0.95,
            "fast/detailed correlation too low: {}",
            correlation(&fast, &detailed)
        );
    }

    #[test]
    fn buddy_link_bandwidth_is_monotone_for_dl() {
        // AlexNet has real buddy traffic: its performance must not degrade
        // as the link gets faster.
        let mut bench = buddy_compression::workloads::by_name("AlexNet").unwrap();
        bench.scale = Scale::test();
        let cfg = RunConfig {
            quick: true,
            results_dir: std::env::temp_dir().join("buddy-bench-perf"),
            seed: 3,
            ..Default::default()
        };
        let profiles = profile_benchmark(&bench, 1024, cfg.seed);
        let outcome = choose_targets(&profiles, &ProfileConfig::default());
        let mut perf = Vec::new();
        for link in [50.0, 150.0] {
            let gpu = GpuConfig::p100().with_link_bandwidth(link);
            let exec = ExecConfig::from_profile(&gpu, bench.access.mlp, 40.0, 30_000);
            let layout = BenchmarkLayout::new(&bench, &outcome, 0.5, cfg.seed);
            let stats = Engine::new(gpu, exec, MemoryMode::Buddy, Fidelity::Fast, &layout)
                .run(&mut benchmark_requests(&bench, cfg.seed));
            perf.push(stats.cycles);
        }
        assert!(
            perf[1] <= perf[0] * 1.02,
            "150 GB/s ({:.0}) should not be slower than 50 GB/s ({:.0})",
            perf[1],
            perf[0]
        );
    }
}
