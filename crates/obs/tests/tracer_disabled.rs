//! With the `obs-trace` feature off, the tracer must compile down to
//! inert no-ops: zero totals, an empty export, and a guard type with no
//! destructor side effects. These tests pin that contract so hot-path
//! call sites can stay unconditional.
#![cfg(not(feature = "obs-trace"))]

use buddy_obs::trace::{
    export_chrome_trace, is_enabled, record_span, ring_capacity, span, span_with_arg, timed, totals,
};
use buddy_obs::SpanKind;
use std::time::Duration;

#[test]
fn disabled_mode_reports_itself() {
    assert!(!is_enabled());
    assert_eq!(ring_capacity(), 0);
}

#[test]
fn spans_are_inert_and_totals_stay_zero() {
    {
        let _g = span(SpanKind::CodecCompress);
        let _h = span_with_arg(SpanKind::ShardLockWait, 7);
        record_span(SpanKind::BuddyIo, Duration::from_millis(5));
    }
    let v = timed(SpanKind::QueueWait, || 21 * 2);
    assert_eq!(v, 42, "timed still runs the closure");
    let t = totals();
    for kind in SpanKind::ALL {
        assert_eq!(t.of(kind).count, 0);
        assert_eq!(t.of(kind).total_ns, 0);
    }
}

#[test]
fn export_is_the_empty_trace_document() {
    let _g = span(SpanKind::RetargetMigrate);
    assert_eq!(export_chrome_trace(), "{\"traceEvents\":[]}");
}
