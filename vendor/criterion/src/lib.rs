//! Minimal, offline, API-compatible subset of the `criterion` benchmark
//! harness (0.5 line).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace pins `criterion` to this shim (see
//! `[workspace.dependencies]` in the root manifest). It supports the surface
//! the `buddy-bench` benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::bench_function`],
//! [`Throughput`], [`BenchmarkId`], [`criterion_group!`] and
//! [`criterion_main!`] — and reports mean wall-clock time per iteration
//! (plus derived throughput) on stdout. No statistical analysis, plotting,
//! or baseline comparison: swap the real crate back in for those.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export hint to the optimizer to keep a value alive.
///
/// Forwarded to [`std::hint::black_box`], which is what recent `criterion`
/// versions use internally.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark manager: holds configuration and names groups.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }
}

/// Throughput annotation: converts per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark identifier, `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter display value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group only (as in the real
    /// criterion, the override does not leak into later groups).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark with an input value passed by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.criterion.measurement_time);
        f(&mut bencher, input);
        self.report(&id.id, &bencher);
        self
    }

    /// Runs a benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.criterion.measurement_time);
        f(&mut bencher);
        self.report(&id.id, &bencher);
        self
    }

    /// Ends the group (no-op beyond matching the real API).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        let per_iter = bencher.mean_iter_time();
        let rate = self.throughput.map(|t| match t {
            Throughput::Bytes(b) => format!(
                " ({:.1} MiB/s)",
                b as f64 / per_iter.max(1e-12) / (1024.0 * 1024.0)
            ),
            Throughput::Elements(e) => {
                format!(" ({:.2} Melem/s)", e as f64 / per_iter.max(1e-12) / 1e6)
            }
        });
        println!(
            "bench {}/{:<40} {:>12.1} ns/iter{}",
            self.name,
            id,
            per_iter * 1e9,
            rate.unwrap_or_default()
        );
    }
}

/// Times a routine: measures mean wall-clock time per iteration.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: usize, budget: Duration) -> Self {
        Self {
            samples,
            budget,
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Runs `routine` repeatedly and records its timing.
    ///
    /// A short calibration pass sizes the per-sample iteration count so the
    /// whole benchmark stays within the configured measurement time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in budget / samples?
        let start = Instant::now();
        black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(20));
        let per_sample = (self.budget.as_nanos() / self.samples.max(1) as u128)
            .checked_div(one.as_nanos())
            .unwrap_or(1)
            .clamp(1, 1_000_000) as u64;

        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.total += start.elapsed();
            self.iters += per_sample;
        }
    }

    fn mean_iter_time(&self) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        self.total.as_secs_f64() / self.iters as f64
    }
}

/// Declares a benchmark group function, mirroring `criterion`'s macro.
///
/// Supports both the struct form (`name = …; config = …; targets = …`) and
/// the simple list form (`criterion_group!(benches, f1, f2)`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion`'s macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(128));
        let mut ran = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran += 1;
        });
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * x));
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 2);
    }

    #[test]
    fn group_sample_size_does_not_leak_into_later_groups() {
        let mut c = Criterion::default()
            .sample_size(4)
            .measurement_time(Duration::from_millis(2));
        let mut group_a = c.benchmark_group("a");
        group_a.sample_size(2);
        let mut a_iters = 0u32;
        group_a.bench_function("noop", |b| {
            b.iter(|| a_iters += 1);
        });
        group_a.finish();
        drop(group_a);
        // The next group must see the configured default, not group_a's 2.
        let group_b = c.benchmark_group("b");
        assert_eq!(group_b.sample_size, 4);
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_param() {
        let id = BenchmarkId::new("write", "2x");
        assert_eq!(id.id, "write/2x");
    }
}
