//! Roofline-style training throughput model (Figures 13b and 13c).
//!
//! Per layer and iteration: compute time is `3 × forward FLOPs` (forward
//! plus the two backward GEMMs) divided by peak throughput derated by a
//! batch-dependent efficiency; memory time is the layer's weight and
//! activation traffic over DRAM bandwidth; the layer takes the max of the
//! two (roofline) plus a fixed kernel-launch overhead. Small batches
//! under-utilize the GPU (efficiency rises with batch and saturates), which
//! produces the throughput plateau of Figure 13b.

use crate::layers::{Network, BYTES_PER_ELEM};

/// GPU throughput parameters (defaults model the paper's Titan Xp).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuPerf {
    /// Peak fp32 throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Fixed overhead per kernel launch, in microseconds.
    pub launch_overhead_us: f64,
    /// Batch size at which GEMM efficiency reaches half its maximum.
    pub efficiency_half_batch: f64,
    /// Maximum achievable fraction of peak.
    pub max_efficiency: f64,
    /// Device memory capacity in bytes (12 GB Titan Xp).
    pub memory_bytes: u64,
}

impl Default for GpuPerf {
    fn default() -> Self {
        Self {
            peak_gflops: 12_150.0,
            dram_gbps: 547.0,
            launch_overhead_us: 6.0,
            // GEMM/conv efficiency keeps improving well past batch 64 —
            // the §4.4 observation that "most DL networks require a
            // mini-batch of at least 64 or 128 … to achieve near-maximum
            // throughput".
            efficiency_half_batch: 48.0,
            max_efficiency: 0.62,
            // 12 GB Titan Xp minus ~1 GB CUDA context and reserved memory.
            memory_bytes: 11 << 30,
        }
    }
}

impl GpuPerf {
    /// Fraction of peak compute achieved at a mini-batch size.
    pub fn efficiency(&self, batch: u64) -> f64 {
        let b = batch as f64;
        self.max_efficiency * b / (b + self.efficiency_half_batch)
    }
}

/// Estimated time of one training iteration, in microseconds.
pub fn iteration_time_us(net: &Network, batch: u64, gpu: &GpuPerf) -> f64 {
    let eff = gpu.efficiency(batch).max(1e-6);
    let mut total_us = 0.0;
    for layer in &net.layers {
        // Forward + backward-data + backward-weights.
        let flops = 3.0 * layer.flops as f64 * batch as f64;
        let compute_us = flops / (gpu.peak_gflops * 1e3 * eff);
        let bytes = (layer.params as f64 * 3.0 + layer.act_elems as f64 * batch as f64 * 2.0)
            * BYTES_PER_ELEM as f64;
        let memory_us = bytes / (gpu.dram_gbps * 1e3);
        total_us += compute_us.max(memory_us) + 3.0 * gpu.launch_overhead_us;
    }
    total_us
}

/// Training throughput in samples (images) per second (Figure 13b).
pub fn throughput(net: &Network, batch: u64, gpu: &GpuPerf) -> f64 {
    if batch == 0 {
        return 0.0;
    }
    let t = iteration_time_us(net, batch, gpu);
    batch as f64 / (t * 1e-6)
}

/// The Figure 13c experiment for one network: throughput at the largest
/// batch that fits in device memory, against the largest batch that fits in
/// `compression_ratio ×` the memory under Buddy Compression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacitySpeedup {
    /// Largest batch fitting the uncompressed 12 GB device.
    pub baseline_batch: u64,
    /// Largest batch fitting with Buddy Compression.
    pub buddy_batch: u64,
    /// Baseline throughput (samples/s).
    pub baseline_throughput: f64,
    /// Buddy throughput (samples/s), including the compression slowdown.
    pub buddy_throughput: f64,
}

impl CapacitySpeedup {
    /// Relative speedup from the larger batch.
    pub fn speedup(&self) -> f64 {
        if self.baseline_throughput == 0.0 {
            1.0
        } else {
            self.buddy_throughput / self.baseline_throughput
        }
    }
}

/// Computes the Figure 13c point for `net`.
///
/// `compression_ratio` is the network's measured Buddy compression ratio;
/// `buddy_overhead` the per-access performance cost of running compressed
/// (the paper's §4.2 result: ≈2.2% for DL at 150 GB/s).
pub fn capacity_speedup(
    net: &Network,
    gpu: &GpuPerf,
    compression_ratio: f64,
    buddy_overhead: f64,
    max_batch: u64,
) -> CapacitySpeedup {
    let baseline_batch = net.max_batch_within(gpu.memory_bytes).min(max_batch).max(1);
    let expanded = (gpu.memory_bytes as f64 * compression_ratio) as u64;
    let buddy_batch = net.max_batch_within(expanded).min(max_batch).max(1);
    let baseline_throughput = throughput(net, baseline_batch, gpu);
    let buddy_throughput = throughput(net, buddy_batch, gpu) * (1.0 - buddy_overhead);
    CapacitySpeedup {
        baseline_batch,
        buddy_batch,
        baseline_throughput,
        buddy_throughput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::networks::{alexnet, all_networks, biglstm, vgg16};

    #[test]
    fn efficiency_saturates() {
        let gpu = GpuPerf::default();
        assert!(gpu.efficiency(4) < gpu.efficiency(64));
        assert!(gpu.efficiency(64) < gpu.efficiency(512));
        assert!(gpu.efficiency(512) <= gpu.max_efficiency);
        let gain_small = gpu.efficiency(32) / gpu.efficiency(16);
        let gain_large = gpu.efficiency(512) / gpu.efficiency(256);
        assert!(gain_small > gain_large, "efficiency curve must flatten");
    }

    #[test]
    fn throughput_rises_then_plateaus() {
        let gpu = GpuPerf::default();
        for (net, _, _) in all_networks() {
            let t16 = throughput(&net, 16, &gpu);
            let t64 = throughput(&net, 64, &gpu);
            let t256 = throughput(&net, 256, &gpu);
            assert!(
                t64 > t16 * 1.05,
                "{}: 64 ≫ 16 ({t64:.0} vs {t16:.0})",
                net.name
            );
            let plateau_gain = t256 / t64;
            assert!(
                plateau_gain < t64 / t16,
                "{}: gains must diminish ({plateau_gain:.2})",
                net.name
            );
        }
    }

    #[test]
    fn vgg_throughput_magnitude_is_sane() {
        // Titan Xp trains VGG16 at roughly 50–250 images/s; a conservative
        // efficiency model lands at the low end of that order of magnitude.
        let gpu = GpuPerf::default();
        let t = throughput(&vgg16(), 64, &gpu);
        assert!((20.0..600.0).contains(&t), "VGG16 {t:.0} img/s");
    }

    #[test]
    fn capacity_speedup_for_capacity_limited_networks() {
        // VGG16 and BigLSTM cannot reach batch 64 on 12 GB (§4.4); Buddy's
        // extra capacity must yield a real speedup.
        let gpu = GpuPerf::default();
        for net in [vgg16(), biglstm()] {
            let cs = capacity_speedup(&net, &gpu, 1.5, 0.022, 512);
            assert!(
                cs.baseline_batch < 64,
                "{}: baseline batch {} should be capacity-limited",
                net.name,
                cs.baseline_batch
            );
            assert!(cs.buddy_batch > cs.baseline_batch);
            assert!(
                cs.speedup() > 1.10,
                "{}: speedup {:.2}",
                net.name,
                cs.speedup()
            );
        }
    }

    #[test]
    fn capacity_speedup_small_for_unconstrained_networks() {
        // AlexNet at batch 256 fits easily: speedup comes only from even
        // larger batches, which plateau — expect a modest gain.
        let gpu = GpuPerf::default();
        let cs = capacity_speedup(&alexnet(), &gpu, 1.9, 0.022, 512);
        assert!(cs.baseline_batch >= 256);
        assert!(cs.speedup() < 1.15, "AlexNet speedup {:.2}", cs.speedup());
    }

    #[test]
    fn zero_batch_throughput_is_zero() {
        let gpu = GpuPerf::default();
        assert_eq!(throughput(&alexnet(), 0, &gpu), 0.0);
    }
}
