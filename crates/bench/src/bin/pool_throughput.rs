//! Pool throughput sweep: shard count × client count × codec over one
//! workload trace, reporting aggregate entries/s, logical GB/s and
//! per-batch latency percentiles. Pass `--quick` for a reduced grid and
//! `--codec <name>` to choose the headline codec.

fn main() -> std::io::Result<()> {
    let cfg = buddy_bench::RunConfig::from_args();
    buddy_bench::poolfig::pool_throughput(&cfg)
}
