//! Figure 13: the DL training case study.

use crate::capacity::fig07_points;
use crate::report::{f3, print_table, write_csv, RunConfig};
use buddy_compression::dl_model::{
    batch_size_sweep, capacity_speedup, networks, throughput, GpuPerf,
};
use std::io;

/// Figure 13a: training memory footprint versus mini-batch size.
/// Paper: AlexNet transitions late (batch ~96); the others are
/// activation-dominated by batch 32.
pub fn fig13a(cfg: &RunConfig) -> io::Result<()> {
    let batches = [1u64, 2, 4, 8, 16, 32, 64, 96, 128, 192, 256, 384, 512];
    let mut rows = Vec::new();
    for (net, _, _) in networks::all_networks() {
        let mut row = vec![net.name.to_string()];
        for &b in &batches {
            row.push(f3(net.footprint_bytes(b) as f64 / (1u64 << 30) as f64));
        }
        rows.push(row);
    }
    let mut header = vec!["network"];
    let names: Vec<String> = batches.iter().map(|b| format!("b{b}")).collect();
    header.extend(names.iter().map(|s| s.as_str()));
    print_table(
        "Figure 13a: memory footprint (GB) vs batch size",
        &header,
        &rows,
    );
    write_csv(&cfg.results_dir, "fig13a", &header, &rows)?;
    Ok(())
}

/// Figure 13b: projected training throughput versus mini-batch size,
/// normalized to batch 16. Paper: throughput rises then plateaus once the
/// GPU is fully utilized.
pub fn fig13b(cfg: &RunConfig) -> io::Result<()> {
    let gpu = GpuPerf::default();
    let batches = [16u64, 32, 64, 128, 256, 512];
    let mut rows = Vec::new();
    for (net, _, _) in networks::all_networks() {
        let base = throughput(&net, 16, &gpu);
        let mut row = vec![net.name.to_string()];
        for &b in &batches {
            row.push(f3(throughput(&net, b, &gpu) / base));
        }
        rows.push(row);
    }
    let header = ["network", "b16", "b32", "b64", "b128", "b256", "b512"];
    print_table(
        "Figure 13b: throughput vs batch (normalized to 16)",
        &header,
        &rows,
    );
    write_csv(&cfg.results_dir, "fig13b", &header, &rows)?;
    Ok(())
}

/// Figure 13c: projected speedup from training at the larger batch size
/// that Buddy Compression's capacity allows. Paper: average +14%; BigLSTM
/// +28% and VGG16 +30%.
///
/// Per-network compression ratios come from this reproduction's own
/// Figure 7 results; the 2.2% §4.2 performance overhead is charged to the
/// Buddy configuration.
pub fn fig13c(cfg: &RunConfig) -> io::Result<()> {
    let gpu = GpuPerf::default();
    let fig7 = fig07_points(cfg);
    let ratio_of = |name: &str| {
        fig7.iter()
            .find(|p| p.name == name)
            .map(|p| p.final_design.0)
            .unwrap_or(1.5)
    };
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for (net, _, _) in networks::all_networks() {
        let ratio = ratio_of(net.name);
        let cs = capacity_speedup(&net, &gpu, ratio, 0.022, 1024);
        speedups.push(cs.speedup());
        rows.push(vec![
            net.name.to_string(),
            f3(ratio),
            cs.baseline_batch.to_string(),
            cs.buddy_batch.to_string(),
            f3(cs.speedup()),
        ]);
    }
    let header = [
        "network",
        "buddy_ratio",
        "baseline_batch",
        "buddy_batch",
        "speedup",
    ];
    print_table(
        "Figure 13c: speedup from Buddy-enabled larger batches",
        &header,
        &rows,
    );
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!(
        "  average speedup {:.1}% (paper: 14%; BigLSTM 28%, VGG16 30%)",
        100.0 * (avg - 1.0)
    );
    write_csv(&cfg.results_dir, "fig13c", &header, &rows)?;
    Ok(())
}

/// Figure 13d: validation accuracy versus mini-batch size — a real SGD +
/// batch-norm experiment (see `dl_model::training`). Paper: batches 16/32
/// fail to reach maximum accuracy; 64 reaches it but converges slower than
/// the larger batches.
pub fn fig13d(cfg: &RunConfig) -> io::Result<()> {
    let epochs = if cfg.quick { 30 } else { 100 };
    let batches = [16usize, 32, 64, 128, 256];
    let results = batch_size_sweep(&batches, epochs, cfg.seed);
    // Accuracy curves: one row per epoch checkpoint.
    let checkpoints: Vec<usize> = (0..epochs)
        .step_by((epochs / 10).max(1))
        .chain([epochs - 1])
        .collect();
    let mut rows = Vec::new();
    for &e in &checkpoints {
        let mut row = vec![format!("epoch {}", e + 1)];
        for r in &results {
            row.push(f3(r.val_accuracy[e]));
        }
        rows.push(row);
    }
    let header = ["checkpoint", "b16", "b32", "b64", "b128", "b256"];
    print_table(
        "Figure 13d: validation accuracy vs batch size",
        &header,
        &rows,
    );
    for r in &results {
        println!(
            "  batch {:>3}: plateau {:.3}, epochs-to-90%-of-best {:?}",
            r.batch,
            r.final_plateau(10),
            r.epochs_to_reach(0.9 * r.best())
        );
    }
    println!("  paper: 16/32 below max accuracy; 64 reaches max but converges slower");
    write_csv(&cfg.results_dir, "fig13d", &header, &rows)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_harnesses_run_quick() {
        let cfg = RunConfig {
            quick: true,
            results_dir: std::env::temp_dir().join("buddy-bench-dl"),
            seed: 13,
            ..Default::default()
        };
        fig13a(&cfg).unwrap();
        fig13b(&cfg).unwrap();
        fig13d(&cfg).unwrap();
        for f in ["fig13a.csv", "fig13b.csv", "fig13d.csv"] {
            assert!(cfg.results_dir.join(f).exists(), "{f} missing");
        }
    }
}
