//! Simulator configuration — the paper's Table 2.
//!
//! The values model an NVIDIA P100-class GPU with Volta-class interconnect:
//! 1.3 GHz cores, a 4 MB sectored L2 in 32 slices, 32 HBM2 channels totaling
//! 900 GB/s, six NVLink2 bricks totaling 150 GB/s full-duplex, a 4 KB
//! 4-way metadata cache per L2 slice, and an 11-cycle (de)compression
//! latency.

use std::fmt;

/// GPU machine configuration (Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Streaming multiprocessors.
    pub sms: u32,
    /// Core clock in GHz (all latencies below are in core cycles).
    pub core_clock_ghz: f64,
    /// Maximum resident 32-thread warps per SM.
    pub max_warps_per_sm: u32,
    /// Shared L2 capacity in bytes.
    pub l2_bytes: u64,
    /// L2 slice count (one metadata cache per slice).
    pub l2_slices: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// Cache line size in bytes (also the compression granularity).
    pub line_bytes: u32,
    /// Sector size in bytes (DRAM access granularity).
    pub sector_bytes: u32,
    /// HBM2 channel count.
    pub dram_channels: u32,
    /// Aggregate DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbps: f64,
    /// DRAM access latency in core cycles.
    pub dram_latency_cycles: f64,
    /// Interconnect (NVLink2-class) bandwidth in GB/s, per direction
    /// (full-duplex). 150 GB/s models six NVLink2 bricks; the Figure 11
    /// sweep varies this from 50 to 200.
    pub link_bandwidth_gbps: f64,
    /// Interconnect round-trip latency in core cycles.
    pub link_latency_cycles: f64,
    /// L2 hit latency in core cycles.
    pub l2_hit_latency_cycles: f64,
    /// Compression/decompression pipeline latency in cycles (the paper
    /// conservatively models 11 DRAM cycles, after Kim et al.).
    pub decompression_latency_cycles: f64,
    /// Metadata cache capacity per L2 slice, in bytes (default 4 KB).
    pub metadata_cache_bytes_per_slice: u32,
    /// Metadata cache associativity.
    pub metadata_cache_ways: u32,
}

impl GpuConfig {
    /// The paper's P100-class configuration (Table 2).
    pub fn p100() -> Self {
        Self {
            sms: 56,
            core_clock_ghz: 1.3,
            max_warps_per_sm: 64,
            l2_bytes: 4 << 20,
            l2_slices: 32,
            l2_ways: 16,
            line_bytes: 128,
            sector_bytes: 32,
            dram_channels: 32,
            dram_bandwidth_gbps: 900.0,
            dram_latency_cycles: 300.0,
            link_bandwidth_gbps: 150.0,
            link_latency_cycles: 400.0,
            l2_hit_latency_cycles: 120.0,
            decompression_latency_cycles: 11.0,
            metadata_cache_bytes_per_slice: 4096,
            metadata_cache_ways: 4,
        }
    }

    /// The same machine with a different interconnect bandwidth (the
    /// Figure 11 sweep: 50, 100, 150, 200 GB/s full-duplex).
    pub fn with_link_bandwidth(self, gbps: f64) -> Self {
        Self {
            link_bandwidth_gbps: gbps,
            ..self
        }
    }

    /// Core cycles one 32 B sector occupies one DRAM channel.
    pub fn dram_sector_cycles(&self) -> f64 {
        let per_channel_bps = self.dram_bandwidth_gbps * 1e9 / self.dram_channels as f64;
        self.sector_bytes as f64 / per_channel_bps * self.core_clock_ghz * 1e9
    }

    /// Core cycles one 32 B sector occupies the interconnect (per
    /// direction; the link is modeled as one aggregate full-duplex queue).
    pub fn link_sector_cycles(&self) -> f64 {
        self.sector_bytes as f64 / (self.link_bandwidth_gbps * 1e9) * self.core_clock_ghz * 1e9
    }

    /// Number of L2 cache lines.
    pub fn l2_lines(&self) -> usize {
        (self.l2_bytes / self.line_bytes as u64) as usize
    }

    /// Lines in one metadata cache slice (32 B metadata lines).
    pub fn metadata_cache_lines_per_slice(&self) -> usize {
        (self.metadata_cache_bytes_per_slice / 32) as usize
    }

    /// Total metadata cache capacity across slices, in bytes.
    pub fn metadata_cache_total_bytes(&self) -> u64 {
        self.metadata_cache_bytes_per_slice as u64 * self.l2_slices as u64
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::p100()
    }
}

impl fmt::Display for GpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Core      {} SMs @ {:.1} GHz; max {} warps/SM",
            self.sms, self.core_clock_ghz, self.max_warps_per_sm
        )?;
        writeln!(
            f,
            "Caches    {} MB shared L2, {} slices, {} B lines ({} B sectors), {} ways",
            self.l2_bytes >> 20,
            self.l2_slices,
            self.line_bytes,
            self.sector_bytes,
            self.l2_ways
        )?;
        writeln!(
            f,
            "Off-chip  {} HBM2 channels ({:.0} GB/s); interconnect {:.0} GB/s full-duplex",
            self.dram_channels, self.dram_bandwidth_gbps, self.link_bandwidth_gbps
        )?;
        write!(
            f,
            "Buddy     {} KB metadata cache per L2 slice, {}-way; +{:.0}-cycle (de)compression",
            self.metadata_cache_bytes_per_slice >> 10,
            self.metadata_cache_ways,
            self.decompression_latency_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p100_matches_table_2() {
        let c = GpuConfig::p100();
        assert_eq!(c.sms, 56);
        assert_eq!(c.l2_bytes, 4 << 20);
        assert_eq!(c.l2_slices, 32);
        assert_eq!(c.dram_channels, 32);
        assert_eq!(c.dram_bandwidth_gbps, 900.0);
        assert_eq!(c.link_bandwidth_gbps, 150.0);
        assert_eq!(c.metadata_cache_bytes_per_slice, 4096);
        assert_eq!(c.decompression_latency_cycles, 11.0);
    }

    #[test]
    fn sector_service_times() {
        let c = GpuConfig::p100();
        // 32 B / (900/32 GB/s) * 1.3 GHz = 1.479 cycles.
        assert!((c.dram_sector_cycles() - 1.4791).abs() < 1e-3);
        // 32 B / 150 GB/s * 1.3 GHz = 0.277 cycles.
        assert!((c.link_sector_cycles() - 0.2773).abs() < 1e-3);
        // Halving the link bandwidth doubles the service time.
        let slow = c.with_link_bandwidth(75.0);
        assert!((slow.link_sector_cycles() - 2.0 * c.link_sector_cycles()).abs() < 1e-9);
    }

    #[test]
    fn derived_geometry() {
        let c = GpuConfig::p100();
        assert_eq!(c.l2_lines(), 32768);
        assert_eq!(c.metadata_cache_lines_per_slice(), 128);
        assert_eq!(c.metadata_cache_total_bytes(), 128 << 10);
    }

    #[test]
    fn display_prints_table() {
        let text = GpuConfig::p100().to_string();
        assert!(text.contains("56 SMs"));
        assert!(text.contains("4 MB shared L2"));
        assert!(text.contains("900 GB/s"));
        assert!(text.contains("metadata cache"));
    }
}
