//! Tenant isolation: the whole point of the service layer is that sharing
//! one pool is *invisible* to well-behaved tenants. The anchor property:
//! an N-tenant [`BuddyService`] over one pool is observation-equivalent —
//! same bytes on every read, same error on every invalid access, same
//! per-tenant traffic counters and quota charges — to N independent
//! single-tenant services, whenever no quota binds and capacity is ample.
//! Plus pins for the deliberate *non*-equivalences: cross-tenant denial,
//! stale handles after ownership transfer, and quota enforcement that
//! punishes only the offender.

use buddy_service::{
    AdmissionPolicy, BuddyService, CodecKind, DeviceConfig, Entry, PoolConfig, ServiceAllocId,
    ServiceError, TargetRatio, TenantId, ENTRY_BYTES,
};
use proptest::prelude::*;

const AMPLE: PoolConfig = PoolConfig {
    shards: 2,
    shard_config: DeviceConfig {
        device_capacity: 8 << 20,
        carve_out_factor: 3,
    },
    codec: CodecKind::Bpc,
};

fn entry_of_kind(kind: u8, seed: u64) -> Entry {
    let mut entry = [0u8; ENTRY_BYTES];
    match kind % 4 {
        0 => {}
        1 => {
            let w = (seed as u32).to_le_bytes();
            for c in entry.chunks_exact_mut(4) {
                c.copy_from_slice(&w);
            }
        }
        2 => {
            for (i, c) in entry.chunks_exact_mut(4).enumerate() {
                let v = (1u32 << 28) + (seed as u32 & 0x3FF) + i as u32;
                c.copy_from_slice(&v.to_le_bytes());
            }
        }
        _ => {
            let mut state = seed | 1;
            for b in entry.iter_mut() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (state >> 56) as u8;
            }
        }
    }
    entry
}

/// Everything a tenant can observe from one operation.
#[derive(Debug, PartialEq)]
enum Observation {
    Alloc(Result<(TargetRatio, bool), ServiceError>),
    Write(Result<(), ServiceError>),
    Read(Result<Vec<Entry>, ServiceError>),
    Free(Result<(), ServiceError>),
    Retarget(Result<(TargetRatio, TargetRatio, u64), ServiceError>),
}

/// Applies one op for `tenant` against `service`, tracking its live
/// handles positionally so paired runs stay aligned.
fn apply(
    service: &BuddyService,
    tenant: TenantId,
    tenant_tag: u64,
    handles: &mut Vec<(ServiceAllocId, u64)>,
    op: (u8, u64, usize, u64),
) -> Observation {
    let (kind, pos, len, seed) = op;
    match kind % 5 {
        0 => {
            let entries = 16 + pos % 48;
            let target = TargetRatio::DESCENDING[(seed % 5) as usize];
            let name = format!("t{tenant_tag}-a{}", handles.len());
            let r = service.alloc(tenant, &name, entries, target);
            if let Ok(grant) = &r {
                handles.push((grant.id, entries));
            }
            Observation::Alloc(r.map(|g| (g.target, g.demoted)))
        }
        1 if !handles.is_empty() => {
            let (id, entries) = handles[(pos % handles.len() as u64) as usize];
            let start = pos % (entries + 2);
            let batch: Vec<Entry> = (0..len)
                .map(|i| entry_of_kind((seed + i as u64) as u8, seed ^ i as u64))
                .collect();
            Observation::Write(service.write_entries(tenant, id, start, &batch))
        }
        2 if !handles.is_empty() => {
            let (id, entries) = handles[(pos % handles.len() as u64) as usize];
            let start = pos % (entries + 2);
            let mut out = vec![[0u8; ENTRY_BYTES]; len];
            let r = service.read_entries(tenant, id, start, &mut out);
            Observation::Read(r.map(|()| out))
        }
        3 if handles.len() > 1 => {
            let slot = (pos % handles.len() as u64) as usize;
            let (id, _) = handles.remove(slot);
            Observation::Free(service.free(tenant, id))
        }
        4 if !handles.is_empty() => {
            let (id, _) = handles[(pos % handles.len() as u64) as usize];
            let new_target = TargetRatio::DESCENDING[(seed % 5) as usize];
            let r = service.retarget(tenant, id, new_target);
            Observation::Retarget(r.map(|rep| (rep.old_target, rep.new_target, rep.entries)))
        }
        _ => {
            // Op not applicable to current handle state: observe a no-op
            // the same way on both sides.
            Observation::Free(Err(ServiceError::BadHandle))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Three tenants multiplexed onto one service observe *exactly* what
    /// each would observe running alone on its own service: every result,
    /// every read byte, every traffic counter, every quota charge.
    #[test]
    fn shared_service_is_observation_equivalent_to_isolated_runs(
        per_tenant in proptest::collection::vec(
            proptest::collection::vec((0u8..5, any::<u64>(), 0usize..10, any::<u64>()), 1..16),
            3..4,
        ),
    ) {
        let shared = BuddyService::new(AMPLE);
        let shared_tenants: Vec<TenantId> = (0..per_tenant.len())
            .map(|i| {
                shared
                    .register_tenant(&format!("tenant-{i}"), u64::MAX, AdmissionPolicy::Reject)
                    .expect("fresh name")
            })
            .collect();

        for (index, ops) in per_tenant.iter().enumerate() {
            let isolated = BuddyService::new(AMPLE);
            let alone = isolated
                .register_tenant("solo", u64::MAX, AdmissionPolicy::Reject)
                .expect("fresh name");
            let mut shared_handles = Vec::new();
            let mut isolated_handles = Vec::new();
            for &op in ops {
                let seen_shared = apply(
                    &shared,
                    shared_tenants[index],
                    index as u64,
                    &mut shared_handles,
                    op,
                );
                let seen_alone =
                    apply(&isolated, alone, index as u64, &mut isolated_handles, op);
                prop_assert_eq!(seen_shared, seen_alone, "tenant {} diverged on {:?}", index, op);
            }
            prop_assert_eq!(
                shared.tenant_stats(shared_tenants[index]).expect("registered"),
                isolated.tenant_stats(alone).expect("registered"),
                "tenant {} traffic counters diverged", index
            );
            prop_assert_eq!(
                shared.used_bytes(shared_tenants[index]).expect("registered"),
                isolated.used_bytes(alone).expect("registered"),
                "tenant {} quota charge diverged", index
            );
        }
    }
}

#[test]
fn cross_tenant_handles_are_rejected_on_every_path() {
    let service = BuddyService::new(AMPLE);
    let owner = service
        .register_tenant("owner", u64::MAX, AdmissionPolicy::Reject)
        .expect("fresh name");
    let intruder = service
        .register_tenant("intruder", u64::MAX, AdmissionPolicy::Reject)
        .expect("fresh name");
    let grant = service
        .alloc(owner, "secret", 64, TargetRatio::R2)
        .expect("ample capacity");
    let payload = [0x5Au8; ENTRY_BYTES];
    service
        .write_entries(owner, grant.id, 0, &[payload])
        .expect("owner writes");

    let denied = |e: &Result<(), ServiceError>| matches!(e, Err(ServiceError::CrossTenant { .. }));
    assert!(denied(&service.free(intruder, grant.id)));
    assert!(denied(&service.write_entries(
        intruder,
        grant.id,
        0,
        &[payload]
    )));
    let mut out = [[0u8; ENTRY_BYTES]; 1];
    assert!(denied(
        &service.read_entries(intruder, grant.id, 0, &mut out)
    ));
    assert!(matches!(
        service.retarget(intruder, grant.id, TargetRatio::R4),
        Err(ServiceError::CrossTenant { .. })
    ));
    assert!(matches!(
        service.transfer(intruder, grant.id, intruder),
        Err(ServiceError::CrossTenant { .. })
    ));
    // Nothing leaked: the read buffer is untouched and the owner's data
    // is intact.
    assert_eq!(out[0], [0u8; ENTRY_BYTES]);
    service
        .read_entries(owner, grant.id, 0, &mut out)
        .expect("owner reads");
    assert_eq!(out[0], payload);
    // Denials were charged to the intruder, not the owner.
    let rows = service.telemetry().snapshot();
    assert_eq!(rows[0].cross_tenant_denials, 0);
    assert_eq!(rows[1].cross_tenant_denials, 5);
}

#[test]
fn stale_ids_after_ownership_transfer_fail_everywhere() {
    let service = BuddyService::new(AMPLE);
    let a = service
        .register_tenant("a", u64::MAX, AdmissionPolicy::Reject)
        .expect("fresh name");
    let b = service
        .register_tenant("b", u64::MAX, AdmissionPolicy::Reject)
        .expect("fresh name");
    let grant = service
        .alloc(a, "moving", 32, TargetRatio::R2)
        .expect("ample capacity");
    let payload = [7u8; ENTRY_BYTES];
    service
        .write_entries(a, grant.id, 0, &[payload])
        .expect("pre-transfer write");

    let new_id = service.transfer(a, grant.id, b).expect("within quota");

    // The pre-transfer handle is dead for everyone, on every path —
    // BadHandle, not CrossTenant: the generation check fires before any
    // ownership question is asked, so the stale id leaks nothing.
    let stale = grant.id;
    for tenant in [a, b] {
        assert_eq!(service.free(tenant, stale), Err(ServiceError::BadHandle));
        assert_eq!(
            service.write_entries(tenant, stale, 0, &[payload]),
            Err(ServiceError::BadHandle)
        );
        let mut out = [[0u8; ENTRY_BYTES]; 1];
        assert_eq!(
            service.read_entries(tenant, stale, 0, &mut out),
            Err(ServiceError::BadHandle)
        );
        assert!(matches!(
            service.retarget(tenant, stale, TargetRatio::R4),
            Err(ServiceError::BadHandle)
        ));
    }
    // The data survived the move and is readable through the new handle.
    let mut out = [[0u8; ENTRY_BYTES]; 1];
    service
        .read_entries(b, new_id, 0, &mut out)
        .expect("new owner reads");
    assert_eq!(out[0], payload);
}

#[test]
fn quota_enforcement_punishes_only_the_offender() {
    // A noisy neighbour exhausting its own quota changes nothing for the
    // victim: same grants, same bytes, same charges as running alone.
    let victim_script = |service: &BuddyService, victim: TenantId| {
        let mut reads = Vec::new();
        let g1 = service
            .alloc(victim, "v1", 64, TargetRatio::R2)
            .expect("victim within quota");
        let g2 = service
            .alloc(victim, "v2", 64, TargetRatio::R2)
            .expect("victim within quota");
        let payload = [0xC3u8; ENTRY_BYTES];
        service
            .write_entries(victim, g1.id, 0, &[payload])
            .expect("victim writes");
        let mut out = [[0u8; ENTRY_BYTES]; 1];
        service
            .read_entries(victim, g1.id, 0, &mut out)
            .expect("victim reads");
        reads.push(out[0]);
        service.free(victim, g2.id).expect("victim frees");
        (
            g1.target,
            g2.target,
            reads,
            service.used_bytes(victim).expect("registered"),
            service.tenant_stats(victim).expect("registered"),
        )
    };
    let quota = 4 * 64 * TargetRatio::R2.device_bytes_per_entry() as u64;

    // Baseline: victim alone.
    let alone = BuddyService::new(AMPLE);
    let v = alone
        .register_tenant("victim", quota, AdmissionPolicy::Reject)
        .expect("fresh name");
    let baseline = victim_script(&alone, v);

    // Contended: a noisy neighbour burns through its quota first.
    let shared = BuddyService::new(AMPLE);
    let noisy = shared
        .register_tenant("noisy", quota, AdmissionPolicy::Reject)
        .expect("fresh name");
    let v = shared
        .register_tenant("victim", quota, AdmissionPolicy::Reject)
        .expect("fresh name");
    let mut rejections = 0;
    for i in 0..16 {
        match shared.alloc(noisy, &format!("n{i}"), 64, TargetRatio::R2) {
            Ok(_) => {}
            Err(ServiceError::QuotaExceeded { .. }) => rejections += 1,
            Err(e) => panic!("unexpected noisy-neighbour error: {e}"),
        }
    }
    assert_eq!(rejections, 12, "quota fits exactly 4 of the 16 attempts");
    let contended = victim_script(&shared, v);
    assert_eq!(baseline, contended, "victim observed the noisy neighbour");

    // And the ledger says so: only the offender shows rejections.
    let rows = shared.telemetry().snapshot();
    assert_eq!(rows[0].rejections, 12);
    assert_eq!(rows[1].rejections, 0);
    assert_eq!(rows[0].quota_headroom, 0);
}
