//! Analytical deep-learning training model and SGD convergence experiments
//! for the paper's §4.4 case study (Figure 13).
//!
//! The paper quantifies the benefit of Buddy Compression's extra capacity
//! on DL training with three ingredients, all reproduced here:
//!
//! * a **footprint model** ([`layers`], [`networks`]) — layer-level
//!   parameter/activation accounting for the six evaluated networks,
//!   calibrated against the Table 1 footprints (Figure 13a);
//! * a **throughput model** ([`perf`]) — the Paleo/DeLTA-style roofline
//!   model the paper itself uses, producing images/s versus batch size and
//!   the Buddy capacity speedups (Figures 13b and 13c);
//! * a **real SGD experiment** ([`training`]) — minibatch SGD with batch
//!   normalization on a synthetic task, demonstrating the
//!   tiny-batch-accuracy mechanism of Figure 13d (training ResNet50 on
//!   CIFAR100 is out of scope for a CPU-only reproduction; see DESIGN.md §4).
//!
//! # Example
//!
//! ```
//! use dl_model::{networks, perf};
//!
//! let vgg = networks::vgg16();
//! let gpu = perf::GpuPerf::default();
//! // VGG16 cannot fit batch 64 in 12 GB — the §4.4 motivation.
//! assert!(vgg.max_batch_within(gpu.memory_bytes) < 64);
//! let speedup = perf::capacity_speedup(&vgg, &gpu, 1.5, 0.022, 512);
//! assert!(speedup.speedup() > 1.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layers;
pub mod networks;
pub mod perf;
pub mod training;

pub use layers::{LayerInfo, LayerKind, Network, NetworkBuilder, BYTES_PER_ELEM};
pub use perf::{capacity_speedup, iteration_time_us, throughput, CapacitySpeedup, GpuPerf};
pub use training::{batch_size_sweep, train, Dataset, TrainConfig, TrainResult};
