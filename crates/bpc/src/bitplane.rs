//! Bit-Plane Compression (BPC) after Kim, Sullivan, Choukse and Erez,
//! *"Bit-Plane Compression: Transforming Data for Better Compression in
//! Many-Core Architectures"*, ISCA 2016.
//!
//! BPC is the compression algorithm Buddy Compression builds on. It exploits
//! the *homogeneity* of GPU data (large arrays of one numeric type) through a
//! three-step transform followed by variable-length coding:
//!
//! 1. **Delta transform.** The 128 B entry is read as 32 little-endian 32-bit
//!    symbols. The first symbol is the *base*; the remaining 31 symbols are
//!    replaced by their successive differences (33-bit signed deltas).
//! 2. **Bit-plane transform (DBP).** The 31 deltas are transposed into 33
//!    *delta bit-planes*, each 31 bits wide: plane `b` collects bit `b` of
//!    every delta. Homogeneous data concentrates entropy into few planes.
//! 3. **XOR transform (DBX).** Each plane is XORed with its more-significant
//!    neighbor (`DBX[b] = DBP[b] ^ DBP[b+1]`, `DBX[32] = DBP[32]`), turning
//!    runs of identical planes into all-zero planes.
//!
//! The 33 DBX planes are then encoded most-significant-plane first with the
//! prefix-free code of the original paper (Table 3 structure):
//!
//! | pattern                          | code                   | bits |
//! |----------------------------------|------------------------|------|
//! | run of 2–33 all-zero planes      | `001` + 5-bit (len−2)  | 8    |
//! | single all-zero plane            | `01`                   | 2    |
//! | all-ones plane                   | `00000`                | 5    |
//! | DBX ≠ 0 but DBP = 0              | `00001`                | 5    |
//! | two consecutive ones             | `00010` + 5-bit pos    | 10   |
//! | single one                       | `00011` + 5-bit pos    | 10   |
//! | uncompressed plane               | `1` + 31 raw bits      | 32   |
//!
//! The base symbol is coded as `0` when zero, else `1` + 32 raw bits (a minor
//! simplification of the original base encoder, documented in DESIGN.md §2).
//!
//! Decoding inverts every step exactly; round-trip is property-tested.

use crate::bits::{BitReader, BitWriter};
use crate::{from_symbols, to_symbols, Codec, CompressedBuf, DecodeError, Entry};

/// Number of 32-bit symbols in one 128 B entry.
pub const SYMBOLS: usize = 32;
/// Number of deltas (symbols − 1).
pub const DELTAS: usize = SYMBOLS - 1;
/// Number of bit-planes (deltas are 33-bit signed values).
pub const PLANES: usize = 33;
/// Mask selecting the 31 valid bits of one plane.
const PLANE_MASK: u32 = 0x7FFF_FFFF;
/// Mask selecting the 33 valid bits of one delta.
const DELTA_MASK: u64 = 0x1_FFFF_FFFF;

/// The Bit-Plane Compression codec.
///
/// Stateless; construct once and reuse freely (it is `Copy`).
///
/// # Example
///
/// ```
/// use bpc::{BitPlane, BlockCompressor};
///
/// let codec = BitPlane::new();
/// let zeros = [0u8; 128];
/// let compressed = codec.compress(&zeros);
/// // base flag (1) + one run code covering all 33 planes (8) = 9 bits.
/// assert_eq!(compressed.bits(), 9);
/// assert_eq!(codec.decompress(&compressed).unwrap(), zeros);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitPlane;

impl BitPlane {
    /// Algorithm name used in [`crate::Compressed::algorithm`].
    pub const NAME: &'static str = "bpc";

    /// Creates the codec.
    pub fn new() -> Self {
        Self
    }

    /// Computes the 31 successive 33-bit deltas of the symbol stream.
    ///
    /// Each delta is `symbols[i+1] - symbols[i]` in 33-bit two's complement,
    /// stored in the low 33 bits of a `u64`.
    fn deltas(symbols: &[u32; SYMBOLS]) -> [u64; DELTAS] {
        let mut deltas = [0u64; DELTAS];
        for i in 0..DELTAS {
            let d = symbols[i + 1] as i64 - symbols[i] as i64;
            deltas[i] = (d as u64) & DELTA_MASK;
        }
        deltas
    }

    /// Transposes deltas into 33 delta bit-planes of 31 bits each.
    fn delta_bit_planes(deltas: &[u64; DELTAS]) -> [u32; PLANES] {
        let mut planes = [0u32; PLANES];
        for (b, plane) in planes.iter_mut().enumerate() {
            let mut p = 0u32;
            for (i, &d) in deltas.iter().enumerate() {
                p |= (((d >> b) & 1) as u32) << i;
            }
            *plane = p;
        }
        planes
    }

    /// XORs each plane with its more-significant neighbor.
    fn dbx(dbp: &[u32; PLANES]) -> [u32; PLANES] {
        let mut dbx = [0u32; PLANES];
        for b in 0..PLANES - 1 {
            dbx[b] = dbp[b] ^ dbp[b + 1];
        }
        dbx[PLANES - 1] = dbp[PLANES - 1];
        dbx
    }

    /// Encodes the planes (most-significant first) with the BPC code table.
    fn encode_planes(w: &mut BitWriter, dbp: &[u32; PLANES], dbx: &[u32; PLANES]) {
        let mut b = PLANES; // iterate b-1 from 32 down to 0
        while b > 0 {
            b -= 1;
            if dbx[b] == 0 {
                // Count the zero run downward (including plane b).
                let mut run = 1usize;
                while b > 0 && dbx[b - 1] == 0 && run < PLANES {
                    b -= 1;
                    run += 1;
                }
                if run == 1 {
                    w.push_bits(0b01, 2);
                } else {
                    w.push_bits(0b001, 3);
                    w.push_bits((run - 2) as u64, 5);
                }
            } else if dbp[b] == 0 {
                w.push_bits(0b00001, 5);
            } else if dbx[b] == PLANE_MASK {
                w.push_bits(0b00000, 5);
            } else if dbx[b].count_ones() == 1 {
                w.push_bits(0b00011, 5);
                w.push_bits(dbx[b].trailing_zeros() as u64, 5);
            } else if dbx[b].count_ones() == 2 {
                let pos = dbx[b].trailing_zeros();
                if dbx[b] == 0b11 << pos {
                    w.push_bits(0b00010, 5);
                    w.push_bits(pos as u64, 5);
                } else {
                    w.push_bit(true);
                    w.push_bits(dbx[b] as u64, 31);
                }
            } else {
                w.push_bit(true);
                w.push_bits(dbx[b] as u64, 31);
            }
        }
    }

    /// Decodes the 33 DBP planes from the bitstream.
    fn decode_planes(r: &mut BitReader<'_>) -> Result<[u32; PLANES], DecodeError> {
        let mut dbp = [0u32; PLANES];
        let mut prev_dbp = 0u32; // DBP[b+1]; zero above the top plane.
        let mut b = PLANES;
        while b > 0 {
            b -= 1;
            let dbx_val: u32;
            if r.read_bit()? {
                // `1` + 31 raw bits: uncompressed plane.
                dbx_val = r.read_bits(31)? as u32;
            } else if r.read_bit()? {
                // `01`: single all-zero DBX plane.
                dbx_val = 0;
            } else if r.read_bit()? {
                // `001` + 5: run of 2–33 all-zero DBX planes.
                let run = r.read_bits(5)? as usize + 2;
                if run > b + 1 {
                    // Run longer than the planes remaining (plane `b` plus
                    // the `b` planes below it).
                    return Err(DecodeError::InvalidCode {
                        bit_offset: r.bit_offset(),
                    });
                }
                // DBX == 0 means DBP[b] == DBP[b+1] for every plane in the
                // run. Leave `b` at the last plane of the run so the outer
                // loop steps to the next unprocessed plane.
                dbp[b] = prev_dbp;
                for _ in 1..run {
                    b -= 1;
                    dbp[b] = prev_dbp;
                }
                // `prev_dbp` is unchanged; continue with the next code.
                continue;
            } else {
                // `000` + 2 more bits: one of the four 5-bit codes.
                match r.read_bits(2)? {
                    0b00 => dbx_val = PLANE_MASK, // all-ones
                    0b01 => {
                        // DBX != 0 but DBP == 0.
                        dbp[b] = 0;
                        prev_dbp = 0;
                        continue;
                    }
                    0b10 => {
                        let pos = r.read_bits(5)? as u32;
                        if pos > 29 {
                            return Err(DecodeError::InvalidCode {
                                bit_offset: r.bit_offset(),
                            });
                        }
                        dbx_val = 0b11 << pos; // two consecutive ones
                    }
                    _ => {
                        let pos = r.read_bits(5)? as u32;
                        if pos > 30 {
                            return Err(DecodeError::InvalidCode {
                                bit_offset: r.bit_offset(),
                            });
                        }
                        dbx_val = 1 << pos; // single one
                    }
                }
            }
            dbp[b] = dbx_val ^ prev_dbp;
            prev_dbp = dbp[b];
        }
        Ok(dbp)
    }

    /// Rebuilds the deltas from decoded bit-planes.
    fn planes_to_deltas(dbp: &[u32; PLANES]) -> [u64; DELTAS] {
        let mut deltas = [0u64; DELTAS];
        for (b, &plane) in dbp.iter().enumerate() {
            for (i, delta) in deltas.iter_mut().enumerate() {
                *delta |= (((plane >> i) & 1) as u64) << b;
            }
        }
        deltas
    }

    /// Sign-extends a 33-bit two's-complement value to `i64`.
    fn sign_extend_33(v: u64) -> i64 {
        ((v << 31) as i64) >> 31
    }
}

impl Codec for BitPlane {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn compress_into(&self, entry: &Entry, out: &mut CompressedBuf) {
        let symbols = to_symbols(entry);
        let deltas = Self::deltas(&symbols);
        let dbp = Self::delta_bit_planes(&deltas);
        let dbx = Self::dbx(&dbp);

        let mut w = out.begin();
        // Base symbol: `0` when zero, else `1` + 32 raw bits.
        if symbols[0] == 0 {
            w.push_bit(false);
        } else {
            w.push_bit(true);
            w.push_bits(symbols[0] as u64, 32);
        }
        Self::encode_planes(&mut w, &dbp, &dbx);
        out.finish(Self::NAME, w);
    }

    fn decompress_into(
        &self,
        data: &[u8],
        bits: usize,
        out: &mut Entry,
    ) -> Result<(), DecodeError> {
        let mut r = BitReader::new(data, bits);
        let base = if r.read_bit()? {
            r.read_bits(32)? as u32
        } else {
            0
        };
        let dbp = Self::decode_planes(&mut r)?;
        let deltas = Self::planes_to_deltas(&dbp);

        let mut symbols = [0u32; SYMBOLS];
        symbols[0] = base;
        for i in 0..DELTAS {
            let d = Self::sign_extend_33(deltas[i]);
            symbols[i + 1] = (symbols[i] as i64).wrapping_add(d) as u32;
        }
        *out = from_symbols(&symbols);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockCompressor, Compressed};

    fn entry_from_words(mut f: impl FnMut(usize) -> u32) -> Entry {
        let mut symbols = [0u32; SYMBOLS];
        for (i, s) in symbols.iter_mut().enumerate() {
            *s = f(i);
        }
        from_symbols(&symbols)
    }

    fn round_trip(entry: &Entry) -> usize {
        let codec = BitPlane::new();
        let c = codec.compress(entry);
        assert_eq!(&codec.decompress(&c).unwrap(), entry, "round-trip mismatch");
        c.bits()
    }

    #[test]
    fn all_zero_is_nine_bits() {
        let bits = round_trip(&[0u8; 128]);
        assert_eq!(bits, 9); // 1 base flag + 8-bit run code for 33 planes
    }

    #[test]
    fn constant_words_compress_tightly() {
        let entry = entry_from_words(|_| 0x3F80_0000); // 1.0f32 repeated
        let bits = round_trip(&entry);
        // Deltas are all zero: base (33) + run code (8) = 41 bits.
        assert_eq!(bits, 41);
    }

    #[test]
    fn linear_ramp_compresses_tightly() {
        let entry = entry_from_words(|i| 7 + 3 * i as u32);
        let bits = round_trip(&entry);
        // Constant delta of 3: two low planes identical-ones, rest zero.
        assert!(
            bits < 128,
            "ramp should compress far below 128 bits, got {bits}"
        );
    }

    #[test]
    fn smooth_floats_compress() {
        let entry = entry_from_words(|i| (1.0f32 + i as f32 * 1e-4).to_bits());
        let bits = round_trip(&entry);
        assert!(
            bits < 512,
            "smooth floats should compress below 64 B, got {bits}"
        );
    }

    #[test]
    fn random_data_round_trips_and_is_incompressible() {
        // xorshift-style deterministic pseudo-random words.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let entry = entry_from_words(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 16) as u32
        });
        let bits = round_trip(&entry);
        assert!(
            bits > 1024,
            "random data should exceed 128 B, got {bits} bits"
        );
    }

    #[test]
    fn alternating_extremes_round_trip() {
        let entry = entry_from_words(|i| if i % 2 == 0 { u32::MAX } else { 0 });
        round_trip(&entry);
    }

    #[test]
    fn max_negative_deltas_round_trip() {
        let entry = entry_from_words(|i| if i == 0 { u32::MAX } else { 0 });
        round_trip(&entry);
    }

    #[test]
    fn single_one_and_two_ones_codes_exercised() {
        // A single delta of 1 at position 5 produces single-one planes.
        let entry = entry_from_words(|i| if i > 5 { 1 } else { 0 });
        round_trip(&entry);
        // Two adjacent deltas produce two-consecutive-ones planes.
        let entry = entry_from_words(|i| if i > 5 && i < 8 { 1 } else { 0 });
        round_trip(&entry);
    }

    #[test]
    fn wrong_algorithm_is_rejected() {
        let c = Compressed::new("other", 8, vec![0xFF]);
        assert!(matches!(
            BitPlane::new().decompress(&c),
            Err(DecodeError::WrongAlgorithm { .. })
        ));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let codec = BitPlane::new();
        let entry = entry_from_words(|i| i as u32 * 977);
        let c = codec.compress(&entry);
        let truncated = Compressed::new(BitPlane::NAME, c.bits() / 2, c.data().to_vec());
        assert!(matches!(
            codec.decompress(&truncated),
            Err(DecodeError::Truncated)
        ));
    }

    #[test]
    fn sign_extension_is_correct() {
        assert_eq!(BitPlane::sign_extend_33(0), 0);
        assert_eq!(BitPlane::sign_extend_33(1), 1);
        assert_eq!(BitPlane::sign_extend_33(0x0_FFFF_FFFF), 0x0_FFFF_FFFFi64);
        assert_eq!(BitPlane::sign_extend_33(0x1_0000_0000), -(0x1_0000_0000i64));
        assert_eq!(BitPlane::sign_extend_33(0x1_FFFF_FFFF), -1);
    }

    #[test]
    fn delta_bitplane_transpose_inverts() {
        let symbols: [u32; SYMBOLS] = std::array::from_fn(|i| (i as u32).wrapping_mul(0x1234_5677));
        let deltas = BitPlane::deltas(&symbols);
        let dbp = BitPlane::delta_bit_planes(&deltas);
        assert_eq!(BitPlane::planes_to_deltas(&dbp), deltas);
    }

    #[test]
    fn dbx_inverts() {
        let planes: [u32; PLANES] =
            std::array::from_fn(|i| ((i as u32).wrapping_mul(0x9E37_79B9)) & PLANE_MASK);
        let dbx = BitPlane::dbx(&planes);
        // Reconstruct top-down.
        let mut rebuilt = [0u32; PLANES];
        rebuilt[PLANES - 1] = dbx[PLANES - 1];
        for b in (0..PLANES - 1).rev() {
            rebuilt[b] = dbx[b] ^ rebuilt[b + 1];
        }
        assert_eq!(rebuilt, planes);
    }
}
