//! The profiling pass: choosing per-allocation target compression ratios.
//!
//! §3.4–3.5: the application is first profiled on a representative dataset;
//! the profiler builds a histogram of compressed memory-entry sizes per
//! allocation and picks, for each allocation, the most aggressive target
//! ratio whose *overflow fraction* (entries that would need buddy-memory
//! accesses) stays below the **Buddy Threshold** (default 30%). Allocations
//! that compress almost entirely below 8 B get the 16× zero-page target,
//! subject to the overall ratio staying under the 4× carve-out bound.
//!
//! Three policies from Figure 7 are implemented:
//! * [`choose_naive`] — one conservative whole-program target,
//! * [`choose_targets`] with `zero_page: false` — per-allocation targets,
//! * [`choose_targets`] with `zero_page: true` — the final design.

use crate::target::TargetRatio;
use bpc::{SizeClass, SizeHistogram, ENTRY_BYTES};
use std::fmt;

/// Profiling input for one allocation: its size and the histogram of
/// compressed entry sizes observed during the profiling run.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationProfile {
    /// Allocation name.
    pub name: String,
    /// Entries in the allocation (at deployment scale).
    pub entries: u64,
    /// Compressed size-class histogram from profiling snapshots.
    pub histogram: SizeHistogram,
}

impl AllocationProfile {
    /// Fraction of profiled entries that would overflow target `t`.
    pub fn overflow_fraction(&self, t: TargetRatio) -> f64 {
        if self.histogram.total() == 0 {
            return 0.0;
        }
        let fits = match t {
            TargetRatio::ZeroPage16 => self.histogram.fraction_at_most(SizeClass::B8),
            other => self
                .histogram
                .fraction_within_sectors(other.device_sectors()),
        };
        1.0 - fits
    }
}

/// Profiler configuration (§3.5 defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileConfig {
    /// Maximum allowed overflow fraction per allocation (the Buddy
    /// Threshold; the paper settles on 30%).
    pub buddy_threshold: f64,
    /// Whether the 16× zero-page optimization is enabled.
    pub zero_page: bool,
    /// Stricter threshold for the zero-page target: the paper applies 16×
    /// only to allocations that are "mostly zero, and remain so", so these
    /// should essentially never overflow.
    pub zero_page_threshold: f64,
    /// Upper bound on the overall device compression ratio, set by the
    /// carve-out size ("the overall compression ratio is still under 4x,
    /// limited by the buddy-memory carve-out region", §3.4).
    pub max_overall_ratio: f64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        Self {
            buddy_threshold: 0.30,
            zero_page: true,
            zero_page_threshold: 0.05,
            max_overall_ratio: 4.0,
        }
    }
}

impl ProfileConfig {
    /// The paper's final configuration (30% threshold, zero-page on).
    pub fn paper_final() -> Self {
        Self::default()
    }

    /// Per-allocation targets without the zero-page optimization (the
    /// middle bars of Figure 7).
    pub fn per_allocation_only() -> Self {
        Self {
            zero_page: false,
            ..Self::default()
        }
    }

    /// Same policy with a different Buddy Threshold (Figure 9 sweep).
    pub fn with_threshold(threshold: f64) -> Self {
        Self {
            buddy_threshold: threshold,
            ..Self::default()
        }
    }
}

/// The target chosen for one allocation, with its expected overflow.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetChoice {
    /// Allocation name.
    pub name: String,
    /// Entries in the allocation.
    pub entries: u64,
    /// Chosen target ratio.
    pub target: TargetRatio,
    /// Expected fraction of entries overflowing to buddy memory.
    pub overflow_frac: f64,
}

/// The profiler's output across a whole program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileOutcome {
    /// Per-allocation choices, in input order.
    pub choices: Vec<TargetChoice>,
}

impl ProfileOutcome {
    /// Overall device compression ratio implied by the choices
    /// (uncompressed bytes / device-resident bytes) — the bar heights of
    /// Figures 7 and 9.
    pub fn device_compression_ratio(&self) -> f64 {
        let logical: u64 = self
            .choices
            .iter()
            .map(|c| c.entries * ENTRY_BYTES as u64)
            .sum();
        let device: u64 = self
            .choices
            .iter()
            .map(|c| c.entries * c.target.device_bytes_per_entry() as u64)
            .sum();
        if device == 0 {
            1.0
        } else {
            logical as f64 / device as f64
        }
    }

    /// Expected fraction of memory-entry accesses that touch buddy memory,
    /// assuming uniform access — the paper's static estimate ("calculated
    /// per target compression ratio, using a histogram of the static memory
    /// snapshots", §3.4).
    pub fn static_buddy_fraction(&self) -> f64 {
        let total: u64 = self.choices.iter().map(|c| c.entries).sum();
        if total == 0 {
            return 0.0;
        }
        self.choices
            .iter()
            .map(|c| c.entries as f64 * c.overflow_frac)
            .sum::<f64>()
            / total as f64
    }

    /// Buddy carve-out bytes the choices reserve.
    pub fn buddy_reserved_bytes(&self) -> u64 {
        self.choices
            .iter()
            .map(|c| c.entries * c.target.buddy_bytes_per_entry() as u64)
            .sum()
    }
}

impl fmt::Display for ProfileOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.choices {
            writeln!(
                f,
                "{:<24} {:>12} entries  target {:<6} overflow {:5.1}%",
                c.name,
                c.entries,
                c.target.to_string(),
                100.0 * c.overflow_frac
            )?;
        }
        write!(
            f,
            "=> ratio {:.2}x, buddy accesses {:.2}%",
            self.device_compression_ratio(),
            100.0 * self.static_buddy_fraction()
        )
    }
}

/// Picks the most aggressive admissible target for one allocation.
fn pick_target(profile: &AllocationProfile, config: &ProfileConfig) -> TargetChoice {
    let candidates: &[TargetRatio] = if config.zero_page {
        &TargetRatio::DESCENDING
    } else {
        &TargetRatio::STANDARD_DESCENDING
    };
    for &t in candidates {
        let threshold = if t == TargetRatio::ZeroPage16 {
            config.zero_page_threshold
        } else {
            config.buddy_threshold
        };
        let overflow = profile.overflow_fraction(t);
        if overflow <= threshold {
            return TargetChoice {
                name: profile.name.clone(),
                entries: profile.entries,
                target: t,
                overflow_frac: overflow,
            };
        }
    }
    // R1 never overflows; unreachable, but keep a safe fallback.
    TargetChoice {
        name: profile.name.clone(),
        entries: profile.entries,
        target: TargetRatio::R1,
        overflow_frac: 0.0,
    }
}

/// Runs the per-allocation profiling policy of §3.4 (with or without the
/// zero-page optimization, per `config`).
///
/// After the per-allocation picks, zero-page choices are demoted to 4× one
/// by one (largest allocations first) until the overall ratio respects the
/// carve-out bound.
pub fn choose_targets(profiles: &[AllocationProfile], config: &ProfileConfig) -> ProfileOutcome {
    let mut outcome = ProfileOutcome {
        choices: profiles.iter().map(|p| pick_target(p, config)).collect(),
    };

    // Enforce the carve-out bound by demoting 16x choices.
    while outcome.device_compression_ratio() > config.max_overall_ratio {
        let demote = outcome
            .choices
            .iter_mut()
            .filter(|c| c.target == TargetRatio::ZeroPage16)
            .max_by_key(|c| c.entries);
        match demote {
            Some(choice) => {
                choice.target = TargetRatio::R4;
                // Overflow for 4x on a mostly-≤8 B allocation is ~0 but
                // recompute from the histogram for exactness.
                if let Some(p) = profiles.iter().find(|p| p.name == choice.name) {
                    choice.overflow_frac = p.overflow_fraction(TargetRatio::R4);
                }
            }
            None => break, // nothing left to demote; 4x everywhere is ≤ 4.
        }
    }
    outcome
}

/// The naive whole-program policy: one conservative target for every
/// allocation (the first bars of Figure 7).
///
/// "Naive Buddy Compression considers a single, conservative target
/// compression ratio for the whole-program" (§3.4). We interpret
/// *conservative* as: the largest allowed ratio that does not exceed the
/// program's whole-memory optimistic compression ratio (the Figure 3
/// number). Without per-allocation knowledge, incompressible regions are
/// forced to the program-wide target — which is exactly what produces the
/// naive policy's high buddy-memory traffic.
pub fn choose_naive(profiles: &[AllocationProfile], _config: &ProfileConfig) -> ProfileOutcome {
    let mut merged = SizeHistogram::new();
    for p in profiles {
        // Weight each allocation's histogram by its entry count.
        let scale = if p.histogram.total() == 0 {
            0.0
        } else {
            p.entries as f64 / p.histogram.total() as f64
        };
        for class in SizeClass::ALL {
            merged.record_n(
                class,
                (p.histogram.count(class) as f64 * scale).round() as u64,
            );
        }
    }
    let program_ratio = merged.compression_ratio();
    let target = TargetRatio::STANDARD_DESCENDING
        .into_iter()
        .find(|t| t.ratio() <= program_ratio)
        .unwrap_or(TargetRatio::R1);
    ProfileOutcome {
        choices: profiles
            .iter()
            .map(|p| TargetChoice {
                name: p.name.clone(),
                entries: p.entries,
                target,
                overflow_frac: p.overflow_fraction(target),
            })
            .collect(),
    }
}

/// The "best achievable compression ratio" marker of Figure 9: the
/// optimistic per-entry capacity ratio (Figure 3 accounting) capped at the
/// 4× carve-out bound.
pub fn best_achievable(profiles: &[AllocationProfile]) -> f64 {
    let mut logical = 0.0;
    let mut compressed = 0.0;
    for p in profiles {
        if p.histogram.total() == 0 {
            continue;
        }
        logical += p.entries as f64 * ENTRY_BYTES as f64;
        compressed += p.entries as f64 * (ENTRY_BYTES as f64 / p.histogram.compression_ratio());
    }
    if compressed == 0.0 {
        1.0
    } else {
        (logical / compressed).min(4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_of(name: &str, entries: u64, classes: &[(SizeClass, u64)]) -> AllocationProfile {
        let mut histogram = SizeHistogram::new();
        for &(class, n) in classes {
            histogram.record_n(class, n);
        }
        AllocationProfile {
            name: name.to_owned(),
            entries,
            histogram,
        }
    }

    #[test]
    fn overflow_fractions() {
        let p = profile_of("a", 100, &[(SizeClass::B32, 70), (SizeClass::B128, 30)]);
        assert!((p.overflow_fraction(TargetRatio::R4) - 0.30).abs() < 1e-12);
        assert!((p.overflow_fraction(TargetRatio::R2) - 0.30).abs() < 1e-12);
        assert!((p.overflow_fraction(TargetRatio::R1_33) - 0.30).abs() < 1e-12);
        assert_eq!(p.overflow_fraction(TargetRatio::R1), 0.0);
        assert!((p.overflow_fraction(TargetRatio::ZeroPage16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_gates_aggressiveness() {
        let p = profile_of("a", 100, &[(SizeClass::B32, 60), (SizeClass::B64, 40)]);
        // 40% of entries need 2 sectors: 4x overflows 40%.
        let strict = choose_targets(
            std::slice::from_ref(&p),
            &ProfileConfig::with_threshold(0.10),
        );
        assert_eq!(strict.choices[0].target, TargetRatio::R2);
        let loose = choose_targets(&[p], &ProfileConfig::with_threshold(0.45));
        assert_eq!(loose.choices[0].target, TargetRatio::R4);
    }

    #[test]
    fn zero_page_for_mostly_zero_allocations() {
        let zeros = profile_of(
            "zeros",
            1000,
            &[
                (SizeClass::B0, 970),
                (SizeClass::B8, 20),
                (SizeClass::B64, 10),
            ],
        );
        // A second incompressible allocation keeps the overall ratio under
        // the 4x carve-out bound, so the zero-page pick survives.
        let raw = profile_of("raw", 1000, &[(SizeClass::B128, 100)]);
        let outcome = choose_targets(&[zeros.clone(), raw.clone()], &ProfileConfig::default());
        assert_eq!(outcome.choices[0].target, TargetRatio::ZeroPage16);
        assert_eq!(outcome.choices[1].target, TargetRatio::R1);
        // Disabled zero-page: falls back to 4x.
        let outcome = choose_targets(&[zeros.clone(), raw], &ProfileConfig::per_allocation_only());
        assert_eq!(outcome.choices[0].target, TargetRatio::R4);
        // A lone 16x allocation would exceed the 4x bound and is demoted.
        let outcome = choose_targets(&[zeros], &ProfileConfig::default());
        assert_eq!(outcome.choices[0].target, TargetRatio::R4);
    }

    #[test]
    fn carve_out_cap_demotes_zero_page() {
        // Two all-zero allocations would give 16x overall — over the 4x
        // carve-out bound — so the larger one is demoted first.
        let a = profile_of("a", 3000, &[(SizeClass::B0, 100)]);
        let b = profile_of("b", 1000, &[(SizeClass::B0, 100)]);
        let outcome = choose_targets(&[a, b], &ProfileConfig::default());
        assert!(outcome.device_compression_ratio() <= 4.0 + 1e-9);
        assert_eq!(outcome.choices[0].target, TargetRatio::R4); // demoted (larger)
                                                                // The smaller one may stay 16x if the bound is met.
        let ratio = outcome.device_compression_ratio();
        assert!(ratio > 3.9, "should stay close to the cap, got {ratio}");
    }

    #[test]
    fn naive_policy_uses_single_conservative_target() {
        let a = profile_of("compressible", 500, &[(SizeClass::B32, 100)]);
        let b = profile_of("incompressible", 500, &[(SizeClass::B128, 100)]);
        let outcome = choose_naive(&[a, b], &ProfileConfig::default());
        let targets: Vec<_> = outcome.choices.iter().map(|c| c.target).collect();
        assert_eq!(
            targets[0], targets[1],
            "naive must pick one program-wide target"
        );
        // Program-wide optimistic ratio is 1.6x → quantized down to 1.33x.
        assert_eq!(targets[0], TargetRatio::R1_33);
        // The incompressible half overflows entirely: the naive policy's
        // high buddy-access cost (§3.4).
        assert!((outcome.static_buddy_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn per_allocation_beats_naive() {
        let a = profile_of("compressible", 500, &[(SizeClass::B32, 100)]);
        let b = profile_of("incompressible", 500, &[(SizeClass::B128, 100)]);
        let cfg = ProfileConfig::default();
        let naive = choose_naive(&[a.clone(), b.clone()], &cfg);
        let per_alloc = choose_targets(&[a, b], &cfg);
        assert!(
            per_alloc.device_compression_ratio() > naive.device_compression_ratio(),
            "per-allocation targets must dominate the naive policy"
        );
        assert!(
            per_alloc.static_buddy_fraction() < naive.static_buddy_fraction(),
            "per-allocation targets must also cut buddy traffic"
        );
        // Compressible half gets 4x, incompressible 1x: 2*128/(32+128).
        assert!((per_alloc.device_compression_ratio() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn striped_allocation_cannot_compress_at_30_percent() {
        // FF_HPGMG-style: 50% of entries incompressible — no standard target
        // admissible except 1x at a 30% threshold, but an 80% threshold
        // unlocks 4x... (the paper: "requires more than 80% Buddy Threshold").
        let p = profile_of(
            "structs",
            100,
            &[(SizeClass::B16, 50), (SizeClass::B128, 50)],
        );
        let at30 = choose_targets(std::slice::from_ref(&p), &ProfileConfig::default());
        assert_eq!(at30.choices[0].target, TargetRatio::R1);
        let at80 = choose_targets(&[p], &ProfileConfig::with_threshold(0.85));
        assert!(at80.choices[0].target >= TargetRatio::R2);
    }

    #[test]
    fn static_buddy_fraction_weights_by_entries() {
        let a = TargetChoice {
            name: "a".into(),
            entries: 900,
            target: TargetRatio::R2,
            overflow_frac: 0.0,
        };
        let b = TargetChoice {
            name: "b".into(),
            entries: 100,
            target: TargetRatio::R2,
            overflow_frac: 0.5,
        };
        let outcome = ProfileOutcome {
            choices: vec![a, b],
        };
        assert!((outcome.static_buddy_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn best_achievable_is_capped_at_4x() {
        let p = profile_of("zeros", 100, &[(SizeClass::B0, 100)]);
        assert_eq!(best_achievable(&[p]), 4.0);
        let q = profile_of("half", 100, &[(SizeClass::B64, 100)]);
        assert!((best_achievable(&[q]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn outcome_display_mentions_ratio() {
        let p = profile_of("a", 100, &[(SizeClass::B32, 100)]);
        let outcome = choose_targets(&[p], &ProfileConfig::default());
        let text = outcome.to_string();
        assert!(text.contains("ratio"), "{text}");
        assert!(text.contains("4x"), "{text}");
    }

    #[test]
    fn empty_profiles() {
        let outcome = choose_targets(&[], &ProfileConfig::default());
        assert_eq!(outcome.device_compression_ratio(), 1.0);
        assert_eq!(outcome.static_buddy_fraction(), 0.0);
        assert_eq!(best_achievable(&[]), 1.0);
    }
}
