//! The epoch-published half of a [`BuddyDevice`](crate::device::BuddyDevice):
//! storage and per-slot addressing state that concurrent readers resolve
//! against a consistent snapshot without taking any device-wide lock.
//!
//! # Split
//!
//! A device's state is split into two halves:
//!
//! * The **mutable half** stays inside `BuddyDevice` behind `&mut self`
//!   (region allocators, free-slot stack, allocation names) — only the
//!   structural operations `alloc`/`free`/`retarget` touch it, and the
//!   pool keeps serializing those behind the shard mutex.
//! * The **published half** lives here, in one [`SharedState`] per device,
//!   reachable through `Arc` from both the device and any number of
//!   [`DeviceHandle`](crate::device::DeviceHandle)s: the data arrays as
//!   atomic words, the per-entry metadata nibbles as atomic bytes, and a
//!   [`SlotCell`] per allocation slot carrying the addressing facts
//!   (generation, entry count, target ratio, region bases) behind a
//!   per-slot **seqlock**.
//!
//! # Publication protocol
//!
//! Structural mutations publish a new *epoch* for a slot by bumping the
//! slot's sequence word to odd, storing the new addressing facts, and
//! bumping it back to even ([`SeqWindow`]). Readers snapshot the sequence
//! word, copy the addressing facts, read the referenced bytes/nibbles, and
//! re-validate the sequence word; any overlap with a publication window or
//! an entry write forces a retry, so a read observes the old epoch in
//! full, the new epoch in full, or (for a freed slot) a generation
//! mismatch — never a blend. Storage regions are returned to the free
//! lists only *after* the publication that unlinks them, so a reader that
//! raced the reuse of its bytes always fails its final sequence check.
//!
//! Entry writes do not change the addressing facts: they serialize on the
//! slot's `write_lock` (shared with structural publications) and wrap the
//! byte/nibble stores in the same odd/even sequence window so concurrent
//! readers of the same allocation retry instead of tearing.
//!
//! # Ordering evidence
//!
//! Every ordering below is either the canonical seqlock set (via the
//! [`crate::sync`] `seq_*` helpers — each justified by a model-checker
//! mutation in `crates/check`) or carries a `Relaxed:`/`SeqCst:` comment
//! naming the edge that makes it safe. The distilled protocol models and
//! their counterexample-producing mutations live in
//! `crates/check/src/models.rs`; DESIGN.md §13 maps each model back to
//! the code here.

// lint-allow-file(raw-atomic-metric): every atomic in this module is
// protocol state (seqlock words, generations, published bases, byte and
// nibble storage, drain-barrier counters) or the device stats mirror
// reported through the existing stats() API — none is an ad-hoc metric.

use crate::adapt::StateWindow;
use crate::device::{AccessStats, AllocId, DeviceError};
use crate::metadata::EntryState;
use crate::sync::{
    seq_acquire, seq_open, seq_release, seq_revalidate, AtomicU64, AtomicU8, Mutex, MutexGuard,
    OnceLock, Ordering,
};
use crate::target::TargetRatio;
use bpc::{Codec, CodecKind, CompressedBuf, Entry, SizeClass, ENTRY_BYTES, SECTOR_BYTES};
use buddy_obs::{trace, SpanKind};
use std::fmt;

/// The `Copy`-able addressing facts of one allocation — the per-epoch
/// snapshot every access resolves against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AllocView {
    pub(crate) target: TargetRatio,
    pub(crate) entries: u64,
    /// Byte offset of this allocation's region in device memory.
    pub(crate) device_base: u64,
    /// Byte offset of this allocation's slots in the buddy carve-out.
    pub(crate) buddy_base: u64,
    /// Index of this allocation's first entry in the global metadata array.
    pub(crate) metadata_base: u64,
}

impl AllocView {
    pub(crate) fn device_stride(&self) -> u64 {
        self.target.device_bytes_per_entry() as u64
    }

    pub(crate) fn buddy_stride(&self) -> u64 {
        self.target.buddy_bytes_per_entry() as u64
    }

    pub(crate) fn device_offset(&self, index: u64) -> u64 {
        self.device_base + index * self.device_stride()
    }

    pub(crate) fn buddy_offset(&self, index: u64) -> u64 {
        self.buddy_base + index * self.buddy_stride()
    }
}

/// A byte load raced an in-progress mutation and produced an undecodable
/// or inconsistent value; the caller re-validates the slot sequence and
/// retries. Under a stable sequence this is unreachable (the write path
/// produced every stored stream).
pub(crate) struct TornRead;

/// Byte-range validation shared by every access path.
pub(crate) fn check_index(view: &AllocView, index: u64) -> Result<(), DeviceError> {
    if index >= view.entries {
        Err(DeviceError::BadIndex {
            index,
            entries: view.entries,
        })
    } else {
        Ok(())
    }
}

/// Checks that `[start, start + len)` lies inside the allocation.
pub(crate) fn check_range(view: &AllocView, start: u64, len: u64) -> Result<(), DeviceError> {
    match start.checked_add(len) {
        Some(end) if end <= view.entries => Ok(()),
        _ => Err(DeviceError::BadIndex {
            index: start.saturating_add(len.saturating_sub(1)),
            entries: view.entries,
        }),
    }
}

pub(crate) fn buddy_sectors_of(target: TargetRatio, state: EntryState) -> u64 {
    match state {
        EntryState::Zero | EntryState::ZeroPageFit => 0,
        EntryState::ZeroPageOverflow => 4,
        EntryState::Compressed { sectors } => {
            sectors.saturating_sub(target.device_sectors()) as u64
        }
    }
}

pub(crate) fn device_sectors_of(target: TargetRatio, state: EntryState) -> u64 {
    match state {
        EntryState::Zero => 0,
        // The 8 B granule still costs one sector access.
        EntryState::ZeroPageFit => 1,
        EntryState::ZeroPageOverflow => 0,
        EntryState::Compressed { sectors } => sectors.min(target.device_sectors()) as u64,
    }
}

pub(crate) fn record_read(stats: &mut AccessStats, target: TargetRatio, state: EntryState) {
    let buddy = buddy_sectors_of(target, state);
    stats.device_sectors += device_sectors_of(target, state);
    stats.buddy_sectors += buddy;
    if buddy > 0 {
        stats.reads_with_buddy += 1;
    } else {
        stats.reads_device_only += 1;
    }
}

pub(crate) fn record_write(stats: &mut AccessStats, target: TargetRatio, state: EntryState) {
    let buddy = buddy_sectors_of(target, state);
    stats.device_sectors += device_sectors_of(target, state);
    stats.buddy_sectors += buddy;
    if buddy > 0 {
        stats.writes_with_buddy += 1;
    } else {
        stats.writes_device_only += 1;
    }
}

/// Locks a mutex, recovering the guard if a previous holder panicked —
/// the protected state stays usable (sequence windows close on unwind via
/// [`SeqWindow`]'s drop).
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Byte storage as an array of atomic 64-bit words.
///
/// Every storage range the device hands out is 8-byte aligned with an
/// 8-byte-multiple length (strides are 8/32/64/96/128 and sectors are
/// 32 B), so all access happens in whole words; the single sub-word case —
/// the ≤ 8 B zero-page granule — composes one padded word in the caller.
pub(crate) struct AtomicBytes {
    words: Box<[AtomicU64]>,
}

impl AtomicBytes {
    pub(crate) fn new(len_bytes: u64) -> Self {
        let words = (0..len_bytes.div_ceil(8))
            .map(|_| AtomicU64::new(0))
            .collect();
        Self { words }
    }

    /// Copies `out.len()` bytes starting at `byte_off` out of storage.
    pub(crate) fn read(&self, byte_off: u64, out: &mut [u8]) {
        debug_assert_eq!(byte_off % 8, 0);
        debug_assert_eq!(out.len() % 8, 0);
        let base = (byte_off / 8) as usize;
        for (i, chunk) in out.chunks_exact_mut(8).enumerate() {
            // Relaxed: the seqlock reader re-validates the slot sequence
            // (with fences) after these loads; torn values force a retry.
            let w = self.words[base + i].load(Ordering::Relaxed);
            chunk.copy_from_slice(&w.to_le_bytes());
        }
    }

    /// Stores `data` starting at `byte_off`.
    pub(crate) fn write(&self, byte_off: u64, data: &[u8]) {
        debug_assert_eq!(byte_off % 8, 0);
        debug_assert_eq!(data.len() % 8, 0);
        let base = (byte_off / 8) as usize;
        for (i, chunk) in data.chunks_exact(8).enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            // Relaxed: bracketed by the writer's odd/even sequence window,
            // which publishes these stores to re-validating readers.
            self.words[base + i].store(u64::from_le_bytes(w), Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for AtomicBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicBytes")
            .field("bytes", &(self.words.len() * 8))
            .finish()
    }
}

/// Number of lazily-published chunk slots in [`AtomicNibbles`] and
/// [`SlotTable`]. Chunk `k` doubles the covered capacity, so a few dozen
/// slots cover any physically reachable size.
const NIBBLE_CHUNKS: usize = 40;
const SLOT_CHUNKS: usize = 28;
const SLOT_CHUNK0: u32 = 64;

/// The 4-bit-per-entry metadata array as atomic bytes, grown by publishing
/// power-of-two chunks — existing chunks are never moved, so concurrent
/// readers keep their references valid across growth.
pub(crate) struct AtomicNibbles {
    /// Bytes covered by chunk 0; chunk `k ≥ 1` covers `base << (k-1)` more.
    base_bytes: u64,
    chunks: Box<[OnceLock<Box<[AtomicU8]>>]>,
}

impl AtomicNibbles {
    pub(crate) fn new(initial_entries: u64) -> Self {
        let base_bytes = initial_entries.div_ceil(2).max(64);
        let chunks: Box<[OnceLock<Box<[AtomicU8]>>]> =
            (0..NIBBLE_CHUNKS).map(|_| OnceLock::new()).collect();
        let this = Self { base_bytes, chunks };
        this.ensure(initial_entries);
        this
    }

    fn chunk_len(&self, k: usize) -> u64 {
        if k == 0 {
            self.base_bytes
        } else {
            self.base_bytes << (k - 1)
        }
    }

    /// Maps a byte index to `(chunk, offset-in-chunk)`.
    fn locate(&self, byte: u64) -> (usize, usize) {
        if byte < self.base_bytes {
            (0, byte as usize)
        } else {
            let k = (byte / self.base_bytes).ilog2() as usize + 1;
            let start = self.base_bytes << (k - 1);
            (k, (byte - start) as usize)
        }
    }

    /// Publishes chunks until at least `entries` nibbles are addressable.
    /// Called only under the device's structural lock (serialized), but
    /// safe against concurrent readers of already-published chunks.
    pub(crate) fn ensure(&self, entries: u64) {
        if entries == 0 {
            return;
        }
        let (last, _) = self.locate(entries.div_ceil(2) - 1);
        for k in 0..=last {
            let len = self.chunk_len(k);
            self.chunks[k].get_or_init(|| (0..len).map(|_| AtomicU8::new(0)).collect());
        }
    }

    /// Reads the state nibble of entry `index`. `None` only when the load
    /// raced a mutation into an unreachable encoding — callers re-validate
    /// the slot sequence and retry.
    pub(crate) fn get(&self, index: u64) -> Option<EntryState> {
        let (k, off) = self.locate(index / 2);
        let cell = self.chunks[k].get()?.get(off)?;
        // Relaxed: the seqlock reader re-validates the slot sequence after
        // this load; a racing write forces a retry.
        let byte = cell.load(Ordering::Relaxed);
        let nibble = if index % 2 == 0 {
            byte & 0x0F
        } else {
            byte >> 4
        };
        EntryState::decode(nibble)
    }

    /// Writes the state nibble of entry `index`. The clear-then-set pair
    /// of atomic RMWs preserves the neighbouring nibble under concurrent
    /// writers to adjacent entries; the transient intermediate value of
    /// *this* nibble is `Zero` (a valid state), and same-entry races are
    /// excluded by the slot `write_lock`.
    pub(crate) fn set(&self, index: u64, state: EntryState) {
        let (k, off) = self.locate(index / 2);
        let cell = &self.chunks[k].get().expect("published metadata chunk")[off]; // lint-allow(no-unwrap): writers only address ranges published by their allocation
        let nibble = state.encode();
        if index % 2 == 0 {
            // Relaxed: bracketed by the writer's odd/even sequence window.
            cell.fetch_and(0xF0, Ordering::Relaxed);
            if nibble != 0 {
                // Relaxed: as above.
                cell.fetch_or(nibble, Ordering::Relaxed);
            }
        } else {
            // Relaxed: bracketed by the writer's odd/even sequence window.
            cell.fetch_and(0x0F, Ordering::Relaxed);
            if nibble != 0 {
                // Relaxed: as above.
                cell.fetch_or(nibble << 4, Ordering::Relaxed);
            }
        }
    }

    /// Resets `[start, start + len)` to [`EntryState::Zero`]. Only called
    /// for ranges exclusively owned by the calling structural operation.
    pub(crate) fn clear_range(&self, start: u64, len: u64) {
        for i in start..start + len {
            self.set(i, EntryState::Zero);
        }
    }
}

impl fmt::Debug for AtomicNibbles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ready = self.chunks.iter().filter(|c| c.get().is_some()).count();
        f.debug_struct("AtomicNibbles")
            .field("base_bytes", &self.base_bytes)
            .field("chunks_ready", &ready)
            .finish()
    }
}

/// Encodes a [`TargetRatio`] into the slot cell's atomic byte; `0` means
/// "never published".
fn encode_target(t: TargetRatio) -> u8 {
    match t {
        TargetRatio::R1 => 1,
        TargetRatio::R1_33 => 2,
        TargetRatio::R2 => 3,
        TargetRatio::R4 => 4,
        TargetRatio::ZeroPage16 => 5,
    }
}

fn decode_target(b: u8) -> Option<TargetRatio> {
    match b {
        1 => Some(TargetRatio::R1),
        2 => Some(TargetRatio::R1_33),
        3 => Some(TargetRatio::R2),
        4 => Some(TargetRatio::R4),
        5 => Some(TargetRatio::ZeroPage16),
        _ => None,
    }
}

/// The published addressing facts of one allocation slot behind a seqlock.
///
/// `seq` is even when the cell is stable and odd while a mutation is in
/// flight; `generation`/`entries` encode liveness (a live allocation
/// always has `entries ≥ 1`, a freed or never-used slot publishes
/// `entries == 0`).
pub(crate) struct SlotCell {
    seq: AtomicU64,
    generation: AtomicU64,
    entries: AtomicU64,
    device_base: AtomicU64,
    buddy_base: AtomicU64,
    metadata_base: AtomicU64,
    target: AtomicU8,
    /// Serializes entry-write batches and structural publications on this
    /// slot. Never held while taking any other lock.
    write_lock: Mutex<()>,
}

impl SlotCell {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            device_base: AtomicU64::new(0),
            buddy_base: AtomicU64::new(0),
            metadata_base: AtomicU64::new(0),
            target: AtomicU8::new(0),
            write_lock: Mutex::new(()),
        }
    }

    /// Spins until the cell is outside any mutation window and returns the
    /// (even) sequence value the caller must re-validate against.
    fn begin_read(&self) -> u64 {
        let mut spins = 0u32;
        loop {
            // Acquire (was SeqCst): pairs with `seq_release`'s closing
            // bump — observing an even sequence inherits every store of
            // that window, so the Relaxed field loads that follow cannot
            // be older than this epoch. Model: `seqlock` passes
            // exhaustively with Acquire; `CloseRelaxed` (breaking the
            // pairing) has a counterexample.
            let s = seq_acquire(&self.seq);
            if s % 2 == 0 {
                return s;
            }
            spins = spins.wrapping_add(1);
            if spins % 256 == 0 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// True when the sequence still matches `seen` — everything loaded
    /// since `begin_read` returned `seen` is a consistent snapshot.
    ///
    /// Acquire fence + Relaxed re-load (was `SeqCst` fence + `SeqCst`
    /// load): the fence upgrades the Relaxed data loads since
    /// `begin_read`, so any value written inside a later window drags
    /// that window's odd sequence into view and the re-load must see it
    /// — the happens-before edge is data-store → (writer release fence)
    /// → (this acquire fence) → sequence re-load. Model: removing the
    /// fence (`NoReaderFence`) lets a torn snapshot validate; the
    /// Acquire version passes exhaustively, so SeqCst bought nothing.
    fn still(&self, seen: u64) -> bool {
        seq_revalidate(&self.seq) == seen
    }

    /// Copies the published fields (caller brackets with `begin_read` /
    /// `still`).
    fn load_raw(&self) -> RawSlot {
        // Relaxed (was SeqCst): these loads sit between `begin_read`'s
        // acquire of the sequence and `still`'s re-validation — a stale
        // value here either predates the acquired epoch (impossible, the
        // close-bump published it) or belongs to a later window, whose
        // odd sequence then fails `still`. Model: the `seqlock` and
        // `retarget` models run their field loads Relaxed and pass
        // exhaustively.
        let ld = |field: &AtomicU64| field.load(Ordering::Relaxed);
        RawSlot {
            generation: ld(&self.generation),
            entries: ld(&self.entries),
            target: self.target.load(Ordering::Relaxed), // Relaxed: same
            device_base: ld(&self.device_base),
            buddy_base: ld(&self.buddy_base),
            metadata_base: ld(&self.metadata_base),
        }
    }

    /// Stores new addressing facts. Caller must hold `write_lock` and an
    /// open [`SeqWindow`].
    fn store_raw(&self, raw: &RawSlot) {
        // Relaxed (was SeqCst): bracketed by the open window — `seq_open`'s
        // release fence attaches the odd sequence to each of these stores
        // (readers that see one re-validate and retry) and `seq_release`
        // publishes them wholesale to readers of the closed sequence.
        // Model: `NoWriterFence` / `CloseRelaxed` are the mutations that
        // would make Relaxed here unsound, and both have counterexamples.
        let st = |field: &AtomicU64, value: u64| field.store(value, Ordering::Relaxed);
        st(&self.generation, raw.generation);
        st(&self.entries, raw.entries);
        self.target.store(raw.target, Ordering::Relaxed); // Relaxed: same
        st(&self.device_base, raw.device_base);
        st(&self.buddy_base, raw.buddy_base);
        st(&self.metadata_base, raw.metadata_base);
    }
}

impl fmt::Debug for SlotCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlotCell")
            .field("seq", &seq_acquire(&self.seq))
            // Relaxed: diagnostic snapshot only; torn values are acceptable
            // in debug output and nothing is synchronized through it.
            .field("generation", &self.generation.load(Ordering::Relaxed))
            .field("entries", &self.entries.load(Ordering::Relaxed)) // Relaxed: same
            .finish()
    }
}

/// A raw copy of a [`SlotCell`]'s published fields.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RawSlot {
    pub(crate) generation: u64,
    pub(crate) entries: u64,
    target: u8,
    pub(crate) device_base: u64,
    pub(crate) buddy_base: u64,
    pub(crate) metadata_base: u64,
}

impl RawSlot {
    pub(crate) fn from_view(generation: u64, view: &AllocView) -> Self {
        Self {
            generation,
            entries: view.entries,
            target: encode_target(view.target),
            device_base: view.device_base,
            buddy_base: view.buddy_base,
            metadata_base: view.metadata_base,
        }
    }

    /// A published tombstone: the slot is dead at `generation` (freed, or
    /// never allocated).
    pub(crate) fn dead(generation: u64) -> Self {
        Self {
            generation,
            entries: 0,
            target: 0,
            device_base: 0,
            buddy_base: 0,
            metadata_base: 0,
        }
    }

    /// Validates a consistent snapshot against a handle: generation must
    /// match and the slot must be live.
    fn validate(&self, id: AllocId) -> Result<AllocView, DeviceError> {
        if self.generation != id.generation || self.entries == 0 {
            return Err(DeviceError::BadAllocation);
        }
        let target = decode_target(self.target).ok_or(DeviceError::BadAllocation)?;
        Ok(AllocView {
            target,
            entries: self.entries,
            device_base: self.device_base,
            buddy_base: self.buddy_base,
            metadata_base: self.metadata_base,
        })
    }
}

/// RAII odd/even sequence window: opening bumps the slot sequence to odd,
/// dropping bumps it back to even — panic-safe, so an unwinding writer
/// cannot leave readers spinning forever.
pub(crate) struct SeqWindow<'a> {
    seq: &'a AtomicU64,
}

impl<'a> SeqWindow<'a> {
    fn open(cell: &'a SlotCell) -> Self {
        // Relaxed bump + Release fence (was SeqCst bump + SeqCst fence):
        // the fence orders the odd bump before every store inside the
        // window, so a reader that observes any of them cannot
        // re-validate against the old even sequence. The bump itself
        // needs no ordering — `write_lock` serializes writers. Model:
        // `SkipOddBump` (no odd marker) and `NoWriterFence` (no fence)
        // each have a counterexample; this pair passes exhaustively.
        seq_open(&cell.seq);
        Self { seq: &cell.seq }
    }
}

impl Drop for SeqWindow<'_> {
    fn drop(&mut self) {
        // Release bump, no fence (was SeqCst fence + SeqCst bump): a
        // single Release RMW already orders every store inside the window
        // before the closing bump, which is the edge `begin_read`'s
        // Acquire pairs with — the old leading fence duplicated exactly
        // that. Model: downgrading this to Relaxed (`CloseRelaxed`) has a
        // counterexample; Release alone passes exhaustively.
        seq_release(self.seq);
    }
}

/// The allocation slot table: chunked like [`AtomicNibbles`] so published
/// cells never move while the table grows.
pub(crate) struct SlotTable {
    chunks: Box<[OnceLock<Box<[SlotCell]>>]>,
}

impl SlotTable {
    fn new() -> Self {
        Self {
            chunks: (0..SLOT_CHUNKS).map(|_| OnceLock::new()).collect(),
        }
    }

    fn locate(slot: u32) -> (usize, usize) {
        if slot < SLOT_CHUNK0 {
            (0, slot as usize)
        } else {
            let k = (slot / SLOT_CHUNK0).ilog2() as usize + 1;
            let start = (SLOT_CHUNK0 as u64) << (k - 1);
            (k, (slot as u64 - start) as usize)
        }
    }

    fn chunk_len(k: usize) -> u64 {
        if k == 0 {
            SLOT_CHUNK0 as u64
        } else {
            (SLOT_CHUNK0 as u64) << (k - 1)
        }
    }

    /// Publishes chunks until `slot` is addressable (structural-lock only).
    pub(crate) fn ensure(&self, slot: u32) {
        let (last, _) = Self::locate(slot);
        for k in 0..=last {
            let len = Self::chunk_len(k);
            self.chunks[k].get_or_init(|| (0..len).map(|_| SlotCell::new()).collect());
        }
    }

    /// The cell of `slot`, or `None` when the slot was never published —
    /// which means no allocation ever existed there, so any handle naming
    /// it is bad.
    pub(crate) fn cell(&self, slot: u32) -> Option<&SlotCell> {
        let (k, off) = Self::locate(slot);
        self.chunks[k].get()?.get(off)
    }
}

impl fmt::Debug for SlotTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ready = self.chunks.iter().filter(|c| c.get().is_some()).count();
        f.debug_struct("SlotTable")
            .field("chunks_ready", &ready)
            .finish()
    }
}

/// Device-wide traffic counters as atomics, so lock-free accesses fold
/// their per-batch deltas in without `&mut` access to the device.
pub(crate) struct SharedStats {
    counters: [AtomicU64; 8],
}

impl SharedStats {
    fn new() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    pub(crate) fn add(&self, delta: &AccessStats) {
        for (c, v) in self.counters.iter().zip(delta.to_array()) {
            if v != 0 {
                // Relaxed: statistical counters; exact totals are read only
                // at quiescent points (drain / joined threads).
                c.fetch_add(v, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn snapshot(&self) -> AccessStats {
        let mut out = [0u64; 8];
        for (o, c) in out.iter_mut().zip(self.counters.iter()) {
            // Relaxed: statistical snapshot; exact once writers are
            // quiescent.
            *o = c.load(Ordering::Relaxed);
        }
        AccessStats::from_array(out)
    }

    pub(crate) fn reset(&self) {
        for c in self.counters.iter() {
            // Relaxed: reset happens at quiescent points only.
            c.store(0, Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for SharedStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SharedStats")
            .field(&self.snapshot())
            .finish()
    }
}

/// Decrements the in-flight handle-operation counter on drop, so
/// [`SharedState::wait_quiescent`] observes completion even across panics.
pub(crate) struct OpGuard<'a> {
    shared: &'a SharedState,
}

impl Drop for OpGuard<'_> {
    fn drop(&mut self) {
        self.shared.ops_exited.fetch_add(1, Ordering::SeqCst);
    }
}

/// The published half of one device. See the module docs for the protocol.
pub(crate) struct SharedState {
    codec: CodecKind,
    pub(crate) device: AtomicBytes,
    pub(crate) buddy: AtomicBytes,
    pub(crate) metadata: AtomicNibbles,
    pub(crate) slots: SlotTable,
    pub(crate) stats: SharedStats,
    /// Monotonic publication counter: one tick per structural epoch.
    epoch: AtomicU64,
    ops_entered: AtomicU64,
    ops_exited: AtomicU64,
}

impl fmt::Debug for SharedState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedState")
            .field("codec", &self.codec)
            .field("epoch", &self.epoch.load(Ordering::SeqCst))
            .field("device", &self.device)
            .field("buddy", &self.buddy)
            .field("metadata", &self.metadata)
            .field("slots", &self.slots)
            .finish()
    }
}

impl SharedState {
    pub(crate) fn new(
        codec: CodecKind,
        device_capacity: u64,
        buddy_capacity: u64,
        metadata_entries: u64,
    ) -> Self {
        let state = Self {
            codec,
            device: AtomicBytes::new(device_capacity),
            buddy: AtomicBytes::new(buddy_capacity),
            metadata: AtomicNibbles::new(metadata_entries),
            slots: SlotTable::new(),
            stats: SharedStats::new(),
            epoch: AtomicU64::new(0),
            ops_entered: AtomicU64::new(0),
            ops_exited: AtomicU64::new(0),
        };
        state.slots.ensure(0);
        state
    }

    pub(crate) fn codec(&self) -> CodecKind {
        self.codec
    }

    /// Current epoch counter (one tick per structural publication).
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Marks a lock-free handle operation in flight (released on drop).
    pub(crate) fn enter_op(&self) -> OpGuard<'_> {
        self.ops_entered.fetch_add(1, Ordering::SeqCst);
        OpGuard { shared: self }
    }

    /// Blocks until every handle operation that was in flight when this
    /// call started has completed. New operations may start during the
    /// wait — the barrier covers the snapshot, which is what `drain`
    /// needs (its callers quiesce their own traffic sources first).
    /// Monotone completion counters rule out livelock.
    pub(crate) fn wait_quiescent(&self) {
        let target = self.ops_entered.load(Ordering::SeqCst);
        while self.ops_exited.load(Ordering::SeqCst) < target {
            std::thread::yield_now();
        }
    }

    /// Publishes new addressing facts for a slot under its write lock,
    /// inside an `epoch_publish` span. This is the only way slot contents
    /// change, so readers see epochs, never blends.
    pub(crate) fn publish(&self, slot: u32, raw: RawSlot) {
        let cell = self
            .slots
            .cell(slot)
            .expect("structural ops ensure the slot before publishing"); // lint-allow(no-unwrap): alloc calls SlotTable::ensure before any publish
        let _guard = lock_recover(&cell.write_lock);
        let _span = trace::span(SpanKind::EpochPublish);
        let window = SeqWindow::open(cell);
        cell.store_raw(&raw);
        drop(window);
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Runs `mutate` while holding the slot's write lock **and** an open
    /// sequence window, then publishes the returned [`RawSlot`] before
    /// closing both. `retarget` migrates inside this: its re-encode may
    /// write into regions that overlap the old reservation (tight-fit
    /// placement), so concurrent readers of this one allocation must spin
    /// through the whole migration instead of sampling half-rewritten
    /// bytes under an unchanged sequence. On error the window closes with
    /// the cell unchanged (readers retry once and see the old epoch).
    pub(crate) fn republish<R>(
        &self,
        slot: u32,
        mutate: impl FnOnce() -> Result<(RawSlot, R), DeviceError>,
    ) -> Result<R, DeviceError> {
        let cell = self
            .slots
            .cell(slot)
            .expect("structural ops ensure the slot before publishing"); // lint-allow(no-unwrap): alloc calls SlotTable::ensure before any publish
        let _guard = lock_recover(&cell.write_lock);
        let _span = trace::span(SpanKind::EpochPublish);
        let window = SeqWindow::open(cell);
        let (raw, result) = mutate()?;
        cell.store_raw(&raw);
        drop(window);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        Ok(result)
    }

    /// Decodes a stored stream through the owning codec. Trailing padding
    /// from sector alignment is ignored by every decoder. Fails (for
    /// retry) when a racing write tore the stream.
    fn decode(&self, data: &[u8], out: &mut Entry) -> Result<(), TornRead> {
        let _span = trace::span(SpanKind::CodecDecompress);
        self.codec
            .decompress_into(data, data.len() * 8, out)
            .map_err(|_| TornRead)
    }

    /// Loads and decompresses one entry into `out` against a consistent
    /// view; the caller records traffic and re-validates the sequence.
    pub(crate) fn read_one(
        &self,
        view: &AllocView,
        index: u64,
        out: &mut Entry,
    ) -> Result<EntryState, TornRead> {
        let state = self
            .metadata
            .get(view.metadata_base + index)
            .ok_or(TornRead)?;
        match state {
            EntryState::Zero => *out = [0u8; ENTRY_BYTES],
            EntryState::ZeroPageFit => {
                let mut granule = [0u8; 8];
                self.device.read(view.device_offset(index), &mut granule);
                self.decode(&granule, out)?;
            }
            EntryState::ZeroPageOverflow => {
                self.buddy.read(view.buddy_offset(index), out);
            }
            EntryState::Compressed { sectors } => {
                let total = sectors as usize * SECTOR_BYTES;
                let mut data = [0u8; ENTRY_BYTES];
                self.load_sectors(view, index, sectors, &mut data[..total]);
                if sectors == 4 {
                    // Raw storage.
                    out.copy_from_slice(&data);
                } else {
                    self.decode(&data[..total], out)?;
                }
            }
        }
        Ok(state)
    }

    /// Compresses and stores one entry; the caller records traffic and
    /// holds the slot's write lock + sequence window.
    pub(crate) fn write_one(
        &self,
        view: &AllocView,
        index: u64,
        entry: &Entry,
        scratch: &mut CompressedBuf,
    ) -> EntryState {
        let state = if entry.iter().all(|&b| b == 0) {
            EntryState::Zero
        } else {
            let compress_span = trace::span(SpanKind::CodecCompress);
            self.codec.compress_into(entry, scratch);
            drop(compress_span);
            match view.target {
                TargetRatio::ZeroPage16 => {
                    if scratch.bytes() <= 8 {
                        // Compose the padded 8 B granule as one whole word.
                        let mut granule = [0u8; 8];
                        granule[..scratch.data().len()].copy_from_slice(scratch.data());
                        self.device.write(view.device_offset(index), &granule);
                        EntryState::ZeroPageFit
                    } else {
                        let _span = trace::span(SpanKind::BuddyIo);
                        self.buddy.write(view.buddy_offset(index), entry);
                        EntryState::ZeroPageOverflow
                    }
                }
                _ => {
                    let class = scratch.size_class();
                    if class == SizeClass::B128 {
                        // Incompressible: store the raw entry across the
                        // four sectors.
                        self.store_sectors(view, index, entry, 4);
                        EntryState::Compressed { sectors: 4 }
                    } else {
                        let sectors = class.sectors().max(1);
                        let mut padded = [0u8; ENTRY_BYTES];
                        padded[..scratch.data().len()].copy_from_slice(scratch.data());
                        self.store_sectors(view, index, &padded, sectors);
                        EntryState::Compressed { sectors }
                    }
                }
            }
        };
        self.metadata.set(view.metadata_base + index, state);
        state
    }

    /// Stores `sectors` sectors of `data`, the first `device_sectors` in
    /// device memory and the remainder in the entry's buddy slot.
    fn store_sectors(&self, view: &AllocView, index: u64, data: &[u8], sectors: u8) {
        let _span = trace::span(SpanKind::BuddyIo);
        let device_sectors = view.target.device_sectors().min(sectors);
        let split = device_sectors as usize * SECTOR_BYTES;
        self.device.write(view.device_offset(index), &data[..split]);
        if (sectors as usize) * SECTOR_BYTES > split {
            let rest = &data[split..sectors as usize * SECTOR_BYTES];
            self.buddy.write(view.buddy_offset(index), rest);
        }
    }

    /// Gathers an entry's sectors into `out` (device-resident first, then
    /// any buddy overflow). `out` must be exactly `sectors × 32` bytes.
    fn load_sectors(&self, view: &AllocView, index: u64, sectors: u8, out: &mut [u8]) {
        let _span = trace::span(SpanKind::BuddyIo);
        let device_sectors = view.target.device_sectors().min(sectors);
        let split = device_sectors as usize * SECTOR_BYTES;
        let total = sectors as usize * SECTOR_BYTES;
        debug_assert_eq!(out.len(), total);
        self.device
            .read(view.device_offset(index), &mut out[..split]);
        if total > split {
            self.buddy
                .read(view.buddy_offset(index), &mut out[split..total]);
        }
    }

    /// Reads a contiguous run of entries against one consistent epoch.
    /// Lock-free: retries through the slot seqlock until a full batch
    /// lands inside a stable snapshot.
    pub(crate) fn read_batch(
        &self,
        id: AllocId,
        start: u64,
        out: &mut [Entry],
    ) -> Result<AccessStats, DeviceError> {
        let cell = self.slots.cell(id.slot).ok_or(DeviceError::BadAllocation)?;
        'attempt: loop {
            let seen = cell.begin_read();
            let raw = cell.load_raw();
            if !cell.still(seen) {
                continue;
            }
            // The snapshot is consistent from here on: errors are the
            // truthful observation of this epoch, not torn state.
            let view = raw.validate(id)?;
            check_range(&view, start, out.len() as u64)?;
            let mut stats = AccessStats::default();
            for (i, slot_out) in out.iter_mut().enumerate() {
                match self.read_one(&view, start + i as u64, slot_out) {
                    Ok(state) => record_read(&mut stats, view.target, state),
                    Err(TornRead) => {
                        if cell.still(seen) {
                            unreachable!("stored stream failed to decode under a stable snapshot");
                        }
                        continue 'attempt;
                    }
                }
            }
            if !cell.still(seen) {
                continue;
            }
            self.stats.add(&stats);
            return Ok(stats);
        }
    }

    /// Writes a contiguous run of entries under the slot's write lock and
    /// sequence window. Takes no device-wide lock.
    pub(crate) fn write_batch(
        &self,
        id: AllocId,
        start: u64,
        entries: &[Entry],
        scratch: &mut CompressedBuf,
    ) -> Result<AccessStats, DeviceError> {
        let cell = self.slots.cell(id.slot).ok_or(DeviceError::BadAllocation)?;
        let _guard = lock_recover(&cell.write_lock);
        // Under the write lock the published fields are stable (structural
        // publications also hold it), so a plain load is a snapshot.
        let view = cell.load_raw().validate(id)?;
        check_range(&view, start, entries.len() as u64)?;
        let mut stats = AccessStats::default();
        let window = SeqWindow::open(cell);
        for (i, entry) in entries.iter().enumerate() {
            let state = self.write_one(&view, start + i as u64, entry, scratch);
            record_write(&mut stats, view.target, state);
        }
        drop(window);
        self.stats.add(&stats);
        Ok(stats)
    }

    /// Writes one entry (see [`write_batch`](Self::write_batch)),
    /// returning the recorded [`EntryState`].
    pub(crate) fn write_single(
        &self,
        id: AllocId,
        index: u64,
        entry: &Entry,
        scratch: &mut CompressedBuf,
    ) -> Result<EntryState, DeviceError> {
        let cell = self.slots.cell(id.slot).ok_or(DeviceError::BadAllocation)?;
        let _guard = lock_recover(&cell.write_lock);
        let view = cell.load_raw().validate(id)?;
        check_index(&view, index)?;
        let mut stats = AccessStats::default();
        let window = SeqWindow::open(cell);
        let state = self.write_one(&view, index, entry, scratch);
        drop(window);
        record_write(&mut stats, view.target, state);
        self.stats.add(&stats);
        Ok(state)
    }

    /// Per-entry state against a consistent epoch, without touching the
    /// traffic counters.
    pub(crate) fn entry_state(&self, id: AllocId, index: u64) -> Result<EntryState, DeviceError> {
        let cell = self.slots.cell(id.slot).ok_or(DeviceError::BadAllocation)?;
        loop {
            let seen = cell.begin_read();
            let raw = cell.load_raw();
            if !cell.still(seen) {
                continue;
            }
            let view = raw.validate(id)?;
            check_index(&view, index)?;
            let state = self.metadata.get(view.metadata_base + index);
            if !cell.still(seen) {
                continue;
            }
            match state {
                Some(state) => return Ok(state),
                None => unreachable!("published metadata decodes under a stable snapshot"),
            }
        }
    }

    /// Summarizes the live metadata states of an allocation into a
    /// [`StateWindow`] against one consistent epoch.
    pub(crate) fn state_window(&self, id: AllocId) -> Result<StateWindow, DeviceError> {
        let cell = self.slots.cell(id.slot).ok_or(DeviceError::BadAllocation)?;
        'attempt: loop {
            let seen = cell.begin_read();
            let raw = cell.load_raw();
            if !cell.still(seen) {
                continue;
            }
            let view = raw.validate(id)?;
            let mut window = StateWindow::new();
            for i in 0..view.entries {
                match self.metadata.get(view.metadata_base + i) {
                    Some(state) => window.observe(state),
                    None => {
                        if cell.still(seen) {
                            unreachable!("published metadata decodes under a stable snapshot");
                        }
                        continue 'attempt;
                    }
                }
            }
            if !cell.still(seen) {
                continue;
            }
            return Ok(window);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_bytes_round_trip_words() {
        let bytes = AtomicBytes::new(64);
        let data: Vec<u8> = (0..32).collect();
        bytes.write(16, &data);
        let mut out = vec![0u8; 32];
        bytes.read(16, &mut out);
        assert_eq!(out, data);
        // Neighbouring words untouched.
        let mut head = vec![0u8; 16];
        bytes.read(0, &mut head);
        assert_eq!(head, vec![0u8; 16]);
    }

    #[test]
    fn nibble_chunks_cover_growth_without_moving() {
        let nibbles = AtomicNibbles::new(16);
        nibbles.set(3, EntryState::Compressed { sectors: 2 });
        // Grow far past the base chunk; earlier states stay addressable.
        nibbles.ensure(100_000);
        nibbles.set(99_999, EntryState::ZeroPageFit);
        assert_eq!(nibbles.get(3), Some(EntryState::Compressed { sectors: 2 }));
        assert_eq!(nibbles.get(99_999), Some(EntryState::ZeroPageFit));
        assert_eq!(nibbles.get(50_000), Some(EntryState::Zero));
    }

    #[test]
    fn nibble_locate_is_contiguous_across_chunk_edges() {
        let nibbles = AtomicNibbles::new(128); // base 64 bytes
        let mut seen = std::collections::HashSet::new();
        for byte in 0..1024u64 {
            let (k, off) = nibbles.locate(byte);
            assert!(seen.insert((k, off)), "byte {byte} collides at ({k},{off})");
            assert!(
                (off as u64) < nibbles.chunk_len(k),
                "byte {byte} out of chunk"
            );
        }
    }

    #[test]
    fn slot_locate_is_contiguous() {
        let mut seen = std::collections::HashSet::new();
        for slot in 0..10_000u32 {
            let (k, off) = SlotTable::locate(slot);
            assert!(seen.insert((k, off)), "slot {slot} collides");
            assert!((off as u64) < SlotTable::chunk_len(k));
        }
        // The last chunk still covers u32::MAX.
        let (k, _) = SlotTable::locate(u32::MAX);
        assert!(k < SLOT_CHUNKS);
    }

    #[test]
    fn dead_cells_reject_every_generation() {
        let state = SharedState::new(CodecKind::Bpc, 1 << 16, 3 << 16, 1 << 13);
        let id = AllocId {
            slot: 0,
            generation: 0,
        };
        let mut out = [[0u8; ENTRY_BYTES]; 1];
        assert_eq!(
            state.read_batch(id, 0, &mut out),
            Err(DeviceError::BadAllocation)
        );
        // A slot that was never ensured is equally dead.
        let forged = AllocId {
            slot: 9_999,
            generation: 7,
        };
        assert_eq!(
            state.read_batch(forged, 0, &mut out),
            Err(DeviceError::BadAllocation)
        );
    }

    #[test]
    fn publish_then_read_round_trips() {
        let state = SharedState::new(CodecKind::Bpc, 1 << 16, 3 << 16, 1 << 13);
        let view = AllocView {
            target: TargetRatio::R2,
            entries: 8,
            device_base: 0,
            buddy_base: 0,
            metadata_base: 0,
        };
        state.publish(0, RawSlot::from_view(1, &view));
        let id = AllocId {
            slot: 0,
            generation: 1,
        };
        let mut scratch = CompressedBuf::with_capacity(ENTRY_BYTES + ENTRY_BYTES / 4);
        let entry = [0xA5u8; ENTRY_BYTES];
        state
            .write_batch(id, 2, &[entry, entry], &mut scratch)
            .expect("in range");
        let mut out = [[0u8; ENTRY_BYTES]; 2];
        state.read_batch(id, 2, &mut out).expect("in range");
        assert_eq!(out, [entry, entry]);
        // Stale generation pins to BadAllocation after a re-publish.
        state.publish(0, RawSlot::dead(2));
        assert_eq!(
            state.read_batch(id, 2, &mut out),
            Err(DeviceError::BadAllocation)
        );
        assert!(state.epoch() >= 2);
    }
}
