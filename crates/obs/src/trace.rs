//! Span tracing over a static taxonomy, feature-gated to a true no-op.
//!
//! # Taxonomy
//!
//! Spans come from the fixed [`SpanKind`] set — the eight operations the
//! pool/service hot paths decompose into (lock waits, codec work, buddy
//! I/O, allocator work, migration, queue waits, epoch publication). A
//! static taxonomy keeps recording allocation-free and lets totals live
//! in a flat array.
//!
//! # Gating
//!
//! Without the `obs-trace` feature (the default), [`span`],
//! [`span_with_arg`] and [`record_span`] are inlined no-ops and
//! [`SpanGuard`] is a unit struct **without a `Drop` impl** — an
//! instrumented hot path compiles to exactly the uninstrumented code, so
//! the instrumentation hooks in `buddy-core`/`buddy-pool`/`buddy-service`
//! are unconditional call sites, not `cfg` forests.
//!
//! # Recording (feature enabled)
//!
//! Each thread owns a single-writer ring of [`ring_capacity`] completed
//! spans: the owning thread stores the span fields with relaxed ordering
//! and publishes them with one release store of the ring head; recording
//! never blocks and never allocates after the ring exists. When the ring
//! wraps, the **oldest events are silently dropped** — the rings feed the
//! Chrome-trace export, which is a window, not an audit log. Per-kind
//! *totals* (sum of durations + count) are kept in separate atomics and
//! are **immune to wraparound** — they are what the `results/`
//! breakdown reports are built from.
//!
//! # Export
//!
//! [`export_chrome_trace`] renders every event still resident in the
//! rings as Chrome trace-event JSON (`"X"` complete-span events,
//! microsecond timestamps relative to the tracer epoch, one `tid` per
//! recording thread). Load the file at `chrome://tracing` or
//! <https://ui.perfetto.dev>.

/// The static span taxonomy. `repr` order is the index into totals and
/// the Chrome-trace name table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Waiting to acquire a pool shard mutex.
    ShardLockWait,
    /// Compressing one entry in the codec.
    CodecCompress,
    /// Decompressing one entry in the codec.
    CodecDecompress,
    /// Moving sector bytes to/from device and buddy carve-out storage.
    BuddyIo,
    /// Region allocator work (alloc/free/placement search).
    RegionAlloc,
    /// Re-encoding an allocation onto a new target ratio.
    RetargetMigrate,
    /// Time between an operation's scheduled arrival and its dequeue.
    QueueWait,
    /// A structural mutation's snapshot-publication window: the seqlock
    /// write-side interval during which concurrent snapshot readers
    /// retry instead of observing a half-applied table.
    EpochPublish,
}

impl SpanKind {
    /// Every kind, in index order.
    pub const ALL: [SpanKind; 8] = [
        SpanKind::ShardLockWait,
        SpanKind::CodecCompress,
        SpanKind::CodecDecompress,
        SpanKind::BuddyIo,
        SpanKind::RegionAlloc,
        SpanKind::RetargetMigrate,
        SpanKind::QueueWait,
        SpanKind::EpochPublish,
    ];

    /// Number of kinds.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name (CSV columns, Chrome-trace event names).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::ShardLockWait => "shard_lock_wait",
            SpanKind::CodecCompress => "codec_compress",
            SpanKind::CodecDecompress => "codec_decompress",
            SpanKind::BuddyIo => "buddy_io",
            SpanKind::RegionAlloc => "region_alloc",
            SpanKind::RetargetMigrate => "retarget_migrate",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::EpochPublish => "epoch_publish",
        }
    }

    /// Index into [`SpanTotals::kinds`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// The kind at `index()` position `i` (modulo the taxonomy size).
    pub fn from_index(i: usize) -> SpanKind {
        Self::ALL[i % Self::COUNT]
    }
}

/// Accumulated time and event count of one [`SpanKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindTotal {
    /// Sum of span durations, nanoseconds.
    pub total_ns: u64,
    /// Completed spans.
    pub count: u64,
}

/// Per-kind totals — exact regardless of ring wraparound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanTotals {
    /// One slot per [`SpanKind`], indexed by [`SpanKind::index`].
    pub kinds: [KindTotal; SpanKind::COUNT],
}

impl SpanTotals {
    /// The total for one kind.
    pub fn of(&self, kind: SpanKind) -> KindTotal {
        self.kinds[kind.index()]
    }

    /// Field-wise difference against an earlier reading (saturating), the
    /// per-phase delta the breakdown reports are built from.
    pub fn since(&self, earlier: &SpanTotals) -> SpanTotals {
        let mut out = SpanTotals::default();
        for (o, (now, then)) in out
            .kinds
            .iter_mut()
            .zip(self.kinds.iter().zip(earlier.kinds.iter()))
        {
            o.total_ns = now.total_ns.saturating_sub(then.total_ns);
            o.count = now.count.saturating_sub(then.count);
        }
        out
    }
}

pub use imp::{
    export_chrome_trace, is_enabled, record_span, ring_capacity, span, span_with_arg, totals,
    SpanGuard,
};

/// Disabled mode: unit types and inlined no-ops. `SpanGuard` has no
/// `Drop` impl, so guards vanish entirely at compile time.
#[cfg(not(feature = "obs-trace"))]
mod imp {
    use super::{SpanKind, SpanTotals};
    use std::time::Duration;

    /// Completion handle of an open span; a unit no-op in disabled mode.
    #[derive(Debug)]
    #[must_use = "the span ends when the guard drops"]
    pub struct SpanGuard;

    /// Opens a span; no-op in disabled mode.
    #[inline(always)]
    pub fn span(_kind: SpanKind) -> SpanGuard {
        SpanGuard
    }

    /// Opens a span carrying an argument; no-op in disabled mode.
    #[inline(always)]
    pub fn span_with_arg(_kind: SpanKind, _arg: u64) -> SpanGuard {
        SpanGuard
    }

    /// Records an already-measured span; no-op in disabled mode.
    #[inline(always)]
    pub fn record_span(_kind: SpanKind, _elapsed: Duration) {}

    /// Per-kind totals; all zero in disabled mode.
    pub fn totals() -> SpanTotals {
        SpanTotals::default()
    }

    /// Chrome trace-event JSON of the rings; empty in disabled mode.
    pub fn export_chrome_trace() -> String {
        "{\"traceEvents\":[]}".to_string()
    }

    /// Whether span tracing is compiled in.
    pub fn is_enabled() -> bool {
        false
    }

    /// Events each thread's ring can hold; 0 in disabled mode.
    pub fn ring_capacity() -> usize {
        0
    }
}

/// Enabled mode: per-thread single-writer rings + global per-kind totals.
#[cfg(feature = "obs-trace")]
mod imp {
    use super::{SpanKind, SpanTotals};
    use std::fmt::Write as _;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::{Duration, Instant};

    /// Completed spans each thread's ring holds before overwriting the
    /// oldest.
    const RING_CAPACITY: usize = 4096;

    /// One completed span. Fields are plain atomics so the (single)
    /// writer and the export reader never need a lock; validity is
    /// governed by the ring head (release store / acquire load).
    struct Slot {
        kind_arg: AtomicU64,
        start_ns: AtomicU64,
        dur_ns: AtomicU64,
    }

    /// A single-writer ring: only the owning thread stores, any thread
    /// may read during export.
    struct ThreadRing {
        tid: u64,
        head: AtomicU64,
        slots: Vec<Slot>,
    }

    impl ThreadRing {
        fn push(&self, kind: SpanKind, arg: u64, start_ns: u64, dur_ns: u64) {
            // Relaxed: single-writer ring — only the owning thread stores
            // the head, so its own prior value needs no synchronization.
            let seq = self.head.load(Ordering::Relaxed);
            let slot = &self.slots[(seq % RING_CAPACITY as u64) as usize];
            // Relaxed: the release store of `head` below publishes these
            // three field stores to export readers.
            slot.kind_arg.store(pack(kind, arg), Ordering::Relaxed);
            // Relaxed: published by the release store of `head` below.
            slot.start_ns.store(start_ns, Ordering::Relaxed);
            // Relaxed: published by the release store of `head` below.
            slot.dur_ns.store(dur_ns, Ordering::Relaxed);
            self.head.store(seq + 1, Ordering::Release);
        }
    }

    fn pack(kind: SpanKind, arg: u64) -> u64 {
        (arg << 3) | kind.index() as u64
    }

    fn unpack(word: u64) -> (SpanKind, u64) {
        (SpanKind::from_index((word & 7) as usize), word >> 3)
    }

    struct Tracer {
        epoch: Instant,
        rings: Mutex<Vec<Arc<ThreadRing>>>,
        /// `(sum_ns, count)` per kind — exact regardless of ring wrap.
        totals: [(AtomicU64, AtomicU64); SpanKind::COUNT],
        next_tid: AtomicU64,
    }

    fn tracer() -> &'static Tracer {
        static TRACER: OnceLock<Tracer> = OnceLock::new();
        TRACER.get_or_init(|| Tracer {
            epoch: Instant::now(),
            rings: Mutex::new(Vec::new()),
            totals: std::array::from_fn(|_| (AtomicU64::new(0), AtomicU64::new(0))),
            next_tid: AtomicU64::new(1),
        })
    }

    fn rings_of(t: &Tracer) -> std::sync::MutexGuard<'_, Vec<Arc<ThreadRing>>> {
        match t.rings.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    thread_local! {
        static RING: Arc<ThreadRing> = {
            let t = tracer();
            let ring = Arc::new(ThreadRing {
                // Relaxed: a unique-id source, not a synchronization point.
                tid: t.next_tid.fetch_add(1, Ordering::Relaxed),
                head: AtomicU64::new(0),
                slots: (0..RING_CAPACITY)
                    .map(|_| Slot {
                        kind_arg: AtomicU64::new(0),
                        start_ns: AtomicU64::new(0),
                        dur_ns: AtomicU64::new(0),
                    })
                    .collect(),
            });
            rings_of(t).push(Arc::clone(&ring));
            ring
        };
    }

    fn ns(d: Duration) -> u64 {
        u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
    }

    fn commit(kind: SpanKind, arg: u64, start_ns: u64, dur_ns: u64) {
        let t = tracer();
        let (sum, count) = &t.totals[kind.index()];
        // Relaxed: statistical totals — readers take snapshots and
        // tolerate in-flight updates.
        sum.fetch_add(dur_ns, Ordering::Relaxed);
        // Relaxed: statistical totals, as above.
        count.fetch_add(1, Ordering::Relaxed);
        RING.with(|ring| ring.push(kind, arg, start_ns, dur_ns));
    }

    /// Completion handle of an open span: records on drop.
    #[derive(Debug)]
    #[must_use = "the span ends when the guard drops"]
    pub struct SpanGuard {
        kind: SpanKind,
        arg: u64,
        start: Instant,
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let dur_ns = ns(self.start.elapsed());
            let start_ns = ns(self.start.saturating_duration_since(tracer().epoch));
            commit(self.kind, self.arg, start_ns, dur_ns);
        }
    }

    /// Opens a span of `kind`; it ends (and is recorded) when the
    /// returned guard drops.
    #[inline]
    pub fn span(kind: SpanKind) -> SpanGuard {
        span_with_arg(kind, 0)
    }

    /// As [`span`], carrying a numeric argument (e.g. a shard index)
    /// into the exported event.
    #[inline]
    pub fn span_with_arg(kind: SpanKind, arg: u64) -> SpanGuard {
        SpanGuard {
            kind,
            arg,
            start: Instant::now(),
        }
    }

    /// Records a span whose duration the caller already measured (e.g. a
    /// queue delay computed from a scheduled deadline). The event is
    /// back-dated so it ends "now".
    pub fn record_span(kind: SpanKind, elapsed: Duration) {
        let end_ns = ns(tracer().epoch.elapsed());
        let dur_ns = ns(elapsed);
        commit(kind, 0, end_ns.saturating_sub(dur_ns), dur_ns);
    }

    /// A point-in-time copy of the per-kind totals.
    pub fn totals() -> SpanTotals {
        let t = tracer();
        let mut out = SpanTotals::default();
        for (slot, (sum, count)) in out.kinds.iter_mut().zip(t.totals.iter()) {
            // Relaxed: statistical snapshot; exact once writers are
            // quiescent.
            slot.total_ns = sum.load(Ordering::Relaxed);
            // Relaxed: statistical snapshot, as above.
            slot.count = count.load(Ordering::Relaxed);
        }
        out
    }

    /// Renders every event still resident in the rings as Chrome
    /// trace-event JSON (`ph: "X"` complete spans, microsecond units).
    pub fn export_chrome_trace() -> String {
        let t = tracer();
        let rings: Vec<Arc<ThreadRing>> = rings_of(t).iter().map(Arc::clone).collect();
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for ring in &rings {
            // Acquire: pairs with the writer's release store — everything
            // below `h1` is fully written.
            let h1 = ring.head.load(Ordering::Acquire);
            let lo = h1.saturating_sub(RING_CAPACITY as u64);
            let mut events = Vec::new();
            for seq in lo..h1 {
                let slot = &ring.slots[(seq % RING_CAPACITY as u64) as usize];
                events.push((
                    seq,
                    // Relaxed: validity is re-checked against the head
                    // re-read below; torn slots are discarded there.
                    slot.kind_arg.load(Ordering::Relaxed),
                    // Relaxed: as above.
                    slot.start_ns.load(Ordering::Relaxed),
                    // Relaxed: as above.
                    slot.dur_ns.load(Ordering::Relaxed),
                ));
            }
            // Acquire: slots the writer lapped while we were reading are
            // below this watermark; drop them instead of emitting torn
            // events.
            let h2 = ring.head.load(Ordering::Acquire);
            let valid_lo = h2.saturating_sub(RING_CAPACITY as u64);
            for (seq, word, start_ns, dur_ns) in events {
                if seq < valid_lo {
                    continue;
                }
                let (kind, arg) = unpack(word);
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"buddy\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"arg\":{}}}}}",
                    kind.name(),
                    start_ns as f64 / 1_000.0,
                    dur_ns as f64 / 1_000.0,
                    ring.tid,
                    arg
                );
            }
        }
        out.push_str("]}");
        out
    }

    /// Whether span tracing is compiled in.
    pub fn is_enabled() -> bool {
        true
    }

    /// Events each thread's ring can hold before wrapping.
    pub fn ring_capacity() -> usize {
        RING_CAPACITY
    }
}

/// Times `f` and records it as one completed span of `kind`.
pub fn timed<T>(kind: SpanKind, f: impl FnOnce() -> T) -> T {
    let _span = imp::span(kind);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_stable() {
        assert_eq!(SpanKind::COUNT, 8);
        for (i, kind) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
            assert_eq!(SpanKind::from_index(i), *kind);
            assert!(!kind.name().is_empty());
        }
        assert_eq!(SpanKind::ShardLockWait.name(), "shard_lock_wait");
        assert_eq!(SpanKind::QueueWait.name(), "queue_wait");
        assert_eq!(SpanKind::EpochPublish.name(), "epoch_publish");
        // `pack` keeps the kind in the low 3 bits; index 7 is the last
        // one that fits, so the COUNT == 8 pin above is also the "growing
        // past 8 kinds needs a wider field" guard.
    }

    #[test]
    fn totals_delta_saturates() {
        let mut now = SpanTotals::default();
        now.kinds[0] = KindTotal {
            total_ns: 100,
            count: 3,
        };
        let mut earlier = SpanTotals::default();
        earlier.kinds[0] = KindTotal {
            total_ns: 40,
            count: 1,
        };
        let d = now.since(&earlier);
        assert_eq!(
            d.of(SpanKind::ShardLockWait),
            KindTotal {
                total_ns: 60,
                count: 2
            }
        );
        // Reversed order saturates to zero instead of wrapping.
        let r = earlier.since(&now);
        assert_eq!(r.of(SpanKind::ShardLockWait), KindTotal::default());
    }

    #[test]
    fn timed_runs_the_closure() {
        let out = timed(SpanKind::CodecCompress, || 41 + 1);
        assert_eq!(out, 42);
    }
}
