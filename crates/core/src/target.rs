//! Target compression ratios — the per-allocation annotation at the heart of
//! Buddy Compression.
//!
//! An allocation annotated with target ratio *r* reserves only `128 / r`
//! bytes of device memory per 128 B memory-entry; the remaining sectors are
//! pre-reserved at a fixed offset in the buddy-memory carve-out (Figure 4).
//! The paper allows 1×, 1.33×, 2× and 4× — "chosen to keep the sector
//! interleaving simple and avoid unaligned sector accesses" (§3.2) — plus an
//! aggressive 16× *zero-page* mode that keeps only 8 B of each entry in
//! device memory (§3.4).

use bpc::{SizeClass, SECTOR_BYTES};
use std::fmt;

/// A per-allocation target compression ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TargetRatio {
    /// 1× — uncompressed; all four sectors live in device memory.
    R1,
    /// 1.33× — three sectors in device memory, one reserved in buddy.
    R1_33,
    /// 2× — two sectors in device memory, two reserved in buddy.
    R2,
    /// 4× — one sector in device memory, three reserved in buddy.
    R4,
    /// 16× zero-page mode — 8 B per entry in device memory (§3.4). Entries
    /// that do not compress to 8 B are stored raw in their buddy slot.
    ZeroPage16,
}

impl TargetRatio {
    /// All targets from most to least aggressive (the order the profiler
    /// tries them in).
    pub const DESCENDING: [TargetRatio; 5] = [
        TargetRatio::ZeroPage16,
        TargetRatio::R4,
        TargetRatio::R2,
        TargetRatio::R1_33,
        TargetRatio::R1,
    ];

    /// The four standard targets (no zero-page mode).
    pub const STANDARD_DESCENDING: [TargetRatio; 4] = [
        TargetRatio::R4,
        TargetRatio::R2,
        TargetRatio::R1_33,
        TargetRatio::R1,
    ];

    /// Device bytes reserved per 128 B entry.
    pub fn device_bytes_per_entry(self) -> u32 {
        match self {
            TargetRatio::R1 => 128,
            TargetRatio::R1_33 => 96,
            TargetRatio::R2 => 64,
            TargetRatio::R4 => 32,
            TargetRatio::ZeroPage16 => 8,
        }
    }

    /// Device sectors reserved per entry (zero-page mode reserves a sub-
    /// sector 8 B granule and reports 0 whole sectors).
    pub fn device_sectors(self) -> u8 {
        (self.device_bytes_per_entry() / SECTOR_BYTES as u32) as u8 // lint-allow(lossy-cast): compile-time constants; the quotient is at most 4 sectors
    }

    /// Buddy bytes reserved per entry in the carve-out.
    ///
    /// The zero-page mode reserves a full 128 B raw slot: an entry that
    /// stops compressing to 8 B is stored uncompressed in buddy memory, so
    /// no reallocation is ever needed (the no-data-movement invariant).
    pub fn buddy_bytes_per_entry(self) -> u32 {
        match self {
            TargetRatio::ZeroPage16 => 128,
            other => 128 - other.device_bytes_per_entry(),
        }
    }

    /// Nominal compression ratio of the device-resident footprint.
    pub fn ratio(self) -> f64 {
        128.0 / self.device_bytes_per_entry() as f64
    }

    /// Whether an entry of the given compressed size class fits entirely in
    /// the device-resident part of its allocation.
    pub fn fits(self, class: SizeClass) -> bool {
        match self {
            TargetRatio::ZeroPage16 => class.bytes() <= 8,
            other => class.sectors() <= other.device_sectors(),
        }
    }

    /// Parses the notation used in the paper's figures ("1x", "1.33x", …).
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "1x" => Some(TargetRatio::R1),
            "1.33x" => Some(TargetRatio::R1_33),
            "2x" => Some(TargetRatio::R2),
            "4x" => Some(TargetRatio::R4),
            "16x" => Some(TargetRatio::ZeroPage16),
            _ => None,
        }
    }
}

impl fmt::Display for TargetRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            TargetRatio::R1 => "1x",
            TargetRatio::R1_33 => "1.33x",
            TargetRatio::R2 => "2x",
            TargetRatio::R4 => "4x",
            TargetRatio::ZeroPage16 => "16x",
        };
        write!(f, "{label}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_budgets_match_figure_4() {
        assert_eq!(TargetRatio::R1.device_sectors(), 4);
        assert_eq!(TargetRatio::R1_33.device_sectors(), 3);
        assert_eq!(TargetRatio::R2.device_sectors(), 2);
        assert_eq!(TargetRatio::R4.device_sectors(), 1);
        assert_eq!(TargetRatio::ZeroPage16.device_bytes_per_entry(), 8);
    }

    #[test]
    fn buddy_slots_complement_device() {
        for t in TargetRatio::STANDARD_DESCENDING {
            assert_eq!(t.device_bytes_per_entry() + t.buddy_bytes_per_entry(), 128);
        }
        assert_eq!(TargetRatio::ZeroPage16.buddy_bytes_per_entry(), 128);
    }

    #[test]
    fn ratios() {
        assert_eq!(TargetRatio::R1.ratio(), 1.0);
        assert!((TargetRatio::R1_33.ratio() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(TargetRatio::R2.ratio(), 2.0);
        assert_eq!(TargetRatio::R4.ratio(), 4.0);
        assert_eq!(TargetRatio::ZeroPage16.ratio(), 16.0);
    }

    #[test]
    fn fit_rules() {
        assert!(TargetRatio::R4.fits(SizeClass::B32));
        assert!(!TargetRatio::R4.fits(SizeClass::B64));
        assert!(TargetRatio::R2.fits(SizeClass::B64));
        assert!(!TargetRatio::R2.fits(SizeClass::B80));
        assert!(TargetRatio::R1_33.fits(SizeClass::B96));
        assert!(!TargetRatio::R1_33.fits(SizeClass::B128));
        assert!(TargetRatio::R1.fits(SizeClass::B128));
        assert!(TargetRatio::ZeroPage16.fits(SizeClass::B8));
        assert!(TargetRatio::ZeroPage16.fits(SizeClass::B0));
        assert!(!TargetRatio::ZeroPage16.fits(SizeClass::B16));
        // Zero entries fit every target.
        for t in TargetRatio::DESCENDING {
            assert!(t.fits(SizeClass::B0));
        }
    }

    #[test]
    fn labels_round_trip() {
        for t in TargetRatio::DESCENDING {
            assert_eq!(TargetRatio::from_label(&t.to_string()), Some(t));
        }
        assert_eq!(TargetRatio::from_label("3x"), None);
    }

    #[test]
    fn descending_is_sorted_by_ratio() {
        for w in TargetRatio::DESCENDING.windows(2) {
            assert!(w[0].ratio() > w[1].ratio());
        }
    }
}
