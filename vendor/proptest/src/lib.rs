//! Minimal, offline, API-compatible subset of the `proptest` framework
//! (1.x line).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace pins `proptest` to this shim (see
//! `[workspace.dependencies]` in the root manifest). It implements the
//! surface the workspace's property tests use:
//!
//! - the [`proptest!`] macro (struct form with `#![proptest_config(..)]`,
//!   doc comments and `#[test]` attributes on each case),
//! - [`Strategy`] with [`Strategy::prop_map`], range strategies for
//!   integers and floats, tuple strategies, [`prelude::any`],
//!   [`array::uniform32`] and [`collection::vec()`](fn@collection::vec),
//! - [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! **No shrinking.** Failing cases report the failing values via the
//! panic message but are not minimized; each test is driven by a
//! deterministic per-test RNG (seeded from the test name) so failures
//! reproduce across runs. Swap the real `proptest` back in for shrinking
//! and persistence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of type [`Strategy::Value`].
///
/// Unlike the real proptest `Strategy`, this shim samples directly from an
/// RNG with no intermediate value tree and no shrinking.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategy returned by [`prelude::any`]: the full domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::{SmallRng, Strategy};

    /// Strategy returned by [`uniform32`].
    #[derive(Debug, Clone)]
    pub struct Uniform32<S>(S);

    /// Generates `[T; 32]` arrays by sampling `strategy` 32 times.
    pub fn uniform32<S: Strategy>(strategy: S) -> Uniform32<S> {
        Uniform32(strategy)
    }

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];

        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy returned by [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec<T>` with a length drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Any, Arbitrary, ProptestConfig, Strategy};

    /// The canonical strategy for "any value of type `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Builds the deterministic RNG driving one property test, seeded from the
/// test's name so distinct tests explore distinct streams.
pub fn test_rng(test_name: &str) -> SmallRng {
    // FNV-1a over the name; any stable hash works.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}

/// Asserts a condition inside a property test (panics on failure; the real
/// proptest records and shrinks instead).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` runs
/// `config.cases` times with freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut proptest_rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for proptest_case in 0..config.cases {
                    // Sample into a tuple first so the failing inputs can be
                    // reported (strategy values must implement Debug).
                    let proptest_values =
                        ( $( $crate::Strategy::sample(&($strat), &mut proptest_rng), )* );
                    let proptest_inputs = format!("{:?}", proptest_values);
                    let ( $($pat,)* ) = proptest_values;
                    let proptest_result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(panic) = proptest_result {
                        eprintln!(
                            "proptest case {}/{} of {} failed with inputs ({}): {}",
                            proptest_case + 1,
                            config.cases,
                            stringify!($name),
                            stringify!($($pat),*),
                            proptest_inputs,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($pat in $strat),* ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_domain() {
        let mut rng = crate::test_rng("strategies_sample_in_domain");
        for _ in 0..1000 {
            let v = crate::Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let arr = crate::Strategy::sample(&crate::array::uniform32(0u32..4), &mut rng);
            assert!(arr.iter().all(|&x| x < 4));
            let vec = crate::Strategy::sample(&crate::collection::vec(any::<u8>(), 2..5), &mut rng);
            assert!((2..5).contains(&vec.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro wires patterns, strategies, and prop-asserts together.
        #[test]
        fn macro_round_trips(x in 0u64..100, (a, b) in (0u8..10, 0u8..10)) {
            prop_assert!(x < 100);
            prop_assert_eq!((a < 10, b < 10), (true, true));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        /// A failing case propagates its panic (after reporting the sampled
        /// inputs to stderr).
        #[test]
        #[should_panic(expected = "deliberate failure")]
        fn failing_case_panics(x in 0u32..10) {
            let _ = x;
            panic!("deliberate failure");
        }
    }
}
