#![cfg(feature = "audit")]
//! Adversarial [`RegionAllocator`] exercises, checked through the
//! shadow-state auditor instead of the allocator's own assertions.
//!
//! The churn suite pins leak-freedom from the allocator's *public
//! counters*; these tests attack the allocator with interleaved
//! `alloc` / `reserve_at` / `free` / `grow` sequences while a
//! [`ShadowRegion`] mirrors every request, and after each step the mirror
//! revalidates the free list from the outside: canonical coalescing, exact
//! tiling of `[0, capacity)`, and `used()` conservation. Double frees are
//! detected by the shadow's own bookkeeping — the allocator's panic is
//! only cross-checked, never relied on.
//!
//! Device-level adversaries run through [`BuddyDevice`] with the auditor
//! hooks active (the `audit` feature): alloc/free/retarget storms where
//! the auditor validates all three regions after every mutation.

use buddy_core::audit::ShadowRegion;
use buddy_core::{BuddyDevice, DeviceConfig, RegionAllocator, TargetRatio};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CONFIG: DeviceConfig = DeviceConfig {
    device_capacity: 1 << 18,
    carve_out_factor: 3,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleaved first-fit allocations, targeted reservations, frees and
    /// grows keep the allocator and an independent mirror in exact
    /// agreement at every step.
    #[test]
    fn interleaved_ops_stay_canonical(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..4, 1u64..64), 1..80),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut region = RegionAllocator::new(1 << 12);
        let mut shadow = ShadowRegion::new("adversarial region");
        let mut live: Vec<(u64, u64)> = Vec::new();

        for (op, len) in ops {
            match op {
                0 => {
                    if let Some(base) = region.alloc(len) {
                        shadow.reserve(base, len);
                        live.push((base, len));
                    }
                }
                1 => {
                    // Target a hole deliberately: reserve_at succeeds iff
                    // the exact range is free, and the shadow must agree
                    // about which ranges those are.
                    let offset = rng.gen_range(0..region.capacity());
                    let fits = offset + len <= region.capacity();
                    if region.reserve_at(offset, len) {
                        prop_assert!(fits, "reserve_at accepted an out-of-range request");
                        shadow.reserve(offset, len);
                        live.push((offset, len));
                    } else if fits {
                        // The allocator refused: the shadow must know at
                        // least one live unit inside the range (otherwise
                        // the range was free and the refusal is a bug).
                        let blocked = live.iter().any(|&(b, l)| b < offset + len && offset < b + l);
                        prop_assert!(
                            blocked,
                            "reserve_at refused [{offset}, +{len}) though the mirror \
                             shows it free"
                        );
                    }
                }
                2 => {
                    if !live.is_empty() {
                        let victim = rng.gen_range(0..live.len());
                        let (base, len) = live.swap_remove(victim);
                        shadow.release(base, len);
                        region.free(base, len);
                    }
                }
                _ => {
                    let grown = region.capacity() + len;
                    region.grow(grown);
                    prop_assert_eq!(region.capacity(), grown);
                }
            }
            shadow.validate(&region);
        }

        // Tear down in random order: the mirror must end empty and the
        // allocator fully free.
        while !live.is_empty() {
            let victim = rng.gen_range(0..live.len());
            let (base, len) = live.swap_remove(victim);
            shadow.release(base, len);
            region.free(base, len);
            shadow.validate(&region);
        }
        prop_assert!(shadow.is_empty());
        prop_assert_eq!(region.used(), 0);
    }

    /// Alloc/free/retarget storms on a full device: the auditor hooks
    /// revalidate all three regions after every mutation, so a divergence
    /// aborts the test at the operation that caused it.
    #[test]
    fn device_churn_under_audit(
        seed in any::<u64>(),
        rounds in 20usize..120,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut device = BuddyDevice::new(CONFIG);
        let mut handles = Vec::new();
        for round in 0..rounds {
            match rng.gen_range(0u8..4) {
                0 | 1 => {
                    let entries = rng.gen_range(1u64..64);
                    let target = TargetRatio::DESCENDING[rng.gen_range(0usize..5)];
                    if let Ok(id) = device.alloc(&format!("r{round}"), entries, target) {
                        handles.push(id);
                    }
                }
                2 => {
                    if !handles.is_empty() {
                        let id = handles.swap_remove(rng.gen_range(0..handles.len()));
                        device.free(id).expect("live handle frees cleanly");
                    }
                }
                _ => {
                    if !handles.is_empty() {
                        let id = handles[rng.gen_range(0..handles.len())];
                        let target = TargetRatio::DESCENDING[rng.gen_range(0usize..5)];
                        // Tight devices may legitimately refuse; the hook
                        // still validated the rollback path.
                        let _ = device.retarget(id, target);
                    }
                }
            }
        }
        for id in handles {
            device.free(id).expect("teardown frees cleanly");
        }
        assert_eq!(device.device_used(), 0);
        assert_eq!(device.buddy_used(), 0);
    }
}

/// The shadow detects a double free by bookkeeping alone, and its verdict
/// agrees with the allocator's own panic — checked via `catch_unwind` so
/// neither detector is trusted blindly.
#[test]
fn double_free_detected_by_shadow_and_allocator_alike() {
    let mut region = RegionAllocator::new(256);
    let mut shadow = ShadowRegion::new("double-free probe");
    let base = region.alloc(64).expect("fresh region fits 64");
    shadow.reserve(base, 64);
    region.free(base, 64);
    shadow.release(base, 64);
    shadow.validate(&region);

    // The shadow knows the range is dead without poking the allocator.
    assert!(!shadow.is_live(base, 64));

    // Releasing again must abort the shadow...
    let shadow_verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut probe = shadow.clone();
        probe.release(base, 64);
    }));
    assert!(shadow_verdict.is_err(), "shadow missed the double free");

    // ...and the allocator independently panics on the same mistake.
    let allocator_verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        region.free(base, 64);
    }));
    assert!(
        allocator_verdict.is_err(),
        "allocator missed the double free"
    );
}

/// A partial free (right length, wrong base — or right base, wrong length)
/// is caught by the shadow's exact-match rule.
#[test]
fn misaligned_free_is_rejected() {
    let mut shadow = ShadowRegion::new("misaligned-free probe");
    shadow.reserve(128, 64);
    for (base, len) in [(128u64, 32u64), (160, 32), (96, 64)] {
        let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut probe = shadow.clone();
            probe.release(base, len);
        }));
        assert!(
            verdict.is_err(),
            "shadow accepted a release of [{base}, +{len}) against live [128, +64)"
        );
    }
}

/// `grow` extends the tail: the new space must appear as free units in the
/// tiling immediately, coalesced with a free tail if one exists.
#[test]
fn grow_extends_the_free_tail_canonically() {
    let mut region = RegionAllocator::new(128);
    let mut shadow = ShadowRegion::new("grow probe");
    let a = region.alloc(128).expect("fills the region");
    shadow.reserve(a, 128);
    shadow.validate(&region);

    region.grow(256);
    shadow.validate(&region);
    let b = region.alloc(100).expect("grown tail hosts 100");
    shadow.reserve(b, 100);
    shadow.validate(&region);

    // Free the first run, grow again: tail coalescing must keep the free
    // list canonical (validate asserts no two adjacent runs).
    region.free(a, 128);
    shadow.release(a, 128);
    region.grow(512);
    shadow.validate(&region);
}
