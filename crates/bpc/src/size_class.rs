//! Capacity size classes for compressed memory-entries.
//!
//! The paper's capacity study (Figure 3) assumes "eight different compressed
//! memory-entry sizes … (0B, 8B, 16B, 32B, 64B, 80B, 96B, and 128B)". A
//! compressed bitstream is charged the smallest class that holds it; anything
//! above 96 B is stored raw at 128 B.

use std::fmt;

/// One of the eight compressed memory-entry sizes of the paper's Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SizeClass {
    /// Tracked-zero entry occupying no data storage.
    B0,
    /// 8 bytes (also the per-entry device budget of the 16× zero-page mode).
    B8,
    /// 16 bytes.
    B16,
    /// 32 bytes — one sector.
    B32,
    /// 64 bytes — two sectors.
    B64,
    /// 80 bytes.
    B80,
    /// 96 bytes — three sectors.
    B96,
    /// 128 bytes — stored uncompressed.
    B128,
}

impl SizeClass {
    /// All classes in increasing size order.
    pub const ALL: [SizeClass; 8] = [
        SizeClass::B0,
        SizeClass::B8,
        SizeClass::B16,
        SizeClass::B32,
        SizeClass::B64,
        SizeClass::B80,
        SizeClass::B96,
        SizeClass::B128,
    ];

    /// The smallest class that can hold a payload of `bits` bits.
    ///
    /// `bits == 0` maps to [`SizeClass::B0`]; anything above 96 B maps to
    /// [`SizeClass::B128`] (stored raw).
    pub fn for_bits(bits: usize) -> Self {
        Self::for_bytes(bits.div_ceil(8))
    }

    /// The smallest class that can hold a payload of `bytes` bytes.
    pub fn for_bytes(bytes: usize) -> Self {
        for class in Self::ALL {
            if bytes <= class.bytes() {
                return class;
            }
        }
        SizeClass::B128
    }

    /// Storage charged to this class, in bytes.
    pub fn bytes(self) -> usize {
        match self {
            SizeClass::B0 => 0,
            SizeClass::B8 => 8,
            SizeClass::B16 => 16,
            SizeClass::B32 => 32,
            SizeClass::B64 => 64,
            SizeClass::B80 => 80,
            SizeClass::B96 => 96,
            SizeClass::B128 => 128,
        }
    }

    /// Number of 32 B sectors this class occupies (0–4).
    ///
    /// Sector counts drive the Buddy Compression fit test: an entry fits a
    /// target ratio of 1×, 1.33×, 2× or 4× iff it needs at most 4, 3, 2 or 1
    /// sectors respectively (Figure 4).
    pub fn sectors(self) -> u8 {
        self.bytes().div_ceil(crate::SECTOR_BYTES) as u8
    }

    /// Compression ratio of one entry stored in this class (`128 / bytes`).
    ///
    /// [`SizeClass::B0`] reports the paper's 16× zero-page ratio rather than
    /// infinity, matching the most aggressive target the design supports.
    pub fn ratio(self) -> f64 {
        match self {
            SizeClass::B0 => 16.0,
            other => crate::ENTRY_BYTES as f64 / other.bytes() as f64,
        }
    }
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

/// Aggregates size-class observations into an overall compression ratio.
///
/// This implements the paper's capacity accounting: the compression ratio of
/// a memory region is `uncompressed bytes / Σ class bytes`, with tracked-zero
/// entries charged the 8 B zero-page granule so ratios stay below the 16×
/// carve-out bound.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SizeHistogram {
    counts: [u64; 8],
}

impl SizeHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one entry of the given class.
    pub fn record(&mut self, class: SizeClass) {
        self.counts[class as usize] += 1;
    }

    /// Records `n` entries of the given class at once.
    pub fn record_n(&mut self, class: SizeClass, n: u64) {
        self.counts[class as usize] += n;
    }

    /// Number of entries recorded for `class`.
    pub fn count(&self, class: SizeClass) -> u64 {
        self.counts[class as usize]
    }

    /// Total number of entries recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of entries whose class is at most `class`.
    pub fn fraction_at_most(&self, class: SizeClass) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let within: u64 = SizeClass::ALL
            .iter()
            .filter(|c| **c <= class)
            .map(|c| self.count(*c))
            .sum();
        within as f64 / total as f64
    }

    /// Fraction of entries needing at most `sectors` sectors.
    pub fn fraction_within_sectors(&self, sectors: u8) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let within: u64 = SizeClass::ALL
            .iter()
            .filter(|c| c.sectors() <= sectors)
            .map(|c| self.count(*c))
            .sum();
        within as f64 / total as f64
    }

    /// Overall capacity compression ratio under the optimistic Figure 3
    /// accounting (each entry charged exactly its class size; zero entries
    /// charged the 8 B zero-page granule).
    pub fn compression_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let mut compressed_bytes = 0u64;
        for class in SizeClass::ALL {
            let charged = match class {
                SizeClass::B0 => 8, // zero-page granule: 8 B of every 128 B
                other => other.bytes() as u64,
            };
            compressed_bytes += self.count(class) * charged;
        }
        (total * crate::ENTRY_BYTES as u64) as f64 / compressed_bytes as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &SizeHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

impl FromIterator<SizeClass> for SizeHistogram {
    fn from_iter<I: IntoIterator<Item = SizeClass>>(iter: I) -> Self {
        let mut hist = SizeHistogram::new();
        for class in iter {
            hist.record(class);
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_bit_ranges() {
        assert_eq!(SizeClass::for_bits(0), SizeClass::B0);
        assert_eq!(SizeClass::for_bits(1), SizeClass::B8);
        assert_eq!(SizeClass::for_bits(64), SizeClass::B8);
        assert_eq!(SizeClass::for_bits(65), SizeClass::B16);
        assert_eq!(SizeClass::for_bits(256), SizeClass::B32);
        assert_eq!(SizeClass::for_bits(257), SizeClass::B64);
        assert_eq!(SizeClass::for_bits(512), SizeClass::B64);
        assert_eq!(SizeClass::for_bits(513), SizeClass::B80);
        assert_eq!(SizeClass::for_bits(641), SizeClass::B96);
        assert_eq!(SizeClass::for_bits(769), SizeClass::B128);
        assert_eq!(SizeClass::for_bits(4096), SizeClass::B128);
    }

    #[test]
    fn sectors_match_figure_4() {
        assert_eq!(SizeClass::B0.sectors(), 0);
        assert_eq!(SizeClass::B8.sectors(), 1);
        assert_eq!(SizeClass::B16.sectors(), 1);
        assert_eq!(SizeClass::B32.sectors(), 1);
        assert_eq!(SizeClass::B64.sectors(), 2);
        assert_eq!(SizeClass::B80.sectors(), 3);
        assert_eq!(SizeClass::B96.sectors(), 3);
        assert_eq!(SizeClass::B128.sectors(), 4);
    }

    #[test]
    fn ratios() {
        assert_eq!(SizeClass::B128.ratio(), 1.0);
        assert_eq!(SizeClass::B64.ratio(), 2.0);
        assert_eq!(SizeClass::B32.ratio(), 4.0);
        assert_eq!(SizeClass::B0.ratio(), 16.0);
    }

    #[test]
    fn display() {
        assert_eq!(SizeClass::B0.to_string(), "0B");
        assert_eq!(SizeClass::B96.to_string(), "96B");
    }

    #[test]
    fn histogram_ratio_uniform_64b() {
        let hist: SizeHistogram = std::iter::repeat(SizeClass::B64).take(10).collect();
        assert_eq!(hist.compression_ratio(), 2.0);
        assert_eq!(hist.total(), 10);
        assert_eq!(hist.fraction_within_sectors(2), 1.0);
        assert_eq!(hist.fraction_within_sectors(1), 0.0);
    }

    #[test]
    fn histogram_zero_entries_use_zero_page_granule() {
        let hist: SizeHistogram = std::iter::repeat(SizeClass::B0).take(4).collect();
        assert_eq!(hist.compression_ratio(), 16.0);
    }

    #[test]
    fn histogram_mixed() {
        let mut hist = SizeHistogram::new();
        hist.record(SizeClass::B128);
        hist.record(SizeClass::B64);
        // (2 * 128) / (128 + 64) = 256/192
        assert!((hist.compression_ratio() - 256.0 / 192.0).abs() < 1e-12);
        assert_eq!(hist.fraction_at_most(SizeClass::B64), 0.5);
    }

    #[test]
    fn histogram_merge() {
        let mut a = SizeHistogram::new();
        a.record(SizeClass::B8);
        let mut b = SizeHistogram::new();
        b.record(SizeClass::B8);
        b.record(SizeClass::B128);
        a.merge(&b);
        assert_eq!(a.count(SizeClass::B8), 2);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn empty_histogram_is_neutral() {
        let hist = SizeHistogram::new();
        assert_eq!(hist.compression_ratio(), 1.0);
        assert_eq!(hist.fraction_at_most(SizeClass::B128), 0.0);
    }
}
