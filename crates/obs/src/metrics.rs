//! Metric primitives and a registry with a Prometheus-text renderer and
//! a deterministic-interval time-series sampler.
//!
//! [`Counter`] and [`Gauge`] are the same lock-free primitives
//! `buddy-service`'s telemetry module used to own (it now re-exports
//! them from here); [`Histogram`] completes the set.
//! A [`MetricsRegistry`] names them: registration and rendering lock a
//! mutex, updates through the returned `Arc` handles never do.
//!
//! Snapshot semantics are the workspace-wide statistical contract: a
//! render or sample taken while writers are active may split one logical
//! update; totals are exact once writers are quiescent.
//!
//! The sampler ([`sample_every`]) snapshots every registered metric on a
//! fixed tick grid (`tick × interval` from the sampler's start, not
//! "interval after the previous sample finished"), so two runs of the
//! same workload produce rows at the same nominal offsets regardless of
//! how long each snapshot took. Ticks are the deterministic axis; the
//! sampled *values* are as wall-clock as the run they observe.

use crate::hist::Histogram;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        // Relaxed: pure event count — nothing is published through it and
        // snapshots tolerate staleness (module contract above).
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // Relaxed: monotonic stat, staleness is acceptable to readers.
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins instantaneous value (bytes in use, live
/// allocations).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge to an absolute value.
    pub fn set(&self, v: u64) {
        // Relaxed: the gauge is a freestanding sample; no reader infers
        // other memory state from it.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // Relaxed: instantaneous sample, staleness is acceptable.
        self.0.load(Ordering::Relaxed)
    }
}

/// A registered metric.
#[derive(Debug, Clone)]
enum Registered {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug, Clone)]
struct MetricEntry {
    name: String,
    help: String,
    metric: Registered,
}

/// Quantiles a histogram is rendered and sampled at.
const QUANTILES: [(f64, &str); 4] = [
    (0.5, "0.5"),
    (0.95, "0.95"),
    (0.99, "0.99"),
    (0.999, "0.999"),
];

/// A named collection of metrics. Registration and rendering lock;
/// updates through the returned handles are lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<MetricEntry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the entry list, recovering from poisoning (entries are plain
    /// data; a panicked registrant leaves the list structurally valid).
    fn entries(&self) -> std::sync::MutexGuard<'_, Vec<MetricEntry>> {
        match self.entries.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn push(&self, name: &str, help: &str, metric: Registered) {
        self.entries().push(MetricEntry {
            name: name.to_string(),
            help: help.to_string(),
            metric,
        });
    }

    /// Registers a counter and returns its update handle.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let c = Arc::new(Counter::default());
        self.push(name, help, Registered::Counter(Arc::clone(&c)));
        c
    }

    /// Registers a gauge and returns its update handle.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::default());
        self.push(name, help, Registered::Gauge(Arc::clone(&g)));
        g
    }

    /// Registers a histogram and returns its update handle.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.push(name, help, Registered::Histogram(Arc::clone(&h)));
        h
    }

    /// Registered metric count.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries().is_empty()
    }

    /// Renders every metric in the Prometheus text exposition format.
    /// Histograms render as summaries (quantile series plus `_sum` and
    /// `_count`), since the log buckets are an implementation detail.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for entry in self.entries().iter() {
            let name = &entry.name;
            let _ = writeln!(out, "# HELP {name} {}", entry.help);
            match &entry.metric {
                Registered::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Registered::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Registered::Histogram(h) => {
                    let snap = h.snapshot();
                    let _ = writeln!(out, "# TYPE {name} summary");
                    for (q, label) in QUANTILES {
                        let _ =
                            writeln!(out, "{name}{{quantile=\"{label}\"}} {}", snap.value_at(q));
                    }
                    let _ = writeln!(out, "{name}_sum {}", snap.sum());
                    let _ = writeln!(out, "{name}_count {}", snap.count());
                }
            }
        }
        out
    }

    /// Flattens every metric to `(series name, value)` pairs — one pair
    /// per counter/gauge, `count`/`sum`/quantile series per histogram.
    pub fn sample(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for entry in self.entries().iter() {
            let name = &entry.name;
            match &entry.metric {
                Registered::Counter(c) => out.push((name.clone(), c.get() as f64)),
                Registered::Gauge(g) => out.push((name.clone(), g.get() as f64)),
                Registered::Histogram(h) => {
                    let snap = h.snapshot();
                    out.push((format!("{name}_count"), snap.count() as f64));
                    out.push((format!("{name}_sum"), snap.sum() as f64));
                    for (q, label) in QUANTILES {
                        out.push((format!("{name}_q{label}"), snap.value_at(q) as f64));
                    }
                }
            }
        }
        out
    }
}

/// One sampled value: the metric's series name at one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplePoint {
    /// 1-based tick index (nominal time = `tick × interval`).
    pub tick: u64,
    /// Series name (see [`MetricsRegistry::sample`]).
    pub metric: String,
    /// Sampled value.
    pub value: f64,
}

/// The sampler's output: every registered metric at every tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    /// The tick interval the sampler ran on.
    pub interval: Duration,
    /// All sampled points, tick-major.
    pub rows: Vec<SamplePoint>,
}

impl TimeSeries {
    /// Renders `tick,elapsed_ms,metric,value` CSV. `elapsed_ms` is the
    /// *nominal* tick offset (`tick × interval`), so the axis is
    /// deterministic across runs.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("tick,elapsed_ms,metric,value\n");
        let interval_ms = self.interval.as_secs_f64() * 1e3;
        for p in &self.rows {
            let _ = writeln!(
                out,
                "{},{:.3},{},{}",
                p.tick,
                p.tick as f64 * interval_ms,
                p.metric,
                p.value
            );
        }
        out
    }
}

/// Handle of a running sampler thread.
#[derive(Debug)]
pub struct SamplerHandle {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<TimeSeries>,
}

impl SamplerHandle {
    /// Stops the sampler and returns everything it collected. A final
    /// sample is taken at stop time, so even runs shorter than one
    /// interval produce at least one tick of data.
    pub fn stop(self) -> TimeSeries {
        // Relaxed: a one-way shutdown flag; the join below is the
        // synchronization point for the collected rows.
        self.stop.store(true, Ordering::Relaxed);
        // A panicked sampler yields an empty series rather than poisoning
        // the harness shutdown path.
        self.thread.join().unwrap_or_default()
    }
}

/// Spawns a background thread sampling `registry` every `interval`
/// (clamped to ≥ 1 ms) on the deterministic tick grid described in the
/// module docs. Stop it with [`SamplerHandle::stop`].
pub fn sample_every(registry: Arc<MetricsRegistry>, interval: Duration) -> SamplerHandle {
    let interval = interval.max(Duration::from_millis(1));
    let stop = Arc::new(AtomicBool::new(false));
    let stop_seen = Arc::clone(&stop);
    let thread = std::thread::spawn(move || {
        let started = Instant::now();
        let mut rows = Vec::new();
        let mut tick = 0u64;
        // Relaxed: one-way flag; sampled data is handed over via join.
        while !stop_seen.load(Ordering::Relaxed) {
            tick += 1;
            let deadline = interval.saturating_mul(u32::try_from(tick).unwrap_or(u32::MAX));
            loop {
                let elapsed = started.elapsed();
                if elapsed >= deadline {
                    break;
                }
                // Relaxed: one-way flag, as above.
                if stop_seen.load(Ordering::Relaxed) {
                    break;
                }
                // Short chunks keep `stop()` responsive without busy-spin.
                std::thread::sleep((deadline - elapsed).min(Duration::from_millis(5)));
            }
            // Relaxed: one-way flag, as above.
            if stop_seen.load(Ordering::Relaxed) {
                break;
            }
            for (metric, value) in registry.sample() {
                rows.push(SamplePoint {
                    tick,
                    metric,
                    value,
                });
            }
        }
        // Final sample at stop time so short runs still produce data.
        for (metric, value) in registry.sample() {
            rows.push(SamplePoint {
                tick,
                metric,
                value,
            });
        }
        TimeSeries { interval, rows }
    });
    SamplerHandle { stop, thread }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_renders_prometheus_text() {
        let r = MetricsRegistry::new();
        let c = r.counter("ops_total", "operations issued");
        let g = r.gauge("used_bytes", "bytes in use");
        let h = r.histogram("latency_ns", "operation latency");
        c.add(3);
        g.set(512);
        h.record(1000);
        h.record(2000);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE ops_total counter"));
        assert!(text.contains("ops_total 3"));
        assert!(text.contains("# TYPE used_bytes gauge"));
        assert!(text.contains("used_bytes 512"));
        assert!(text.contains("# TYPE latency_ns summary"));
        assert!(text.contains("latency_ns{quantile=\"0.5\"}"));
        assert!(text.contains("latency_ns_sum 3000"));
        assert!(text.contains("latency_ns_count 2"));
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn sample_flattens_histograms() {
        let r = MetricsRegistry::new();
        let h = r.histogram("t", "test");
        h.record(5);
        let names: Vec<String> = r.sample().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"t_count".to_string()));
        assert!(names.contains(&"t_sum".to_string()));
        assert!(names.contains(&"t_q0.99".to_string()));
    }

    #[test]
    fn sampler_produces_at_least_one_tick_and_a_csv() {
        let r = Arc::new(MetricsRegistry::new());
        let c = r.counter("ticks_seen", "test counter");
        c.add(7);
        let handle = sample_every(Arc::clone(&r), Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(20));
        let series = handle.stop();
        assert!(!series.rows.is_empty(), "sampler collected nothing");
        assert!(series.rows.iter().any(|p| p.metric == "ticks_seen"));
        let csv = series.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("tick,elapsed_ms,metric,value"));
        assert!(lines.next().is_some(), "no data rows");
        assert!(csv.contains("ticks_seen"));
    }

    #[test]
    fn stopping_immediately_still_samples_once() {
        let r = Arc::new(MetricsRegistry::new());
        r.counter("x", "test");
        let handle = sample_every(Arc::clone(&r), Duration::from_secs(3600));
        let series = handle.stop();
        assert!(
            series.rows.iter().any(|p| p.metric == "x"),
            "final stop-time sample missing"
        );
    }
}
