//! The checker's weak-memory model: per-location store **histories** plus
//! per-thread **views**, approximating C11 release/acquire/fence semantics
//! closely enough that insufficiently-ordered loads can observe stale
//! values instead of silently assuming sequential consistency.
//!
//! # Model
//!
//! Every atomic location carries the full history of values ever stored to
//! it (its modification order). Every model thread carries a *view*: for
//! each location, the lowest history index it is still allowed to observe
//! (its coherence floor). The rules:
//!
//! * **Any load** may return any history entry at or above the thread's
//!   floor for that location — which entry is a *scheduler decision*, so
//!   the explorer branches over every observable stale value. Reading
//!   entry `i` raises the floor to `i` (coherence: a thread never travels
//!   back in time on one location).
//! * **RMWs** (`fetch_add` & co.) always read the latest entry — C11
//!   requires read-modify-writes to bind to the head of the modification
//!   order.
//! * A **release store** attaches the writer's entire current view to the
//!   history entry (its *message*). An **acquire load** that returns such
//!   an entry joins the message into the reader's view, raising floors —
//!   this is the happens-before edge.
//! * A **release fence** snapshots the thread's view; every subsequent
//!   store (any ordering) attaches that snapshot as a *fence message*. An
//!   **acquire fence** joins the fence/release messages of every entry the
//!   thread has loaded since its last acquire fence — upgrading earlier
//!   relaxed loads, which is exactly the seqlock reader's re-validation
//!   edge.
//! * **SeqCst** operations additionally join with (and publish to) one
//!   global SC view, making them totally ordered against each other. This
//!   is slightly *stronger* than C11's `seq_cst` (it implies
//!   acquire/release against every prior SC op, not just same-location
//!   ones); the approximation direction means a protocol that passes here
//!   could in principle still hide a bug behind mixed SC/non-SC subtleties,
//!   but every counterexample the checker prints is a real interleaving.
//!
//! There is no load-buffering / out-of-thin-air modelling: a thread's own
//! operations execute in program order, and weak behaviour appears only as
//! *staleness* of loaded values. That covers every ordering bug a seqlock /
//! epoch protocol can have (torn reads, lost publications, reordered
//! tombstones) without the full C11 axiomatics — see DESIGN.md §13 for the
//! scope discussion.

use std::collections::HashMap;
use std::sync::atomic::Ordering;

/// A thread- or message-view: location → lowest observable history index.
pub(crate) type View = HashMap<usize, usize>;

/// Joins `other` into `view`, keeping the higher floor per location.
pub(crate) fn join(view: &mut View, other: &View) {
    for (&loc, &idx) in other {
        let e = view.entry(loc).or_insert(idx);
        *e = (*e).max(idx);
    }
}

/// One entry in a location's modification order.
#[derive(Debug, Clone)]
pub(crate) struct HistEntry {
    /// The stored value (all shim atomics widen to `u64`).
    pub value: u64,
    /// Release message: the writer's view at the store, when the store was
    /// `Release`/`AcqRel`/`SeqCst`.
    pub msg: Option<View>,
    /// Fence message: the writer's view at its latest preceding release
    /// fence, attached to every later store regardless of ordering.
    pub fmsg: Option<View>,
}

/// The modification order of one atomic location.
#[derive(Debug, Default)]
pub(crate) struct Location {
    pub history: Vec<HistEntry>,
}

/// Mutable memory-model state of one execution.
#[derive(Debug, Default)]
pub(crate) struct Memory {
    /// Locations keyed by the shim atomic's address (stable for the
    /// lifetime of one execution: models keep their atomics alive end to
    /// end).
    locations: HashMap<usize, Location>,
    /// Per-thread views (floors).
    views: Vec<View>,
    /// Per-thread: messages collected by loads since the last acquire
    /// fence, joined in bulk when an acquire fence runs.
    pending_acquire: Vec<View>,
    /// Per-thread: view snapshot taken by the latest release fence.
    fence_release: Vec<Option<View>>,
    /// The global SeqCst view.
    sc: View,
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

impl Memory {
    /// Ensures per-thread state exists for thread `tid`.
    pub fn ensure_thread(&mut self, tid: usize) {
        while self.views.len() <= tid {
            self.views.push(View::new());
            self.pending_acquire.push(View::new());
            self.fence_release.push(None);
        }
    }

    /// Registers a location on first touch with its initial value (one
    /// history entry visible to everybody).
    pub fn ensure_location(&mut self, loc: usize, initial: u64) {
        self.locations.entry(loc).or_insert_with(|| Location {
            history: vec![HistEntry {
                value: initial,
                msg: None,
                fmsg: None,
            }],
        });
    }

    /// The thread-inherits-parent-view edge of `spawn` (and symmetrically
    /// `join`): everything the parent saw, the child sees.
    pub fn inherit_view(&mut self, from: usize, to: usize) {
        self.ensure_thread(from.max(to));
        let v = self.views[from].clone();
        join(&mut self.views[to], &v);
    }

    /// Number of observable history entries for `tid` at `loc`: the
    /// candidates are indices `floor(tid, loc) ..= latest`. The scheduler
    /// turns this count into a decision.
    pub fn candidates(&self, tid: usize, loc: usize) -> usize {
        let latest = self.locations[&loc].history.len() - 1;
        latest - self.floor(tid, loc) + 1
    }

    fn floor(&self, tid: usize, loc: usize) -> usize {
        self.views[tid].get(&loc).copied().unwrap_or(0)
    }

    /// Executes a load that observes candidate `choice` (0 = the oldest
    /// observable entry, `candidates - 1` = the latest). Returns
    /// `(value, stale)` where `stale` is true when an older-than-latest
    /// entry was read.
    pub fn load(
        &mut self,
        tid: usize,
        loc: usize,
        ordering: Ordering,
        choice: usize,
    ) -> (u64, bool) {
        let base = self.floor(tid, loc);
        let idx = base + choice;
        let latest = self.locations[&loc].history.len() - 1;
        let entry = self.locations[&loc].history[idx].clone();
        // Coherence: this thread can never again see anything older.
        self.views[tid].insert(loc, idx);
        // Collect the entry's messages for a later acquire fence …
        if let Some(m) = &entry.msg {
            join(&mut self.pending_acquire[tid], m);
        }
        if let Some(m) = &entry.fmsg {
            join(&mut self.pending_acquire[tid], m);
        }
        // … and join them now if the load itself is acquire-or-stronger.
        if is_acquire(ordering) {
            if let Some(m) = &entry.msg {
                let m = m.clone();
                join(&mut self.views[tid], &m);
            }
            if let Some(m) = &entry.fmsg {
                let m = m.clone();
                join(&mut self.views[tid], &m);
            }
        }
        if ordering == Ordering::SeqCst {
            self.sc_sync(tid);
        }
        (entry.value, idx < latest)
    }

    /// Executes a store of `value`; appends to the modification order and
    /// publishes messages per `ordering`.
    pub fn store(&mut self, tid: usize, loc: usize, ordering: Ordering, value: u64) {
        if ordering == Ordering::SeqCst {
            self.sc_sync(tid);
        }
        let fmsg = self.fence_release[tid].clone();
        let new_idx = self.locations[&loc].history.len();
        // The writer observes its own store.
        self.views[tid].insert(loc, new_idx);
        let msg = if is_release(ordering) {
            Some(self.views[tid].clone())
        } else {
            None
        };
        self.locations
            .get_mut(&loc)
            // lint-allow(no-unwrap): ensure_location precedes every store;
            // inside the checker a broken invariant should abort the run
            .expect("location registered before store")
            .history
            .push(HistEntry { value, msg, fmsg });
    }

    /// Executes a read-modify-write: reads the **latest** entry (C11 binds
    /// RMWs to the head of the modification order), applies `f`, stores the
    /// result. Returns the previous value.
    pub fn rmw(
        &mut self,
        tid: usize,
        loc: usize,
        ordering: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let latest = self.locations[&loc].history.len() - 1;
        let entry = self.locations[&loc].history[latest].clone();
        self.views[tid].insert(loc, latest);
        if let Some(m) = &entry.msg {
            join(&mut self.pending_acquire[tid], m);
            if is_acquire(ordering) {
                let m = m.clone();
                join(&mut self.views[tid], &m);
            }
        }
        if let Some(m) = &entry.fmsg {
            join(&mut self.pending_acquire[tid], m);
            if is_acquire(ordering) {
                let m = m.clone();
                join(&mut self.views[tid], &m);
            }
        }
        self.store(tid, loc, ordering, f(entry.value));
        entry.value
    }

    /// Executes a fence.
    pub fn fence(&mut self, tid: usize, ordering: Ordering) {
        if is_acquire(ordering) {
            let pending = std::mem::take(&mut self.pending_acquire[tid]);
            join(&mut self.views[tid], &pending);
        }
        if is_release(ordering) {
            self.fence_release[tid] = Some(self.views[tid].clone());
        }
        if ordering == Ordering::SeqCst {
            self.sc_sync(tid);
            // An SC fence also republishes the (now larger) view.
            self.fence_release[tid] = Some(self.views[tid].clone());
        }
    }

    /// Two-way join with the global SeqCst view.
    fn sc_sync(&mut self, tid: usize) {
        let sc = self.sc.clone();
        join(&mut self.views[tid], &sc);
        let v = self.views[tid].clone();
        join(&mut self.sc, &v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: usize = 0x1000;
    const F: usize = 0x2000;

    fn mem() -> Memory {
        let mut m = Memory::default();
        m.ensure_thread(1);
        m.ensure_location(L, 0);
        m.ensure_location(F, 0);
        m
    }

    #[test]
    fn relaxed_loads_see_stale_values_until_coherence_floor_rises() {
        let mut m = mem();
        m.store(0, L, Ordering::Relaxed, 1);
        m.store(0, L, Ordering::Relaxed, 2);
        // Thread 1 has floor 0: initial, 1 and 2 are all observable.
        assert_eq!(m.candidates(1, L), 3);
        let (v, stale) = m.load(1, L, Ordering::Relaxed, 1);
        assert_eq!((v, stale), (1, true));
        // Coherence: after observing index 1, index 0 is gone.
        assert_eq!(m.candidates(1, L), 2);
        let (v, _) = m.load(1, L, Ordering::Relaxed, 0);
        assert_eq!(v, 1);
    }

    #[test]
    fn release_acquire_pair_raises_floors() {
        let mut m = mem();
        m.store(0, F, Ordering::Relaxed, 7); // data
        m.store(0, L, Ordering::Release, 1); // flag publishes the data
                                             // Acquire-loading the latest flag entry forbids stale data.
        let (v, _) = m.load(1, L, Ordering::Acquire, m.candidates(1, L) - 1);
        assert_eq!(v, 1);
        assert_eq!(m.candidates(1, F), 1, "stale data no longer observable");
        // A relaxed flag load would not have synchronized: fresh thread.
        let mut m2 = mem();
        m2.store(0, F, Ordering::Relaxed, 7);
        m2.store(0, L, Ordering::Release, 1);
        let (v, _) = m2.load(1, L, Ordering::Relaxed, m2.candidates(1, L) - 1);
        assert_eq!(v, 1);
        assert_eq!(
            m2.candidates(1, F),
            2,
            "relaxed load leaves data stale-readable"
        );
    }

    #[test]
    fn fence_to_fence_synchronization() {
        let mut m = mem();
        // Writer: store flag relaxed, release fence, store data relaxed.
        m.store(0, L, Ordering::Relaxed, 1);
        m.fence(0, Ordering::Release);
        m.store(0, F, Ordering::Relaxed, 7);
        // Reader: relaxed-load the data (latest), acquire fence, then the
        // flag floor must have risen to the post-store index.
        let (v, _) = m.load(1, F, Ordering::Relaxed, m.candidates(1, F) - 1);
        assert_eq!(v, 7);
        assert_eq!(
            m.candidates(1, L),
            2,
            "before the fence the flag may be stale"
        );
        m.fence(1, Ordering::Acquire);
        assert_eq!(m.candidates(1, L), 1, "after the fence the flag is current");
    }

    #[test]
    fn rmw_reads_the_latest_entry() {
        let mut m = mem();
        m.store(0, L, Ordering::Relaxed, 10);
        let prev = m.rmw(1, L, Ordering::Relaxed, |v| v + 1);
        assert_eq!(prev, 10);
        let (v, stale) = m.load(0, L, Ordering::Relaxed, m.candidates(0, L) - 1);
        assert_eq!((v, stale), (11, false));
    }

    #[test]
    fn seqcst_ops_are_globally_ordered() {
        let mut m = mem();
        m.store(0, F, Ordering::Relaxed, 7);
        m.store(0, L, Ordering::SeqCst, 1);
        // An SC load on another thread joins the SC view published above.
        let (v, _) = m.load(1, L, Ordering::SeqCst, m.candidates(1, L) - 1);
        assert_eq!(v, 1);
        assert_eq!(m.candidates(1, F), 1);
    }
}
