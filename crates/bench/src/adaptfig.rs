//! Adaptive re-targeting study: static one-shot profiling vs the online
//! policy, over the drift workload (DESIGN.md §8).
//!
//! The paper's flow picks each allocation's target ratio once, from a
//! profiling pass merging snapshots across the whole run (§3.5). For data
//! whose compressibility *drifts* (§3.1, Figure 8) that one-shot choice is
//! necessarily a compromise. This harness runs both arms over the
//! `workloads::drift` suite — equal phases, identical bytes:
//!
//! * **static** — targets from `choose_targets` on the merged all-phase
//!   profile, frozen forever (the paper's deployment model);
//! * **adaptive** — the *same* initial targets, plus a
//!   [`RetargetPolicy`] sweep after every phase's writes that migrates
//!   allocations with [`BuddyDevice::retarget`].
//!
//! Per phase it reports the device's effective compression ratio, the
//! buddy-access fraction of a full read pass, and — for the adaptive arm —
//! the migration count and moved-sector overhead, so the capacity win is
//! priced against the migration traffic that bought it.

use crate::report::{f3, pct, print_table, write_csv, RunConfig};
use buddy_compression::bpc::{Codec, CodecKind, CompressedBuf, SizeHistogram, ENTRY_BYTES};
use buddy_compression::buddy_core::{
    choose_targets, AdaptConfig, AllocationProfile, BuddyDevice, DeviceConfig, ProfileConfig,
    RetargetPolicy, TargetRatio,
};
use buddy_compression::workloads::entry_gen::mix;
use buddy_compression::workloads::{drift_allocations, AllocationSpec, DRIFT_PHASES};
use std::io;

/// Entries per drift allocation.
fn entries_per_alloc(quick: bool) -> u64 {
    if quick {
        2048
    } else {
        8192
    }
}

/// Snapshot phases of the study, evenly spaced over the run.
fn phases(quick: bool) -> Vec<f64> {
    let n = if quick { 6 } else { DRIFT_PHASES };
    (0..n).map(|i| i as f64 / (n - 1) as f64).collect()
}

/// Entries sampled per allocation per phase when profiling.
const PROFILE_CAP: u64 = 1024;

/// One measured phase of one arm.
struct PhaseRow {
    phase: f64,
    policy: &'static str,
    effective_ratio: f64,
    read_buddy_frac: f64,
    retargets: u64,
    moved_sectors: u64,
    targets: String,
}

/// Profiles the drift specs by compressing sampled entries at each given
/// phase and merging the histograms — `phases = all` is the paper's
/// static whole-run profile, a single late phase is the post-drift oracle
/// the convergence test compares against.
pub fn profile_drift(
    specs: &[AllocationSpec],
    entries: u64,
    seed: u64,
    codec: CodecKind,
    phases: &[f64],
) -> Vec<AllocationProfile> {
    let mut scratch = CompressedBuf::new();
    specs
        .iter()
        .enumerate()
        .map(|(idx, spec)| {
            let alloc_seed = mix(&[seed, idx as u64]);
            let stride = (entries / PROFILE_CAP).max(1);
            let mut histogram = SizeHistogram::new();
            for &phase in phases {
                let mut i = 0;
                while i < entries {
                    let entry = spec.entry_at(alloc_seed, i, phase);
                    histogram.record(codec.size_class_into(&entry, &mut scratch));
                    i += stride;
                }
            }
            AllocationProfile {
                name: spec.name.to_owned(),
                entries,
                histogram,
            }
        })
        .collect()
}

/// Runs one arm over every phase; returns the per-phase rows and the final
/// per-allocation targets.
fn run_arm(
    adaptive: bool,
    specs: &[AllocationSpec],
    initial: &[TargetRatio],
    entries: u64,
    seed: u64,
    codec: CodecKind,
    phase_list: &[f64],
) -> (Vec<PhaseRow>, Vec<TargetRatio>) {
    const BATCH: usize = 256;
    let mut dev = BuddyDevice::with_codec(
        DeviceConfig {
            // Sized so every allocation fits even fully demoted to 1x.
            device_capacity: specs.len() as u64 * entries * ENTRY_BYTES as u64,
            carve_out_factor: 3,
        },
        codec,
    );
    let ids: Vec<_> = specs
        .iter()
        .zip(initial.iter())
        .map(|(spec, &target)| dev.alloc(spec.name, entries, target).expect("device sized")) // lint-allow(no-unwrap): device is sized for every spec even fully demoted to 1x
        .collect();
    let policy = RetargetPolicy::new(AdaptConfig::default());

    let mut rows = Vec::new();
    let mut batch = vec![[0u8; ENTRY_BYTES]; BATCH];
    for &phase in phase_list {
        // The phase's memory image, written through the compressed path.
        for (idx, (spec, &id)) in specs.iter().zip(ids.iter()).enumerate() {
            let alloc_seed = mix(&[seed, idx as u64]);
            let mut start = 0u64;
            while start < entries {
                let len = ((entries - start) as usize).min(BATCH);
                for (k, slot) in batch[..len].iter_mut().enumerate() {
                    *slot = spec.entry_at(alloc_seed, start + k as u64, phase);
                }
                dev.write_entries(id, start, &batch[..len])
                    .expect("in-range write"); // lint-allow(no-unwrap): writes stay within the allocation by construction
                start += len as u64;
            }
        }
        // The adaptive arm's between-phase sweep.
        let before = dev.stats();
        if adaptive {
            for &id in &ids {
                let window = dev.state_window(id).expect("live handle"); // lint-allow(no-unwrap): ids stay live for the whole study
                let (_, current, _) = dev.allocation_info(id).expect("live handle"); // lint-allow(no-unwrap): ids stay live for the whole study
                if let Some(next) = policy.recommend(current, &window) {
                    // lint-allow(no-unwrap): device is sized for any retarget the policy picks
                    dev.retarget(id, next).expect("device sized for any target");
                }
            }
        }
        let after = dev.stats();
        // Measure the phase: read everything back, count buddy traffic.
        dev.reset_stats();
        let mut sink = vec![[0u8; ENTRY_BYTES]; BATCH];
        for &id in &ids {
            let mut start = 0u64;
            while start < entries {
                let len = ((entries - start) as usize).min(BATCH);
                dev.read_entries(id, start, &mut sink[..len])
                    .expect("in-range read"); // lint-allow(no-unwrap): reads mirror the writes just issued
                start += len as u64;
            }
        }
        let targets: Vec<String> = ids
            .iter()
            .map(|&id| dev.allocation_info(id).expect("live handle").1.to_string()) // lint-allow(no-unwrap): ids stay live for the whole study
            .collect();
        rows.push(PhaseRow {
            phase,
            policy: if adaptive { "adaptive" } else { "static" },
            effective_ratio: dev.effective_ratio(),
            read_buddy_frac: dev.stats().buddy_access_fraction(),
            retargets: after.retargets - before.retargets,
            moved_sectors: after.moved_sectors - before.moved_sectors,
            targets: targets.join("|"),
        });
    }
    let finals = ids
        .iter()
        .map(|&id| dev.allocation_info(id).expect("live handle").1) // lint-allow(no-unwrap): ids stay live for the whole study
        .collect();
    (rows, finals)
}

/// Runs the full study (both arms) and returns `(static rows, adaptive
/// rows, adaptive final targets)`.
fn run_study(cfg: &RunConfig) -> (Vec<PhaseRow>, Vec<PhaseRow>, Vec<TargetRatio>) {
    let specs = drift_allocations();
    let entries = entries_per_alloc(cfg.quick);
    let phase_list = phases(cfg.quick);
    let profiles = profile_drift(&specs, entries, cfg.seed, cfg.codec, &phase_list);
    let outcome = choose_targets(&profiles, &ProfileConfig::default());
    let initial: Vec<TargetRatio> = outcome.choices.iter().map(|c| c.target).collect();
    let (static_rows, _) = run_arm(
        false,
        &specs,
        &initial,
        entries,
        cfg.seed,
        cfg.codec,
        &phase_list,
    );
    let (adaptive_rows, finals) = run_arm(
        true,
        &specs,
        &initial,
        entries,
        cfg.seed,
        cfg.codec,
        &phase_list,
    );
    (static_rows, adaptive_rows, finals)
}

fn mean(rows: &[PhaseRow], f: impl Fn(&PhaseRow) -> f64) -> f64 {
    rows.iter().map(&f).sum::<f64>() / rows.len() as f64
}

/// The `adaptive-retarget` binary: static-profile vs adaptive-policy sweep
/// over the drift workload, with a CSV artifact (also in `reproduce-all`).
pub fn adaptive_retarget(cfg: &RunConfig) -> io::Result<()> {
    let (static_rows, adaptive_rows, _) = run_study(cfg);

    let header = [
        "phase",
        "policy",
        "effective_ratio",
        "read_buddy_frac",
        "retargets",
        "moved_sectors",
        "targets",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for row in static_rows.iter().chain(adaptive_rows.iter()) {
        rows.push(vec![
            format!("{:.2}", row.phase),
            row.policy.to_string(),
            f3(row.effective_ratio),
            pct(row.read_buddy_frac),
            row.retargets.to_string(),
            row.moved_sectors.to_string(),
            row.targets.clone(),
        ]);
    }
    print_table(
        "Online re-targeting: static profile vs adaptive policy (drift workload)",
        &header,
        &rows,
    );
    let static_ratio = mean(&static_rows, |r| r.effective_ratio);
    let adaptive_ratio = mean(&adaptive_rows, |r| r.effective_ratio);
    let moved: u64 = adaptive_rows.iter().map(|r| r.moved_sectors).sum();
    let migrations: u64 = adaptive_rows.iter().map(|r| r.retargets).sum();
    println!(
        "  mean effective ratio: static {static_ratio:.3}x vs adaptive {adaptive_ratio:.3}x \
         ({migrations} migrations, {moved} sectors moved)"
    );
    println!("  The paper freezes targets at profiling time (3.5); the adaptive policy tracks");
    println!("  the drift each phase, paying only the migration traffic priced above.");
    write_csv(
        &cfg.results_dir,
        &cfg.tagged("adaptive_retarget"),
        &header,
        &rows,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(dir: &str) -> RunConfig {
        RunConfig {
            quick: true,
            results_dir: std::env::temp_dir().join(dir),
            ..Default::default()
        }
    }

    #[test]
    fn harness_writes_the_csv_artifact() {
        let cfg = quick_cfg("buddy-bench-adaptfig");
        let _ = std::fs::remove_dir_all(&cfg.results_dir);
        adaptive_retarget(&cfg).unwrap();
        let csv = std::fs::read_to_string(cfg.results_dir.join("adaptive_retarget.csv")).unwrap();
        let mut lines = csv.lines();
        assert!(lines
            .next()
            .unwrap()
            .starts_with("phase,policy,effective_ratio"));
        // Two arms x six quick phases.
        assert_eq!(lines.count(), 12);
    }

    #[test]
    fn adaptive_beats_static_on_effective_ratio() {
        let cfg = quick_cfg("buddy-bench-adaptfig-ratio");
        let (static_rows, adaptive_rows, _) = run_study(&cfg);
        let static_ratio = mean(&static_rows, |r| r.effective_ratio);
        let adaptive_ratio = mean(&adaptive_rows, |r| r.effective_ratio);
        assert!(
            adaptive_ratio > static_ratio * 1.05,
            "adaptive ({adaptive_ratio:.3}x) must clearly beat static ({static_ratio:.3}x)"
        );
        // ... and the overhead it paid is reported, not hidden.
        assert!(adaptive_rows.iter().map(|r| r.moved_sectors).sum::<u64>() > 0);
        assert_eq!(
            static_rows.iter().map(|r| r.retargets).sum::<u64>(),
            0,
            "the static arm must never migrate"
        );
        // Buddy traffic stays bounded: the policy only promotes with
        // headroom below the Buddy Threshold.
        for row in &adaptive_rows {
            assert!(
                row.read_buddy_frac < 0.35,
                "phase {:.2}: buddy fraction {} escaped the threshold band",
                row.phase,
                row.read_buddy_frac
            );
        }
    }

    #[test]
    fn adaptive_converges_to_the_post_drift_profile_choice() {
        // The satellite guarantee: after the run, the adaptive targets
        // equal what `choose_targets` would pick from a profile taken
        // *after* the drift — the online policy rediscovers the offline
        // answer once the data settles.
        let cfg = quick_cfg("buddy-bench-adaptfig-conv");
        let specs = drift_allocations();
        let entries = entries_per_alloc(true);
        let post_drift = profile_drift(&specs, entries, cfg.seed, cfg.codec, &[1.0]);
        let oracle = choose_targets(&post_drift, &ProfileConfig::default());
        let (_, _, finals) = run_study(&cfg);
        for (choice, (&final_target, spec)) in
            oracle.choices.iter().zip(finals.iter().zip(specs.iter()))
        {
            assert_eq!(
                choice.target, final_target,
                "{}: adaptive must converge to the post-drift profile's pick",
                spec.name
            );
        }
        // The control allocation ends where it started: 4x, untouched.
        assert_eq!(finals[2], TargetRatio::R4);
    }
}
