//! Ablation: why Bit-Plane Compression? (§2.4)
//!
//! The paper chooses BPC "after comparing several algorithms
//! [BDI, FPC, FVC, C-PACK, BPC]". This harness runs the implemented
//! candidates — BPC, BDI, FPC and the zero-detector lower bound — over the
//! full 16-benchmark suite with the Figure 3 capacity accounting, so the
//! choice can be verified rather than assumed.

use crate::report::{f3, print_table, write_csv, RunConfig};
use buddy_compression::bpc::{
    BaseDeltaImmediate, BitPlane, BlockCompressor, FrequentPattern, SizeHistogram, ZeroRle,
};
use buddy_compression::workloads::{all_benchmarks, geomean};
use std::io;

/// Compression ratio of one benchmark snapshot under a given algorithm.
fn ratio_under<C: BlockCompressor>(
    codec: &C,
    bench: &buddy_compression::workloads::Benchmark,
    seed: u64,
    cap: u64,
) -> f64 {
    // Reuse the snapshot sampler's layout, but compress with `codec`.
    let mut total_entries = 0.0;
    let mut total_bytes = 0.0;
    for (idx, (spec, entries)) in bench.allocation_layout().into_iter().enumerate() {
        let sampled = entries.min(cap);
        let alloc_seed = buddy_compression::workloads::entry_gen::mix(&[seed, idx as u64]);
        let mut hist = SizeHistogram::new();
        for k in 0..sampled {
            let index = if sampled == entries {
                k
            } else {
                (k as u128 * entries as u128 / sampled as u128) as u64
            };
            let entry = spec.entry_at(alloc_seed, index, 0.5);
            hist.record(codec.size_class_of(&entry));
        }
        total_entries += entries as f64;
        total_bytes += entries as f64 * 128.0 / hist.compression_ratio();
    }
    total_entries * 128.0 / total_bytes
}

/// Runs the algorithm comparison over the whole suite.
pub fn ablation(cfg: &RunConfig) -> io::Result<()> {
    let cap = if cfg.quick { 512 } else { 4096 };
    let bpc = BitPlane::new();
    let bdi = BaseDeltaImmediate::new();
    let fpc = FrequentPattern::new();
    let zero = ZeroRle::new();
    let mut rows = Vec::new();
    let mut per_algo: [Vec<f64>; 4] = Default::default();
    for bench in all_benchmarks() {
        let ratios = [
            ratio_under(&bpc, &bench, cfg.seed, cap),
            ratio_under(&bdi, &bench, cfg.seed, cap),
            ratio_under(&fpc, &bench, cfg.seed, cap),
            ratio_under(&zero, &bench, cfg.seed, cap),
        ];
        for (acc, r) in per_algo.iter_mut().zip(ratios.iter()) {
            acc.push(*r);
        }
        rows.push(vec![
            bench.name.to_string(),
            f3(ratios[0]),
            f3(ratios[1]),
            f3(ratios[2]),
            f3(ratios[3]),
        ]);
    }
    let header = ["benchmark", "bpc", "bdi", "fpc", "zero-rle"];
    print_table(
        "Ablation: capacity compression by algorithm (§2.4)",
        &header,
        &rows,
    );
    let gmeans: Vec<f64> = per_algo
        .iter()
        .map(|v| geomean(v.iter().copied()))
        .collect();
    println!(
        "  GMEAN: bpc {:.2}  bdi {:.2}  fpc {:.2}  zero-rle {:.2}",
        gmeans[0], gmeans[1], gmeans[2], gmeans[3]
    );
    println!("  BPC leads on the homogeneous numeric data that dominates GPU memory —");
    println!("  the paper's §2.4 rationale for choosing it.");
    write_csv(&cfg.results_dir, "ablation_algorithms", &header, &rows)?;
    Ok(())
}

/// One snapshot-based sanity hook reused by tests: BPC must dominate the
/// other general-purpose algorithms at suite level.
pub fn bpc_wins(cfg: &RunConfig) -> bool {
    let cap = 256;
    let bpc = BitPlane::new();
    let bdi = BaseDeltaImmediate::new();
    let fpc = FrequentPattern::new();
    let mut bpc_r = Vec::new();
    let mut bdi_r = Vec::new();
    let mut fpc_r = Vec::new();
    for mut bench in all_benchmarks() {
        bench.scale = buddy_compression::workloads::Scale::test();
        bpc_r.push(ratio_under(&bpc, &bench, cfg.seed, cap));
        bdi_r.push(ratio_under(&bdi, &bench, cfg.seed, cap));
        fpc_r.push(ratio_under(&fpc, &bench, cfg.seed, cap));
    }
    let g = |v: &[f64]| geomean(v.iter().copied());
    g(&bpc_r) > g(&bdi_r) && g(&bpc_r) > g(&fpc_r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bpc_dominates_the_baselines() {
        let cfg = RunConfig {
            quick: true,
            results_dir: std::env::temp_dir().join("buddy-bench-ablation"),
            seed: 23,
        };
        assert!(
            bpc_wins(&cfg),
            "BPC must beat BDI and FPC at suite level (§2.4)"
        );
    }
}
