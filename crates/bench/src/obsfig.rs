//! Shared observability wiring for the harnesses: the span-time breakdown
//! artifact (`results/obs_breakdown.csv`) and the `--metrics-out` emitter.
//!
//! The breakdown answers the attribution question the throughput columns
//! cannot: of the wall-clock a sweep cell spent, how much went to waiting
//! on shard locks vs. codec work vs. device/buddy memory I/O? The numbers
//! come from the tracer's per-kind totals ([`trace::totals`]), which are
//! exact regardless of ring wraparound. With the `obs-trace` feature off
//! the columns are all zero and `trace_enabled` says so — the artifact
//! shape is stable either way, so CI can assert on it in both modes.
//!
//! [`MetricsEmitter`] is the `--metrics-out` implementation shared by the
//! `pool-throughput`, `tenancy` and `churn` binaries: a
//! [`MetricsRegistry`] plus a background time-series sampler, flushed to
//! `<base>.prom` (Prometheus text exposition) and `<base>.csv` (one row
//! per sampled metric per tick) when the harness finishes.

use crate::report::{append_csv, f3, write_csv, RunConfig};
use buddy_compression::buddy_obs::metrics::sample_every;
use buddy_compression::buddy_obs::trace;
use buddy_compression::buddy_obs::{MetricsRegistry, SamplerHandle, SpanKind, SpanTotals};
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Artifact name of the shared span-time breakdown (under `results/`).
pub const BREAKDOWN_NAME: &str = "obs_breakdown";

/// Columns of `obs_breakdown.csv`: one row per measured sweep cell, span
/// time in milliseconds summed over every thread that ran in the cell.
pub const BREAKDOWN_HEADER: [&str; 13] = [
    "source",
    "codec",
    "shards",
    "clients",
    "trace_enabled",
    "shard_lock_wait_ms",
    "epoch_publish_ms",
    "codec_compress_ms",
    "codec_decompress_ms",
    "buddy_io_ms",
    "region_alloc_ms",
    "retarget_migrate_ms",
    "queue_wait_ms",
];

/// Renders one breakdown row from a span-totals delta
/// ([`SpanTotals::since`] across the measured region).
pub fn breakdown_row(
    source: &str,
    codec: &str,
    shards: usize,
    clients: usize,
    delta: &SpanTotals,
) -> Vec<String> {
    let ms = |kind: SpanKind| f3(delta.of(kind).total_ns as f64 / 1e6);
    vec![
        source.to_string(),
        codec.to_string(),
        shards.to_string(),
        clients.to_string(),
        trace::is_enabled().to_string(),
        ms(SpanKind::ShardLockWait),
        ms(SpanKind::EpochPublish),
        ms(SpanKind::CodecCompress),
        ms(SpanKind::CodecDecompress),
        ms(SpanKind::BuddyIo),
        ms(SpanKind::RegionAlloc),
        ms(SpanKind::RetargetMigrate),
        ms(SpanKind::QueueWait),
    ]
}

/// Truncate-writes the breakdown artifact. The first harness of a
/// `reproduce-all` run (`pool-throughput`) uses this so every run starts
/// the artifact fresh.
pub fn write_breakdown(cfg: &RunConfig, rows: &[Vec<String>]) -> io::Result<PathBuf> {
    write_csv(&cfg.results_dir, BREAKDOWN_NAME, &BREAKDOWN_HEADER, rows)
}

/// Appends to the breakdown artifact (creating it if needed) — for the
/// harnesses that run after `pool-throughput` or standalone.
pub fn append_breakdown(cfg: &RunConfig, rows: &[Vec<String>]) -> io::Result<PathBuf> {
    append_csv(&cfg.results_dir, BREAKDOWN_NAME, &BREAKDOWN_HEADER, rows)
}

/// Sampling interval of the `--metrics-out` time series. Coarse enough to
/// stay invisible next to the measured work, fine enough that even a
/// `--quick` harness run lands several ticks.
const SAMPLE_INTERVAL: Duration = Duration::from_millis(50);

/// The `--metrics-out` half of a harness run: a registry the harness
/// populates, with a background sampler ticking while it works. When the
/// run configuration carries no `metrics_out` path the sampler never
/// starts and [`finish`](Self::finish) is a no-op, so harnesses call this
/// unconditionally.
pub struct MetricsEmitter {
    registry: Arc<MetricsRegistry>,
    sampler: Option<SamplerHandle>,
    out: Option<PathBuf>,
}

impl MetricsEmitter {
    /// Builds the registry and, if `cfg.metrics_out` is set, starts the
    /// deterministic-interval sampler over it.
    pub fn start(cfg: &RunConfig) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let sampler = cfg
            .metrics_out
            .as_ref()
            .map(|_| sample_every(Arc::clone(&registry), SAMPLE_INTERVAL));
        Self {
            registry,
            sampler,
            out: cfg.metrics_out.clone(),
        }
    }

    /// The registry the harness registers its counters/gauges/histograms
    /// on.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Stops the sampler and writes `<base>.prom` + `<base>.csv`. Returns
    /// the written paths, or `None` when `--metrics-out` was not given.
    pub fn finish(self) -> io::Result<Option<(PathBuf, PathBuf)>> {
        let Some(base) = self.out else {
            return Ok(None);
        };
        let series = match self.sampler {
            Some(handle) => handle.stop(),
            None => Default::default(),
        };
        if let Some(dir) = base.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let prom_path = sibling(&base, "prom");
        let csv_path = sibling(&base, "csv");
        std::fs::write(&prom_path, self.registry.render_prometheus())?;
        std::fs::write(&csv_path, series.to_csv())?;
        Ok(Some((prom_path, csv_path)))
    }
}

/// `<base>.<ext>` next to the base path (extension appended, never
/// replacing part of a dotted filename the user chose).
fn sibling(base: &std::path::Path, ext: &str) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(".");
    name.push(ext);
    PathBuf::from(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_row_shape_matches_the_header() {
        let row = breakdown_row("pool_throughput", "bpc", 4, 4, &SpanTotals::default());
        assert_eq!(row.len(), BREAKDOWN_HEADER.len());
        assert_eq!(row[0], "pool_throughput");
        assert_eq!(row[4], trace::is_enabled().to_string());
        // A zero delta renders as zero milliseconds in every span column.
        for cell in &row[5..] {
            assert_eq!(cell, "0.000");
        }
    }

    #[test]
    fn truncate_then_append_protocol() {
        let dir = std::env::temp_dir().join("buddy-bench-obsfig");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RunConfig {
            results_dir: dir.clone(),
            ..Default::default()
        };
        let row = |s: &str| vec![breakdown_row(s, "bpc", 1, 1, &SpanTotals::default())];
        write_breakdown(&cfg, &row("pool_throughput")).unwrap();
        write_breakdown(&cfg, &row("pool_throughput")).unwrap();
        append_breakdown(&cfg, &row("tenancy")).unwrap();
        let text = std::fs::read_to_string(dir.join("obs_breakdown.csv")).unwrap();
        // The second truncate-write reset the file; the append added to it.
        assert_eq!(text.lines().count(), 3, "header + one of each source");
        assert!(text.lines().nth(1).unwrap().starts_with("pool_throughput,"));
        assert!(text.lines().nth(2).unwrap().starts_with("tenancy,"));
    }

    #[test]
    fn emitter_without_metrics_out_is_inert() {
        let emitter = MetricsEmitter::start(&RunConfig::default());
        emitter.registry().counter("ops_total", "ops").incr();
        assert!(emitter.finish().unwrap().is_none());
    }

    #[test]
    fn emitter_writes_prom_and_csv_artifacts() {
        let dir = std::env::temp_dir().join("buddy-bench-obsfig-metrics");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RunConfig {
            metrics_out: Some(dir.join("m")),
            ..Default::default()
        };
        let emitter = MetricsEmitter::start(&cfg);
        emitter.registry().counter("ops_total", "ops issued").add(5);
        let (prom, csv) = emitter.finish().unwrap().expect("paths written");
        let prom_text = std::fs::read_to_string(prom).unwrap();
        assert!(prom_text.contains("# TYPE ops_total counter"));
        assert!(prom_text.contains("ops_total 5"));
        let csv_text = std::fs::read_to_string(csv).unwrap();
        assert!(csv_text.starts_with("tick,elapsed_ms,metric,value"));
        // The sampler takes a final stop-time sample, so even an instant
        // run lands at least one row for the counter.
        assert!(csv_text.contains("ops_total"));
    }
}
