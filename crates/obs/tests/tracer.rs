//! Tracer behaviour with `obs-trace` enabled: span nesting/ordering
//! invariants, ring wraparound (drop-oldest, never block), and Chrome
//! trace-event JSON validity — checked with a hand-rolled JSON parser,
//! no serde.
//!
//! Each test uses span kinds no other test in this file touches: the
//! tracer state is process-global and the test harness runs tests
//! concurrently, so kind-exclusivity is what keeps assertions isolated.
#![cfg(feature = "obs-trace")]

use buddy_obs::trace::{
    export_chrome_trace, is_enabled, record_span, ring_capacity, span, span_with_arg, totals,
};
use buddy_obs::SpanKind;
use std::time::Duration;

// ---------------------------------------------------------------------
// A minimal JSON model + recursive-descent parser (tests only).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Json {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value();
        p.ws();
        assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value");
        v
    }

    fn ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> u8 {
        *self.bytes.get(self.pos).expect("unexpected end of JSON")
    }

    fn eat(&mut self, b: u8) {
        assert_eq!(
            self.peek(),
            b,
            "expected {:?} at byte {}",
            b as char,
            self.pos
        );
        self.pos += 1;
    }

    fn eat_str(&mut self, s: &str) {
        for &b in s.as_bytes() {
            self.eat(b);
        }
    }

    fn value(&mut self) -> Json {
        self.ws();
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => {
                self.eat_str("true");
                Json::Bool(true)
            }
            b'f' => {
                self.eat_str("false");
                Json::Bool(false)
            }
            b'n' => {
                self.eat_str("null");
                Json::Null
            }
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == b'}' {
            self.pos += 1;
            return Json::Obj(fields);
        }
        loop {
            self.ws();
            let key = self.string();
            self.ws();
            self.eat(b':');
            let val = self.value();
            fields.push((key, val));
            self.ws();
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Json::Obj(fields);
                }
                other => panic!("expected ',' or '}}', got {:?}", other as char),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut items = Vec::new();
        self.ws();
        if self.peek() == b']' {
            self.pos += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            self.ws();
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Json::Arr(items);
                }
                other => panic!("expected ',' or ']', got {:?}", other as char),
            }
        }
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            let b = self.peek();
            self.pos += 1;
            match b {
                b'"' => return out,
                b'\\' => {
                    let esc = self.peek();
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        other => panic!("unsupported escape \\{}", other as char),
                    }
                }
                other => out.push(other as char),
            }
        }
    }

    fn number(&mut self) -> Json {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8 number");
        Json::Num(
            text.parse()
                .unwrap_or_else(|_| panic!("bad number {text:?}")),
        )
    }
}

/// Parses an export and returns the validated traceEvents array, checking
/// every event against the Chrome trace-event format requirements.
fn validated_events(json: &str) -> Vec<Json> {
    let doc = Parser::parse(json);
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(items)) => items.clone(),
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    let known: Vec<&str> = SpanKind::ALL.iter().map(|k| k.name()).collect();
    for ev in &events {
        let name = ev.get("name").expect("event.name").as_str();
        assert!(known.contains(&name), "unknown span name {name:?}");
        assert_eq!(ev.get("ph").expect("event.ph").as_str(), "X");
        assert!(ev.get("ts").expect("event.ts").as_num() >= 0.0);
        assert!(ev.get("dur").expect("event.dur").as_num() >= 0.0);
        assert_eq!(ev.get("pid").expect("event.pid").as_num(), 1.0);
        assert!(ev.get("tid").expect("event.tid").as_num() >= 1.0);
        ev.get("args").expect("event.args");
    }
    events
}

fn events_of(events: &[Json], kind: SpanKind) -> Vec<&Json> {
    events
        .iter()
        .filter(|e| e.get("name").is_some_and(|n| n.as_str() == kind.name()))
        .collect()
}

// ---------------------------------------------------------------------
// The actual tracer tests.
// ---------------------------------------------------------------------

#[test]
fn enabled_mode_reports_itself() {
    assert!(is_enabled());
    assert!(ring_capacity() > 0);
}

/// Kinds used: `RetargetMigrate` (outer), `CodecCompress` (inner),
/// `ShardLockWait` (arg carrier).
#[test]
fn nested_spans_order_and_contain_correctly() {
    let before = totals();
    {
        let _outer = span(SpanKind::RetargetMigrate);
        std::thread::sleep(Duration::from_millis(2));
        {
            let _inner = span(SpanKind::CodecCompress);
            std::thread::sleep(Duration::from_millis(1));
        }
        let _tagged = span_with_arg(SpanKind::ShardLockWait, 42);
    }
    let delta = totals().since(&before);
    assert_eq!(delta.of(SpanKind::RetargetMigrate).count, 1);
    assert_eq!(delta.of(SpanKind::CodecCompress).count, 1);
    assert_eq!(delta.of(SpanKind::ShardLockWait).count, 1);
    // Containment: the outer span's time includes the inner span's.
    assert!(
        delta.of(SpanKind::RetargetMigrate).total_ns >= delta.of(SpanKind::CodecCompress).total_ns,
        "outer span must cover the nested span"
    );

    let events = validated_events(&export_chrome_trace());
    let outer = events_of(&events, SpanKind::RetargetMigrate);
    let inner = events_of(&events, SpanKind::CodecCompress);
    assert_eq!(outer.len(), 1, "exactly this test records retarget spans");
    assert_eq!(inner.len(), 1);
    let (o, i) = (outer[0], inner[0]);
    let (o_ts, o_dur) = (
        o.get("ts").unwrap().as_num(),
        o.get("dur").unwrap().as_num(),
    );
    let (i_ts, i_dur) = (
        i.get("ts").unwrap().as_num(),
        i.get("dur").unwrap().as_num(),
    );
    // Nesting invariant: the inner span starts after and ends before the
    // outer one (tolerance for the 3-decimal µs rounding of the export).
    assert!(
        i_ts >= o_ts - 0.001,
        "inner starts after outer: {i_ts} vs {o_ts}"
    );
    assert!(
        i_ts + i_dur <= o_ts + o_dur + 0.001,
        "inner ends before outer"
    );
    // Same thread, and the inner (completed first) is exported in
    // completion order relative to the outer.
    assert_eq!(
        o.get("tid").unwrap().as_num(),
        i.get("tid").unwrap().as_num()
    );
    // The argument round-trips into the exported event.
    let tagged = events_of(&events, SpanKind::ShardLockWait);
    assert_eq!(tagged.len(), 1);
    assert_eq!(
        tagged[0]
            .get("args")
            .unwrap()
            .get("arg")
            .expect("args.arg")
            .as_num(),
        42.0
    );
}

/// Kind used: `BuddyIo`, exclusively.
#[test]
fn ring_wraparound_drops_oldest_and_keeps_totals_exact() {
    let cap = ring_capacity();
    let extra = 100;
    let before = totals();
    for i in 0..cap + extra {
        // Distinct durations (in µs steps so the 3-decimal export is
        // lossless) let the export reveal *which* events survived.
        record_span(SpanKind::BuddyIo, Duration::from_micros(i as u64));
    }
    // Totals never lose events to wraparound.
    let delta = totals().since(&before);
    assert_eq!(delta.of(SpanKind::BuddyIo).count, (cap + extra) as u64);

    let events = validated_events(&export_chrome_trace());
    let mine = events_of(&events, SpanKind::BuddyIo);
    assert_eq!(
        mine.len(),
        cap,
        "the ring holds exactly its capacity after wrapping"
    );
    let mut durs: Vec<u64> = mine
        .iter()
        .map(|e| e.get("dur").unwrap().as_num().round() as u64)
        .collect();
    durs.sort_unstable();
    let expected: Vec<u64> = (extra as u64..(cap + extra) as u64).collect();
    assert_eq!(durs, expected, "exactly the oldest {extra} events dropped");
}

/// Kind used: `QueueWait`, exclusively.
#[test]
fn record_span_backdates_and_export_is_valid_json() {
    let before = totals();
    record_span(SpanKind::QueueWait, Duration::from_micros(1500));
    let delta = totals().since(&before);
    assert_eq!(delta.of(SpanKind::QueueWait).count, 1);
    assert_eq!(delta.of(SpanKind::QueueWait).total_ns, 1_500_000);

    let events = validated_events(&export_chrome_trace());
    let mine = events_of(&events, SpanKind::QueueWait);
    assert_eq!(mine.len(), 1);
    let dur = mine[0].get("dur").unwrap().as_num();
    assert!((dur - 1500.0).abs() < 0.01, "dur {dur} != 1500us");
}

/// Kind used: `RegionAlloc`, exclusively (on spawned threads).
#[test]
fn spans_from_many_threads_land_on_distinct_tids() {
    let before = totals();
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                let _s = span(SpanKind::RegionAlloc);
                std::thread::sleep(Duration::from_micros(100));
            });
        }
    });
    let delta = totals().since(&before);
    assert_eq!(delta.of(SpanKind::RegionAlloc).count, 3);
    let events = validated_events(&export_chrome_trace());
    let mine = events_of(&events, SpanKind::RegionAlloc);
    assert_eq!(mine.len(), 3);
    let mut tids: Vec<u64> = mine
        .iter()
        .map(|e| e.get("tid").unwrap().as_num() as u64)
        .collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), 3, "each thread gets its own ring/tid");
}

#[test]
fn json_checker_rejects_malformed_documents() {
    // The checker itself must have teeth, or the validity test is vacuous.
    for bad in [
        "",
        "{",
        "{\"traceEvents\":}",
        "{\"traceEvents\":[{]}",
        "{\"traceEvents\":[1,]}",
        "nope",
    ] {
        let caught = std::panic::catch_unwind(|| Parser::parse(bad)).is_err();
        assert!(caught, "parser accepted malformed input {bad:?}");
    }
    // And it accepts a well-formed document.
    let ok = Parser::parse("{\"traceEvents\":[{\"name\":\"x\",\"ts\":1.5}], \"n\":null}");
    assert!(matches!(ok.get("traceEvents"), Some(Json::Arr(_))));
}
