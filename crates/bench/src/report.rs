//! Result reporting: aligned console tables and CSV files under `results/`.

use buddy_compression::bpc::CodecKind;
use std::fmt::Display;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Run configuration shared by all figure harnesses.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Reduced trace/sample sizes for smoke runs (`--quick`).
    pub quick: bool,
    /// Output directory for CSV/PGM artifacts.
    pub results_dir: PathBuf,
    /// Master seed (all randomness derives from it).
    pub seed: u64,
    /// Compression algorithm the capacity figures characterize with
    /// (`--codec <name>`; BPC by default, matching the paper).
    pub codec: CodecKind,
    /// Base path for metric artifacts (`--metrics-out <path>`): the
    /// instrumented harnesses (`pool-throughput`, `tenancy`, `churn`)
    /// write a Prometheus text snapshot to `<path>.prom` and the
    /// time-series sampler's CSV to `<path>.csv`. `None` disables both.
    pub metrics_out: Option<PathBuf>,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            quick: false,
            results_dir: PathBuf::from("results"),
            seed: 0xB0DD7,
            codec: CodecKind::Bpc,
            metrics_out: None,
        }
    }
}

impl RunConfig {
    /// Builds the configuration from process arguments (`--quick`,
    /// `--codec <name>`, `--metrics-out <path>`).
    ///
    /// Exits with status 2 and the list of registered codecs on stderr if
    /// `--codec` names an unknown algorithm, or if either option is
    /// missing its value — a usage error, not a harness bug, so no
    /// backtrace.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let usage_error = |message: String| -> ! {
            eprintln!("error: {message}");
            std::process::exit(2);
        };
        let codec = match args.iter().position(|a| a == "--codec") {
            None => CodecKind::Bpc,
            Some(i) => {
                let Some(name) = args.get(i + 1) else {
                    usage_error(format!("--codec needs a value: one of {}", codec_names()));
                };
                match CodecKind::from_name(name) {
                    Some(codec) => codec,
                    None => usage_error(format!(
                        "unknown codec {name:?}: expected one of {}",
                        codec_names()
                    )),
                }
            }
        };
        let metrics_out = match args.iter().position(|a| a == "--metrics-out") {
            None => None,
            Some(i) => match args.get(i + 1) {
                Some(path) => Some(PathBuf::from(path)),
                None => usage_error(
                    "--metrics-out needs a value: the base path for the .prom/.csv artifacts"
                        .to_string(),
                ),
            },
        };
        if codec != CodecKind::Bpc {
            println!(
                "note: --codec {codec} applies to the capacity harnesses (fig03, \
                 fig06-fig09; their artifacts gain a _{codec} suffix) and the \
                 ablation sweeps all codecs regardless; every other harness \
                 models BPC"
            );
        }
        Self {
            quick,
            codec,
            metrics_out,
            ..Self::default()
        }
    }

    /// Artifact base name tagged with the selected codec: `name` under the
    /// default BPC (the paper's published numbers keep their filenames),
    /// `name_<codec>` otherwise so codec sweeps never overwrite them.
    pub fn tagged(&self, name: &str) -> String {
        if self.codec == CodecKind::Bpc {
            name.to_string()
        } else {
            format!("{name}_{}", self.codec)
        }
    }

    /// Scales an iteration/access count down in quick mode.
    pub fn scaled(&self, full: u64) -> u64 {
        if self.quick {
            (full / 10).max(1000)
        } else {
            full
        }
    }
}

/// Comma-separated list of registered codec names (for CLI diagnostics),
/// derived from the registry so it can never drift from it.
fn codec_names() -> String {
    CodecKind::ALL.map(|k| k.to_string()).join(", ")
}

/// Writes rows of display-able cells as CSV into `results/<name>.csv`.
pub fn write_csv<C: Display>(
    dir: &Path,
    name: &str,
    header: &[&str],
    rows: &[Vec<C>],
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| c.to_string()).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    fs::write(&path, out)?;
    Ok(path)
}

/// Appends rows to `results/<name>.csv`, creating it (with `header`) when
/// it does not exist yet. If the existing file's first line does not match
/// `header` — a stale artifact from an older format — the file is rewritten
/// from scratch rather than corrupted by appending mismatched columns.
///
/// This is how several harnesses share one artifact (`obs_breakdown.csv`):
/// the first writer of a `reproduce-all` run truncates, later ones append.
pub fn append_csv<C: Display>(
    dir: &Path,
    name: &str,
    header: &[&str],
    rows: &[Vec<C>],
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let header_line = header.join(",");
    let existing = fs::read_to_string(&path)
        .ok()
        .filter(|text| text.lines().next() == Some(header_line.as_str()));
    let mut out = existing.unwrap_or_else(|| format!("{header_line}\n"));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| c.to_string()).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    fs::write(&path, out)?;
    Ok(path)
}

/// Writes a raw text artifact (e.g. a PGM heat map).
pub fn write_text(dir: &Path, name: &str, content: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(&path, content)?;
    Ok(path)
}

/// Prints an aligned table to stdout.
pub fn print_table<C: Display>(title: &str, header: &[&str], rows: &[Vec<C>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    for row in &rendered {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    for row in &rendered {
        line(row);
    }
}

/// Formats a float with three significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", 100.0 * v)
}

/// Pearson correlation coefficient of two equally long samples.
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than two points.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation needs paired samples");
    assert!(xs.len() >= 2, "correlation needs at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    cov / (vx.sqrt() * vy.sqrt()).max(1e-300)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("buddy-bench-test");
        let rows = vec![vec!["a".to_string(), "1".to_string()]];
        let path = write_csv(&dir, "t", &["name", "value"], &rows).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "name,value\na,1\n");
    }

    #[test]
    fn append_csv_creates_then_appends_then_resets_on_header_change() {
        let dir = std::env::temp_dir().join("buddy-bench-append-test");
        let _ = std::fs::remove_dir_all(&dir);
        let row = |s: &str| vec![vec![s.to_string(), "1".to_string()]];
        append_csv(&dir, "t", &["name", "value"], &row("a")).unwrap();
        let path = append_csv(&dir, "t", &["name", "value"], &row("b")).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "name,value\na,1\nb,1\n");
        // A header change means the old artifact is stale: start over.
        append_csv(&dir, "t", &["name", "count"], &row("c")).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "name,count\nc,1\n");
    }

    #[test]
    fn correlation_of_linear_data_is_one() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((correlation(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn quick_mode_scales_down() {
        let cfg = RunConfig {
            quick: true,
            ..Default::default()
        };
        assert_eq!(cfg.scaled(100_000), 10_000);
        assert_eq!(cfg.scaled(100), 1000);
        let full = RunConfig::default();
        assert_eq!(full.scaled(100_000), 100_000);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.0421), "4.21%");
    }
}
