//! Known-bad corpus for the `relaxed-ordering` rule: `Ordering::Relaxed`
//! without an adjacent `Relaxed: ...` justification must be flagged.
#![forbid(unsafe_code)]

fn bad(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed) // expect(relaxed-ordering)
}

fn justified_above(c: &AtomicU64) -> u64 {
    // Relaxed: the counter is a pure id source; no other memory is
    // published through it, so only atomicity is required.
    c.fetch_add(1, Ordering::Relaxed)
}

fn justified_same_line(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed) // Relaxed: monotonic stat, staleness is acceptable
}

fn stronger_orderings_need_no_comment(c: &AtomicU64) -> u64 {
    c.load(Ordering::Acquire) + c.swap(0, Ordering::SeqCst)
}
