//! The allocation lifecycle under churn: a DL-training-style working set
//! allocates and frees activations every iteration, the device's free-list
//! allocator reuses and coalesces the holes, and generational ids keep
//! stale handles from ever aliasing the recycled space.
//!
//! Run with `cargo run --example churn_lifecycle`.

use buddy_compression::buddy_core::{BuddyDevice, DeviceConfig, DeviceError, TargetRatio};
use buddy_compression::workloads::{ChurnConfig, ChurnOp, ChurnTrace, Lifetime};
use std::collections::HashMap;

fn main() {
    let mut dev = BuddyDevice::new(DeviceConfig {
        device_capacity: 1 << 20,
        carve_out_factor: 3,
    });

    // Eight iterations of a 12-layer DL training loop: forward-pass
    // allocations, backward-pass frees (LIFO), per-layer sizes stable.
    let trace = ChurnTrace::new(ChurnConfig {
        live_target: 12,
        min_entries: 64,
        max_entries: 512,
        lifetime: Lifetime::Iteration { layers: 12 },
        seed: 42,
    });
    let mut handles = HashMap::new();
    let mut peak_used = 0u64;
    let mut allocs = 0u64;
    for op in trace.take(8 * 24) {
        match op {
            ChurnOp::Alloc { key, entries } => {
                let id = dev
                    .alloc(&format!("act{key}"), entries, TargetRatio::R2)
                    .expect("working set fits");
                dev.write_entry(id, 0, &[key as u8 + 1; 128])
                    .expect("in range");
                handles.insert(key, id);
                allocs += 1;
                peak_used = peak_used.max(dev.device_used());
            }
            ChurnOp::Free { key } => {
                let id = handles.remove(&key).expect("allocated this iteration");
                dev.free(id).expect("live handle");
            }
        }
    }
    println!(
        "churned {allocs} activation allocations over 8 iterations; peak device use {} KiB",
        peak_used >> 10
    );
    println!(
        "after the final backward pass: {} B used, fragmentation {:.1}%, largest free region {} KiB",
        dev.device_used(),
        100.0 * dev.fragmentation(),
        dev.largest_free_region() >> 10
    );
    assert_eq!(dev.device_used(), 0, "leak-free by construction");

    // Stale handles are generational: freed ids stay dead forever, even
    // after their slots and bytes are recycled by new allocations.
    let a = dev.alloc("scratch", 256, TargetRatio::R4).expect("fits");
    dev.free(a).expect("live handle");
    let _b = dev.alloc("recycled", 256, TargetRatio::R4).expect("fits");
    assert_eq!(dev.read_entry(a, 0), Err(DeviceError::BadAllocation));
    println!("stale handle after free + slot reuse: BadAllocation (generational ids)");

    // The whole arena is still allocatable in one piece after churn.
    dev.free_by_name("recycled").expect("live name");
    let entries = dev.config().device_capacity / 128;
    dev.alloc("everything", entries, TargetRatio::R1)
        .expect("coalesced free space hosts a full-capacity allocation");
    println!(
        "full-capacity allocation of {entries} entries succeeded after churn \
         (free space fully coalesced)"
    );
}
