//! The lint engine: walks the tree, runs every registered rule, resolves
//! `lint-allow` waivers, and renders findings as human text or JSON.
//!
//! Two modes:
//!
//! * **Tree mode** (`xtask lint`): rules run with their path scopes over
//!   `src/` and `crates/*/src/` (tests, benches, examples, `vendor/` and
//!   the fixture corpus are out of scope). Any unwaived `deny` finding
//!   fails the run — this is the CI gate.
//! * **Self-check mode** (`xtask lint --self-check`): rules run *without*
//!   path scopes over `crates/xtask/fixtures/`, and the result is compared
//!   against the `// expect(<rule>)` annotations inside the fixtures. Every
//!   rule must flag every annotated snippet (and nothing else), and every
//!   `lint-allow` in the corpus must suppress its finding — a mutation
//!   test for the driver itself.

use crate::rules::{pseudo_summary, registry, Rule, Severity};
use crate::source::SourceFile;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// A finding after waiver resolution.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id.
    pub rule: String,
    /// Rule severity.
    pub severity: Severity,
    /// Root-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Explanation.
    pub message: String,
    /// The rule's one-line summary — what invariant this rule guards,
    /// independent of the specific finding.
    pub description: String,
    /// Set when a `lint-allow` / `lint-allow-file` covers this finding;
    /// carries the reason.
    pub waived: Option<String>,
}

/// Result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, waived included, in (path, line, rule) order.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files: usize,
}

impl Report {
    /// Findings that gate the exit status.
    pub fn denied(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.waived.is_none() && f.severity == Severity::Deny)
    }

    /// Count of waived findings.
    pub fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waived.is_some()).count()
    }
}

/// Recursively collects `.rs` files under `dir`, skipping `skip_dirs`.
fn walk(dir: &Path, skip_dirs: &[&str], out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if skip_dirs.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, skip_dirs, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The source files tree mode lints: the facade `src/` and every
/// `crates/*/src/` (including `src/bin/`), excluding fixtures and vendor.
pub fn tree_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        walk(&src, &[], &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let entries = fs::read_dir(&crates).map_err(|e| format!("cannot read crates/: {e}"))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("walk error under crates/: {e}"))?;
            let crate_src = entry.path().join("src");
            if crate_src.is_dir() {
                walk(&crate_src, &[], &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Root-relative forward-slash display path.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs `rules` over `files`. When `scoped` is false (self-check), every
/// rule sees every file regardless of its path scope.
pub fn run(root: &Path, files: &[PathBuf], rules: &[Rule], scoped: bool) -> Result<Report, String> {
    let mut report = Report::default();
    for path in files {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel_path = rel(root, path);
        let file = SourceFile::parse(&text);
        let waivers = file.waivers();
        let file_waivers = file.file_waivers();
        report.files += 1;

        // A waiver naming an unregistered rule is itself a defect.
        for w in &waivers {
            if !rules.iter().any(|r| r.id == w.rule) {
                report.findings.push(Finding {
                    rule: "unknown-waiver".into(),
                    severity: Severity::Deny,
                    path: rel_path.clone(),
                    line: w.comment_line,
                    message: format!("waiver names unknown rule `{}`", w.rule),
                    description: pseudo_summary("unknown-waiver").into(),
                    waived: None,
                });
            }
        }

        // File waivers are validated once per file: a misplaced one never
        // suppresses (and is the only finding it produces — its rule name
        // and reason are moot until it moves); a well-placed one must name
        // a known rule and carry a reason to suppress anything.
        for fw in &file_waivers {
            let (rule, message) = if fw.misplaced {
                (
                    "misplaced-file-waiver",
                    format!(
                        "file waiver for `{}` appears after code starts — move it into the \
                         leading comment block so reviewers see the file-wide exemption",
                        fw.rule
                    ),
                )
            } else if !rules.iter().any(|r| r.id == fw.rule) {
                (
                    "unknown-waiver",
                    format!("file waiver names unknown rule `{}`", fw.rule),
                )
            } else if fw.reason.is_empty() {
                (
                    "waiver-without-reason",
                    format!(
                        "file waiver for `{}` gives no reason — `lint-allow-file({}): <why>`",
                        fw.rule, fw.rule
                    ),
                )
            } else {
                continue;
            };
            report.findings.push(Finding {
                rule: rule.into(),
                severity: Severity::Deny,
                path: rel_path.clone(),
                line: fw.comment_line,
                message,
                description: pseudo_summary(rule).into(),
                waived: None,
            });
        }

        for rule in rules {
            if scoped && !(rule.applies)(&rel_path) {
                continue;
            }
            let mut raw = Vec::new();
            (rule.check)(&file, &mut raw);
            for finding in raw {
                let waiver = waivers
                    .iter()
                    .find(|w| w.rule == rule.id && w.target_line == finding.line);
                let waived = match waiver {
                    Some(w) if w.reason.is_empty() => {
                        report.findings.push(Finding {
                            rule: "waiver-without-reason".into(),
                            severity: Severity::Deny,
                            path: rel_path.clone(),
                            line: w.comment_line,
                            message: format!(
                                "waiver for `{}` gives no reason — `lint-allow({}): <why>`",
                                rule.id, rule.id
                            ),
                            description: pseudo_summary("waiver-without-reason").into(),
                            waived: None,
                        });
                        None // a reasonless waiver does not suppress
                    }
                    Some(w) => Some(w.reason.clone()),
                    // No line waiver: a well-formed file waiver for this
                    // rule covers every finding in the file.
                    None => file_waivers
                        .iter()
                        .find(|fw| fw.rule == rule.id && !fw.misplaced && !fw.reason.is_empty())
                        .map(|fw| fw.reason.clone()),
                };
                report.findings.push(Finding {
                    rule: rule.id.to_string(),
                    severity: rule.severity,
                    path: rel_path.clone(),
                    line: finding.line,
                    message: finding.message,
                    description: rule.summary.into(),
                    waived,
                });
            }
        }
    }
    // (path, line, rule) is the contract consumers may rely on; message
    // breaks the rare tie so the byte stream is fully deterministic.
    report.findings.sort_by(|a, b| {
        (&a.path, a.line, &a.rule, &a.message).cmp(&(&b.path, b.line, &b.rule, &b.message))
    });
    Ok(report)
}

/// Lints the repo tree with scoped rules.
pub fn lint_tree(root: &Path) -> Result<Report, String> {
    let files = tree_files(root)?;
    run(root, &files, &registry(), true)
}

/// Renders the report for humans. Waived findings are summarized, not
/// listed, so the signal is the gate.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for f in report.findings.iter().filter(|f| f.waived.is_none()) {
        out.push_str(&format!(
            "{}: [{}] {}:{}: {}\n",
            f.severity, f.rule, f.path, f.line, f.message
        ));
    }
    let denied = report.denied().count();
    let warned = report
        .findings
        .iter()
        .filter(|f| f.waived.is_none() && f.severity == Severity::Warn)
        .count();
    out.push_str(&format!(
        "lint: {} files scanned, {denied} denied, {warned} warnings, {} waived\n",
        report.files,
        report.waived_count()
    ));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as a single JSON object (stable field order).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"description\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\"waived\":{}}}",
            json_escape(&f.rule),
            f.severity,
            json_escape(&f.description),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message),
            match &f.waived {
                Some(reason) => format!("\"{}\"", json_escape(reason)),
                None => "null".to_string(),
            }
        ));
    }
    out.push_str(&format!(
        "],\"summary\":{{\"files\":{},\"denied\":{},\"waived\":{}}}}}",
        report.files,
        report.denied().count(),
        report.waived_count()
    ));
    out.push('\n');
    out
}

/// Expected findings parsed out of the fixture corpus: `// expect(<rule>)`
/// pins an unwaived finding to its line; `// expect-file(<rule>)` pins one
/// anywhere in the file (for file-level rules).
#[derive(Debug, Default)]
struct Expectations {
    /// (path, line, rule)
    at_line: BTreeSet<(String, usize, String)>,
    /// (path, rule)
    in_file: BTreeSet<(String, String)>,
    /// (path, line) covered by a lint-allow waiver, with the waived rule.
    waived: BTreeSet<(String, usize, String)>,
    /// (path, rule) covered by a well-formed `lint-allow-file` waiver.
    waived_file: BTreeSet<(String, String)>,
}

fn parse_annotations(
    root: &Path,
    files: &[PathBuf],
    rules: &[Rule],
) -> Result<Expectations, String> {
    let mut exp = Expectations::default();
    for path in files {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel_path = rel(root, path);
        let file = SourceFile::parse(&text);
        for (idx, line) in file.lines.iter().enumerate() {
            // Annotations are comments *starting* with `expect(` /
            // `expect-file(` (after the comment markers); prose that merely
            // mentions the syntax is ignored. Several annotations may share
            // one comment, space-separated.
            let mut rest = line
                .comment
                .trim_start_matches(['/', '!', '*', ' '].as_slice());
            loop {
                if let Some(r) = rest.strip_prefix("expect-file(") {
                    if let Some(close) = r.find(')') {
                        exp.in_file
                            .insert((rel_path.clone(), r[..close].to_string()));
                        rest = r[close + 1..].trim_start();
                        continue;
                    }
                } else if let Some(r) = rest.strip_prefix("expect(") {
                    if let Some(close) = r.find(')') {
                        exp.at_line
                            .insert((rel_path.clone(), idx + 1, r[..close].to_string()));
                        rest = r[close + 1..].trim_start();
                        continue;
                    }
                }
                break;
            }
        }
        for w in file.waivers() {
            // Reasonless and unknown-rule waivers are themselves findings
            // (exercised by fixtures); only well-formed waivers are expected
            // to suppress anything.
            if w.reason.is_empty() || !rules.iter().any(|r| r.id == w.rule) {
                continue;
            }
            exp.waived
                .insert((rel_path.clone(), w.target_line, w.rule.clone()));
        }
        for fw in file.file_waivers() {
            // Misplaced, reasonless and unknown-rule file waivers are
            // themselves findings; only well-formed ones must suppress.
            if fw.misplaced || fw.reason.is_empty() || !rules.iter().any(|r| r.id == fw.rule) {
                continue;
            }
            exp.waived_file.insert((rel_path.clone(), fw.rule.clone()));
        }
    }
    Ok(exp)
}

/// Mutation self-test: lints the fixture corpus with all scopes open and
/// diffs the outcome against the corpus's own `expect` annotations.
/// Returns a list of discrepancies; empty means the driver is healthy.
pub fn self_check(root: &Path) -> Result<Vec<String>, String> {
    let fixtures = root.join("crates/xtask/fixtures");
    let mut files = Vec::new();
    walk(&fixtures, &[], &mut files)?;
    files.sort();
    if files.is_empty() {
        return Err(format!("no fixtures under {}", fixtures.display()));
    }
    let rules = registry();
    let report = run(root, &files, &rules, false)?;
    let expected = parse_annotations(root, &files, &rules)?;

    let mut problems = Vec::new();

    // 1. Every line-pinned expectation produced exactly one unwaived finding.
    let got: BTreeSet<(String, usize, String)> = report
        .findings
        .iter()
        .filter(|f| f.waived.is_none())
        .map(|f| (f.path.clone(), f.line, f.rule.clone()))
        .collect();
    for (path, line, rule) in &expected.at_line {
        if !got.contains(&(path.clone(), *line, rule.clone())) {
            problems.push(format!(
                "fixture snippet NOT flagged: {path}:{line} expected `{rule}`"
            ));
        }
    }
    // 2. No unannotated unwaived findings (the linter must not over-fire).
    for (path, line, rule) in &got {
        let annotated = expected
            .at_line
            .contains(&(path.clone(), *line, rule.clone()))
            || expected.in_file.contains(&(path.clone(), rule.clone()));
        if !annotated {
            problems.push(format!(
                "unexpected finding in fixtures: {path}:{line} `{rule}` — annotate with \
                 `// expect({rule})` or fix the rule"
            ));
        }
    }
    // 3. File-level expectations fired somewhere in their file.
    for (path, rule) in &expected.in_file {
        if !got.iter().any(|(p, _, r)| p == path && r == rule) {
            problems.push(format!("fixture file {path}: `{rule}` never fired"));
        }
    }
    // 4. Every lint-allow in the corpus suppressed a real finding (waivers
    //    must bind to actual findings, proving suppression works).
    let waived_got: BTreeSet<(String, usize, String)> = report
        .findings
        .iter()
        .filter(|f| f.waived.is_some())
        .map(|f| (f.path.clone(), f.line, f.rule.clone()))
        .collect();
    for key in &expected.waived {
        if !waived_got.contains(key) {
            problems.push(format!(
                "waiver at {}:{} for `{}` suppressed nothing — the waived snippet must \
                 still be a genuine finding",
                key.0, key.1, key.2
            ));
        }
    }
    // 4b. Same for file-scoped waivers: each well-formed one must have
    //     suppressed at least one finding of its rule in its file.
    for (path, rule) in &expected.waived_file {
        if !waived_got.iter().any(|(p, _, r)| p == path && r == rule) {
            problems.push(format!(
                "file waiver in {path} for `{rule}` suppressed nothing — the file must \
                 still contain at least one genuine `{rule}` finding"
            ));
        }
    }
    // 5. Every registered rule is exercised by at least one fixture.
    for rule in &rules {
        let exercised = expected.at_line.iter().any(|(_, _, r)| r == rule.id)
            || expected.in_file.iter().any(|(_, r)| r == rule.id);
        if !exercised {
            problems.push(format!(
                "rule `{}` has no fixture — add a known-bad snippet under crates/xtask/fixtures/",
                rule.id
            ));
        }
    }
    Ok(problems)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RawFinding;

    fn repo_root() -> PathBuf {
        // crates/xtask -> crates -> repo root
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."))
    }

    /// The CI gate, doubled as a unit test: the tree must lint clean.
    #[test]
    fn repo_tree_is_clean() {
        let report = lint_tree(&repo_root()).expect("lint runs");
        let denied: Vec<String> = report
            .denied()
            .map(|f| format!("[{}] {}:{}: {}", f.rule, f.path, f.line, f.message))
            .collect();
        assert!(
            denied.is_empty(),
            "unwaived lint findings:\n{}",
            denied.join("\n")
        );
    }

    /// The mutation self-test, doubled as a unit test: every rule flags its
    /// fixture snippets and every fixture waiver suppresses.
    #[test]
    fn fixtures_behave_as_annotated() {
        let problems = self_check(&repo_root()).expect("self-check runs");
        assert!(problems.is_empty(), "self-check:\n{}", problems.join("\n"));
    }

    #[test]
    fn warn_severity_never_gates() {
        let rule = Rule {
            id: "test-warn",
            severity: Severity::Warn,
            summary: "always fires",
            applies: |_| true,
            check: |_, out| {
                out.push(RawFinding {
                    line: 1,
                    message: "warn finding".into(),
                })
            },
        };
        let dir = std::env::temp_dir().join("xtask-warn-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let file = dir.join("w.rs");
        fs::write(&file, "fn f() {}\n").expect("write fixture");
        let report = run(&dir, &[file], &[rule], true).expect("run");
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.denied().count(), 0, "warn findings must not gate");
        assert!(render_json(&report).contains("\"severity\":\"warn\""));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = Report {
            findings: vec![Finding {
                rule: "no-unwrap".into(),
                severity: Severity::Deny,
                path: "a\"b.rs".into(),
                line: 3,
                message: "quote \" and backslash \\".into(),
                description: "no unwrap".into(),
                waived: Some("because".into()),
            }],
            files: 1,
        };
        let json = render_json(&report);
        assert!(json.contains("\\\"") && json.contains("\\\\"));
        assert!(json.contains("\"description\":\"no unwrap\""));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    /// Pins the machine output contract: findings arrive sorted by
    /// (path, line, rule), every finding carries the rule's description,
    /// and the byte stream is identical across runs.
    #[test]
    fn json_output_is_deterministic_and_ordered() {
        let dir = std::env::temp_dir().join("xtask-json-det-test");
        fs::create_dir_all(&dir).expect("temp dir");
        // `b.rs` written before `a.rs`: path order must come from sorting,
        // not the filesystem.
        let b = dir.join("b.rs");
        let a = dir.join("a.rs");
        fs::write(&b, "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n").expect("write b");
        fs::write(
            &a,
            "fn g(o: Option<u32>) -> u32 { o.expect(\"x\") }\nfn h() { panic!(\"y\") }\n",
        )
        .expect("write a");
        let rules = registry();
        let files = vec![b.clone(), a.clone()];
        let first = render_json(&run(&dir, &files, &rules, false).expect("run"));
        let second = render_json(&run(&dir, &files, &rules, false).expect("run"));
        assert_eq!(first, second, "same inputs must produce identical bytes");
        let pos_a1 = first.find("\"path\":\"a.rs\",\"line\":1").expect("a.rs:1");
        let pos_a2 = first.find("\"path\":\"a.rs\",\"line\":2").expect("a.rs:2");
        let pos_b = first.find("\"path\":\"b.rs\"").expect("b.rs");
        assert!(
            pos_a1 < pos_a2 && pos_a2 < pos_b,
            "findings must sort by (path, line, rule):\n{first}"
        );
        let summary = rules
            .iter()
            .find(|r| r.id == "no-unwrap")
            .expect("rule")
            .summary;
        assert!(
            first.contains(&format!("\"description\":\"{summary}\"")),
            "every finding carries its rule's summary as the description"
        );
    }

    /// File-scoped waivers suppress every finding of their rule, but only
    /// when well-placed and reasoned; the failure modes each produce their
    /// own deny finding.
    #[test]
    fn file_waivers_suppress_and_misfires_are_findings() {
        let dir = std::env::temp_dir().join("xtask-file-waiver-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let good = dir.join("good.rs");
        fs::write(
            &good,
            "//! Docs.\n// lint-allow-file(no-unwrap): demo reason\nfn f(o: Option<u32>) -> u32 { o.unwrap() }\nfn g(o: Option<u32>) -> u32 { o.expect(\"x\") }\n",
        )
        .expect("write good");
        let bad = dir.join("bad.rs");
        fs::write(
            &bad,
            "// lint-allow-file(no-such-rule): bogus target\n// lint-allow-file(lossy-cast)\nfn f() {}\n// lint-allow-file(no-unwrap): too late\nfn g(o: Option<u32>) -> u32 { o.unwrap() }\n",
        )
        .expect("write bad");
        let rules = registry();
        let report = run(&dir, &[good, bad], &rules, false).expect("run");
        let by_rule = |rule: &str| -> Vec<&Finding> {
            report.findings.iter().filter(|f| f.rule == rule).collect()
        };
        // good.rs: both no-unwrap findings exist but are waived.
        let good_unwraps: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.path == "good.rs" && f.rule == "no-unwrap")
            .collect();
        assert_eq!(good_unwraps.len(), 2);
        assert!(good_unwraps
            .iter()
            .all(|f| f.waived.as_deref() == Some("demo reason")));
        // bad.rs: each malformed waiver is its own deny, and the misplaced
        // one did NOT suppress the unwrap below it.
        assert_eq!(by_rule("unknown-waiver").len(), 1);
        assert_eq!(by_rule("waiver-without-reason").len(), 1);
        assert_eq!(by_rule("misplaced-file-waiver").len(), 1);
        assert!(report
            .findings
            .iter()
            .any(|f| f.path == "bad.rs" && f.rule == "no-unwrap" && f.waived.is_none()));
    }
}
